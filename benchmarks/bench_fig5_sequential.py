"""Fig. 5 — sequential running times on mined GFDs.

Paper reference (seconds, full scale):

============  ========  =======  =========
algorithm     DBpedia   YAGO2    Pokec
============  ========  =======  =========
SeqSat        1728      1341     2475
SeqImp        728       644      1355
ParImpRDF     1026      987      1907
============  ========  =======  =========

Shape to reproduce: SeqImp < ParImpRDF < SeqSat per dataset, with SeqImp
beating the RDF chase baseline by ~1.4–1.5x.
"""

import pytest

from repro.chase.rdf import rdf_imp
from repro.reasoning import seq_imp, seq_sat

from conftest import run_once

DATASETS = ("dbpedia", "yago2", "pokec")


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5_seqsat(benchmark, mined_sat_workloads, dataset):
    workload = mined_sat_workloads[dataset]
    result = run_once(benchmark, seq_sat, workload.sigma)
    assert result.satisfiable


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5_seqimp(benchmark, mined_imp_workloads, dataset):
    workload = mined_imp_workloads[dataset]
    run_once(benchmark, seq_imp, workload.sigma, workload.phi)


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5_parimprdf(benchmark, mined_imp_workloads, dataset):
    workload = mined_imp_workloads[dataset]
    run_once(benchmark, rdf_imp, workload.sigma, workload.phi)
