"""Fig. 6(c) — ParImp / ParImpnp / ParImpnb varying p (DBpedia workload).

Paper shapes: ParImp is ~3x faster from p=4 to 20; beats ParImpnb by ~4.1x
and ParImpnp by ~1.7x on average.
"""

import pytest

from repro.parallel import RuntimeConfig, par_imp, par_imp_nb, par_imp_np

from conftest import run_once

P_SWEEP = (4, 12, 20)


@pytest.mark.parametrize("p", P_SWEEP)
def test_fig6c_parimp(benchmark, imp_straggler_dbpedia, p):
    workload = imp_straggler_dbpedia
    run_once(benchmark, par_imp, workload.sigma, workload.phi, RuntimeConfig(workers=p))


@pytest.mark.parametrize("p", P_SWEEP)
def test_fig6c_parimp_np(benchmark, imp_straggler_dbpedia, p):
    workload = imp_straggler_dbpedia
    run_once(benchmark, par_imp_np, workload.sigma, workload.phi, RuntimeConfig(workers=p))


@pytest.mark.parametrize("p", P_SWEEP)
def test_fig6c_parimp_nb(benchmark, imp_straggler_dbpedia, p):
    workload = imp_straggler_dbpedia
    run_once(benchmark, par_imp_nb, workload.sigma, workload.phi, RuntimeConfig(workers=p))


def test_fig6c_shape(imp_straggler_dbpedia):
    workload = imp_straggler_dbpedia
    at_4 = par_imp(workload.sigma, workload.phi, RuntimeConfig(workers=4)).virtual_seconds
    at_20 = par_imp(workload.sigma, workload.phi, RuntimeConfig(workers=20)).virtual_seconds
    nb_20 = par_imp_nb(workload.sigma, workload.phi, RuntimeConfig(workers=20)).virtual_seconds
    assert at_4 / at_20 >= 2.5
    assert nb_20 / at_20 >= 2.0
