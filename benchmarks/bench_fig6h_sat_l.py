"""Fig. 6(h) — satisfiability varying literal count l (k=5, p=4).

Paper shape: all algorithms are "not very sensitive to l" — more literals
cost a bit more to process but also terminate some work earlier.
"""

import pytest

from repro.bench.harness import sequential_virtual_seconds
from repro.parallel import RuntimeConfig, par_sat
from repro.reasoning import seq_sat

from conftest import run_once

L_SWEEP = (1, 3, 5)


@pytest.mark.parametrize("l", L_SWEEP)
def test_fig6h_seqsat(benchmark, synthetic_sat_by_l, l):
    result = run_once(benchmark, seq_sat, synthetic_sat_by_l[l].sigma)
    assert result.satisfiable


@pytest.mark.parametrize("l", L_SWEEP)
def test_fig6h_parsat(benchmark, synthetic_sat_by_l, l):
    run_once(benchmark, par_sat, synthetic_sat_by_l[l].sigma, RuntimeConfig(workers=4))


def test_fig6h_insensitive_to_l(synthetic_sat_by_l):
    """l changes runtime far less than |Σ| or k do (within ~6x across the
    sweep, versus orders of magnitude for k)."""
    costs = [
        sequential_virtual_seconds(seq_sat(workload.sigma))
        for workload in synthetic_sat_by_l.values()
    ]
    assert max(costs) / min(costs) < 6.0
