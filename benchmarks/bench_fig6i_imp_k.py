"""Fig. 6(i) — implication varying pattern size k (l=3, p=4).

Paper shapes: time grows with k; at k=10 SeqImp/ParImp take 538/201 s
(scaled here).
"""

import pytest

from repro.parallel import RuntimeConfig, par_imp
from repro.reasoning import seq_imp

from conftest import run_once

K_SWEEP = (4, 6, 10)


@pytest.mark.parametrize("k", K_SWEEP)
def test_fig6i_seqimp(benchmark, synthetic_imp_by_k, k):
    workload = synthetic_imp_by_k[k]
    run_once(benchmark, seq_imp, workload.sigma, workload.phi)


@pytest.mark.parametrize("k", K_SWEEP)
def test_fig6i_parimp(benchmark, synthetic_imp_by_k, k):
    workload = synthetic_imp_by_k[k]
    run_once(benchmark, par_imp, workload.sigma, workload.phi, RuntimeConfig(workers=4))


def test_fig6i_verdicts_consistent(synthetic_imp_by_k):
    for workload in synthetic_imp_by_k.values():
        expected = seq_imp(workload.sigma, workload.phi).implied
        actual = par_imp(workload.sigma, workload.phi, RuntimeConfig(workers=4)).implied
        assert actual == expected
