"""Fig. 6(j) — implication varying literal count l (k=5, p=4).

Paper shape: insensitive to l, like Fig. 6(h).
"""

import pytest

from repro.parallel import RuntimeConfig, par_imp
from repro.reasoning import seq_imp

from conftest import run_once

L_SWEEP = (1, 3, 5)


@pytest.mark.parametrize("l", L_SWEEP)
def test_fig6j_seqimp(benchmark, synthetic_imp_by_l, l):
    workload = synthetic_imp_by_l[l]
    run_once(benchmark, seq_imp, workload.sigma, workload.phi)


@pytest.mark.parametrize("l", L_SWEEP)
def test_fig6j_parimp(benchmark, synthetic_imp_by_l, l):
    workload = synthetic_imp_by_l[l]
    run_once(benchmark, par_imp, workload.sigma, workload.phi, RuntimeConfig(workers=4))
