"""Fig. 6(l) — ParImp / ParImpnp varying the straggler threshold TTL (p=4).

Paper shape: same interior-optimum story as Fig. 6(k) for implication.
"""

import pytest

from repro.parallel import RuntimeConfig, par_imp, par_imp_np

from conftest import run_once

TTL_SWEEP = (0.1, 0.5, 2.0, 8.0)


@pytest.mark.parametrize("ttl", TTL_SWEEP)
def test_fig6l_parimp(benchmark, imp_straggler_dbpedia, ttl):
    workload = imp_straggler_dbpedia
    run_once(
        benchmark,
        par_imp,
        workload.sigma,
        workload.phi,
        RuntimeConfig(workers=4, ttl_seconds=ttl),
    )


@pytest.mark.parametrize("ttl", TTL_SWEEP)
def test_fig6l_parimp_np(benchmark, imp_straggler_dbpedia, ttl):
    workload = imp_straggler_dbpedia
    run_once(
        benchmark,
        par_imp_np,
        workload.sigma,
        workload.phi,
        RuntimeConfig(workers=4, ttl_seconds=ttl),
    )


def test_fig6l_np_always_slower(imp_straggler_dbpedia):
    workload = imp_straggler_dbpedia
    for ttl in (0.5, 2.0):
        config = RuntimeConfig(workers=4, ttl_seconds=ttl)
        full = par_imp(workload.sigma, workload.phi, config).virtual_seconds
        no_pipeline = par_imp_np(workload.sigma, workload.phi, config).virtual_seconds
        assert no_pipeline >= full
