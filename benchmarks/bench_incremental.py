"""Benchmark: incremental GraphIndex maintenance vs. per-mutation rebuild.

Measures the tentpole of PR 3 on two add-heavy workloads:

* ``index_maintenance`` — a synthetic graph absorbs a stream of small
  component additions (the ``IncrementalSat.add`` shape: a few nodes plus
  a few edges per step), calling ``graph.index()`` after every step. The
  delta path (journal + ``GraphIndex.apply_delta``) is compared against
  the rebuild baseline (``index_delta_enabled = False``, the pre-PR-3
  behavior: one O(|G|) recompile per step).
* ``incremental_sat`` — end-to-end ``IncrementalSat`` over a random GFD
  stream under both knob settings; matching dominates here, so this shows
  how much of the per-add latency the index used to eat.

Every delta run is *verified*: the maintained index's canonical form is
compared against a from-scratch rebuild mid-stream and at the end, and the
JSON reports the mismatch count (must be 0). Numbers land in
``BENCH_incremental.json``; ``--smoke`` runs a reduced config for CI.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_incremental.py [--output FILE]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, List

from repro.gfd.generator import random_gfds
from repro.graph.graph import PropertyGraph
from repro.graph.index import GraphIndex
from repro.reasoning.incremental import IncrementalSat

#: Nodes per added component / edges per added component (the per-step
#: delta size, mirroring a small GFD pattern).
COMPONENT_NODES = 3
COMPONENT_EDGES = 4

#: Verify delta/rebuild equivalence every this many steps.
VERIFY_EVERY = 50


def base_graph(num_nodes: int, num_edges: int, num_labels: int, seed: int) -> PropertyGraph:
    rng = random.Random(seed)
    graph = PropertyGraph()
    nodes = [graph.add_node(f"L{rng.randrange(num_labels)}") for _ in range(num_nodes)]
    added = 0
    while added < num_edges:
        src, dst = rng.choice(nodes), rng.choice(nodes)
        label = f"e{rng.randrange(3)}"
        if not graph.has_edge(src, dst, label):
            graph.add_edge(src, dst, label)
            added += 1
    return graph


def add_component(graph: PropertyGraph, rng: random.Random, num_labels: int) -> None:
    """One add-step: a small labeled component wired into the graph."""
    fresh = [
        graph.add_node(f"L{rng.randrange(num_labels)}") for _ in range(COMPONENT_NODES)
    ]
    anchors = list(range(graph.num_nodes - COMPONENT_NODES))
    for i in range(COMPONENT_EDGES):
        src = fresh[i % len(fresh)]
        dst = fresh[(i + 1) % len(fresh)] if i % 2 == 0 else rng.choice(anchors)
        graph.add_edge(src, dst, f"e{rng.randrange(3)}")


def run_index_maintenance(
    num_nodes: int, num_edges: int, num_labels: int, steps: int, seed: int
) -> Dict[str, object]:
    """Per-add index upkeep: delta path vs. rebuild baseline."""
    results: Dict[str, object] = {}
    mismatches = 0
    per_mode: Dict[str, float] = {}
    for mode in ("delta", "rebuild"):
        graph = base_graph(num_nodes, num_edges, num_labels, seed)
        graph.index_delta_enabled = mode == "delta"
        graph.index()  # compile once before the stream (both modes)
        rng = random.Random(seed + 1)
        total = 0.0
        for step in range(steps):
            started = time.perf_counter()
            add_component(graph, rng, num_labels)
            graph.index()
            total += time.perf_counter() - started
            if mode == "delta" and (step + 1) % VERIFY_EVERY == 0:
                if graph.index().canonical_form() != GraphIndex(graph).canonical_form():
                    mismatches += 1
        if mode == "delta":
            # Final full verification of the maintained index.
            if graph.index().canonical_form() != GraphIndex(graph).canonical_form():
                mismatches += 1
        per_mode[mode] = total
        results[mode] = {
            "total_seconds": round(total, 4),
            "per_add_us": round(total / steps * 1e6, 2),
        }
    results["speedup"] = round(per_mode["rebuild"] / per_mode["delta"], 2)
    results["equivalence_mismatches"] = mismatches
    results["graph"] = {
        "nodes": num_nodes,
        "edges": num_edges,
        "labels": num_labels,
        "steps": steps,
    }
    return results


def run_incremental_sat(count: int, seed: int) -> Dict[str, object]:
    """End-to-end ``IncrementalSat.add`` latency under both index modes."""
    sigma = random_gfds(count, max_pattern_nodes=5, seed=seed, consistent=True)
    results: Dict[str, object] = {}
    per_mode: Dict[str, float] = {}
    verdicts = {}
    for mode in ("delta", "rebuild"):
        state = IncrementalSat()
        state.graph.index_delta_enabled = mode == "delta"
        started = time.perf_counter()
        for gfd in sigma:
            state.add(gfd)
        total = time.perf_counter() - started
        per_mode[mode] = total
        verdicts[mode] = state.satisfiable
        results[mode] = {
            "total_seconds": round(total, 4),
            "per_add_ms": round(total / len(sigma) * 1e3, 3),
            "delta_ops": sum(step.index_delta_ops for step in state.steps),
        }
    results["speedup"] = round(per_mode["rebuild"] / per_mode["delta"], 2)
    results["verdicts_agree"] = verdicts["delta"] == verdicts["rebuild"]
    results["gfds"] = count
    return results


def run_suite(smoke: bool = False) -> Dict[str, object]:
    if smoke:
        index_cfg = (400, 1600, 8, 60)
        sat_count = 12
    else:
        index_cfg = (1200, 4800, 8, 300)
        sat_count = 40
    num_nodes, num_edges, num_labels, steps = index_cfg
    return {
        "index_maintenance": run_index_maintenance(
            num_nodes, num_edges, num_labels, steps, seed=97
        ),
        "incremental_sat": run_incremental_sat(sat_count, seed=11),
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", help="write results JSON to this file")
    parser.add_argument(
        "--smoke", action="store_true", help="run a reduced config (CI smoke)"
    )
    args = parser.parse_args(argv)
    results = run_suite(smoke=args.smoke)
    payload = json.dumps(results, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload + "\n")
    print(payload)
    mismatches = results["index_maintenance"]["equivalence_mismatches"]
    if mismatches:
        print(f"EQUIVALENCE FAILURE: {mismatches} mismatches", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
