"""Fig. 6(k) — ParSat / ParSatnp varying the straggler threshold TTL (p=4).

Paper shapes: an interior optimum — small TTL over-splits (message and
scheduling overhead), large TTL under-splits (load imbalance); the paper's
optimum is TTL = 2 s on its cluster, ours sits at ~0.5–2 virtual seconds.
"""

import pytest

from repro.parallel import RuntimeConfig, par_sat, par_sat_np

from conftest import run_once

TTL_SWEEP = (0.1, 0.5, 2.0, 8.0)


@pytest.mark.parametrize("ttl", TTL_SWEEP)
def test_fig6k_parsat(benchmark, ttl_sigma, ttl):
    result = run_once(
        benchmark, par_sat, ttl_sigma, RuntimeConfig(workers=4, ttl_seconds=ttl)
    )
    assert result.satisfiable


@pytest.mark.parametrize("ttl", TTL_SWEEP)
def test_fig6k_parsat_np(benchmark, ttl_sigma, ttl):
    run_once(benchmark, par_sat_np, ttl_sigma, RuntimeConfig(workers=4, ttl_seconds=ttl))


def test_fig6k_interior_optimum(ttl_sigma):
    """Both sweep extremes are worse than the interior (virtual clock)."""
    times = {
        ttl: par_sat(ttl_sigma, RuntimeConfig(workers=4, ttl_seconds=ttl)).virtual_seconds
        for ttl in (0.1, 0.5, 2.0, 8.0)
    }
    best_interior = min(times[0.5], times[2.0])
    assert times[0.1] > best_interior
    assert times[8.0] > best_interior
