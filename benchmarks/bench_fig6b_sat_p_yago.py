"""Fig. 6(b) — ParSat / ParSatnp / ParSatnb varying p (YAGO2 workload).

Paper shapes: same as Fig. 6(a) on the YAGO2-mined rules — ParSat ~3.2x
faster from p=4 to 20, beats nb by ~4.8x and np by ~1.6x at p=20.
"""

import pytest

from repro.parallel import RuntimeConfig, par_sat, par_sat_nb, par_sat_np

from conftest import run_once

P_SWEEP = (4, 12, 20)


@pytest.mark.parametrize("p", P_SWEEP)
def test_fig6b_parsat(benchmark, straggler_sigma_yago, p):
    result = run_once(benchmark, par_sat, straggler_sigma_yago, RuntimeConfig(workers=p))
    assert result.satisfiable


@pytest.mark.parametrize("p", P_SWEEP)
def test_fig6b_parsat_np(benchmark, straggler_sigma_yago, p):
    run_once(benchmark, par_sat_np, straggler_sigma_yago, RuntimeConfig(workers=p))


@pytest.mark.parametrize("p", P_SWEEP)
def test_fig6b_parsat_nb(benchmark, straggler_sigma_yago, p):
    run_once(benchmark, par_sat_nb, straggler_sigma_yago, RuntimeConfig(workers=p))


def test_fig6b_shape(straggler_sigma_yago):
    at_4 = par_sat(straggler_sigma_yago, RuntimeConfig(workers=4)).virtual_seconds
    at_20 = par_sat(straggler_sigma_yago, RuntimeConfig(workers=20)).virtual_seconds
    assert at_4 / at_20 >= 2.5
