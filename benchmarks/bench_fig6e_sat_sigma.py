"""Fig. 6(e) — satisfiability varying |Σ| (synthetic, k=6, l=5, p=4).

Paper shapes: all algorithms grow with |Σ|; ParSat beats SeqSat by ~3.14x
on average at p=4; SeqSat/ParSat take 1321/430 s at |Σ| = 10000 (we sweep
a ~20x-scaled range).
"""

import pytest

from repro.bench.harness import sequential_virtual_seconds
from repro.parallel import RuntimeConfig, par_sat, par_sat_nb, par_sat_np
from repro.reasoning import seq_sat

from conftest import run_once

SIZES = (50, 100, 200)


@pytest.mark.parametrize("size", SIZES)
def test_fig6e_seqsat(benchmark, synthetic_sat_by_size, size):
    result = run_once(benchmark, seq_sat, synthetic_sat_by_size[size].sigma)
    assert result.satisfiable


@pytest.mark.parametrize("size", SIZES)
def test_fig6e_seqsat_ruleset(benchmark, synthetic_sat_by_size, size):
    """The rule-set-compiled (shared-prefix trie) sequential run."""
    result = run_once(
        benchmark, seq_sat, synthetic_sat_by_size[size].sigma, use_ruleset_plan=True
    )
    assert result.satisfiable


@pytest.mark.parametrize("size", SIZES)
def test_fig6e_parsat(benchmark, synthetic_sat_by_size, size):
    result = run_once(
        benchmark, par_sat, synthetic_sat_by_size[size].sigma, RuntimeConfig(workers=4)
    )
    assert result.satisfiable


@pytest.mark.parametrize("size", SIZES)
def test_fig6e_parsat_np(benchmark, synthetic_sat_by_size, size):
    run_once(benchmark, par_sat_np, synthetic_sat_by_size[size].sigma, RuntimeConfig(workers=4))


@pytest.mark.parametrize("size", SIZES)
def test_fig6e_parsat_nb(benchmark, synthetic_sat_by_size, size):
    run_once(benchmark, par_sat_nb, synthetic_sat_by_size[size].sigma, RuntimeConfig(workers=4))


def test_fig6e_shapes(synthetic_sat_by_size):
    """Growth with |Σ| and the ParSat-over-SeqSat factor (virtual clock)."""
    seq_costs = {
        size: sequential_virtual_seconds(seq_sat(workload.sigma))
        for size, workload in synthetic_sat_by_size.items()
    }
    assert seq_costs[50] < seq_costs[200]
    par_cost = par_sat(
        synthetic_sat_by_size[200].sigma, RuntimeConfig(workers=4)
    ).virtual_seconds
    assert seq_costs[200] / par_cost >= 2.0


def test_fig6e_ruleset_speedup(synthetic_sat_by_size):
    """Shared-prefix compilation beats the per-rule loop at the largest
    |Σ| point (wall clock; the acceptance target is 1.5x, asserted here
    with slack for noisy runners — BENCH_ruleset.json records the real
    ratio)."""
    import time

    sigma = synthetic_sat_by_size[200].sigma
    started = time.perf_counter()
    base = seq_sat(sigma, use_ruleset_plan=False)
    per_rule = time.perf_counter() - started
    started = time.perf_counter()
    trie = seq_sat(sigma, use_ruleset_plan=True)
    ruleset = time.perf_counter() - started
    assert trie.satisfiable == base.satisfiable
    assert trie.stats.matches == base.stats.matches
    assert per_rule / ruleset >= 1.2
