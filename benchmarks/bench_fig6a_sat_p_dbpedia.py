"""Fig. 6(a) — ParSat / ParSatnp / ParSatnb varying p (DBpedia workload).

Paper shapes: ParSat is ~3.7x faster from p=4 to p=20; beats ParSatnb by up
to 5.3x and ParSatnp by ~1.5x at p=20. Benchmarks measure wall time of the
simulated run; the virtual-seconds series for the figure itself comes from
``benchmarks/run_report.py`` (recorded in EXPERIMENTS.md).
"""

import pytest

from repro.parallel import RuntimeConfig, par_sat, par_sat_nb, par_sat_np

from conftest import run_once

P_SWEEP = (4, 12, 20)


@pytest.mark.parametrize("p", P_SWEEP)
def test_fig6a_parsat(benchmark, straggler_sigma_dbpedia, p):
    result = run_once(
        benchmark, par_sat, straggler_sigma_dbpedia, RuntimeConfig(workers=p)
    )
    assert result.satisfiable


@pytest.mark.parametrize("p", P_SWEEP)
def test_fig6a_parsat_np(benchmark, straggler_sigma_dbpedia, p):
    run_once(benchmark, par_sat_np, straggler_sigma_dbpedia, RuntimeConfig(workers=p))


@pytest.mark.parametrize("p", P_SWEEP)
def test_fig6a_parsat_nb(benchmark, straggler_sigma_dbpedia, p):
    run_once(benchmark, par_sat_nb, straggler_sigma_dbpedia, RuntimeConfig(workers=p))


def test_fig6a_shape_parsat_scales(straggler_sigma_dbpedia):
    """Non-benchmark shape assertion: ParSat time drops as p grows and
    beats both ablation variants at p=20 (virtual clock)."""
    at_4 = par_sat(straggler_sigma_dbpedia, RuntimeConfig(workers=4)).virtual_seconds
    at_20 = par_sat(straggler_sigma_dbpedia, RuntimeConfig(workers=20)).virtual_seconds
    nb_20 = par_sat_nb(straggler_sigma_dbpedia, RuntimeConfig(workers=20)).virtual_seconds
    np_20 = par_sat_np(straggler_sigma_dbpedia, RuntimeConfig(workers=20)).virtual_seconds
    assert at_4 / at_20 >= 2.5
    assert nb_20 / at_20 >= 2.0
    assert np_20 / at_20 >= 1.2
