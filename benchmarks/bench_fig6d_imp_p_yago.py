"""Fig. 6(d) — ParImp / ParImpnp / ParImpnb varying p (YAGO2 workload)."""

import pytest

from repro.parallel import RuntimeConfig, par_imp, par_imp_nb, par_imp_np

from conftest import run_once

P_SWEEP = (4, 12, 20)


@pytest.mark.parametrize("p", P_SWEEP)
def test_fig6d_parimp(benchmark, imp_straggler_yago, p):
    workload = imp_straggler_yago
    run_once(benchmark, par_imp, workload.sigma, workload.phi, RuntimeConfig(workers=p))


@pytest.mark.parametrize("p", P_SWEEP)
def test_fig6d_parimp_np(benchmark, imp_straggler_yago, p):
    workload = imp_straggler_yago
    run_once(benchmark, par_imp_np, workload.sigma, workload.phi, RuntimeConfig(workers=p))


@pytest.mark.parametrize("p", P_SWEEP)
def test_fig6d_parimp_nb(benchmark, imp_straggler_yago, p):
    workload = imp_straggler_yago
    run_once(benchmark, par_imp_nb, workload.sigma, workload.phi, RuntimeConfig(workers=p))


def test_fig6d_shape(imp_straggler_yago):
    workload = imp_straggler_yago
    at_4 = par_imp(workload.sigma, workload.phi, RuntimeConfig(workers=4)).virtual_seconds
    at_20 = par_imp(workload.sigma, workload.phi, RuntimeConfig(workers=20)).virtual_seconds
    assert at_4 / at_20 >= 2.5
