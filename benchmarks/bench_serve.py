"""Benchmark: the validation service under concurrent writers and readers.

Measures the PR 10 tentpole end to end: a :class:`ValidationServer` holds
a hot graph while **16 open-loop client sessions** fire ``validate``
queries at a fixed arrival rate and one writer session streams mutation
batches the whole time. Every query pins an MVCC read view; the bench
records latency percentiles (measured from the *scheduled* send time, so
queueing delay is not silently omitted) and the snapshot-pin counters
(pins, in-place advances, forks, full copies).

Two invariants are **asserted**, not just reported, and the script exits
nonzero if either fails:

* ``failed_queries == 0`` — every query answers while writes stream;
* ``mismatches == 0`` — every query's violation list is byte-identical
  (same JSON serialization) to a sequential ``detect_errors_store`` run
  against a reference graph rebuilt from the recorded mutation journal
  truncated at that query's pinned version. This is the serving layer's
  whole correctness claim: a pinned view equals "the graph as of V".

Numbers land in ``BENCH_serve.json``; ``--smoke`` runs a reduced config
for CI (same 16 clients, fewer requests each).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py [--output FILE]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import threading
import time
from typing import Dict, List

from repro.graph.graph import PropertyGraph
from repro.gfd.parser import parse_gfds
from repro.reasoning.validation import detect_errors_store
from repro.serve import ServeClient, ServerConfig, SessionQuota, ValidationServer
from repro.serve.protocol import apply_wire_ops

RULES = """
gfd same_name_same_zip {
    x: person; y: person; z: city;
    x -[lives_in]-> z; y -[lives_in]-> z;
    when x.name = y.name;
    then x.zip = y.zip;
}
"""

NAMES = ["ada", "bob", "cyn"]
NUM_CITIES = 4


def seed_ops() -> List[Dict[str, object]]:
    ops: List[Dict[str, object]] = []
    for city in range(NUM_CITIES):
        ops.append({"kind": "add_node", "id": f"c{city}", "label": "city"})
    for person in range(8):
        ops.append(
            {
                "kind": "add_node",
                "id": f"p{person}",
                "label": "person",
                "attrs": {"name": NAMES[person % len(NAMES)], "zip": person % 2},
            }
        )
        ops.append(
            {
                "kind": "add_edge",
                "src": f"p{person}",
                "dst": f"c{person % NUM_CITIES}",
                "label": "lives_in",
            }
        )
    return ops


def writer_batch(index: int) -> List[Dict[str, object]]:
    """Batch *index* of the write stream (explicit ids: replayable)."""
    node_id = f"w{index}"
    return [
        {
            "kind": "add_node",
            "id": node_id,
            "label": "person",
            "attrs": {"name": NAMES[index % len(NAMES)], "zip": index % 3},
        },
        {
            "kind": "add_edge",
            "src": node_id,
            "dst": f"c{index % NUM_CITIES}",
            "label": "lives_in",
        },
    ]


class BenchServer:
    """The server on a background event loop (same shape as the tests)."""

    def __init__(self, config: ServerConfig):
        self.loop = asyncio.new_event_loop()
        thread = threading.Thread(target=self._run, daemon=True)
        thread.start()
        self._thread = thread
        self.server = ValidationServer(None, config)
        future = asyncio.run_coroutine_threadsafe(self.server.start(), self.loop)
        self.host, self.port = future.result(30)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(self.server.aclose(), self.loop).result(60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)
        self.loop.close()


def percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def run_workload(
    clients: int,
    requests_per_client: int,
    writer_batches: int,
    arrival_interval: float,
) -> Dict[str, object]:
    config = ServerConfig(
        max_inflight_queries=8,
        query_threads=8,
        mutation_queue_depth=32,
        trim_interval_batches=8,
        quota=SessionQuota(max_inflight=4),
    )
    bench = BenchServer(config)
    journal: List[Dict[str, object]] = []
    journal_lock = threading.Lock()
    query_log: List[Dict[str, object]] = []
    query_lock = threading.Lock()
    failures: List[str] = []
    writer_done = threading.Event()

    def record_batch(ops: List[Dict[str, object]], ack: Dict[str, object]) -> None:
        with journal_lock:
            journal.extend(ops)
            if ack["version"] != len(journal):
                failures.append(
                    f"journal desync: server at {ack['version']}, recorded {len(journal)}"
                )

    def writer_loop() -> None:
        try:
            with ServeClient(bench.host, bench.port, timeout=120) as writer:
                record_batch(seed_ops(), writer.mutate(seed_ops()))
                for index in range(writer_batches):
                    batch = writer_batch(index)
                    record_batch(batch, writer.mutate(batch))
        except Exception as exc:  # pragma: no cover - surfaced via failures
            failures.append(f"writer died: {type(exc).__name__}: {exc}")
        finally:
            writer_done.set()

    writer = threading.Thread(target=writer_loop)
    writer.start()
    # Let the seed batch land before the query storm starts.
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        with journal_lock:
            if journal:
                break
        time.sleep(0.005)

    def client_loop(client_index: int) -> None:
        try:
            with ServeClient(bench.host, bench.port, timeout=120) as client:
                start = time.monotonic()
                for request_index in range(requests_per_client):
                    # Open loop: send times are scheduled up front; falling
                    # behind inflates the *measured* latency instead of
                    # thinning the arrival rate (no coordinated omission).
                    scheduled = start + request_index * arrival_interval
                    now = time.monotonic()
                    if scheduled > now:
                        time.sleep(scheduled - now)
                        scheduled = max(scheduled, time.monotonic() - 0.001)
                    result = client.validate(RULES)
                    finished = time.monotonic()
                    with query_lock:
                        query_log.append(
                            {
                                "latency": finished - scheduled,
                                "pinned_version": result["pinned_version"],
                                "violations": result["violations"],
                            }
                        )
        except Exception as exc:
            failures.append(f"client {client_index} died: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=client_loop, args=(index,)) for index in range(clients)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    writer.join()
    elapsed = time.monotonic() - started

    with ServeClient(bench.host, bench.port, timeout=30) as probe:
        stats = probe.stats()
    bench.close()

    # ------------------------------------------------------------------
    # Differential check: every pinned answer vs a sequential rebuild.
    # ------------------------------------------------------------------
    sigma = parse_gfds(RULES)
    expected_cache: Dict[int, str] = {}
    mismatches = 0
    for entry in query_log:
        version = entry["pinned_version"]
        expected = expected_cache.get(version)
        if expected is None:
            reference = PropertyGraph()
            applied, _, error = apply_wire_ops(reference, journal[:version])
            if error is not None or applied != version:
                failures.append(f"reference replay to {version} failed: {error}")
                continue
            store = detect_errors_store(reference, sigma)
            expected = json.dumps(
                [v.to_json() for v in store.violations], sort_keys=True
            )
            expected_cache[version] = expected
        actual = json.dumps(entry["violations"], sort_keys=True)
        if actual != expected:
            mismatches += 1

    latencies = sorted(entry["latency"] for entry in query_log)
    views = stats["views"]
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "writer_batches": writer_batches,
        "queries_total": len(query_log),
        "failed_queries": len(failures),
        "failures": failures[:10],
        "mismatches": mismatches,
        "distinct_versions_queried": len(expected_cache),
        "wall_seconds": round(elapsed, 4),
        "throughput_qps": round(len(query_log) / elapsed, 2) if elapsed else 0.0,
        "latency_p50": round(percentile(latencies, 0.50), 4),
        "latency_p95": round(percentile(latencies, 0.95), 4),
        "latency_p99": round(percentile(latencies, 0.99), 4),
        "latency_mean": round(statistics.fmean(latencies), 4) if latencies else 0.0,
        "pins_total": views["pins_total"],
        "snapshot_forks": views["forks"],
        "snapshot_full_copies": views["full_copies"],
        "snapshot_ops_replayed": views["ops_replayed"],
        "mutation_batches": stats["counters"]["mutation_batches"],
        "mutation_ops": stats["counters"]["mutation_ops"],
        "server_queries_failed": stats["counters"]["queries_failed"],
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", help="write results JSON to this file")
    parser.add_argument(
        "--smoke", action="store_true", help="run a reduced config (CI smoke)"
    )
    parser.add_argument("--clients", type=int, default=16, help="client sessions")
    args = parser.parse_args(argv)

    if args.smoke:
        requests_per_client, writer_batches, interval = 5, 40, 0.01
    else:
        requests_per_client, writer_batches, interval = 25, 200, 0.02

    results = run_workload(
        clients=args.clients,
        requests_per_client=requests_per_client,
        writer_batches=writer_batches,
        arrival_interval=interval,
    )
    payload = {"serve": results}
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")

    ok = results["failed_queries"] == 0 and results["mismatches"] == 0
    if not ok:
        print(
            f"FAIL: {results['failed_queries']} failed queries, "
            f"{results['mismatches']} pinned-answer mismatches",
            file=sys.stderr,
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
