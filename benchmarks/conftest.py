"""Shared fixtures for the per-figure benchmark suite.

Workloads are built once per session; every benchmark measures one full
algorithm run (``benchmark.pedantic`` with a single round — the runs are
seconds-long, deterministic, and re-executing them dozens of times would
tell us nothing new). Benchmark sizes are scaled down from the harness
defaults so the whole suite finishes in a few minutes; the full paper-style
series (and the shape commentary) are produced by ``benchmarks/run_report.py``
and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    implication_workload,
    mined_implication_workload,
    mined_workload,
    synthetic_imp_sweep,
    synthetic_imp_workload,
    synthetic_sat_sweep,
    synthetic_sat_workload,
)
from repro.gfd.generator import straggler_workload


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark *fn* with exactly one measured execution."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)


@pytest.fixture(scope="session")
def mined_sat_workloads():
    """Fig. 5 satisfiability inputs: mined rule sets per dataset."""
    return {
        dataset: mined_workload(dataset, count=30, num_nodes=500, with_conflicts=False)
        for dataset in ("dbpedia", "yago2", "pokec")
    }


@pytest.fixture(scope="session")
def mined_imp_workloads():
    """Fig. 5 implication inputs per dataset."""
    return {
        dataset: mined_implication_workload(dataset, count=30, num_nodes=500)
        for dataset in ("dbpedia", "yago2", "pokec")
    }


@pytest.fixture(scope="session")
def straggler_sigma_dbpedia():
    """Fig. 6(a)/(k) workload (DBpedia-seeded stragglers)."""
    return straggler_workload(seed=7)


@pytest.fixture(scope="session")
def straggler_sigma_yago():
    """Fig. 6(b) workload (YAGO2-seeded stragglers)."""
    return straggler_workload(seed=8)


@pytest.fixture(scope="session")
def imp_straggler_dbpedia():
    """Fig. 6(c)/(l) implication workload."""
    return implication_workload(seed=7)


@pytest.fixture(scope="session")
def imp_straggler_yago():
    """Fig. 6(d) implication workload."""
    return implication_workload(seed=8)


@pytest.fixture(scope="session")
def ttl_sigma():
    """Fig. 6(k) concentrated-straggler workload."""
    return straggler_workload(num_anchor=1, num_seekers=2, num_background=25, seed=7)


@pytest.fixture(scope="session")
def synthetic_sat_by_size():
    """Fig. 6(e) |Σ| sweep inputs (prefix-extending: each point is a
    prefix of the largest, so the growth measurement is honest)."""
    return synthetic_sat_sweep((50, 100, 200), k=6, l=5)


@pytest.fixture(scope="session")
def synthetic_imp_by_size():
    """Fig. 6(f) |Σ| sweep inputs (prefix-extending)."""
    return synthetic_imp_sweep((50, 100, 200), k=6, l=5)


@pytest.fixture(scope="session")
def synthetic_imp_rdf_by_size():
    """Fig. 6(f) sweep for the ParImpRDF baseline: chordless seekers —
    the reified chase doubles walk depth, so chord seekers are
    intractable for it (see ``synthetic_imp_workload``)."""
    return synthetic_imp_sweep((50, 100, 200), k=6, l=5, seeker_chords=0)


@pytest.fixture(scope="session")
def synthetic_sat_by_k():
    """Fig. 6(g)/(i) k sweep inputs (l=3; near-k patterns over a small
    vocabulary, so matching cost grows with k — see the harness docs)."""
    return {
        k: synthetic_sat_workload(100, k=k, l=3, num_labels=6, near_k=True)
        for k in (4, 6, 10)
    }


@pytest.fixture(scope="session")
def synthetic_imp_by_k():
    return {k: synthetic_imp_workload(100, k=k, l=3) for k in (4, 6, 10)}


@pytest.fixture(scope="session")
def synthetic_sat_by_l():
    """Fig. 6(h)/(j) l sweep inputs (k=5)."""
    return {l: synthetic_sat_workload(100, k=5, l=l) for l in (1, 3, 5)}


@pytest.fixture(scope="session")
def synthetic_imp_by_l():
    return {l: synthetic_imp_workload(100, k=5, l=l) for l in (1, 3, 5)}
