"""Ablation benchmarks for the design choices DESIGN.md calls out.

Beyond the paper's own np/nb ablations (pipelining, splitting — covered by
Figs. 6(a)–(d)), these measure the remaining optimizations:

* dependency-graph ordering of the work queue (vs arrival order),
* simulation-based unit pruning (vs label-signature only),
* batched coordinator assignment (vs one unit per round-trip).
"""

import pytest

from repro.gfd.generator import add_random_conflicts, random_gfds, straggler_workload
from repro.parallel import RuntimeConfig, par_sat
from repro.reasoning import seq_sat

from conftest import run_once


@pytest.fixture(scope="module")
def ordering_sigma():
    """An unsatisfiable set where good ordering finds the conflict early:
    mined-style consistent GFDs plus an injected conflict chain."""
    return add_random_conflicts(random_gfds(80, 5, 4, seed=31), num_conflicts=6, seed=31)


@pytest.fixture(scope="module")
def pruning_sigma():
    """Low-selectivity workload where simulation pruning matters."""
    from repro.bench.harness import synthetic_sat_workload

    return synthetic_sat_workload(120, k=8, l=3, num_labels=6, near_k=True).sigma


class TestDependencyOrdering:
    def test_with_ordering(self, benchmark, ordering_sigma):
        config = RuntimeConfig(workers=4, use_dependency_order=True)
        result = run_once(benchmark, par_sat, ordering_sigma, config)
        assert not result.satisfiable

    def test_without_ordering(self, benchmark, ordering_sigma):
        config = RuntimeConfig(workers=4, use_dependency_order=False)
        result = run_once(benchmark, par_sat, ordering_sigma, config)
        assert not result.satisfiable

    def test_ordering_verdicts_agree(self, ordering_sigma):
        ordered = par_sat(ordering_sigma, RuntimeConfig(workers=4, use_dependency_order=True))
        unordered = par_sat(ordering_sigma, RuntimeConfig(workers=4, use_dependency_order=False))
        assert ordered.satisfiable == unordered.satisfiable == False  # noqa: E712


class TestSimulationPruning:
    def test_with_pruning(self, benchmark, pruning_sigma):
        config = RuntimeConfig(workers=4, use_simulation_pruning=True)
        result = run_once(benchmark, par_sat, pruning_sigma, config)
        assert result.satisfiable

    def test_without_pruning(self, benchmark, pruning_sigma):
        config = RuntimeConfig(workers=4, use_simulation_pruning=False)
        result = run_once(benchmark, par_sat, pruning_sigma, config)
        assert result.satisfiable

    def test_pruning_reduces_units(self, pruning_sigma):
        pruned = par_sat(pruning_sigma, RuntimeConfig(workers=4, use_simulation_pruning=True))
        unpruned = par_sat(pruning_sigma, RuntimeConfig(workers=4, use_simulation_pruning=False))
        assert pruned.outcome.units_total < unpruned.outcome.units_total
        assert pruned.virtual_seconds <= unpruned.virtual_seconds


class TestBatching:
    @pytest.mark.parametrize("batch_size", [1, 6, 16])
    def test_batch_sizes(self, benchmark, pruning_sigma, batch_size):
        # Fixed-batch ablation: with the adaptive scheduler the requested
        # size is only the starting point, which would blur the sweep.
        config = RuntimeConfig(workers=4, batch_size=batch_size).without_affinity()
        result = run_once(benchmark, par_sat, pruning_sigma, config)
        assert result.satisfiable

    def test_adaptive_scheduler(self, benchmark, pruning_sigma):
        result = run_once(benchmark, par_sat, pruning_sigma, RuntimeConfig(workers=4))
        assert result.satisfiable


class TestSequentialAblation:
    """The sequential algorithms also use the dependency order and the
    per-component simulation (paper: 'All the algorithms sort GFDs with
    dependency graphs, including sequential SeqSat and SeqImp')."""

    def test_seqsat_default(self, benchmark, ordering_sigma):
        result = run_once(benchmark, seq_sat, ordering_sigma)
        assert not result.satisfiable

    def test_seqsat_no_order_no_sim(self, benchmark, ordering_sigma):
        result = run_once(
            benchmark,
            seq_sat,
            ordering_sigma,
            use_dependency_order=False,
            use_simulation_pruning=False,
        )
        assert not result.satisfiable


@pytest.fixture(scope="module")
def chase_sigma():
    return add_random_conflicts(random_gfds(40, 5, 4, seed=33), num_conflicts=6, seed=33)


class TestChaseBaseline:
    """SeqSat vs the naive chase (the paper: chase implementations are
    'much slower than SeqSat and SeqImp')."""

    def test_seqsat(self, benchmark, chase_sigma):
        result = run_once(benchmark, seq_sat, chase_sigma)
        assert not result.satisfiable

    def test_chase(self, benchmark, chase_sigma):
        from repro.chase import chase_satisfiability

        result = run_once(benchmark, chase_satisfiability, chase_sigma)
        assert not result.verdict
