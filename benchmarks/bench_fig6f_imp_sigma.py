"""Fig. 6(f) — implication varying |Σ| (synthetic, k=6, l=5, p=4).

Paper shapes: growth with |Σ|; ParImp ~3.1x over SeqImp and ~4.8x over the
chase-based ParImpRDF baseline on average; SeqImp/ParImp take 982/342 s at
|Σ| = 10000 (scaled here).
"""

import pytest

from repro.bench.harness import sequential_virtual_seconds
from repro.chase.rdf import rdf_imp
from repro.parallel import RuntimeConfig, par_imp, par_imp_nb, par_imp_np
from repro.reasoning import seq_imp

from conftest import run_once

SIZES = (50, 100, 200)


@pytest.mark.parametrize("size", SIZES)
def test_fig6f_seqimp(benchmark, synthetic_imp_by_size, size):
    workload = synthetic_imp_by_size[size]
    run_once(benchmark, seq_imp, workload.sigma, workload.phi)


@pytest.mark.parametrize("size", SIZES)
def test_fig6f_parimp(benchmark, synthetic_imp_by_size, size):
    workload = synthetic_imp_by_size[size]
    run_once(benchmark, par_imp, workload.sigma, workload.phi, RuntimeConfig(workers=4))


@pytest.mark.parametrize("size", SIZES)
def test_fig6f_parimp_np(benchmark, synthetic_imp_by_size, size):
    workload = synthetic_imp_by_size[size]
    run_once(benchmark, par_imp_np, workload.sigma, workload.phi, RuntimeConfig(workers=4))


@pytest.mark.parametrize("size", SIZES)
def test_fig6f_parimp_nb(benchmark, synthetic_imp_by_size, size):
    workload = synthetic_imp_by_size[size]
    run_once(benchmark, par_imp_nb, workload.sigma, workload.phi, RuntimeConfig(workers=4))


@pytest.mark.parametrize("size", SIZES)
def test_fig6f_parimprdf(benchmark, synthetic_imp_by_size, size):
    workload = synthetic_imp_by_size[size]
    run_once(benchmark, rdf_imp, workload.sigma, workload.phi)


def test_fig6f_verdicts_agree(synthetic_imp_by_size):
    for workload in synthetic_imp_by_size.values():
        expected = seq_imp(workload.sigma, workload.phi).implied
        assert par_imp(workload.sigma, workload.phi, RuntimeConfig(workers=4)).implied == expected
        assert rdf_imp(workload.sigma, workload.phi).verdict == expected
