"""Fig. 6(f) — implication varying |Σ| (synthetic, k=6, l=5, p=4).

Paper shapes: growth with |Σ|; ParImp ~3.1x over SeqImp and ~4.8x over the
chase-based ParImpRDF baseline on average; SeqImp/ParImp take 982/342 s at
|Σ| = 10000 (scaled here).
"""

import pytest

from repro.bench.harness import sequential_virtual_seconds
from repro.chase.rdf import rdf_imp
from repro.parallel import RuntimeConfig, par_imp, par_imp_nb, par_imp_np
from repro.reasoning import seq_imp

from conftest import run_once

SIZES = (50, 100, 200)


@pytest.mark.parametrize("size", SIZES)
def test_fig6f_seqimp(benchmark, synthetic_imp_by_size, size):
    workload = synthetic_imp_by_size[size]
    run_once(benchmark, seq_imp, workload.sigma, workload.phi)


@pytest.mark.parametrize("size", SIZES)
def test_fig6f_seqimp_ruleset(benchmark, synthetic_imp_by_size, size):
    """The rule-set-compiled (shared-prefix trie) sequential run."""
    workload = synthetic_imp_by_size[size]
    run_once(benchmark, seq_imp, workload.sigma, workload.phi, use_ruleset_plan=True)


@pytest.mark.parametrize("size", SIZES)
def test_fig6f_parimp(benchmark, synthetic_imp_by_size, size):
    workload = synthetic_imp_by_size[size]
    run_once(benchmark, par_imp, workload.sigma, workload.phi, RuntimeConfig(workers=4))


@pytest.mark.parametrize("size", SIZES)
def test_fig6f_parimp_np(benchmark, synthetic_imp_by_size, size):
    workload = synthetic_imp_by_size[size]
    run_once(benchmark, par_imp_np, workload.sigma, workload.phi, RuntimeConfig(workers=4))


@pytest.mark.parametrize("size", SIZES)
def test_fig6f_parimp_nb(benchmark, synthetic_imp_by_size, size):
    workload = synthetic_imp_by_size[size]
    run_once(benchmark, par_imp_nb, workload.sigma, workload.phi, RuntimeConfig(workers=4))


@pytest.mark.parametrize("size", SIZES)
def test_fig6f_parimprdf(benchmark, synthetic_imp_rdf_by_size, size):
    """The RDF chase baseline on the chordless-seeker sweep variant (the
    reified chase is exponential on chord seekers; see the fixture)."""
    workload = synthetic_imp_rdf_by_size[size]
    run_once(benchmark, rdf_imp, workload.sigma, workload.phi)


def test_fig6f_verdicts_agree(synthetic_imp_by_size, synthetic_imp_rdf_by_size):
    for workload in synthetic_imp_by_size.values():
        expected = seq_imp(workload.sigma, workload.phi).implied
        assert seq_imp(workload.sigma, workload.phi, use_ruleset_plan=True).implied == expected
        assert par_imp(workload.sigma, workload.phi, RuntimeConfig(workers=4)).implied == expected
    # The RDF baseline is checked on its own (chordless) workload, against
    # the sequential verdict for that same workload.
    for workload in synthetic_imp_rdf_by_size.values():
        assert rdf_imp(workload.sigma, workload.phi).verdict == seq_imp(
            workload.sigma, workload.phi
        ).implied


def test_fig6f_ruleset_speedup(synthetic_imp_by_size):
    """Shared-prefix compilation beats the per-rule loop at the largest
    |Σ| point (wall clock; the acceptance target is 1.5x, asserted here
    with slack for noisy runners — BENCH_ruleset.json records the real
    ratio)."""
    import time

    workload = synthetic_imp_by_size[200]
    started = time.perf_counter()
    base = seq_imp(workload.sigma, workload.phi, use_ruleset_plan=False)
    per_rule = time.perf_counter() - started
    started = time.perf_counter()
    trie = seq_imp(workload.sigma, workload.phi, use_ruleset_plan=True)
    ruleset = time.perf_counter() - started
    assert trie.implied == base.implied
    assert per_rule / ruleset >= 1.2
