"""Fig. 6(g) — satisfiability varying pattern size k (l=3, p=4).

Paper shapes: time grows with k; at k=10 SeqSat/ParSat take 1253/398 s
(scaled here); the optimizations matter more at large k.
"""

import pytest

from repro.bench.harness import sequential_virtual_seconds
from repro.parallel import RuntimeConfig, par_sat
from repro.reasoning import seq_sat

from conftest import run_once

K_SWEEP = (4, 6, 10)


@pytest.mark.parametrize("k", K_SWEEP)
def test_fig6g_seqsat(benchmark, synthetic_sat_by_k, k):
    result = run_once(benchmark, seq_sat, synthetic_sat_by_k[k].sigma)
    assert result.satisfiable


@pytest.mark.parametrize("k", K_SWEEP)
def test_fig6g_parsat(benchmark, synthetic_sat_by_k, k):
    run_once(benchmark, par_sat, synthetic_sat_by_k[k].sigma, RuntimeConfig(workers=4))


def test_fig6g_growth_with_k(synthetic_sat_by_k):
    costs = {
        k: sequential_virtual_seconds(seq_sat(workload.sigma))
        for k, workload in synthetic_sat_by_k.items()
    }
    assert costs[4] < costs[10]
