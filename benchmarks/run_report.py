#!/usr/bin/env python3
"""Regenerate every table/figure of the paper and print paper-style rows.

Runs the full harness (Fig. 5 and Fig. 6(a)–(l)) at the default scaled
sizes and prints one table per experiment — the data behind EXPERIMENTS.md.

Usage:
    python benchmarks/run_report.py            # all experiments
    python benchmarks/run_report.py fig5 fig6e # a subset
"""

import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS


def main() -> None:
    requested = sys.argv[1:] or list(ALL_EXPERIMENTS)
    unknown = [x for x in requested if x not in ALL_EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment ids {unknown}; choose from {list(ALL_EXPERIMENTS)}")
    total_started = time.perf_counter()
    for experiment_id in requested:
        started = time.perf_counter()
        experiment = ALL_EXPERIMENTS[experiment_id]()
        print(experiment.render())
        print(f"[generated in {time.perf_counter() - started:.1f}s wall]\n")
    print(f"total: {time.perf_counter() - total_started:.1f}s wall")


if __name__ == "__main__":
    main()
