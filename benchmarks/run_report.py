#!/usr/bin/env python3
"""Regenerate every table/figure of the paper and print paper-style rows.

Runs the full harness (Fig. 5 and Fig. 6(a)–(l)) at the default scaled
sizes and prints one table per experiment — the data behind EXPERIMENTS.md.
Recorded bench artifacts (``BENCH_ruleset.json``, written by
``benchmarks/bench_ruleset.py``) are aggregated at the end of the report.

Usage:
    python benchmarks/run_report.py            # all experiments
    python benchmarks/run_report.py fig5 fig6e # a subset
"""

import json
import sys
import time
from pathlib import Path

from repro.bench.experiments import ALL_EXPERIMENTS

REPO_ROOT = Path(__file__).resolve().parent.parent


def render_ruleset_artifact() -> str:
    """Summarize the recorded rule-set compilation sweep, if present."""
    path = REPO_ROOT / "BENCH_ruleset.json"
    if not path.exists():
        return ""
    data = json.loads(path.read_text())
    lines = ["== BENCH_ruleset.json: shared-prefix trie vs per-rule (recorded) =="]
    for section in ("sat", "imp"):
        entry = data.get(section, {})
        sizes = entry.get("sizes", {})
        for size in sorted(sizes, key=int):
            point = sizes[size]
            lines.append(
                f"  {section} |Σ|={size:>4}: per-rule {point['per_rule_seconds']:.3f}s"
                f"  trie {point['ruleset_seconds']:.3f}s"
                f"  speedup {point['speedup']:.2f}x"
            )
        if "speedup_at_max" in entry:
            lines.append(
                f"  {section} speedup at largest |Σ|: {entry['speedup_at_max']:.2f}x"
            )
    trie = data.get("trie")
    if trie:
        lines.append(
            f"  trie sharing: {trie['rules']} rules, {trie['plan_steps']} plan steps"
            f" -> {trie['trie_nodes']} trie nodes ({trie['sharing_factor']:.2f}x)"
        )
    return "\n".join(lines)


def main() -> None:
    requested = sys.argv[1:] or list(ALL_EXPERIMENTS)
    unknown = [x for x in requested if x not in ALL_EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment ids {unknown}; choose from {list(ALL_EXPERIMENTS)}")
    total_started = time.perf_counter()
    for experiment_id in requested:
        started = time.perf_counter()
        experiment = ALL_EXPERIMENTS[experiment_id]()
        print(experiment.render())
        print(f"[generated in {time.perf_counter() - started:.1f}s wall]\n")
    artifact = render_ruleset_artifact()
    if artifact:
        print(artifact + "\n")
    print(f"total: {time.perf_counter() - total_started:.1f}s wall")


if __name__ == "__main__":
    main()
