"""Wall-clock benchmark: threaded vs process execution backends.

Runs ParSat on a straggler-heavy, enforcement-heavy workload with both
real-concurrency backends and records wall seconds (min over repeats —
the standard noise-robust statistic). The process backend avoids both the
GIL and the threaded backend's global engine lock (its workers cascade
against private replicas and exchange ``ΔEq`` deltas), so it should win
on this workload even on one core, and scale with real cores where the
threaded backend cannot.

The numbers feed ``BENCH_parallel.json`` so successive PRs can track the
runtime trajectory; both backends must report the same verdict or the run
fails.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--output FILE]

``--smoke`` runs a seconds-scale configuration for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

from repro.gfd.generator import straggler_workload
from repro.parallel import RuntimeConfig, par_sat

#: The multi-core workload: dense anchors explode seeker matching (heavy
#: per-unit CPU) and every match funnels through enforcement (heavy lock
#: pressure for the threaded backend).
FULL_WORKLOAD = dict(
    num_anchor=2, num_seekers=5, num_background=40,
    anchor_size=13, seeker_length=7, seed=11,
)
SMOKE_WORKLOAD = dict(
    num_anchor=2, num_seekers=3, num_background=20,
    anchor_size=10, seeker_length=5, seed=11,
)

BACKENDS = ("threaded", "process")


def bench_backend(sigma, backend: str, config: RuntimeConfig, repeats: int) -> Dict:
    walls: List[float] = []
    verdict = None
    outcome = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = par_sat(sigma, config, backend=backend)
        walls.append(time.perf_counter() - started)
        verdict = result.satisfiable
        outcome = result.outcome
    return {
        "verdict": verdict,
        "wall_seconds_min": round(min(walls), 4),
        "wall_seconds_all": [round(w, 4) for w in walls],
        "units_executed": outcome.units_executed,
        "splits": outcome.splits,
        "match_ticks": outcome.match_ticks,
        "enforce_ops": outcome.enforce_ops,
    }


def run_suite(smoke: bool = False, workers: int = 4, repeats: int = 2) -> Dict:
    params = SMOKE_WORKLOAD if smoke else FULL_WORKLOAD
    sigma = straggler_workload(**params)
    config = RuntimeConfig(workers=workers, ttl_seconds=2.0)
    results: Dict = {
        "mode": "smoke" if smoke else "full",
        "workers": workers,
        "repeats": repeats,
        "cpus": os.cpu_count(),
        "cpus_usable": len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else None,
        "workload": dict(params, kind="straggler", sigma_size=len(sigma)),
        "backends": {},
    }
    for backend in BACKENDS:
        results["backends"][backend] = bench_backend(sigma, backend, config, repeats)
    verdicts = {record["verdict"] for record in results["backends"].values()}
    if len(verdicts) != 1:
        raise SystemExit(f"verdict mismatch across backends: {results['backends']}")
    threaded = results["backends"]["threaded"]["wall_seconds_min"]
    process = results["backends"]["process"]["wall_seconds_min"]
    results["process_speedup_vs_threaded"] = round(threaded / process, 3) if process else None
    return results


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", help="write results JSON to this file")
    parser.add_argument(
        "--smoke", action="store_true", help="seconds-scale configuration (CI smoke)"
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args(argv)
    results = run_suite(smoke=args.smoke, workers=args.workers, repeats=args.repeats)
    payload = json.dumps(results, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload + "\n")
    print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
