"""Wall-clock benchmark: execution backends and the scheduling layer.

Two workloads exercise the parallel runtime from opposite ends:

* ``straggler`` — dense anchors explode seeker matching (heavy per-unit
  CPU, heavy enforcement): the backend comparison. The process backend
  avoids both the GIL and the threaded backend's global engine lock, so
  it should win even on one core and scale with real cores;
* ``delta_hub`` — hub-and-spoke topology where every spoke's match
  re-derives hub-level ``ΔEq`` facts: broadcast volume, not matching,
  dominates. This is the scheduler comparison: pivot-affinity routing +
  adaptive batching (the default) against the fixed-``batch_size``
  ablation (``RuntimeConfig.without_affinity()``), measured in wall
  seconds *and* in ``ParallelOutcome.broadcast_volume`` / ``sync_rounds``.

A ``simulated`` section records the virtual-clock numbers for both
workloads and both scheduler configs. Those are exactly reproducible
(no wall-clock noise), which makes them the regression signal
``tools/check_bench_regression.py`` gates CI on.

The numbers feed ``BENCH_parallel.json`` so successive PRs can track the
runtime trajectory; every run must report the same verdict across
backends and scheduler configs or the script exits nonzero.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--output FILE]

``--smoke`` runs a seconds-scale configuration for CI. ``--chaos`` runs
the fault-tolerance suite instead: the ``delta_hub`` workload under a
seeded :class:`~repro.parallel.faults.FaultPlan` (one worker killed
mid-run, one hung past the batch deadline, one unit poisoned), asserting
verdict equivalence with the clean run and reporting the recovery
overhead (``recovery_efficiency`` = clean wall / faulted wall, higher is
better) for the CI regression gate. ``--fragments`` runs the fragmented-
execution suite: per-worker snapshot bytes (cold-start kit + largest
fragment replica) and wall clock at ``F`` edge-cut fragments against
whole-graph pickling on ``delta_hub`` — the snapshot footprint should
scale roughly ``1/F`` while verdicts stay byte-identical. ``--results``
runs the provenance-capture suite: wall clock with the layered result
model's evidence/derivation capture on vs the
``RuntimeConfig.without_provenance()`` ablation (target < 10% overhead),
asserting the process backend's merged evidence refs equal the
sequential run's.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

from repro.gfd.generator import delta_hub_workload, straggler_workload
from repro.parallel import FaultEvent, FaultPlan, RuntimeConfig, par_sat

#: The multi-core workload: dense anchors explode seeker matching (heavy
#: per-unit CPU) and every match funnels through enforcement (heavy lock
#: pressure for the threaded backend).
STRAGGLER_FULL = dict(
    num_anchor=2, num_seekers=5, num_background=40,
    anchor_size=13, seeker_length=7, seed=11,
)
STRAGGLER_SMOKE = dict(
    num_anchor=2, num_seekers=3, num_background=20,
    anchor_size=10, seeker_length=5, seed=11,
)

#: The delta-heavy, hub-skewed workload: ΔEq broadcast dominates, work
#: units cluster in hub neighborhoods — the scheduler's home turf.
DELTA_HUB_FULL = dict(
    num_hubs=8, spokes_per_hub=24, num_writers=10, num_pairers=4,
    num_background=20, seed=7,
)
DELTA_HUB_SMOKE = dict(
    num_hubs=4, spokes_per_hub=10, num_writers=5, num_pairers=2,
    num_background=8, seed=7,
)

BACKENDS = ("threaded", "process")


def outcome_record(outcome) -> Dict:
    """The per-run counters worth tracking across PRs."""
    return {
        "units_executed": outcome.units_executed,
        "splits": outcome.splits,
        "match_ticks": outcome.match_ticks,
        "enforce_ops": outcome.enforce_ops,
        "broadcast_ops": outcome.broadcast_ops,
        "broadcast_volume": outcome.broadcast_volume,
        "sync_rounds": outcome.sync_rounds,
        "affinity_hits": outcome.affinity_hits,
        "affinity_misses": outcome.affinity_misses,
        "batch_sizes": outcome.batch_sizes,
        # Supervision counters (all 0/False on a clean run).
        "retries": outcome.retries,
        "respawns": outcome.respawns,
        "worker_deaths": outcome.worker_deaths,
        "quarantined": len(outcome.quarantined),
        "degraded": outcome.degraded,
        # Fragmented-execution shipping counters (all 0 when off).
        "fragments_shipped": outcome.fragments_shipped,
        "balls_shipped": outcome.balls_shipped,
        "coordinator_units": outcome.coordinator_units,
    }


def bench_config(sigma, backend: str, config: RuntimeConfig, repeats: int) -> Dict:
    walls: List[float] = []
    verdict = None
    outcome = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = par_sat(sigma, config, backend=backend)
        walls.append(time.perf_counter() - started)
        verdict = result.satisfiable
        outcome = result.outcome
    record = {
        "verdict": verdict,
        "wall_seconds_min": round(min(walls), 4),
        "wall_seconds_all": [round(w, 4) for w in walls],
    }
    record.update(outcome_record(outcome))
    return record


def bench_simulated(sigma, config: RuntimeConfig) -> Dict:
    """Deterministic virtual-clock record (the CI regression signal)."""
    result = par_sat(sigma, config, backend="simulated")
    record = {
        "verdict": result.satisfiable,
        "virtual_seconds": round(result.virtual_seconds, 6),
    }
    record.update(outcome_record(result.outcome))
    return record


def run_suite(smoke: bool = False, workers: int = 4, repeats: int = 2) -> Dict:
    straggler = straggler_workload(**(STRAGGLER_SMOKE if smoke else STRAGGLER_FULL))
    delta_hub = delta_hub_workload(**(DELTA_HUB_SMOKE if smoke else DELTA_HUB_FULL))
    config = RuntimeConfig(workers=workers, ttl_seconds=2.0)
    ablation = config.without_affinity()
    results: Dict = {
        "mode": "smoke" if smoke else "full",
        "workers": workers,
        "repeats": repeats,
        "cpus": os.cpu_count(),
        "cpus_usable": len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else None,
        "workloads": {
            "straggler": dict(
                STRAGGLER_SMOKE if smoke else STRAGGLER_FULL,
                kind="straggler", sigma_size=len(straggler),
            ),
            "delta_hub": dict(
                DELTA_HUB_SMOKE if smoke else DELTA_HUB_FULL,
                kind="delta_hub", sigma_size=len(delta_hub),
            ),
        },
    }
    verdicts = set()

    # Backend comparison on the straggler workload (scheduler at defaults).
    backends: Dict = {}
    for backend in BACKENDS:
        backends[backend] = bench_config(straggler, backend, config, repeats)
        verdicts.add(("straggler", backends[backend]["verdict"]))
    results["backends"] = backends
    threaded = backends["threaded"]["wall_seconds_min"]
    process = backends["process"]["wall_seconds_min"]
    results["process_speedup_vs_threaded"] = (
        round(threaded / process, 3) if process else None
    )

    # Scheduler comparison on the delta-heavy hub workload (process
    # backend: affinity + adaptive batching vs the fixed-batch ablation).
    scheduler: Dict = {}
    for key, cfg in (("affinity", config), ("fixed", ablation)):
        scheduler[key] = bench_config(delta_hub, "process", cfg, repeats)
        verdicts.add(("delta_hub", scheduler[key]["verdict"]))
    results["scheduler"] = scheduler
    fixed_wall = scheduler["fixed"]["wall_seconds_min"]
    affinity_wall = scheduler["affinity"]["wall_seconds_min"]
    results["affinity_speedup_vs_fixed"] = (
        round(fixed_wall / affinity_wall, 3) if affinity_wall else None
    )
    affinity_volume = scheduler["affinity"]["broadcast_volume"]
    results["broadcast_volume_vs_fixed"] = (
        round(affinity_volume / scheduler["fixed"]["broadcast_volume"], 3)
        if scheduler["fixed"]["broadcast_volume"]
        else None
    )

    # Deterministic virtual-clock trajectories (per workload × scheduler
    # config) — exactly reproducible, gated by CI.
    simulated: Dict = {}
    for workload_name, sigma in (("straggler", straggler), ("delta_hub", delta_hub)):
        for key, cfg in (("affinity", config), ("fixed", ablation)):
            record = bench_simulated(sigma, cfg)
            simulated[f"{workload_name}_{key}"] = record
            verdicts.add((workload_name, record["verdict"]))
    results["simulated"] = simulated

    mismatches = sum(
        1
        for workload_name in ("straggler", "delta_hub")
        if len({verdict for name, verdict in verdicts if name == workload_name}) != 1
    )
    results["equivalence_mismatches"] = mismatches
    if mismatches:
        raise SystemExit(f"verdict mismatch across backends/configs: {sorted(verdicts)}")
    if not smoke:
        # The full artifact (BENCH_parallel.json) carries the chaos and
        # fragmentation sections too; the smoke/CI path runs each as its
        # own gate cell (--chaos / --fragments) so the gates stay
        # independent.
        results["chaos"] = run_chaos(smoke=False, workers=workers, repeats=repeats)
        results["fragmentation"] = run_fragments(
            smoke=False, workers=workers, repeats=repeats
        )
        results["results_model"] = run_results(
            smoke=False, workers=workers, repeats=repeats
        )
    return results


def chaos_plan() -> FaultPlan:
    """The seeded chaos script: kill worker 1 mid-run, hang worker 0 on
    its second batch, and poison the ``bg0`` unit everywhere."""
    return FaultPlan.make(
        [FaultEvent("crash", 1, 0), FaultEvent("hang", 0, 1)],
        poisoned=["bg0"],
    )


def run_chaos(smoke: bool = False, workers: int = 4, repeats: int = 2) -> Dict:
    """Chaos smoke: the delta_hub workload under a seeded FaultPlan.

    Runs the workload clean and faulted on the process backend (plus a
    deterministic faulted simulated run) and asserts all verdicts agree —
    supervision must cost time, never correctness. The poisoned unit is a
    background GFD of a satisfiable workload, so quarantining it cannot
    flip the verdict.
    """
    params = DELTA_HUB_SMOKE if smoke else DELTA_HUB_FULL
    sigma = delta_hub_workload(**params)
    plan = chaos_plan()
    clean_config = RuntimeConfig(workers=workers, ttl_seconds=2.0)
    chaos_config = RuntimeConfig(
        workers=workers,
        ttl_seconds=2.0,
        fault_plan=plan,
        # A short explicit deadline keeps the injected hang's recovery in
        # benchmark scale (the event itself sleeps for an hour).
        batch_timeout_seconds=0.5 if smoke else 2.0,
        respawn_backoff_seconds=0.01,
    )
    results: Dict = {
        "mode": "smoke" if smoke else "full",
        "workers": workers,
        "repeats": repeats,
        "workload": dict(params, kind="delta_hub", sigma_size=len(sigma)),
        "plan": {
            "events": [
                {"kind": e.kind, "worker_id": e.worker_id, "batch_index": e.batch_index}
                for e in plan.events
            ],
            "poisoned": sorted(plan.poisoned),
        },
    }
    results["clean"] = bench_config(sigma, "process", clean_config, repeats)
    results["process"] = bench_config(sigma, "process", chaos_config, repeats)
    results["simulated"] = bench_simulated(sigma, chaos_config)
    verdicts = {
        results["clean"]["verdict"],
        results["process"]["verdict"],
        results["simulated"]["verdict"],
    }
    results["verdicts_agree"] = len(verdicts) == 1
    clean_wall = results["clean"]["wall_seconds_min"]
    chaos_wall = results["process"]["wall_seconds_min"]
    results["recovery_overhead_seconds"] = round(chaos_wall - clean_wall, 4)
    results["recovery_efficiency"] = (
        round(clean_wall / chaos_wall, 4) if chaos_wall else None
    )
    if not results["verdicts_agree"]:
        raise SystemExit(f"chaos verdict mismatch: {sorted(verdicts)}")
    if results["process"]["quarantined"] != 1 or results["simulated"]["quarantined"] != 1:
        raise SystemExit(
            "chaos run did not quarantine exactly the poisoned unit: "
            f"process={results['process']['quarantined']} "
            f"simulated={results['simulated']['quarantined']}"
        )
    return results


def run_fragments(smoke: bool = False, workers: int = 4, repeats: int = 2) -> Dict:
    """Fragmented execution vs whole-graph pickling on ``delta_hub``.

    Measures the process backend's shipping footprint: the whole-graph
    worker snapshot (every worker gets the full canonical graph + caches)
    against the fragmented cold-start payload (a graph-free kit) plus the
    largest single fragment replica — the *peak* bytes any one worker
    receives under demand-driven placement. Wall clock and verdicts are
    recorded for both modes; verdicts must agree or the script exits
    nonzero. A deterministic simulated run at ``F = 4`` feeds the CI
    regression gate.
    """
    import pickle

    from repro.eq.eqrelation import EqRelation
    from repro.gfd.canonical import build_canonical_graph
    from repro.parallel.backends.process import (
        make_fragment_snapshot,
        make_worker_snapshot,
    )
    from repro.parallel.units import UnitContext, attach_fragmentation
    from repro.reasoning.enforce import EnforcementEngine

    params = DELTA_HUB_SMOKE if smoke else DELTA_HUB_FULL
    sigma = delta_hub_workload(**params)
    canonical = build_canonical_graph(sigma)
    config = RuntimeConfig(workers=workers, ttl_seconds=2.0)
    fragment_counts = (2, 4) if smoke else (2, 4, 8)

    results: Dict = {
        "mode": "smoke" if smoke else "full",
        "workers": workers,
        "repeats": repeats,
        "workload": dict(params, kind="delta_hub", sigma_size=len(sigma)),
        "graph_nodes": canonical.graph.num_nodes,
    }

    # Whole-graph ablation: what every worker replica costs today.
    context = UnitContext(canonical.graph, canonical.gfds)
    context.precompile_plans(sigma)
    engine = EnforcementEngine(EqRelation(), canonical.gfds)
    whole_bytes = len(
        make_worker_snapshot(context, engine, None, None, config.max_split_units)
    )
    whole = {"snapshot_bytes": whole_bytes}
    whole.update(bench_config(sigma, "process", config, repeats))
    results["whole"] = whole
    verdicts = {whole["verdict"]}

    fragments: Dict = {}
    for count in fragment_counts:
        # A fresh context per F: attach_fragmentation pins pivots/orders
        # and installs the routing table used for replica construction.
        fctx = UnitContext(canonical.graph, canonical.gfds)
        fctx.precompile_plans(sigma)
        router = attach_fragmentation(fctx, sigma, count)
        kit_bytes = len(
            make_fragment_snapshot(fctx, engine, None, None, config.max_split_units)
        )
        replica_bytes = [
            len(pickle.dumps(router.build(fid))) for fid in range(count)
        ]
        peak = kit_bytes + max(replica_bytes)
        record = {
            "kit_bytes": kit_bytes,
            "fragment_bytes_max": max(replica_bytes),
            "fragment_bytes_mean": round(sum(replica_bytes) / count, 1),
            "peak_worker_bytes": peak,
            # >1 means a fragmented worker's snapshot is smaller than the
            # whole-graph one; should grow roughly linearly in F.
            "snapshot_scaling": round(whole_bytes / peak, 3) if peak else None,
        }
        record.update(
            bench_config(sigma, "process", config.with_fragments(count), repeats)
        )
        fragments[str(count)] = record
        verdicts.add(record["verdict"])
    results["fragments"] = fragments

    # Deterministic virtual-clock cell for the CI gate.
    results["simulated_f4"] = bench_simulated(sigma, config.with_fragments(4))
    verdicts.add(results["simulated_f4"]["verdict"])

    results["verdicts_agree"] = len(verdicts) == 1
    if not results["verdicts_agree"]:
        raise SystemExit(f"fragmented verdict mismatch: {sorted(verdicts)}")
    return results


def run_results(smoke: bool = False, workers: int = 4, repeats: int = 2) -> Dict:
    """Provenance-capture overhead: what the layered result model costs.

    Runs ``delta_hub`` with evidence/derivation capture on (the default)
    and off (``RuntimeConfig.without_provenance()`` /
    ``seq_sat(capture_provenance=False)``), sequentially and on the
    process backend. Target: capture costs < 10% wall
    (``capture_overhead`` ≤ 1.10); the CI gate tracks the inverse
    ``capture_efficiency`` (off wall / on wall, higher is better) with
    the loose ratio tolerance so runner noise cannot flake it. The suite
    also asserts the layered-result invariant end to end: the process
    backend's merged evidence refs must equal the sequential run's
    (stable cross-worker ids) and all verdicts must agree, or the script
    exits nonzero.
    """
    from repro.reasoning.seqsat import seq_sat

    params = DELTA_HUB_SMOKE if smoke else DELTA_HUB_FULL
    sigma = delta_hub_workload(**params)
    config = RuntimeConfig(workers=workers, ttl_seconds=2.0)
    ablation = config.without_provenance()

    results: Dict = {
        "mode": "smoke" if smoke else "full",
        "workers": workers,
        "repeats": repeats,
        "workload": dict(params, kind="delta_hub", sigma_size=len(sigma)),
    }

    def bench_seq(capture: bool):
        walls: List[float] = []
        result = None
        for _ in range(repeats):
            started = time.perf_counter()
            result = seq_sat(sigma, capture_provenance=capture)
            walls.append(time.perf_counter() - started)
        record = {
            "verdict": result.satisfiable,
            "wall_seconds_min": round(min(walls), 4),
            "wall_seconds_all": [round(w, 4) for w in walls],
        }
        return result, record

    seq_on_result, seq_on = bench_seq(True)
    _, seq_off = bench_seq(False)
    seq_store = seq_on_result.results
    seq_on["evidence_records"] = len(seq_store.evidence)
    seq_on["derivation_ops"] = len(seq_store.derivation)
    results["sequential"] = {"on": seq_on, "off": seq_off}

    process_on = bench_config(sigma, "process", config, repeats)
    process_off = bench_config(sigma, "process", ablation, repeats)
    # Re-run once outside the timing loop to compare the merged store's
    # refs against the sequential run (bench_config discards the result).
    merged = par_sat(sigma, config, backend="process").results
    process_on["evidence_records"] = len(merged.evidence)
    results["process"] = {"on": process_on, "off": process_off}

    # Deterministic virtual-clock cell with capture on for the CI gate;
    # the evidence count is a reproducible work counter.
    sim_result = par_sat(sigma, config, backend="simulated")
    simulated = {
        "verdict": sim_result.satisfiable,
        "virtual_seconds": round(sim_result.virtual_seconds, 6),
        "evidence_records": len(sim_result.results.evidence),
    }
    simulated.update(outcome_record(sim_result.outcome))
    results["simulated"] = simulated

    def efficiency(off_wall: float, on_wall: float):
        return round(off_wall / on_wall, 4) if on_wall else None

    def overhead(on_wall: float, off_wall: float):
        return round(on_wall / off_wall, 4) if off_wall else None

    results["capture_overhead_seq"] = overhead(
        seq_on["wall_seconds_min"], seq_off["wall_seconds_min"]
    )
    results["capture_efficiency_seq"] = efficiency(
        seq_off["wall_seconds_min"], seq_on["wall_seconds_min"]
    )
    results["capture_overhead_process"] = overhead(
        process_on["wall_seconds_min"], process_off["wall_seconds_min"]
    )
    results["capture_efficiency_process"] = efficiency(
        process_off["wall_seconds_min"], process_on["wall_seconds_min"]
    )

    # Layered-result invariants: same verdict everywhere, and (the run
    # being satisfiable, hence run to completion) the same evidence refs
    # from the sequential engine and the coordinator's merged log.
    verdicts = {
        seq_on["verdict"], seq_off["verdict"],
        process_on["verdict"], process_off["verdict"], simulated["verdict"],
    }
    results["verdicts_agree"] = len(verdicts) == 1
    results["refs_agree"] = set(seq_store.evidence.refs()) == set(merged.evidence.refs())
    if not results["verdicts_agree"]:
        raise SystemExit(f"results verdict mismatch: {sorted(verdicts)}")
    if not results["refs_agree"]:
        only_seq = set(seq_store.evidence.refs()) - set(merged.evidence.refs())
        only_par = set(merged.evidence.refs()) - set(seq_store.evidence.refs())
        raise SystemExit(
            f"evidence refs diverge: {len(only_seq)} sequential-only, "
            f"{len(only_par)} process-only"
        )
    return results


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", help="write results JSON to this file")
    parser.add_argument(
        "--smoke", action="store_true", help="seconds-scale configuration (CI smoke)"
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the fault-injection suite instead of the perf suite",
    )
    parser.add_argument(
        "--fragments",
        action="store_true",
        help="run the fragmented-execution suite instead of the perf suite",
    )
    parser.add_argument(
        "--results",
        action="store_true",
        help="run the provenance-capture overhead suite instead of the perf suite",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args(argv)
    if args.chaos:
        results = run_chaos(smoke=args.smoke, workers=args.workers, repeats=args.repeats)
    elif args.fragments:
        results = run_fragments(
            smoke=args.smoke, workers=args.workers, repeats=args.repeats
        )
    elif args.results:
        results = run_results(
            smoke=args.smoke, workers=args.workers, repeats=args.repeats
        )
    else:
        results = run_suite(smoke=args.smoke, workers=args.workers, repeats=args.repeats)
    payload = json.dumps(results, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload + "\n")
    print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
