"""Benchmark: rule-set compilation (shared-prefix plan trie) vs per-rule.

Measures the PR 7 tentpole on the Fig. 6(e)/(f) sigma sweeps: `seq_sat`
and `seq_imp` with ``use_ruleset_plan=True`` (one trie walk matches all of
Σ) against the per-rule ablation (the pre-PR loop, kept as the correctness
oracle). Sweep points are *prefixes* of one rule set (see
``synthetic_sat_sweep``), so the growth-in-|Σ| comparison is honest.

Reported per sweep point:

* wall seconds for both modes (best of ``REPEATS`` runs) and their ratio;
* deterministic matcher tick counts for both modes and their ratio — the
  machine-independent version of the same signal;
* verdict and match-count mismatches (must be 0 — the differential check
  rides along with the timing).

Plus trie sharing stats at the largest point: compiled plan steps summed
over rules vs trie nodes actually allocated (the prefix-sharing factor).

Numbers land in ``BENCH_ruleset.json``; ``--smoke`` runs |Σ| ∈ {8, 64}
for the CI regression gate (``tools/check_bench_regression.py``).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_ruleset.py [--smoke] [--output FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.bench.harness import synthetic_imp_sweep, synthetic_sat_sweep
from repro.matching.plan import get_plan
from repro.matching.ruleset import RuleSetPlan
from repro.gfd.canonical import build_canonical_graph
from repro.reasoning.seqimp import seq_imp
from repro.reasoning.seqsat import seq_sat

FULL_SIZES = (50, 100, 200)
SMOKE_SIZES = (8, 64)

#: Wall timings take the best of this many runs — same-run ratios are
#: machine-portable, but a single sample can still catch a GC pause.
REPEATS = 2


def best_wall(fn, *args, **kwargs):
    """(result, best wall seconds) over ``REPEATS`` runs."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - started)
    return result, best


def run_sat_sweep(sizes) -> Dict[str, object]:
    sweep = synthetic_sat_sweep(tuple(sizes), k=6, l=5)
    out: Dict[str, object] = {"sizes": {}}
    verdict_mismatches = match_mismatches = 0
    largest = max(sizes)
    for size in sizes:
        sigma = sweep[size].sigma
        base, per_rule_s = best_wall(seq_sat, sigma, use_ruleset_plan=False)
        trie, ruleset_s = best_wall(seq_sat, sigma, use_ruleset_plan=True)
        if base.satisfiable != trie.satisfiable:
            verdict_mismatches += 1
        if base.stats.matches != trie.stats.matches:
            match_mismatches += 1
        point = {
            "per_rule_seconds": round(per_rule_s, 4),
            "ruleset_seconds": round(ruleset_s, 4),
            "speedup": round(per_rule_s / ruleset_s, 2),
            "per_rule_ticks": base.stats.match_ticks,
            "ruleset_ticks": trie.stats.match_ticks,
            "matches": base.stats.matches,
        }
        out["sizes"][str(size)] = point
        if size == largest:
            out["speedup_at_max"] = point["speedup"]
            out["per_rule_seconds_at_max"] = point["per_rule_seconds"]
            out["ruleset_seconds_at_max"] = point["ruleset_seconds"]
    out["verdict_mismatches"] = verdict_mismatches
    out["match_mismatches"] = match_mismatches
    return out


def run_imp_sweep(sizes) -> Dict[str, object]:
    sweep = synthetic_imp_sweep(tuple(sizes), k=6, l=5)
    out: Dict[str, object] = {"sizes": {}}
    verdict_mismatches = 0
    largest = max(sizes)
    for size in sizes:
        workload = sweep[size]
        base, per_rule_s = best_wall(
            seq_imp, workload.sigma, workload.phi, use_ruleset_plan=False
        )
        trie, ruleset_s = best_wall(
            seq_imp, workload.sigma, workload.phi, use_ruleset_plan=True
        )
        if base.implied != trie.implied:
            verdict_mismatches += 1
        point = {
            "per_rule_seconds": round(per_rule_s, 4),
            "ruleset_seconds": round(ruleset_s, 4),
            "speedup": round(per_rule_s / ruleset_s, 2),
            "per_rule_ticks": base.stats.match_ticks,
            "ruleset_ticks": trie.stats.match_ticks,
        }
        out["sizes"][str(size)] = point
        if size == largest:
            out["speedup_at_max"] = point["speedup"]
            out["per_rule_seconds_at_max"] = point["per_rule_seconds"]
            out["ruleset_seconds_at_max"] = point["ruleset_seconds"]
    out["verdict_mismatches"] = verdict_mismatches
    return out


def trie_sharing_stats(size: int) -> Dict[str, object]:
    """How much of Σ's compiled step mass the trie deduplicates."""
    sigma = [
        gfd
        for gfd in synthetic_sat_sweep((size,), k=6, l=5)[size].sigma
        if not gfd.is_trivial()
    ]
    graph = build_canonical_graph(sigma).graph
    plan = RuleSetPlan(graph, sigma)
    plan_steps = sum(
        len(get_plan(gfd.pattern, graph).layout(()).steps) for gfd in sigma
    )
    trie_nodes = sum(1 for _ in plan.nodes())
    return {
        "rules": len(sigma),
        "plan_steps": plan_steps,
        "trie_nodes": trie_nodes,
        "sharing_factor": round(plan_steps / max(1, trie_nodes), 2),
    }


def run_suite(smoke: bool = False) -> Dict[str, object]:
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    return {
        "sizes": list(sizes),
        "sat": run_sat_sweep(sizes),
        "imp": run_imp_sweep(sizes),
        "trie": trie_sharing_stats(max(sizes)),
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", help="write results JSON to this file")
    parser.add_argument(
        "--smoke", action="store_true", help="run the reduced |Σ| sweep (CI smoke)"
    )
    args = parser.parse_args(argv)
    results = run_suite(smoke=args.smoke)
    payload = json.dumps(results, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload + "\n")
    print(payload)
    mismatches = (
        results["sat"]["verdict_mismatches"]
        + results["sat"]["match_mismatches"]
        + results["imp"]["verdict_mismatches"]
    )
    if mismatches:
        print(f"EQUIVALENCE FAILURE: {mismatches} mismatches", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
