"""Microbenchmark for the homomorphism matcher hot path.

Measures ticks/sec, matches/sec and ticks-per-match on synthetic graphs of
increasing label diversity, plus a pivoted fan-out scenario that mirrors the
parallel algorithms (one pattern, thousands of ``MatcherRun`` constructions).
The numbers feed ``BENCH_matcher.json`` so successive PRs can track the perf
trajectory of the matcher in isolation from the reasoning layers.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_matcher_micro.py [--output FILE]

The synthetic workload is fully deterministic (seeded RNG, integer node
ids), so ``matches`` and ``ticks`` are comparable across machines; only the
``*_per_sec`` rates are hardware-dependent.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, List

from repro.gfd.pattern import Pattern, make_pattern
from repro.graph.graph import PropertyGraph
from repro.matching.homomorphism import MatcherRun
from repro.matching.plan import get_plan
from repro.matching.simulation import dual_simulation


def label_diverse_graph(
    num_nodes: int, num_edges: int, num_labels: int, seed: int
) -> PropertyGraph:
    """A random directed graph with *num_labels* node labels.

    Node labels are assigned uniformly, so the expected fraction of an
    anchor's neighbors carrying any one node label is ``1 / num_labels`` —
    exactly the regime where label-grouped candidate filtering pays off.
    Edge labels stay few (two) so per-anchor adjacency lists remain dense
    and the node-label effect is isolated.
    """
    rng = random.Random(seed)
    graph = PropertyGraph()
    nodes = [graph.add_node(f"L{rng.randrange(num_labels)}") for _ in range(num_nodes)]
    added = 0
    while added < num_edges:
        src = rng.choice(nodes)
        dst = rng.choice(nodes)
        label = f"e{rng.randrange(2)}"
        if not graph.has_edge(src, dst, label):
            graph.add_edge(src, dst, label)
            added += 1
    return graph


def path_pattern(num_labels: int) -> Pattern:
    """A labeled 3-variable path — the bread-and-butter GFD pattern shape."""
    return make_pattern(
        {"x": "L0", "y": "L1" if num_labels > 1 else "L0", "z": "L0"},
        [("x", "y", "e0"), ("y", "z", "e0")],
    )


def _drain(run: MatcherRun) -> int:
    count = 0
    for _ in run.matches():
        count += 1
    return count


def bench_full_enumeration(graph: PropertyGraph, pattern: Pattern) -> Dict[str, float]:
    """One unpivoted run to exhaustion."""
    started = time.perf_counter()
    run = MatcherRun(pattern, graph)
    matches = _drain(run)
    seconds = time.perf_counter() - started
    return _record(run.ticks, matches, seconds)


def bench_pivot_fanout(graph: PropertyGraph, pattern: Pattern) -> Dict[str, float]:
    """One ``MatcherRun`` per pivot node — the parallel work-unit shape.

    This is where per-construction costs (variable ordering, check-edge
    analysis) show up: the same pattern is compiled over and over in the
    seed matcher, once per pivot.
    """
    pivot_var = pattern.variables[0]
    pivots = sorted(graph.nodes_with_label(pattern.label_of(pivot_var)))
    started = time.perf_counter()
    ticks = 0
    matches = 0
    for pivot in pivots:
        run = MatcherRun(pattern, graph, preassigned={pivot_var: pivot})
        matches += _drain(run)
        ticks += run.ticks
    seconds = time.perf_counter() - started
    result = _record(ticks, matches, seconds)
    result["pivots"] = len(pivots)
    return result


def _record(ticks: int, matches: int, seconds: float) -> Dict[str, float]:
    return {
        "ticks": ticks,
        "matches": matches,
        "seconds": round(seconds, 4),
        "ticks_per_match": round(ticks / matches, 2) if matches else float(ticks),
        "ticks_per_sec": round(ticks / seconds) if seconds > 0 else 0,
        "matches_per_sec": round(matches / seconds) if seconds > 0 else 0,
    }


#: (name, num_nodes, num_edges, num_labels) — label diversity rises left to
#: right while size stays fixed, isolating the label-filtering effect.
CONFIGS = [
    ("uniform-2", 1500, 60000, 2),
    ("diverse-8", 1500, 60000, 8),
    ("diverse-32", 1500, 60000, 32),
]


# ----------------------------------------------------------------------
# Dense-id bitset workload (candidate-pipeline representation ablation)
# ----------------------------------------------------------------------
def hub_graph(
    num_hubs: int,
    num_leaves: int,
    hub_degree: int,
    seed: int,
    rare_fraction: float = 0.15,
) -> PropertyGraph:
    """A hub-heavy graph with dense integer node ids and a rare label.

    Scale-free-ish shape (the DBpedia/YAGO regime the paper evaluates on):
    a few ``hub`` nodes with thousands of out-edges, mostly-``item``
    leaves, and a sparse ``rare`` sublabel chained by ``rel`` edges. The
    interesting candidate pools are *large* (hub adjacency groups, the
    item bucket) while the filters (rare bucket, ``dQ``-ball, simulation
    sets) prune hard — exactly where packed candidate vectors replace
    per-element membership scans with word-level ANDs.
    """
    rng = random.Random(seed)
    graph = PropertyGraph()
    hubs = [graph.add_node("hub") for _ in range(num_hubs)]
    leaves = [
        graph.add_node("rare" if rng.random() < rare_fraction else "item")
        for _ in range(num_leaves)
    ]
    for hub in hubs:
        for leaf in rng.sample(leaves, k=hub_degree):
            graph.add_edge(hub, leaf, "links")
    rares = [leaf for leaf in leaves if graph.label(leaf) == "rare"]
    for rare in rares:
        for _ in range(3):
            graph.add_edge(rare, rng.choice(rares), "rel")
    return graph


def bench_bitset_candidates(smoke: bool = False) -> Dict[str, object]:
    """The ``use_bitsets`` ablation on the dense-id hub workload.

    Runs the same pivot fan-out — per-hub runs restricted to a tight
    allowed ball with dual-simulation candidate sets, the shape of a
    work-unit batch under heavy pruning — once per candidate-set
    representation, verifies the match streams are byte-identical, and
    reports per-path wall time plus the bitset speedup.
    """
    if smoke:
        num_hubs, num_leaves, hub_degree, ball = 12, 1200, 300, 150
    else:
        num_hubs, num_leaves, hub_degree, ball = 60, 6000, 1500, 300
    graph = hub_graph(num_hubs, num_leaves, hub_degree, seed=23)
    pattern = make_pattern(
        {"x": "hub", "y": "rare", "z": "rare"},
        [("x", "y", "links"), ("y", "z", "rel")],
    )
    index = graph.index()
    plan = get_plan(pattern, graph)
    rng = random.Random(29)
    hubs = list(index.nodes_with_label("hub"))
    # A tight dQ-ball: a small sample of all leaves (so the rare bucket is
    # pruned hard too) plus the pivot hubs — the heavy-pruning regime the
    # simulation pre-filter targets.
    leaves = list(index.nodes_with_label("item")) + list(index.nodes_with_label("rare"))
    ball_members = set(rng.sample(leaves, k=ball))
    ball_members.update(hubs)

    reps = 2 if smoke else 5
    results: Dict[str, object] = {}
    streams = {}
    for name, use_bitsets in (("set", False), ("bitset", True)):
        sim_started = time.perf_counter()
        candidates = dual_simulation(pattern, graph, use_bitsets=use_bitsets)
        sim_seconds = time.perf_counter() - sim_started
        allowed = index.bitset(ball_members) if use_bitsets else ball_members
        started = time.perf_counter()
        stream = []
        ticks = 0
        for rep in range(reps):
            for hub in hubs:
                run = MatcherRun(
                    pattern,
                    graph,
                    preassigned={"x": hub},
                    allowed_nodes=allowed,
                    candidate_sets=candidates,
                    plan=plan,
                )
                for match in run.matches():
                    if rep == 0:
                        stream.append(tuple(sorted(match.items())))
                ticks += run.ticks
        seconds = (time.perf_counter() - started) / reps
        streams[name] = stream
        results[name] = {
            "matches": len(stream),
            "ticks": ticks // reps,
            "seconds": round(seconds, 4),
            "simulation_seconds": round(sim_seconds, 4),
        }
    mismatches = 0 if streams["set"] == streams["bitset"] else 1
    set_s = results["set"]["seconds"] or 1e-9
    bit_s = results["bitset"]["seconds"] or 1e-9
    results["speedup"] = round(set_s / bit_s, 2)
    results["ablation_mismatches"] = mismatches
    return results


def run_suite(smoke: bool = False) -> Dict[str, Dict[str, Dict[str, float]]]:
    configs = CONFIGS[:1] if smoke else CONFIGS
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, num_nodes, num_edges, num_labels in configs:
        graph = label_diverse_graph(num_nodes, num_edges, num_labels, seed=97)
        pattern = path_pattern(num_labels)
        # Reported separately so per-run numbers reflect the steady state:
        # every real workload builds the index once and fans out over it.
        build_seconds = 0.0
        if hasattr(graph, "index"):
            started = time.perf_counter()
            graph.index()
            build_seconds = time.perf_counter() - started
        results[name] = {
            "index_build": {"seconds": round(build_seconds, 4)},
            "full": bench_full_enumeration(graph, pattern),
            "fanout": bench_pivot_fanout(graph, pattern),
        }
    results["bitset-dense"] = bench_bitset_candidates(smoke=smoke)
    return results


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", help="write results JSON to this file")
    parser.add_argument(
        "--smoke", action="store_true", help="run only the smallest config (CI smoke)"
    )
    parser.add_argument(
        "--check-ablation",
        action="store_true",
        help="run only the bitset workload and fail on any use_bitsets "
        "on/off match-stream mismatch",
    )
    args = parser.parse_args(argv)
    if args.check_ablation:
        results = {"bitset-dense": bench_bitset_candidates(smoke=args.smoke)}
    else:
        results = run_suite(smoke=args.smoke)
    payload = json.dumps(results, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload + "\n")
    print(payload)
    if results["bitset-dense"]["ablation_mismatches"]:
        print("ABLATION MISMATCH: bitset and set candidate paths diverged",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
