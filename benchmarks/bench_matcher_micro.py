"""Microbenchmark for the homomorphism matcher hot path.

Measures ticks/sec, matches/sec and ticks-per-match on synthetic graphs of
increasing label diversity, plus a pivoted fan-out scenario that mirrors the
parallel algorithms (one pattern, thousands of ``MatcherRun`` constructions).
The numbers feed ``BENCH_matcher.json`` so successive PRs can track the perf
trajectory of the matcher in isolation from the reasoning layers.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_matcher_micro.py [--output FILE]

The synthetic workload is fully deterministic (seeded RNG, integer node
ids), so ``matches`` and ``ticks`` are comparable across machines; only the
``*_per_sec`` rates are hardware-dependent.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, List

from repro.gfd.pattern import Pattern, make_pattern
from repro.graph.graph import PropertyGraph
from repro.matching.homomorphism import MatcherRun


def label_diverse_graph(
    num_nodes: int, num_edges: int, num_labels: int, seed: int
) -> PropertyGraph:
    """A random directed graph with *num_labels* node labels.

    Node labels are assigned uniformly, so the expected fraction of an
    anchor's neighbors carrying any one node label is ``1 / num_labels`` —
    exactly the regime where label-grouped candidate filtering pays off.
    Edge labels stay few (two) so per-anchor adjacency lists remain dense
    and the node-label effect is isolated.
    """
    rng = random.Random(seed)
    graph = PropertyGraph()
    nodes = [graph.add_node(f"L{rng.randrange(num_labels)}") for _ in range(num_nodes)]
    added = 0
    while added < num_edges:
        src = rng.choice(nodes)
        dst = rng.choice(nodes)
        label = f"e{rng.randrange(2)}"
        if not graph.has_edge(src, dst, label):
            graph.add_edge(src, dst, label)
            added += 1
    return graph


def path_pattern(num_labels: int) -> Pattern:
    """A labeled 3-variable path — the bread-and-butter GFD pattern shape."""
    return make_pattern(
        {"x": "L0", "y": "L1" if num_labels > 1 else "L0", "z": "L0"},
        [("x", "y", "e0"), ("y", "z", "e0")],
    )


def _drain(run: MatcherRun) -> int:
    count = 0
    for _ in run.matches():
        count += 1
    return count


def bench_full_enumeration(graph: PropertyGraph, pattern: Pattern) -> Dict[str, float]:
    """One unpivoted run to exhaustion."""
    started = time.perf_counter()
    run = MatcherRun(pattern, graph)
    matches = _drain(run)
    seconds = time.perf_counter() - started
    return _record(run.ticks, matches, seconds)


def bench_pivot_fanout(graph: PropertyGraph, pattern: Pattern) -> Dict[str, float]:
    """One ``MatcherRun`` per pivot node — the parallel work-unit shape.

    This is where per-construction costs (variable ordering, check-edge
    analysis) show up: the same pattern is compiled over and over in the
    seed matcher, once per pivot.
    """
    pivot_var = pattern.variables[0]
    pivots = sorted(graph.nodes_with_label(pattern.label_of(pivot_var)))
    started = time.perf_counter()
    ticks = 0
    matches = 0
    for pivot in pivots:
        run = MatcherRun(pattern, graph, preassigned={pivot_var: pivot})
        matches += _drain(run)
        ticks += run.ticks
    seconds = time.perf_counter() - started
    result = _record(ticks, matches, seconds)
    result["pivots"] = len(pivots)
    return result


def _record(ticks: int, matches: int, seconds: float) -> Dict[str, float]:
    return {
        "ticks": ticks,
        "matches": matches,
        "seconds": round(seconds, 4),
        "ticks_per_match": round(ticks / matches, 2) if matches else float(ticks),
        "ticks_per_sec": round(ticks / seconds) if seconds > 0 else 0,
        "matches_per_sec": round(matches / seconds) if seconds > 0 else 0,
    }


#: (name, num_nodes, num_edges, num_labels) — label diversity rises left to
#: right while size stays fixed, isolating the label-filtering effect.
CONFIGS = [
    ("uniform-2", 1500, 60000, 2),
    ("diverse-8", 1500, 60000, 8),
    ("diverse-32", 1500, 60000, 32),
]


def run_suite(smoke: bool = False) -> Dict[str, Dict[str, Dict[str, float]]]:
    configs = CONFIGS[:1] if smoke else CONFIGS
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, num_nodes, num_edges, num_labels in configs:
        graph = label_diverse_graph(num_nodes, num_edges, num_labels, seed=97)
        pattern = path_pattern(num_labels)
        # Reported separately so per-run numbers reflect the steady state:
        # every real workload builds the index once and fans out over it.
        build_seconds = 0.0
        if hasattr(graph, "index"):
            started = time.perf_counter()
            graph.index()
            build_seconds = time.perf_counter() - started
        results[name] = {
            "index_build": {"seconds": round(build_seconds, 4)},
            "full": bench_full_enumeration(graph, pattern),
            "fanout": bench_pivot_fanout(graph, pattern),
        }
    return results


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", help="write results JSON to this file")
    parser.add_argument(
        "--smoke", action="store_true", help="run only the smallest config (CI smoke)"
    )
    args = parser.parse_args(argv)
    results = run_suite(smoke=args.smoke)
    payload = json.dumps(results, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload + "\n")
    print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
