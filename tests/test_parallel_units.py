"""Tests for work-unit execution (HomMatch + CheckAttr pipeline)."""

from repro.eq.eqrelation import EqRelation
from repro.gfd import build_canonical_graph, parse_gfds
from repro.parallel.units import UnitContext, execute_unit
from repro.reasoning.enforce import EnforcementEngine, consequent_entailed
from repro.reasoning.workunits import WorkUnit, generate_work_units


def build(sigma_text):
    sigma = parse_gfds(sigma_text)
    canonical = build_canonical_graph(sigma)
    context = UnitContext(canonical.graph, canonical.gfds)
    engine = EnforcementEngine(EqRelation(), canonical.gfds)
    return sigma, canonical, context, engine


class TestUnitContext:
    def test_neighborhood_cached(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        context = UnitContext(canonical.graph, canonical.gfds)
        pivot = canonical.node_for("phi7", "x")
        first = context.allowed_nodes(pivot, 1)
        assert context.allowed_nodes(pivot, 1) is first
        assert pivot in first

    def test_radius_none_unrestricted(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        context = UnitContext(canonical.graph, canonical.gfds)
        assert context.allowed_nodes(canonical.node_for("phi7", "x"), None) is None

    def test_hop_map_shared_across_radii(self, example4_sigma):
        """One BFS per pivot serves every radius up to the largest seen."""
        from repro.graph.neighborhood import neighborhood

        canonical = build_canonical_graph(example4_sigma)
        context = UnitContext(canonical.graph, canonical.gfds)
        pivot = canonical.node_for("phi7", "x")
        wide = context.allowed_nodes(pivot, 2)
        narrow = context.allowed_nodes(pivot, 1)
        # One hop map at the larger radius backs both views...
        assert set(context._hop_maps) == {pivot}
        assert context._hop_maps[pivot][0] == 2
        # ...and both views match a from-scratch BFS at their radius.
        assert wide == neighborhood(canonical.graph, pivot, 2)
        assert narrow == neighborhood(canonical.graph, pivot, 1)
        assert narrow <= wide

    def test_hop_map_extends_when_radius_grows(self, example4_sigma):
        from repro.graph.neighborhood import neighborhood

        canonical = build_canonical_graph(example4_sigma)
        context = UnitContext(canonical.graph, canonical.gfds)
        pivot = canonical.node_for("phi7", "x")
        context.allowed_nodes(pivot, 1)
        grown = context.allowed_nodes(pivot, 2)
        assert context._hop_maps[pivot][0] == 2
        assert grown == neighborhood(canonical.graph, pivot, 2)

    def test_precompute_neighborhoods_warms_hot_pivots(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        context = UnitContext(canonical.graph, canonical.gfds)
        sigma = list(example4_sigma)
        units = generate_work_units(sigma, canonical.graph)
        # Every (GFD, pivot-node) pair shares one pivot per GFD; with three
        # structurally identical GFDs, each candidate hosts several units.
        warmed = context.precompute_neighborhoods(units, min_units=2)
        assert warmed > 0
        hot = [u.pivot_node() for u in units]
        assert any(pivot in context._hop_maps for pivot in hot)
        # A cold call on a warmed pivot only filters the existing map.
        unit = units[0]
        allowed = context.allowed_nodes(unit.pivot_node(), unit.radius)
        assert unit.pivot_node() in allowed

    def test_simulation_disabled_above_node_limit(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        context = UnitContext(canonical.graph, canonical.gfds)
        assert context.use_simulation_pruning  # tiny graph
        big_limit = UnitContext.SIMULATION_NODE_LIMIT
        try:
            UnitContext.SIMULATION_NODE_LIMIT = 0
            context2 = UnitContext(canonical.graph, canonical.gfds)
            assert not context2.use_simulation_pruning
        finally:
            UnitContext.SIMULATION_NODE_LIMIT = big_limit


class TestExecuteUnit:
    def test_unit_enforces_on_own_copy(self):
        sigma, canonical, context, engine = build(
            "gfd g { x: a; y: b; x -[e]-> y; then x.A = 1; }"
        )
        units = generate_work_units(sigma, canonical.graph)
        result = execute_unit(units[0], context, engine)
        assert result.matches == 1
        assert result.completed
        assert engine.eq.constant_of((canonical.node_for("g", "x"), "A")) == 1
        assert result.delta_ops > 0

    def test_conflict_stops_unit(self):
        sigma, canonical, context, engine = build(
            """
            gfd g1 { x: a; then x.A = 1; }
            gfd g2 { x: a; then x.A = 2; }
            """
        )
        units = generate_work_units(sigma, canonical.graph)
        conflicted = False
        for unit in units:
            result = execute_unit(unit, context, engine)
            if result.conflict:
                conflicted = True
                assert not result.completed
                break
        assert conflicted

    def test_goal_check_short_circuits(self):
        sigma, canonical, context, engine = build(
            "gfd g { x: a; then x.A = 1; }"
        )
        units = generate_work_units(sigma, canonical.graph)
        result = execute_unit(
            units[0], context, engine, goal_check=lambda eq: True
        )
        assert result.goal_reached
        assert not result.completed

    def test_trivial_gfd_unit_noop(self):
        sigma, canonical, context, engine = build(
            "gfd g { x: a; when x.A = 1; }"
        )
        unit = WorkUnit.make("g", {"x": canonical.node_for("g", "x")}, radius=0)
        result = execute_unit(unit, context, engine)
        assert result.matches == 0 and result.completed

    def test_conflicted_engine_short_circuits(self):
        sigma, canonical, context, engine = build(
            "gfd g { x: a; then x.A = 1; }"
        )
        engine.eq.assign_constant(("zz", "A"), 1)
        engine.eq.assign_constant(("zz", "A"), 2)
        units = generate_work_units(sigma, canonical.graph)
        result = execute_unit(units[0], context, engine)
        assert result.conflict and result.matches == 0

    def test_splitting_produces_subunits_and_same_eq(self):
        """Splitting + executing the sub-units reaches the same Eq state."""
        from repro.gfd.generator import straggler_workload

        sigma = straggler_workload(
            num_anchor=1, num_seekers=1, num_background=0, anchor_size=8,
            seeker_length=4, seed=3,
        )
        canonical = build_canonical_graph(sigma)
        units = generate_work_units(sigma, canonical.graph)

        def run(ttl_ticks):
            context = UnitContext(canonical.graph, canonical.gfds)
            engine = EnforcementEngine(EqRelation(), canonical.gfds)
            queue = list(units)
            splits = 0
            matches = 0
            while queue:
                unit = queue.pop(0)
                result = execute_unit(unit, context, engine, ttl_ticks=ttl_ticks)
                splits += len(result.splits)
                matches += result.matches
                queue.extend(result.splits)
            return engine.eq, splits, matches

        eq_nosplit, splits0, matches0 = run(None)
        eq_split, splits1, matches1 = run(50)
        assert splits0 == 0
        assert splits1 > 0
        assert matches0 == matches1
        assert eq_nosplit.num_terms() == eq_split.num_terms()
        assert eq_nosplit.num_classes() == eq_split.num_classes()

    def test_unit_result_counts(self):
        sigma, canonical, context, engine = build(
            "gfd g { x: a; y: b; x -[e]-> y; then x.A = 1; }"
        )
        units = generate_work_units(sigma, canonical.graph)
        result = execute_unit(units[0], context, engine)
        assert result.match_ticks > 0
        assert result.enforce_ops >= 1
