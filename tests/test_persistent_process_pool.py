"""Persistent process-backend pools: delta refresh instead of snapshots.

Drives :class:`ProcessBackend` across several ``run()`` calls on one
:class:`UnitContext` whose canonical graph grows between runs (the
IncrementalSat workload shape). With ``persistent_workers`` the pool must
survive, receive the topology ops as a delta, and return the same verdicts
as cold one-shot runs.
"""

import pytest

from repro.eq.eqrelation import EqRelation
from repro.gfd.canonical import build_canonical_graph, canonical_node_id
from repro.parallel import ProcessBackend, RuntimeConfig, UnitContext
from repro.reasoning.enforce import EnforcementEngine
from repro.reasoning.workunits import generate_work_units
from repro.reasoning.seqsat import seq_sat


def extend_canonical(graph, gfd):
    """Append *gfd*'s pattern copy to *graph*, canonical-graph style."""
    mapping = {}
    for var in gfd.pattern.variables:
        node_id = canonical_node_id(gfd.name, var)
        graph.add_node(gfd.pattern.label_of(var), node_id=node_id)
        mapping[var] = node_id
    for edge in gfd.pattern.edges:
        graph.add_edge(mapping[edge.src], mapping[edge.dst], edge.label)


def run_incrementally(sigma, config):
    """One backend, one context; add one GFD per run. Returns the list of
    per-prefix verdicts and the backend (caller closes it)."""
    backend = ProcessBackend(config)
    canonical = build_canonical_graph(sigma[:1])
    context = UnitContext(canonical.graph, dict(canonical.gfds))
    verdicts = []
    added = [sigma[0]]
    try:
        while True:
            engine = EnforcementEngine(EqRelation(), dict(context.gfds))
            units = generate_work_units(added, context.graph)
            outcome = backend.run(units, context, engine)
            verdicts.append(outcome.conflict is None)
            if len(added) == len(sigma):
                break
            nxt = sigma[len(added)]
            extend_canonical(context.graph, nxt)
            context.gfds[nxt.name] = nxt
            added.append(nxt)
    finally:
        backend.close()
    return verdicts


class TestPersistentPool:
    def test_pool_survives_and_ships_deltas(self, example8_sigma):
        config = RuntimeConfig(workers=2, persistent_workers=True)
        backend = ProcessBackend(config)
        canonical = build_canonical_graph(example8_sigma[:1])
        context = UnitContext(canonical.graph, dict(canonical.gfds))
        try:
            engine = EnforcementEngine(EqRelation(), dict(context.gfds))
            units = generate_work_units(example8_sigma[:1], context.graph)
            backend.run(units, context, engine)
            pool = backend._pool
            assert pool is not None
            pids = [proc.pid for proc in pool["procs"]]
            version_before = pool["graph_version"]

            nxt = example8_sigma[1]
            extend_canonical(context.graph, nxt)
            context.gfds[nxt.name] = nxt
            engine = EnforcementEngine(EqRelation(), dict(context.gfds))
            units = generate_work_units(example8_sigma[:2], context.graph)
            outcome = backend.run(units, context, engine)

            assert outcome.conflict is None
            pool = backend._pool
            assert pool is not None
            # Same worker processes, refreshed — not respawned.
            assert [proc.pid for proc in pool["procs"]] == pids
            assert pool["graph_version"] > version_before
        finally:
            backend.close()
        assert backend._pool is None

    def test_incremental_verdicts_match_seq_sat(self, example4_sigma):
        config = RuntimeConfig(workers=2, persistent_workers=True)
        verdicts = run_incrementally(example4_sigma, config)
        expected = [
            seq_sat(example4_sigma[: i + 1]).satisfiable
            for i in range(len(example4_sigma))
        ]
        assert verdicts == expected  # conflict surfaces at the same prefix

    def test_satisfiable_growth_matches_seq_sat(self, example8_sigma):
        config = RuntimeConfig(workers=2, persistent_workers=True)
        verdicts = run_incrementally(example8_sigma, config)
        assert all(verdicts)

    def test_context_switch_falls_back_to_cold_start(self, example8_sigma):
        config = RuntimeConfig(workers=2, persistent_workers=True)
        backend = ProcessBackend(config)
        try:
            for _ in range(2):  # fresh context per run: no delta reuse
                canonical = build_canonical_graph(example8_sigma)
                context = UnitContext(canonical.graph, dict(canonical.gfds))
                engine = EnforcementEngine(EqRelation(), dict(context.gfds))
                units = generate_work_units(example8_sigma, context.graph)
                outcome = backend.run(units, context, engine)
                assert outcome.conflict is None
        finally:
            backend.close()

    def test_dead_pool_falls_back_to_cold_start(self, example8_sigma):
        """Killing every standing worker must not wedge the backend: the
        failed refresh degrades to a transparent cold restart."""
        config = RuntimeConfig(workers=2, persistent_workers=True)
        backend = ProcessBackend(config)
        canonical = build_canonical_graph(example8_sigma)
        context = UnitContext(canonical.graph, dict(canonical.gfds))
        try:
            engine = EnforcementEngine(EqRelation(), dict(context.gfds))
            units = generate_work_units(example8_sigma, context.graph)
            backend.run(units, context, engine)
            old_pids = [proc.pid for proc in backend._pool["procs"]]
            for proc in backend._pool["procs"]:
                proc.terminate()
                proc.join(timeout=5)
            engine = EnforcementEngine(EqRelation(), dict(context.gfds))
            outcome = backend.run(units, context, engine)
            assert outcome.conflict is None
            assert [p.pid for p in backend._pool["procs"]] != old_pids
        finally:
            backend.close()

    def test_hung_replica_does_not_wedge_refresh(self, example8_sigma):
        """A standing worker that is alive but unresponsive (SIGSTOP) must
        not block the refresh forever: past the deadline it is killed,
        marked dead, and the run proceeds on the survivor."""
        import os
        import signal
        import time

        if not hasattr(signal, "SIGSTOP"):
            pytest.skip("SIGSTOP unavailable on this platform")
        config = RuntimeConfig(
            workers=2, persistent_workers=True, batch_timeout_seconds=1.0
        )
        backend = ProcessBackend(config)
        canonical = build_canonical_graph(example8_sigma)
        context = UnitContext(canonical.graph, dict(canonical.gfds))
        try:
            engine = EnforcementEngine(EqRelation(), dict(context.gfds))
            units = generate_work_units(example8_sigma, context.graph)
            backend.run(units, context, engine)
            os.kill(backend._pool["procs"][0].pid, signal.SIGSTOP)
            engine = EnforcementEngine(EqRelation(), dict(context.gfds))
            started = time.monotonic()
            outcome = backend.run(units, context, engine)
            assert outcome.conflict is None
            assert time.monotonic() - started < 30.0
            assert 0 in backend._pool["dead"]
        finally:
            backend.close()

    def test_simulation_gate_rederived_on_topology_change(self):
        from repro.graph.graph import PropertyGraph

        g = PropertyGraph()
        for _ in range(4):
            g.add_node("a")
        context = UnitContext(g, {})
        assert context.use_simulation_pruning
        for _ in range(UnitContext.SIMULATION_NODE_LIMIT):
            g.add_node("a")
        context.note_topology_change()
        assert not context.use_simulation_pruning  # grown past the limit

    def test_topology_caches_self_invalidate_on_mutation(self):
        """Any context reused across mutations — not just process-worker
        refresh — must drop stale dQ neighborhoods and candidate sets."""
        from repro.graph.graph import PropertyGraph

        g = PropertyGraph()
        a = g.add_node("x")
        b = g.add_node("x")
        g.add_edge(a, b, "e")
        context = UnitContext(g, {})
        assert context.allowed_nodes(a, 2) == {a, b}
        c = g.add_node("x")
        g.add_edge(b, c, "e")
        assert context.allowed_nodes(a, 2) == {a, b, c}  # not the cached set

    def test_refresh_ships_only_new_gfds(self, example8_sigma):
        config = RuntimeConfig(workers=2, persistent_workers=True)
        backend = ProcessBackend(config)
        canonical = build_canonical_graph(example8_sigma[:1])
        context = UnitContext(canonical.graph, dict(canonical.gfds))
        try:
            engine = EnforcementEngine(EqRelation(), dict(context.gfds))
            backend.run(
                generate_work_units(example8_sigma[:1], context.graph),
                context,
                engine,
            )
            assert backend._pool["shipped_gfds"] == {example8_sigma[0].name}
            nxt = example8_sigma[1]
            extend_canonical(context.graph, nxt)
            context.gfds[nxt.name] = nxt
            engine = EnforcementEngine(EqRelation(), dict(context.gfds))
            outcome = backend.run(
                generate_work_units(example8_sigma[:2], context.graph),
                context,
                engine,
            )
            assert outcome.conflict is None
            assert backend._pool["shipped_gfds"] == {
                example8_sigma[0].name,
                nxt.name,
            }
            # Stripping the registry for the transfer must not lose it here.
            assert engine.gfds and set(engine.gfds) == set(context.gfds)
        finally:
            backend.close()

    def test_unpicklable_goal_degrades_to_cold_start(self, example8_sigma):
        """A refresh whose message cannot pickle (closure goal_check under
        a forked pool) must fall back to a cold start, not escape run()."""
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("fork unavailable on this platform")
        config = RuntimeConfig(
            workers=2, persistent_workers=True, start_method="fork"
        )
        backend = ProcessBackend(config)
        canonical = build_canonical_graph(example8_sigma)
        context = UnitContext(canonical.graph, dict(canonical.gfds))
        goal = lambda eq: False  # noqa: E731 - deliberately unpicklable
        try:
            units = generate_work_units(example8_sigma, context.graph)
            for _ in range(2):  # second run takes the refresh path
                engine = EnforcementEngine(EqRelation(), dict(context.gfds))
                outcome = backend.run(units, context, engine, goal_check=goal)
                assert outcome.conflict is None
        finally:
            backend.close()

    def test_non_persistent_leaves_no_pool(self, example8_sigma):
        config = RuntimeConfig(workers=2)
        backend = ProcessBackend(config)
        canonical = build_canonical_graph(example8_sigma)
        context = UnitContext(canonical.graph, dict(canonical.gfds))
        engine = EnforcementEngine(EqRelation(), dict(context.gfds))
        units = generate_work_units(example8_sigma, context.graph)
        backend.run(units, context, engine)
        assert backend._pool is None
        backend.close()  # no-op, must not raise

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_both_start_methods_refresh(self, example8_sigma, start_method):
        import multiprocessing as mp

        if start_method not in mp.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        config = RuntimeConfig(
            workers=2, persistent_workers=True, start_method=start_method
        )
        verdicts = run_incrementally(example8_sigma[:2], config)
        assert verdicts == [True, True]
