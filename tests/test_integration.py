"""End-to-end integration tests: examples run, pipelines compose, and the
paper's headline claims hold qualitatively at test scale."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import seq_sat
from repro.bench.harness import sequential_virtual_seconds, synthetic_sat_workload
from repro.datasets import dbpedia_like
from repro.gfd.generator import mine_gfds, straggler_workload
from repro.parallel import RuntimeConfig, par_sat
from repro.reasoning import minimal_cover

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "inconsistency_detection.py",
        "rule_optimization.py",
        "extensions_demo.py",
    ],
)
def test_example_scripts_run(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()


def test_parallel_scaling_example_runs():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "parallel_scaling.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert "speedup" in completed.stdout


class TestHeadlineClaims:
    def test_parallel_scalability_claim(self):
        """Paper: ParSat is parallel scalable — ~3-4x faster from p=4 to 20."""
        sigma = straggler_workload(seed=21)
        at_4 = par_sat(sigma, RuntimeConfig(workers=4)).virtual_seconds
        at_20 = par_sat(sigma, RuntimeConfig(workers=20)).virtual_seconds
        assert at_4 / at_20 >= 2.5

    def test_splitting_claim(self):
        """Paper: splitting beats no-splitting markedly at high p."""
        sigma = straggler_workload(seed=22)
        config = RuntimeConfig(workers=20)
        with_split = par_sat(sigma, config).virtual_seconds
        without = par_sat(sigma, config.without_splitting()).virtual_seconds
        assert without / with_split >= 1.5

    def test_pipelining_claim(self):
        """Paper: pipelining improves ParSat ~1.5x."""
        sigma = straggler_workload(seed=23)
        config = RuntimeConfig(workers=8)
        pipelined = par_sat(sigma, config).virtual_seconds
        not_pipelined = par_sat(sigma, config.without_pipelining()).virtual_seconds
        assert not_pipelined / pipelined >= 1.2

    def test_parsat_beats_seqsat_at_p4(self):
        """Paper Exp-2: ParSat ~3.1x faster than SeqSat at p=4."""
        workload = synthetic_sat_workload(150, k=6, l=5, seed=24)
        seq_cost = sequential_virtual_seconds(seq_sat(workload.sigma))
        par_cost = par_sat(workload.sigma, RuntimeConfig(workers=4)).virtual_seconds
        assert seq_cost / par_cost >= 2.0

    def test_growth_with_sigma(self):
        """Paper Exp-2: runtime grows with |Σ|."""
        small = sequential_virtual_seconds(seq_sat(synthetic_sat_workload(40, seed=25).sigma))
        large = sequential_virtual_seconds(seq_sat(synthetic_sat_workload(160, seed=25).sigma))
        assert large > small


class TestMiningToReasoningPipeline:
    def test_full_pipeline(self):
        """dataset -> mine -> satisfiability -> cover -> parallel recheck."""
        graph = dbpedia_like(400, seed=31)
        sigma = mine_gfds(graph, 20, seed=31)
        assert seq_sat(sigma).satisfiable
        cover = minimal_cover(sigma)
        assert len(cover.cover) <= len(sigma)
        parallel = par_sat(cover.cover, RuntimeConfig(workers=4))
        assert parallel.satisfiable
