"""Property test: delta-maintained indexes ≡ from-scratch rebuilds.

Drives random mutation sequences — node adds, edge adds, relabels —
interleaved with ``graph.index()`` calls at random points (so journal
batches of every size get exercised), then checks that the maintained
index's canonical form is identical to a fresh :class:`GraphIndex` built
from the final graph. A second property shrinks the compaction threshold
so the rebuild fallback triggers mid-sequence and must hand over cleanly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PropertyGraph
from repro.graph.index import GraphIndex

LABELS = ["a", "b", "c", "d"]
EDGE_LABELS = ["e", "f"]

# One step of a mutation script: (kind, r1, r2, r3) with r* drawn uniformly
# and resolved against the current graph size at replay time.
_step = st.tuples(
    st.sampled_from(["node", "edge", "relabel", "index"]),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)


def _run_script(graph: PropertyGraph, script) -> None:
    """Replay a mutation script; every op is legal by construction."""
    for kind, r1, r2, r3 in script:
        n = graph.num_nodes
        if kind == "node":
            graph.add_node(LABELS[r1 % len(LABELS)])
        elif kind == "edge" and n:
            graph.add_edge(r1 % n, r2 % n, EDGE_LABELS[r3 % len(EDGE_LABELS)])
        elif kind == "relabel" and n:
            graph.set_node_label(r1 % n, LABELS[r2 % len(LABELS)])
        elif kind == "index":
            graph.index()


def _seed_graph() -> PropertyGraph:
    graph = PropertyGraph()
    for i in range(4):
        graph.add_node(LABELS[i % len(LABELS)])
    graph.add_edge(0, 1, "e")
    graph.add_edge(1, 2, "f")
    graph.index()  # compile before the mutation storm
    return graph


@settings(max_examples=120, deadline=None)
@given(script=st.lists(_step, min_size=1, max_size=60))
def test_delta_maintained_index_equals_rebuild(script):
    graph = _seed_graph()
    _run_script(graph, script)
    maintained = graph.index()
    assert not maintained.stale
    assert maintained.version == graph.mutation_count
    rebuilt = GraphIndex(graph)
    assert maintained.canonical_form() == rebuilt.canonical_form()


@settings(max_examples=60, deadline=None)
@given(
    script=st.lists(_step, min_size=1, max_size=60),
    compaction_min=st.integers(min_value=1, max_value=8),
)
def test_equivalence_holds_across_compaction_boundary(script, compaction_min):
    """With a tiny threshold the journal crosses the compaction limit mid-
    sequence, so delta batches and full rebuilds interleave — the handover
    must be seamless in both directions."""
    graph = _seed_graph()
    graph.INDEX_COMPACTION_MIN = compaction_min
    graph.INDEX_COMPACTION_FRACTION = 0.0
    _run_script(graph, script)
    maintained = graph.index()
    rebuilt = GraphIndex(graph)
    assert maintained.canonical_form() == rebuilt.canonical_form()


@settings(max_examples=60, deadline=None)
@given(script=st.lists(_step, min_size=1, max_size=40))
def test_delta_and_rebuild_graphs_match_under_ablation(script):
    """The ablation switch (``index_delta_enabled = False``) must agree
    with the delta path op for op — the knob the benchmark compares."""
    delta_graph = _seed_graph()
    rebuild_graph = _seed_graph()
    rebuild_graph.index_delta_enabled = False
    _run_script(delta_graph, script)
    _run_script(rebuild_graph, script)
    assert (
        delta_graph.index().canonical_form()
        == rebuild_graph.index().canonical_form()
    )
