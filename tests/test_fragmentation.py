"""Fragmentation differential-test suite.

The edge-cut :class:`~repro.graph.fragment.Fragmenter` must uphold three
partition invariants for any graph and any fragment count:

* every node is *interior* to exactly one fragment;
* every fragment's replica covers the full ≤radius-hop halo of its
  interior, so any ball of radius ≤ the fragmenter's around an interior
  pivot is identical whether computed on the replica or the whole graph;
* the union of the fragment replicas reconstructs the whole graph — same
  node set, same induced edges, same canonical index form.

Plus the delta half: :meth:`Fragmenter.split_delta` streams keep every
replica equal to a from-scratch rebuild of its membership, touch only the
fragments a mutation reaches, and fall back to a whole-replica rebuild
exactly when appending would break the position-order insertion
invariant. Hypothesis drives random graphs, deltas, and fragment counts
1..8 against the unfragmented ground truth.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PropertyGraph
from repro.gfd.canonical import build_canonical_graph
from repro.gfd.generator import random_gfds
from repro.graph.fragment import (
    FragmentIndex,
    Fragmenter,
    bfs_reach,
    dq_ball,
    induced_subgraph,
)
from repro.parallel.units import UnitContext, attach_fragmentation
from repro.reasoning.workunits import WorkUnit, choose_pivot, fragment_radius

LABELS = ["a", "b", "c", "d"]
EDGE_LABELS = ["e", "f"]


def _build_graph(script) -> PropertyGraph:
    """A small random graph from a (kind, r1, r2, r3) step script."""
    graph = PropertyGraph()
    for i in range(4):
        graph.add_node(LABELS[i % len(LABELS)])
    graph.add_edge(0, 1, "e")
    graph.add_edge(1, 2, "f")
    _apply_script(graph, script)
    graph.index()
    return graph


def _apply_script(graph: PropertyGraph, script) -> None:
    for kind, r1, r2, r3 in script:
        n = graph.num_nodes
        if kind == "node":
            graph.add_node(LABELS[r1 % len(LABELS)])
        elif kind == "edge" and n:
            graph.add_edge(r1 % n, r2 % n, EDGE_LABELS[r3 % len(EDGE_LABELS)])
        elif kind == "relabel" and n:
            graph.set_node_label(r1 % n, LABELS[r2 % len(LABELS)])


_step = st.tuples(
    st.sampled_from(["node", "edge", "relabel"]),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)


def _hub_graph() -> PropertyGraph:
    """A deterministic two-hub graph with a bridge — fragments cut it."""
    graph = PropertyGraph()
    for i in range(12):
        graph.add_node(LABELS[i % len(LABELS)])
    for spoke in range(1, 6):
        graph.add_edge(0, spoke, "e")
    for spoke in range(7, 12):
        graph.add_edge(6, spoke, "e")
    graph.add_edge(5, 6, "f")  # the bridge between the hubs
    graph.index()
    return graph


def _union_of_fragments(graph: PropertyGraph, fragmenter: Fragmenter) -> PropertyGraph:
    """Reassemble the whole graph from the fragment replicas alone."""
    replicas = {fid: fragmenter.build(fid) for fid in range(fragmenter.num_fragments)}
    union = PropertyGraph()
    for node_id in graph.index().nodes:
        owner = replicas[fragmenter.fragment_of(node_id)].graph
        node = owner.node(node_id)
        union.add_node(node.label, dict(node.attrs) or None, node_id=node_id)
    for node_id in graph.index().nodes:
        owner = replicas[fragmenter.fragment_of(node_id)].graph
        for edge in owner.out_edges(node_id):
            union.add_edge(edge.src, edge.dst, edge.label)
    return union


class TestPartitionInvariants:
    @pytest.mark.parametrize("num_fragments", [1, 2, 3, 5, 8])
    def test_every_node_interior_to_exactly_one_fragment(self, num_fragments):
        graph = _hub_graph()
        fragmenter = Fragmenter(graph, num_fragments, radius=1)
        seen = []
        for spec in fragmenter.specs():
            seen.extend(spec.interior)
            for node in spec.interior:
                assert fragmenter.fragment_of(node) == spec.fragment_id
        assert sorted(seen) == sorted(graph.index().nodes)
        assert len(seen) == len(set(seen))

    @pytest.mark.parametrize("num_fragments", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("radius", [0, 1, 2])
    def test_halo_covers_radius(self, num_fragments, radius):
        graph = _hub_graph()
        fragmenter = Fragmenter(graph, num_fragments, radius=radius)
        for spec in fragmenter.specs():
            expected = bfs_reach(graph, spec.interior, radius)
            assert spec.member_set == frozenset(expected)
            assert spec.interior_set <= spec.member_set
            assert set(spec.halo) == expected - set(spec.interior)

    @pytest.mark.parametrize("num_fragments", [1, 2, 3, 5, 8])
    def test_union_reconstructs_whole_graph(self, num_fragments):
        # Radius >= 1 makes every edge land inside its source's owner.
        graph = _hub_graph()
        fragmenter = Fragmenter(graph, num_fragments, radius=1)
        union = _union_of_fragments(graph, fragmenter)
        reference = induced_subgraph(graph, graph.index().nodes)
        assert union.index().canonical_form() == reference.index().canonical_form()

    def test_members_keep_whole_graph_position_order(self):
        graph = _hub_graph()
        position = graph.index().position
        fragmenter = Fragmenter(graph, 3, radius=1)
        for spec in fragmenter.specs():
            ranks = [position[node] for node in spec.members]
            assert ranks == sorted(ranks)
            # ... and the replica's own index enumerates in that order.
            replica = fragmenter.build(spec.fragment_id)
            assert list(replica.index().nodes) == list(spec.members)

    def test_fragment_ball_equals_whole_graph_ball(self):
        graph = _hub_graph()
        fragmenter = Fragmenter(graph, 3, radius=2)
        for spec in fragmenter.specs():
            replica = fragmenter.build(spec.fragment_id)
            for pivot in spec.interior:
                for radius in (0, 1, 2):
                    whole = bfs_reach(graph, (pivot,), radius)
                    local = bfs_reach(replica.graph, (pivot,), radius)
                    assert local == whole, (spec.fragment_id, pivot, radius)

    def test_dq_ball_includes_out_of_ball_extras(self):
        graph = _hub_graph()
        # Node 11 is 3+ hops from node 1; a split unit may preassign it.
        ball = dq_ball(graph, 1, radius=1, extras=(11,))
        assert 11 in ball.spec.member_set
        assert ball.spec.interior == (1,)
        assert set(bfs_reach(graph, (1,), 1)) <= ball.spec.member_set

    def test_fragment_radius_matches_max_pivot_eccentricity(self):
        sigma = random_gfds(8, 4, 3, seed=11)
        graph = build_canonical_graph(sigma).graph
        expected = 0
        for gfd in sigma:
            if gfd.is_trivial() or not gfd.pattern.is_connected():
                continue
            pivot = choose_pivot(gfd, graph)
            expected = max(expected, gfd.pattern.eccentricity(pivot))
        assert fragment_radius(sigma, graph) == expected
        assert fragment_radius([], graph) == 0


class TestSplitDelta:
    def _tracked(self, graph: PropertyGraph, fragmenter: Fragmenter):
        graph.retain_deltas(True)
        return {
            fid: fragmenter.build(fid) for fid in range(fragmenter.num_fragments)
        }

    def _refresh(self, fragmenter, replicas, ops):
        for fid, payload in fragmenter.split_delta(ops).items():
            if payload is None:
                replicas[fid].replace(fragmenter.build(fid))
            elif payload:
                replicas[fid].apply_ops(payload)

    def _assert_replicas_fresh(self, graph, fragmenter, replicas):
        for fid, replica in replicas.items():
            expected = fragmenter.build(fid)
            assert replica.canonical_form() == expected.canonical_form(), fid

    def test_mutation_only_touches_reachable_fragments(self):
        graph = _hub_graph()
        fragmenter = Fragmenter(graph, 3, radius=1)
        graph.retain_deltas(True)
        version = graph.mutation_count
        # An edge inside the first hub: far from the last fragment.
        graph.add_edge(1, 2, "f")
        graph.index()
        payloads = fragmenter.split_delta(graph.delta_ops_since(version))
        touched = [fid for fid, ops in payloads.items() if ops is None or ops]
        assert touched  # the mutation's own fragment refreshes ...
        untouched = [fid for fid, ops in payloads.items() if ops == []]
        assert untouched, payloads  # ... and at least one fragment does not

    def test_new_node_streams_as_addnode_to_tail_fragment(self):
        graph = _hub_graph()
        fragmenter = Fragmenter(graph, 2, radius=1)
        replicas = self._tracked(graph, fragmenter)
        version = graph.mutation_count
        new = graph.add_node("a", {"k": 1})
        graph.add_edge(11, new, "e")
        graph.index()
        self._refresh(fragmenter, replicas, graph.delta_ops_since(version))
        tail = fragmenter.num_fragments - 1
        assert fragmenter.fragment_of(new) == tail
        assert replicas[tail].graph.has_node(new)
        self._assert_replicas_fresh(graph, fragmenter, replicas)

    def test_old_node_entering_halo_forces_rebuild(self):
        graph = _hub_graph()
        fragmenter = Fragmenter(graph, 3, radius=1)
        graph.retain_deltas(True)
        version = graph.mutation_count
        # Connect the last fragment's interior to node 0 (position 0):
        # node 0 newly enters that fragment's halo but precedes every
        # existing member in position order — append would misorder.
        graph.add_edge(11, 0, "f")
        graph.index()
        payloads = fragmenter.split_delta(graph.delta_ops_since(version))
        tail = fragmenter.fragment_of(11)
        assert payloads[tail] is None
        # After the rebuild the replica matches a fresh build.
        rebuilt = fragmenter.build(tail)
        assert 0 in rebuilt.spec.member_set
        assert list(rebuilt.index().nodes) == list(rebuilt.spec.members)

    def test_relabel_forwarded_to_covering_fragments(self):
        graph = _hub_graph()
        fragmenter = Fragmenter(graph, 2, radius=1)
        replicas = self._tracked(graph, fragmenter)
        version = graph.mutation_count
        graph.set_node_label(6, "d")
        graph.index()
        self._refresh(fragmenter, replicas, graph.delta_ops_since(version))
        for fid, replica in replicas.items():
            if replica.spec.covers(6):
                assert replica.graph.node(6).label == "d", fid
        self._assert_replicas_fresh(graph, fragmenter, replicas)


class TestFragmentContextCaches:
    """Satellite fix: fragment-bound contexts must not inherit or retain
    whole-graph dQ-ball/candidate caches."""

    def test_pickle_drops_caches_when_fragment_bound(self):
        graph = _hub_graph()
        fragmenter = Fragmenter(graph, 2, radius=1)
        replica = fragmenter.build(0)
        context = UnitContext(replica.graph, {}, fragment=replica)
        context.allowed_nodes(0, 1)  # warm a hop map + neighborhood
        assert context._hop_maps
        state = context.__getstate__()
        assert state["_hop_maps"] == {}
        assert state["_candidates"] == {}
        assert state["_neighborhoods"] == {}
        # Whole-graph contexts keep shipping their warm hop maps.
        whole = UnitContext(graph, {})
        whole.allowed_nodes(0, 1)
        assert whole.__getstate__()["_hop_maps"]

    def test_stale_ball_cache_refreshes_after_halo_delta(self):
        graph = _hub_graph()
        fragmenter = Fragmenter(graph, 2, radius=2)
        fid = fragmenter.fragment_of(1)
        replica = fragmenter.build(fid)
        context = UnitContext(replica.graph, {}, fragment=replica)
        graph.retain_deltas(True)
        version = graph.mutation_count

        before = context.allowed_nodes(1, 1)
        assert 2 not in set(before)  # nodes 1 and 2 start disconnected

        # Mutate the whole graph on a node the replica covers, then ship
        # the per-fragment stream: the warmed ball must pick up the edge.
        graph.add_edge(1, 2, "f")
        graph.index()
        payload = fragmenter.split_delta(graph.delta_ops_since(version))[fid]
        assert payload  # the touched fragment gets a non-empty stream
        replica.apply_ops(payload)

        after = context.allowed_nodes(1, 1)
        assert 2 in set(after)

    def test_fragment_index_pickle_round_trip(self):
        graph = _hub_graph()
        fragmenter = Fragmenter(graph, 3, radius=1)
        for fid in range(3):
            replica = fragmenter.build(fid)
            clone = pickle.loads(pickle.dumps(replica))
            assert clone.spec == replica.spec
            assert clone.canonical_form() == replica.canonical_form()


class TestRouting:
    def test_locality_key_is_owning_fragment(self):
        sigma = random_gfds(6, 4, 3, seed=3)
        graph = build_canonical_graph(sigma).graph
        context = UnitContext(graph, {gfd.name: gfd for gfd in sigma})
        router = attach_fragmentation(context, sigma, 3)
        assert context.fragment_router is router
        pivot = graph.index().nodes[0]
        unit = WorkUnit.make("r", {"x": pivot}, radius=1)
        assert context.locality_key(unit) == ("frag", router.fragment_of(pivot))
        # Radius-less units search the whole graph: never fragment-pinned.
        free = WorkUnit.make("r", {"x": pivot}, radius=None)
        assert context.locality_key(free) is None

    def test_covers_unit_rejects_escaped_bindings(self):
        graph = _hub_graph()
        fragmenter = Fragmenter(graph, 2, radius=1)
        fid = fragmenter.fragment_of(0)
        inside = WorkUnit.make("r", {"x": 0}, radius=1)
        assert fragmenter.covers_unit(fid, inside)
        # A split unit binding a node from the other hub escapes.
        far = next(
            node
            for node in graph.index().nodes
            if not fragmenter.covers(fid, node)
        )
        split = WorkUnit.make("r", {"x": 0, "y": far}, radius=1, generation=1)
        assert not fragmenter.covers_unit(fid, split)
        ball = fragmenter.ball_for_unit(split)
        assert far in ball.spec.member_set
        assert 0 in ball.spec.member_set

    def test_router_never_pickles_with_context(self):
        sigma = random_gfds(6, 4, 3, seed=3)
        graph = build_canonical_graph(sigma).graph
        context = UnitContext(graph, {gfd.name: gfd for gfd in sigma})
        attach_fragmentation(context, sigma, 2)
        clone = pickle.loads(pickle.dumps(context))
        assert clone.fragment_router is None
        assert clone.plan_orders == context.plan_orders
        assert clone.pivot_overrides == context.pivot_overrides


@settings(max_examples=60, deadline=None)
@given(
    script=st.lists(_step, min_size=0, max_size=40),
    num_fragments=st.integers(min_value=1, max_value=8),
    radius=st.integers(min_value=0, max_value=2),
)
def test_property_partition_agrees_with_whole_graph(script, num_fragments, radius):
    graph = _build_graph(script)
    fragmenter = Fragmenter(graph, num_fragments, radius)
    position = graph.index().position
    owners = {}
    for spec in fragmenter.specs():
        for node in spec.interior:
            assert node not in owners
            owners[node] = spec.fragment_id
        assert spec.member_set == frozenset(bfs_reach(graph, spec.interior, radius))
        ranks = [position[node] for node in spec.members]
        assert ranks == sorted(ranks)
        replica = fragmenter.build(spec.fragment_id)
        # The replica agrees with the unfragmented index: same nodes in
        # the same position order, same interior balls.
        assert list(replica.index().nodes) == list(spec.members)
        if radius:
            for pivot in spec.interior:
                assert bfs_reach(replica.graph, (pivot,), radius) == bfs_reach(
                    graph, (pivot,), radius
                )
    assert set(owners) == set(graph.index().nodes)
    if radius:
        union = _union_of_fragments(graph, fragmenter)
        reference = induced_subgraph(graph, graph.index().nodes)
        assert union.index().canonical_form() == reference.index().canonical_form()


@settings(max_examples=60, deadline=None)
@given(
    base=st.lists(_step, min_size=0, max_size=25),
    delta=st.lists(_step, min_size=1, max_size=25),
    num_fragments=st.integers(min_value=1, max_value=8),
    radius=st.integers(min_value=0, max_value=2),
)
def test_property_split_delta_keeps_replicas_fresh(base, delta, num_fragments, radius):
    graph = _build_graph(base)
    fragmenter = Fragmenter(graph, num_fragments, radius)
    replicas = {fid: fragmenter.build(fid) for fid in range(num_fragments)}
    graph.retain_deltas(True)
    version = graph.mutation_count
    _apply_script(graph, delta)
    graph.index()
    ops = graph.delta_ops_since(version)
    for fid, payload in fragmenter.split_delta(ops).items():
        if payload is None:
            replicas[fid].replace(fragmenter.build(fid))
        elif payload:
            replicas[fid].apply_ops(payload)
    for fid, replica in replicas.items():
        fresh = fragmenter.build(fid)
        assert replica.canonical_form() == fresh.canonical_form(), fid
        assert list(replica.spec.members) == list(fresh.spec.members)
