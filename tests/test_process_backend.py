"""Process backend: pickling, index snapshots, and replica exchange."""

from __future__ import annotations

import pickle

import pytest

from repro.eq.eqrelation import Conflict, DeltaOp, EqRelation
from repro.gfd.canonical import build_canonical_graph
from repro.gfd.generator import random_gfds, straggler_workload
from repro.graph.graph import PropertyGraph
from repro.graph.index import GraphIndex
from repro.parallel import (
    EntailmentGoal,
    ProcessBackend,
    RuntimeConfig,
    UnitContext,
    par_imp,
    par_sat,
)
from repro.parallel.backends.process import (
    load_worker_snapshot,
    make_worker_snapshot,
)
from repro.parallel.units import UnitResult, execute_unit
from repro.reasoning.enforce import EnforcementEngine
from repro.reasoning.workunits import WorkUnit, generate_work_units


class TestPickleRoundTrips:
    def test_work_unit(self):
        unit = WorkUnit.make("phi7", {"x": "phi7.x", "y": 3}, radius=2, generation=1)
        clone = pickle.loads(pickle.dumps(unit))
        assert clone == unit
        assert clone.uid == unit.uid

    def test_uid_is_stable_and_discriminating(self):
        unit = WorkUnit.make("phi7", {"x": 1})
        same = WorkUnit.make("phi7", {"x": 1})
        other = WorkUnit.make("phi7", {"x": 2})
        assert unit.uid == same.uid
        assert unit.uid != other.uid
        assert unit.uid != WorkUnit.make("phi8", {"x": 1}).uid
        split = WorkUnit.make("phi7", {"x": 1}, generation=1)
        assert unit.uid != split.uid

    def test_unit_result_with_splits(self):
        unit = WorkUnit.make("phi7", {"x": "a0"}, radius=1)
        result = UnitResult(
            unit,
            matches=3,
            match_ticks=17,
            enforce_ops=2,
            delta_ops=1,
            splits=[WorkUnit.make("phi7", {"x": "a0", "y": "b0"}, radius=1, generation=1)],
        )
        clone = pickle.loads(pickle.dumps(result))
        assert clone.unit == unit
        assert clone.unit_uid == unit.uid
        assert clone.splits == result.splits
        assert clone.match_ticks == 17

    def test_delta_ops_and_conflict(self):
        ops = [
            DeltaOp("const", ("n1", "A"), value=5, source="phi1"),
            DeltaOp("merge", ("n1", "A"), other=("n2", "B"), source="phi2"),
        ]
        assert pickle.loads(pickle.dumps(ops)) == ops
        conflict = Conflict(("n1", "A"), 0, 1, source="phi6")
        assert pickle.loads(pickle.dumps(conflict)) == conflict

    def test_entailment_goal(self, example8_sigma):
        phi = example8_sigma[0]
        goal = EntailmentGoal.make(phi, {var: var for var in phi.pattern.variables})
        clone = pickle.loads(pickle.dumps(goal))
        assert clone == goal
        assert clone(EqRelation()) == goal(EqRelation())

    def test_delta_replay_reaches_same_state(self):
        source = EqRelation()
        source.assign_constant(("n1", "A"), 7, "g1")
        source.merge_terms(("n1", "A"), ("n2", "B"), "g2")
        replica = EqRelation()
        replica.apply_delta(pickle.loads(pickle.dumps(source.delta_since(0))))
        assert replica.constant_of(("n2", "B")) == 7
        assert replica.same_class(("n1", "A"), ("n2", "B"))


class TestGraphAndIndexSnapshots:
    def _graph(self) -> PropertyGraph:
        graph = PropertyGraph()
        a = graph.add_node("a", {"x": 1})
        b = graph.add_node("b")
        c = graph.add_node("b")
        graph.add_edge(a, b, "p")
        graph.add_edge(a, c, "q")
        graph.add_edge(b, c, "p")
        return graph

    def test_graph_pickle_drops_compiled_index(self):
        graph = self._graph()
        graph.index()  # populate the cache (holds weakrefs)
        clone = pickle.loads(pickle.dumps(graph))
        assert clone._compiled_index is None
        assert clone.num_nodes == graph.num_nodes
        assert clone.mutation_count == graph.mutation_count
        # The clone can compile its own index normally.
        assert clone.index().nodes == graph.index().nodes

    def test_index_snapshot_round_trip(self):
        graph = self._graph()
        index = graph.index()
        data = pickle.loads(pickle.dumps(index.to_snapshot()))
        clone_graph = pickle.loads(pickle.dumps(graph))
        rebuilt = GraphIndex.from_snapshot(clone_graph, data)
        assert rebuilt.nodes == index.nodes
        assert rebuilt.version == index.version
        for node in graph.nodes():
            for label in ("p", "q"):
                lid = index.label_id(label)
                assert rebuilt.out_neighbors(node, lid) == index.out_neighbors(node, lid)
                assert rebuilt.in_neighbors(node, lid) == index.in_neighbors(node, lid)
            assert rebuilt.out_neighbors(node, None) == index.out_neighbors(node, None)
        assert rebuilt.nodes_with_label("b") == index.nodes_with_label("b")
        assert rebuilt.avg_out_fanout(index.label_id("p")) == index.avg_out_fanout(
            index.label_id("p")
        )

    def test_snapshot_version_mismatch_rejected(self):
        graph = self._graph()
        data = graph.index().to_snapshot()
        graph.add_node("z")
        with pytest.raises(ValueError):
            GraphIndex.from_snapshot(graph, data)

    def test_adopt_index_checks_version(self):
        graph = self._graph()
        stale = graph.index()
        graph.add_node("z")
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            graph.adopt_index(stale)
        graph.adopt_index(graph.index())  # current index is accepted


class TestWorkerSnapshot:
    def test_round_trip_executes_identically(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        units = generate_work_units(example4_sigma, canonical.graph)
        context = UnitContext(canonical.graph, canonical.gfds)
        context.precompile_plans()
        context.precompute_neighborhoods(units, min_units=1)
        engine = EnforcementEngine(EqRelation(), canonical.gfds)
        blob = make_worker_snapshot(context, engine, None, None, 16)
        state = load_worker_snapshot(blob)
        # The replica is independent state over an equivalent graph...
        assert state.context.graph is not context.graph
        assert state.context.graph.num_nodes == context.graph.num_nodes
        # ...whose index was adopted, not recompiled from a fresh build.
        assert state.context.graph._compiled_index is not None
        # Executing the same unit on both sides gives identical counts.
        unit = units[0]
        mine = execute_unit(unit, context, engine)
        theirs = execute_unit(unit, state.context, state.engine)
        assert (mine.matches, mine.match_ticks, mine.enforce_ops) == (
            theirs.matches,
            theirs.match_ticks,
            theirs.enforce_ops,
        )
        assert state.engine.eq.delta_since(0) == engine.eq.delta_since(0)


class TestProcessBackend:
    def test_outcome_shape(self):
        sigma = random_gfds(15, 4, 3, seed=3)
        result = par_sat(sigma, RuntimeConfig(workers=3), backend="process")
        assert result.satisfiable
        outcome = result.outcome
        assert outcome.backend == "process"
        assert len(outcome.worker_busy) == 3
        assert outcome.units_executed == outcome.units_total - outcome.splits
        assert outcome.match_ticks > 0
        assert outcome.wall_seconds > 0

    def test_single_worker(self, example4_sigma):
        result = par_sat(example4_sigma, RuntimeConfig(workers=1), backend="process")
        assert not result.satisfiable
        assert result.conflict is not None

    def test_splitting_across_processes(self):
        sigma = straggler_workload(
            num_anchor=1, num_seekers=2, num_background=5, anchor_size=8,
            seeker_length=4, seed=5,
        )
        split = par_sat(
            sigma, RuntimeConfig(workers=2, ttl_seconds=0.05), backend="process"
        )
        assert split.satisfiable
        assert split.outcome.splits > 0

    def test_goal_early_termination(self, example8_sigma, example8_phi13):
        result = par_imp(
            example8_sigma, example8_phi13, RuntimeConfig(workers=2), backend="process"
        )
        assert result.implied
        assert result.reason in ("derived", "conflict")

    def test_spawn_start_method_uses_snapshots(self):
        # Force the pickled-snapshot path even where fork is available.
        sigma = random_gfds(8, 4, 3, seed=3)
        config = RuntimeConfig(workers=2, start_method="spawn")
        result = par_sat(sigma, config, backend="process")
        assert result.satisfiable
        assert result.outcome.backend == "process"

    def test_preexisting_conflict_short_circuits(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        context = UnitContext(canonical.graph, canonical.gfds)
        engine = EnforcementEngine(EqRelation(), canonical.gfds)
        engine.eq.fail(("poisoned", "<false>"), "test")
        units = generate_work_units(example4_sigma, canonical.graph)
        outcome = ProcessBackend(RuntimeConfig(workers=2)).run(units, context, engine)
        assert outcome.conflict is not None
        assert outcome.units_executed == 0
