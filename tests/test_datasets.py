"""Tests for the synthetic dataset stand-ins."""

import pytest

from repro.datasets import DATASETS, dbpedia_like, load_dataset, pokec_like, yago_like


class TestGenerators:
    def test_deterministic(self):
        a = dbpedia_like(200, seed=3)
        b = dbpedia_like(200, seed=3)
        assert a.num_nodes == b.num_nodes
        assert a.num_edges == b.num_edges
        assert sorted(map(str, a.labels())) == sorted(map(str, b.labels()))

    def test_seed_changes_graph(self):
        a = dbpedia_like(200, seed=3)
        b = dbpedia_like(200, seed=4)
        assert {n.label for n in a.node_objects()} and a.num_edges != 0
        # Edge multisets almost surely differ across seeds.
        assert {(e.src, e.dst, e.label) for e in a.edges()} != {
            (e.src, e.dst, e.label) for e in b.edges()
        }

    def test_dbpedia_regime_many_types(self):
        graph = dbpedia_like(500, num_types=40, seed=5)
        assert graph.num_nodes == 500
        assert 10 <= len(graph.labels()) <= 40
        assert len(graph.edge_label_set()) > 5

    def test_yago_regime_few_types(self):
        graph = yago_like(400, seed=5)
        assert len(graph.labels()) <= 13

    def test_pokec_regime_social(self):
        graph = pokec_like(400, seed=5)
        assert graph.labels() == {"user", "post"}
        users = graph.nodes_with_label("user")
        assert users
        sample = next(iter(users))
        assert set(graph.attrs(sample)) == {"age", "region", "gender", "public"}
        # Every post is attached to a user.
        for post in graph.nodes_with_label("post"):
            assert any(
                graph.label(pred) == "user" for pred in graph.predecessors(post)
            )

    def test_hubs_exist(self):
        graph = dbpedia_like(600, seed=6)
        degrees = sorted(len(graph.in_edges(n)) for n in graph.nodes())
        assert degrees[-1] >= 5 * max(1, degrees[len(degrees) // 2])


class TestLoadDataset:
    def test_all_registered(self):
        assert set(DATASETS) == {"dbpedia", "yago2", "pokec"}
        for name in DATASETS:
            graph = load_dataset(name, num_nodes=150)
            assert graph.num_nodes >= 100

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("freebase")

    def test_custom_seed(self):
        graph = load_dataset("yago2", num_nodes=150, seed=99)
        assert graph.num_nodes == 150
