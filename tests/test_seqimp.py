"""Tests for SeqImp: paper examples, trivial cases, axiom-like properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import implies, parse_gfds, seq_imp
from repro.gfd import make_gfd, make_pattern
from repro.gfd.generator import random_gfds
from repro.gfd.literals import eq, vareq


class TestPaperExample8:
    def test_phi13_derived(self, example8_sigma, example8_phi13):
        result = seq_imp(example8_sigma, example8_phi13)
        assert result.implied
        assert result.reason == "derived"

    def test_phi13_not_implied_by_either_alone(self, example8_sigma, example8_phi13):
        assert not seq_imp([example8_sigma[0]], example8_phi13).implied
        assert not seq_imp([example8_sigma[1]], example8_phi13).implied

    def test_phi14_conflict(self, example8_sigma, example8_phi14):
        result = seq_imp(example8_sigma, example8_phi14)
        assert result.implied
        assert result.reason == "conflict"


class TestTrivialCases:
    def test_empty_consequent_trivially_implied(self):
        phi = parse_gfds("gfd t { x: a; when x.A = 1; }")[0]
        result = seq_imp([], phi)
        assert result.implied and result.reason == "trivial-Y"

    def test_inconsistent_antecedent_trivially_implied(self):
        pattern = make_pattern({"x": "a"})
        phi = make_gfd(pattern, [eq("x", "A", 1), eq("x", "A", 2)], [eq("x", "B", 3)])
        result = seq_imp([], phi)
        assert result.implied and result.reason == "trivial-X"

    def test_consequent_already_in_antecedent(self):
        phi = parse_gfds("gfd t { x: a; when x.A = 1; then x.A = 1; }")[0]
        result = seq_imp([], phi)
        assert result.implied and result.reason == "derived"

    def test_consequent_by_transitivity_of_x(self):
        pattern = make_pattern({"x": "a", "y": "a"}, [("x", "y", "e")])
        phi = make_gfd(
            pattern,
            [vareq("x", "A", "y", "B"), vareq("y", "B", "x", "C")],
            [vareq("x", "A", "x", "C")],
        )
        result = seq_imp([], phi)
        assert result.implied and result.reason == "derived"

    def test_empty_sigma_nontrivial_phi_not_implied(self):
        phi = parse_gfds("gfd t { x: a; then x.A = 1; }")[0]
        assert not seq_imp([], phi).implied


class TestAxiomLikeProperties:
    def test_reflexivity_exact_duplicate(self):
        sigma = parse_gfds(
            """
            gfd g1 { x: a; y: b; x -[e]-> y; when x.A = 1; then y.B = 2; }
            """
        )
        duplicate = parse_gfds(
            """
            gfd copy { u: a; v: b; u -[e]-> v; when u.A = 1; then v.B = 2; }
            """
        )[0]
        assert seq_imp(sigma, duplicate).implied

    def test_weaker_pattern_does_not_imply_stronger(self):
        # Knowing something about a-with-edge tells nothing about bare a.
        sigma = parse_gfds("gfd g { x: a; y: b; x -[e]-> y; then x.A = 1; }")
        phi = parse_gfds("gfd p { x: a; then x.A = 1; }")[0]
        assert not seq_imp(sigma, phi).implied

    def test_stronger_pattern_implied_by_weaker(self):
        # A constraint on every 'a' node applies to 'a' nodes with an edge.
        sigma = parse_gfds("gfd g { x: a; then x.A = 1; }")
        phi = parse_gfds("gfd p { x: a; y: b; x -[e]-> y; then x.A = 1; }")[0]
        assert seq_imp(sigma, phi).implied

    def test_wildcard_generalizes(self):
        sigma = parse_gfds("gfd g { x: _; then x.A = 1; }")
        phi = parse_gfds("gfd p { x: specific; then x.A = 1; }")[0]
        assert seq_imp(sigma, phi).implied

    def test_label_does_not_generalize_to_wildcard(self):
        sigma = parse_gfds("gfd g { x: specific; then x.A = 1; }")
        phi = parse_gfds("gfd p { x: _; then x.A = 1; }")[0]
        assert not seq_imp(sigma, phi).implied

    def test_transitive_composition(self):
        sigma = parse_gfds(
            """
            gfd s1 { x: a; when x.A = 1; then x.B = 2; }
            gfd s2 { x: a; when x.B = 2; then x.C = 3; }
            """
        )
        phi = parse_gfds("gfd p { x: a; when x.A = 1; then x.C = 3; }")[0]
        assert seq_imp(sigma, phi).implied

    def test_augmentation_with_constants(self):
        sigma = parse_gfds("gfd s { x: a; when x.A = 1; then x.B = 2; }")
        phi = parse_gfds(
            "gfd p { x: a; when x.A = 1, x.Z = 9; then x.B = 2; }"
        )[0]
        assert seq_imp(sigma, phi).implied

    def test_monotonicity_adding_premises_preserves_implication(
        self, example8_sigma, example8_phi13
    ):
        extra = parse_gfds("gfd extra { q: qq; then q.Q = 1; }")
        assert seq_imp(list(example8_sigma) + extra, example8_phi13).implied

    def test_ablation_flags_do_not_change_verdict(self, example8_sigma, example8_phi13, example8_phi14):
        for phi, expected in ((example8_phi13, True), (example8_phi14, True)):
            for dep in (True, False):
                for sim in (True, False):
                    result = seq_imp(
                        example8_sigma,
                        phi,
                        use_dependency_order=dep,
                        use_simulation_pruning=sim,
                    )
                    assert result.implied == expected

    def test_implies_wrapper(self, example8_sigma, example8_phi13):
        assert implies(example8_sigma, example8_phi13)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_member_of_sigma_always_implied(seed):
    """Property: Σ |= φ for every φ ∈ Σ (soundness floor)."""
    sigma = random_gfds(6, max_pattern_nodes=4, max_literals=3, seed=seed, consistent=False)
    phi = sigma[seed % len(sigma)]
    assert seq_imp(sigma, phi).implied


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_implication_order_independent(seed):
    """Property: verdict independent of Σ's order."""
    import random as _random

    rng = _random.Random(seed)
    sigma = random_gfds(8, max_pattern_nodes=4, max_literals=3, seed=seed, consistent=False)
    phi = random_gfds(1, max_pattern_nodes=4, max_literals=3, seed=seed + 1, consistent=False)[0]
    baseline = seq_imp(sigma, phi).implied
    shuffled = list(sigma)
    rng.shuffle(shuffled)
    assert seq_imp(shuffled, phi).implied == baseline
