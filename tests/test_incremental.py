"""Tests for incremental satisfiability (agreement with batch SeqSat)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import parse_gfds, seq_sat
from repro.errors import GFDError
from repro.gfd.generator import conflict_chain, random_gfds
from repro.reasoning.incremental import IncrementalSat


class TestBasics:
    def test_empty_state_satisfiable(self):
        assert IncrementalSat().satisfiable
        assert len(IncrementalSat()) == 0

    def test_single_addition(self):
        sigma = parse_gfds("gfd g { x: a; then x.A = 1; }")
        state = IncrementalSat(sigma)
        assert state.satisfiable
        assert state.steps[0].new_matches >= 1

    def test_duplicate_name_rejected(self):
        sigma = parse_gfds("gfd g { x: a; then x.A = 1; }")
        state = IncrementalSat(sigma)
        with pytest.raises(GFDError):
            state.add(sigma[0])

    def test_conflict_detected_at_the_right_step(self, example4_sigma):
        state = IncrementalSat()
        assert state.add(example4_sigma[0]).satisfiable
        assert state.add(example4_sigma[1]).satisfiable
        step = state.add(example4_sigma[2])
        assert not step.satisfiable
        assert not state.satisfiable
        assert state.conflict is not None

    def test_additions_after_conflict_are_noops(self, example2_conflicting):
        state = IncrementalSat(example2_conflicting)
        assert not state.satisfiable
        extra = parse_gfds("gfd extra { q: z; then q.Q = 1; }")[0]
        step = state.add(extra)
        assert not step.satisfiable
        assert step.new_matches == 0

    def test_order_of_additions_does_not_change_verdict(self, example4_sigma):
        forward = IncrementalSat(example4_sigma)
        backward = IncrementalSat(list(reversed(example4_sigma)))
        assert forward.satisfiable == backward.satisfiable == False  # noqa: E712

    def test_cross_component_interaction(self):
        """A later GFD's consequent wakes a deferred match of an earlier
        one parked in a different component."""
        sigma = parse_gfds(
            """
            gfd waiting { x: a; when x.A = 1; then x.B = 1, x.B = 2; }
            gfd trigger { x: a; then x.A = 1; }
            """
        )
        state = IncrementalSat()
        assert state.add(sigma[0]).satisfiable
        assert not state.add(sigma[1]).satisfiable

    def test_disconnected_pattern_falls_back(self):
        sigma = parse_gfds(
            """
            gfd conn { x: a; then x.A = 1; }
            gfd disc { x: a; y: b; then x.A = 2; }
            """
        )
        state = IncrementalSat()
        state.add(sigma[0])
        step = state.add(sigma[1])
        assert step.recomputed
        assert not state.satisfiable  # x.A forced to both 1 and 2

    def test_conflict_chain_incrementally(self):
        chain = conflict_chain(4)
        state = IncrementalSat()
        for gfd in chain[:-1]:
            assert state.add(gfd).satisfiable
        assert not state.add(chain[-1]).satisfiable

    def test_sigma_property(self):
        sigma = parse_gfds("gfd g { x: a; then x.A = 1; }")
        state = IncrementalSat(sigma)
        assert [g.name for g in state.sigma] == ["g"]


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_incremental_agrees_with_batch(seed):
    """Property: adding GFDs one by one reaches the batch verdict."""
    sigma = random_gfds(
        10, max_pattern_nodes=4, max_literals=3, seed=seed, consistent=False
    )
    state = IncrementalSat()
    for gfd in sigma:
        state.add(gfd)
    assert state.satisfiable == seq_sat(sigma).satisfiable


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_incremental_prefix_consistency(seed):
    """Property: every intermediate verdict matches batch SeqSat on the
    prefix added so far (and conflicts are monotone)."""
    sigma = random_gfds(
        8, max_pattern_nodes=4, max_literals=3, seed=seed, consistent=False
    )
    state = IncrementalSat()
    seen_conflict = False
    for index, gfd in enumerate(sigma):
        step = state.add(gfd)
        expected = seq_sat(sigma[: index + 1]).satisfiable
        assert step.satisfiable == expected
        if seen_conflict:
            assert not step.satisfiable
        seen_conflict = seen_conflict or not step.satisfiable
