"""The validation service: protocol, sessions, server roundtrips, CLI.

The asyncio server runs on a dedicated event loop in a background thread
(``loop.run_forever``); tests talk to it over real sockets with
:class:`ServeClient`, exactly like an external client would. The standing
process-pool path gets its own (slower) test class; the CLI test drives
``gfd-reason serve`` as a subprocess.
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import PropertyGraph
from repro.serve import (
    ServeClient,
    ServerConfig,
    SessionQuota,
    ValidationServer,
)
from repro.serve.client import ServeRequestError
from repro.serve.protocol import apply_wire_ops, decode, encode
from repro.serve.session import QuotaExceeded, Session

RULES = """
gfd same_city_same_zip {
    x: person; y: person; z: city;
    x -[lives_in]-> z; y -[lives_in]-> z;
    when x.name = y.name;
    then x.zip = y.zip;
}
"""

UNSAT_RULES = """
gfd yes { x: item; then x.price = 1; }
gfd no { x: item; then x.price = 2; }
"""

SEED_OPS = [
    {"kind": "add_node", "id": "c1", "label": "city", "attrs": {"name": "pisa"}},
    {"kind": "add_node", "id": "p1", "label": "person", "attrs": {"name": "ada", "zip": 1}},
    {"kind": "add_node", "id": "p2", "label": "person", "attrs": {"name": "ada", "zip": 2}},
    {"kind": "add_edge", "src": "p1", "dst": "c1", "label": "lives_in"},
    {"kind": "add_edge", "src": "p2", "dst": "c1", "label": "lives_in"},
]


# ----------------------------------------------------------------------
# Harness: server on a background event loop, clients over real sockets
# ----------------------------------------------------------------------
class ServerHarness:
    def __init__(self, config: ServerConfig, graph: PropertyGraph | None = None):
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self.server = ValidationServer(graph, config)
        self.host, self.port = self.submit(self.server.start()).result(10)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def submit(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def client(self, timeout: float = 30.0) -> ServeClient:
        return ServeClient(self.host, self.port, timeout=timeout)

    def close(self) -> None:
        self.submit(self.server.aclose()).result(60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def harness():
    h = ServerHarness(ServerConfig())
    yield h
    h.close()


# ----------------------------------------------------------------------
# Protocol units (no server needed)
# ----------------------------------------------------------------------
class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"id": 7, "op": "ping"}
        line = encode(message)
        assert line.endswith(b"\n")
        assert decode(line) == message

    def test_decode_rejects_junk(self):
        from repro.serve.protocol import ProtocolError

        with pytest.raises(ProtocolError):
            decode(b"not json\n")
        with pytest.raises(ProtocolError):
            decode(b"[1, 2]\n")

    def test_apply_wire_ops_full_batch(self):
        graph = PropertyGraph()
        applied, assigned, error = apply_wire_ops(graph, SEED_OPS)
        assert (applied, error) == (len(SEED_OPS), None)
        assert assigned == []
        assert graph.num_nodes == 3 and graph.num_edges == 2

    def test_apply_wire_ops_assigns_ids(self):
        graph = PropertyGraph()
        applied, assigned, error = apply_wire_ops(
            graph, [{"kind": "add_node", "label": "a"}, {"kind": "add_node", "label": "b"}]
        )
        assert (applied, error) == (2, None)
        assert len(assigned) == 2
        assert all(graph.has_node(node_id) for node_id in assigned)

    def test_apply_wire_ops_stops_at_first_bad_op(self):
        graph = PropertyGraph()
        ops = [
            {"kind": "add_node", "id": "a", "label": "x"},
            {"kind": "add_node", "id": "a", "label": "x"},  # duplicate
            {"kind": "add_node", "id": "b", "label": "x"},  # never reached
        ]
        applied, _, error = apply_wire_ops(graph, ops)
        assert applied == 1
        assert error is not None
        assert not graph.has_node("b")

    def test_apply_wire_ops_rejects_unknown_kind(self):
        applied, _, error = apply_wire_ops(PropertyGraph(), [{"kind": "set_attr"}])
        assert applied == 0
        assert "set_attr" in error


# ----------------------------------------------------------------------
# Session quota units
# ----------------------------------------------------------------------
class TestSessionQuotas:
    def test_request_budget(self):
        session = Session(SessionQuota(max_requests=2))
        session.admit_request()
        session.admit_request()
        with pytest.raises(QuotaExceeded):
            session.admit_request()
        assert session.rejected == 1

    def test_mutation_budget_counts_ops_not_batches(self):
        session = Session(SessionQuota(max_mutation_ops=5))
        session.admit_mutations(3)
        with pytest.raises(QuotaExceeded):
            session.admit_mutations(3)  # 3 + 3 > 5
        session.admit_mutations(2)  # exactly at the budget

    def test_inflight_cap(self):
        session = Session(SessionQuota(max_inflight=1))
        session.begin_query()
        with pytest.raises(QuotaExceeded):
            session.begin_query()
        session.end_query()
        session.begin_query()  # slot freed


# ----------------------------------------------------------------------
# Server roundtrips
# ----------------------------------------------------------------------
class TestServerRoundtrips:
    def test_ping_reports_protocol_and_session(self, harness):
        with harness.client() as client:
            pong = client.ping()
            assert pong["protocol"] == 1
            assert pong["version"] == 0

    def test_mutate_then_validate_sees_the_writes(self, harness):
        with harness.client() as client:
            ack = client.mutate(SEED_OPS)
            assert ack["applied"] == len(SEED_OPS)
            assert ack["version"] == len(SEED_OPS)
            result = client.validate(RULES)
            assert result["violation_count"] == 2  # both directions of (p1, p2)
            assert result["pinned_version"] == len(SEED_OPS)

    def test_validate_pins_the_admission_version(self, harness):
        with harness.client() as client:
            client.mutate(SEED_OPS)
            first = client.validate(RULES)
            # Repair: the conflicting person moves to its own city.
            client.mutate(
                [
                    {"kind": "add_node", "id": "c2", "label": "city"},
                    {"kind": "set_label", "id": "p2", "label": "visitor"},
                ]
            )
            second = client.validate(RULES)
            assert second["pinned_version"] == first["pinned_version"] + 2
            assert second["violation_count"] == 0

    def test_explain_reuses_last_validate(self, harness):
        with harness.client() as client:
            client.mutate(SEED_OPS)
            client.validate(RULES)
            explained = client.explain(violation=0)
            assert explained["violation_count"] == 2
            assert len(explained["explanations"]) == 1
            explanation = explained["explanations"][0]
            assert explanation["rules_involved"] == ["same_city_same_zip"]
            assert explanation["evidence"]
            assert isinstance(explanation["steps"], list)

    def test_explain_without_a_store_is_a_client_error(self, harness):
        with harness.client() as client:
            with pytest.raises(ServeRequestError) as exc:
                client.explain()
            assert exc.value.code == "bad_request"

    def test_sat_and_unsat_with_conflict(self, harness):
        with harness.client() as client:
            ok = client.sat(RULES)
            assert ok["satisfiable"] is True
            assert ok["backend"] == "seq"
            bad = client.sat(UNSAT_RULES)
            assert bad["satisfiable"] is False
            assert bad["conflict"] is not None

    def test_imp(self, harness):
        with harness.client() as client:
            result = client.imp(
                RULES,
                """
                gfd narrowed {
                    x: person; y: person; z: city;
                    x -[lives_in]-> z; y -[lives_in]-> z;
                    when x.name = y.name; when x.age = y.age;
                    then x.zip = y.zip;
                }
                """,
            )
            assert result["implied"] is True

    def test_bad_rules_are_bad_request_not_internal(self, harness):
        with harness.client() as client:
            with pytest.raises(ServeRequestError) as exc:
                client.validate("this is not the DSL")
            assert exc.value.code == "bad_request"

    def test_unknown_op_is_bad_request(self, harness):
        with harness.client() as client:
            with pytest.raises(ServeRequestError) as exc:
                client.request("frobnicate")
            assert exc.value.code == "bad_request"

    def test_partial_mutation_batch_reports_applied_count(self, harness):
        with harness.client() as client:
            with pytest.raises(ServeRequestError) as exc:
                client.mutate(
                    [
                        {"kind": "add_node", "id": "n", "label": "a"},
                        {"kind": "add_node", "id": "n", "label": "a"},
                    ]
                )
            assert exc.value.code == "bad_request"
            assert exc.value.response["applied"] == 1
            # The landed prefix is durable.
            assert client.ping()["version"] == 1

    def test_stats_counters(self, harness):
        with harness.client() as client:
            client.mutate(SEED_OPS)
            client.validate(RULES)
            stats = client.stats()
            assert stats["nodes"] == 3
            assert stats["counters"]["mutation_batches"] == 1
            assert stats["counters"]["queries_total"] == 1
            assert stats["views"]["pins_total"] == 1
            assert stats["views"]["active_pins"] == 0
            assert stats["session"]["mutation_ops"] == len(SEED_OPS)

    def test_sessions_share_the_graph(self, harness):
        with harness.client() as a, harness.client() as b:
            a.mutate(SEED_OPS)
            assert b.validate(RULES)["violation_count"] == 2

    def test_concurrent_writer_and_readers(self, harness):
        """Queries keep answering consistently while a writer streams."""
        with harness.client() as writer:
            writer.mutate(SEED_OPS)
            errors: list = []

            def read_loop():
                try:
                    with harness.client() as reader:
                        for _ in range(10):
                            result = reader.validate(RULES)
                            if result["violation_count"] < 2:
                                errors.append(result)
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=read_loop) for _ in range(4)]
            for thread in threads:
                thread.start()
            for i in range(30):
                writer.mutate([{"kind": "add_node", "label": "filler"}])
            for thread in threads:
                thread.join(timeout=60)
            assert not errors


class TestServerQuotas:
    def test_request_budget_exhaustion(self):
        harness = ServerHarness(
            ServerConfig(quota=SessionQuota(max_requests=2))
        )
        try:
            with harness.client() as client:
                client.ping()
                client.ping()
                with pytest.raises(ServeRequestError) as exc:
                    client.ping()
                assert exc.value.code == "quota_exceeded"
                # A fresh session gets a fresh budget.
                with harness.client() as other:
                    other.ping()
        finally:
            harness.close()

    def test_mutation_op_budget(self):
        harness = ServerHarness(
            ServerConfig(quota=SessionQuota(max_mutation_ops=3))
        )
        try:
            with harness.client() as client:
                client.mutate([{"kind": "add_node", "label": "a"}] * 3)
                with pytest.raises(ServeRequestError) as exc:
                    client.mutate([{"kind": "add_node", "label": "a"}])
                assert exc.value.code == "quota_exceeded"
        finally:
            harness.close()


class TestExplainStoreScope:
    def test_explain_store_is_per_session(self):
        harness = ServerHarness(ServerConfig())
        try:
            with harness.client() as a, harness.client() as b:
                a.mutate(SEED_OPS)
                a.validate(RULES)
                with pytest.raises(ServeRequestError) as exc:
                    b.request("explain")
                assert exc.value.code == "bad_request"
                assert len(a.explain()["explanations"]) == 2
        finally:
            harness.close()


# ----------------------------------------------------------------------
# The standing process pool (slower: spawns real workers)
# ----------------------------------------------------------------------
class TestParallelQueries:
    def test_parallel_sat_reuses_the_prepared_pool(self):
        harness = ServerHarness(ServerConfig(parallel_workers=2))
        try:
            with harness.client(timeout=120) as client:
                for _ in range(3):
                    result = client.sat(RULES, parallel=True)
                    assert result["satisfiable"] is True
                    assert result["backend"] == "process"
                    assert result["workers"] == 2
                counters = client.stats()["counters"]
                assert counters["prepared_builds"] == 1
                assert counters["prepared_hits"] == 2
        finally:
            harness.close()

    def test_parallel_imp(self):
        harness = ServerHarness(ServerConfig(parallel_workers=2))
        try:
            with harness.client(timeout=120) as client:
                result = client.imp(UNSAT_RULES, "gfd c { x: item; then x.price = 3; }", parallel=True)
                assert result["implied"] is True  # unsat sigma implies anything
        finally:
            harness.close()

    def test_parallel_disabled_is_a_client_error(self, harness):
        with harness.client() as client:
            with pytest.raises(ServeRequestError) as exc:
                client.sat(RULES, parallel=True)
            assert exc.value.code == "bad_request"


# ----------------------------------------------------------------------
# CLI: `gfd-reason serve` end to end
# ----------------------------------------------------------------------
class TestServeCli:
    def test_serve_subcommand(self, tmp_path):
        repo_src = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env={"PYTHONPATH": str(repo_src), "PATH": "/usr/bin:/bin"},
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert line.startswith("serving on "), line
            host, port = line.split()[-1].rsplit(":", 1)
            with ServeClient(host, int(port), timeout=30) as client:
                client.mutate(SEED_OPS)
                assert client.validate(RULES)["violation_count"] == 2
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                proc.kill()
                proc.wait()
