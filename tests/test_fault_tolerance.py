"""Supervision layer: crash, hang, retry/quarantine, respawn, degradation.

Every scenario injects failures through a deterministic
:class:`~repro.parallel.faults.FaultPlan` and asserts the run still
reaches the *same verdict* as the clean sequential algorithms — the
supervision contract is that faults cost time, never correctness (except
quarantine, which deliberately drops work and therefore only appears in
satisfiable scenarios here, where dropping units cannot flip the
verdict).
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import RuntimeConfigError, WorkerFault, WorkerPoolError
from repro.gfd.generator import delta_hub_workload, random_gfds
from repro.parallel import (
    FaultEvent,
    FaultPlan,
    InjectedFault,
    RetryTracker,
    RuntimeConfig,
    available_backends,
    par_imp,
    par_sat,
)
from repro.reasoning.seqimp import seq_imp
from repro.reasoning.seqsat import seq_sat
from repro.reasoning.workunits import WorkUnit

ALL_BACKENDS = available_backends()

#: Short wall deadlines so hang scenarios resolve in test time.
FAST_TIMEOUT = dict(batch_timeout_seconds=1.0, respawn_backoff_seconds=0.01)


def _delta_hub():
    return delta_hub_workload(
        num_hubs=3, spokes_per_hub=6, num_writers=4, num_pairers=2,
        num_background=6, seed=7,
    )


# ----------------------------------------------------------------------
# The fault-injection module itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_event_lookup_by_slot(self):
        plan = FaultPlan.make(
            [FaultEvent("crash", 1, 2), FaultEvent("slow", 0, 0, seconds=0.5)]
        )
        assert plan.event_at(1, 2).kind == "crash"
        assert plan.event_at(0, 0).stall_seconds == 0.5
        assert plan.event_at(0, 1) is None
        assert bool(plan)
        assert not bool(FaultPlan.make())

    def test_duplicate_slot_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.make([FaultEvent("crash", 0, 0), FaultEvent("hang", 0, 0)])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("explode", 0, 0)

    def test_poison_by_uid_and_gfd_name(self):
        unit = WorkUnit.make("phi7", {"x": 1})
        by_uid = FaultPlan.make(poisoned=[unit.uid])
        by_name = FaultPlan.make(poisoned=["phi7"])
        clean = FaultPlan.make(poisoned=["phi8"])
        assert by_uid.poisons(unit) and by_name.poisons(unit)
        assert not clean.poisons(unit)
        with pytest.raises(InjectedFault):
            by_name.check_unit(unit)
        clean.check_unit(unit)  # no raise

    def test_pickle_round_trip_rebuilds_slot_index(self):
        plan = FaultPlan.make([FaultEvent("hang", 2, 1)], poisoned=["phi1"])
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.event_at(2, 1).kind == "hang"
        assert clone.poisons(WorkUnit.make("phi1", {"x": 1}))

    def test_random_plan_is_seeded_and_recoverable(self):
        one = FaultPlan.random(seed=11, workers=4, events=3)
        two = FaultPlan.random(seed=11, workers=4, events=3)
        other = FaultPlan.random(seed=12, workers=4, events=3)
        assert one == two
        assert one != other
        assert len(one.events) == 3
        assert not one.poisoned
        assert all(e.kind in ("crash", "error", "slow") for e in one.events)

    def test_retry_tracker_budget(self):
        unit = WorkUnit.make("phi7", {"x": 1})
        tracker = RetryTracker(max_retries=2)
        assert tracker.record_failure(unit)   # attempt 1 -> retry
        assert tracker.record_failure(unit)   # attempt 2 -> retry
        assert not tracker.record_failure(unit)  # attempt 3 -> quarantine
        assert tracker.attempts(unit) == 3
        assert tracker.total_failures == 3


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_unit_retries=-1),
            dict(batch_timeout_seconds=0.0),
            dict(batch_timeout_floor=0.0),
            dict(batch_timeout_factor=0.0),
            dict(max_worker_respawns=-1),
            dict(respawn_backoff_seconds=-0.1),
            dict(min_live_workers=-1),
            dict(min_live_workers=3),  # exceeds workers=2
        ],
    )
    def test_bad_supervision_knobs_rejected(self, kwargs):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(workers=2, **kwargs)

    def test_batch_deadline(self):
        config = RuntimeConfig(workers=2)
        # No history: the floor holds.
        assert config.batch_deadline() == config.batch_timeout_floor
        # History: factor x slowest observed round trip, once past the floor.
        slow = config.batch_timeout_floor
        assert config.batch_deadline(slow) == config.batch_timeout_factor * slow
        # An explicit timeout wins over the adaptive rule.
        fixed = RuntimeConfig(workers=2, batch_timeout_seconds=1.5)
        assert fixed.batch_deadline(1000.0) == 1.5

    def test_typed_pool_error_attributes(self):
        err = WorkerPoolError("collapsed", live_workers=1, dead_workers=3)
        assert err.live_workers == 1 and err.dead_workers == 3
        err2 = WorkerFault("boom", worker_id=2, unit_uid="u", worker_traceback="tb")
        assert (err2.worker_id, err2.unit_uid, err2.worker_traceback) == (2, "u", "tb")


# ----------------------------------------------------------------------
# Crash / hang / respawn on the process backend (real OS processes)
# ----------------------------------------------------------------------
class TestProcessSupervision:
    def test_crash_mid_batch_preserves_verdict(self):
        sigma = _delta_hub()
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(
            workers=4,
            fault_plan=FaultPlan.single("crash", worker_id=1, batch_index=1),
            **FAST_TIMEOUT,
        )
        result = par_sat(sigma, config, backend="process")
        assert result.satisfiable == expected
        assert result.outcome.worker_deaths >= 1
        assert not result.outcome.quarantined

    def test_hang_past_deadline_is_killed(self):
        sigma = _delta_hub()
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(
            workers=4,
            fault_plan=FaultPlan.single("hang", worker_id=0, batch_index=0),
            **FAST_TIMEOUT,
        )
        result = par_sat(sigma, config, backend="process")
        assert result.satisfiable == expected
        assert result.outcome.worker_deaths >= 1
        # The hung worker sleeps for an hour; only hang detection can have
        # ended the run this fast.
        assert result.outcome.wall_seconds < 60.0

    def test_respawn_then_converge(self):
        sigma = _delta_hub()
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(
            workers=4,
            max_worker_respawns=2,
            fault_plan=FaultPlan.single("crash", worker_id=2, batch_index=0),
            **FAST_TIMEOUT,
        )
        result = par_sat(sigma, config, backend="process")
        assert result.satisfiable == expected
        assert result.outcome.respawns >= 1
        assert result.outcome.worker_deaths >= 1

    def test_sole_worker_respawns_instead_of_degrading(self):
        """With workers=1 a crash empties the pool; the pending respawn's
        backoff must be waited out (not slept inline in bury) and the
        revived replica — not the degradation path — finishes the run."""
        sigma = _delta_hub()
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(
            workers=1,
            max_worker_respawns=1,
            fault_plan=FaultPlan.single("crash", worker_id=0, batch_index=0),
            **FAST_TIMEOUT,
        )
        result = par_sat(sigma, config, backend="process")
        assert result.satisfiable == expected
        assert result.outcome.respawns == 1
        assert result.outcome.worker_deaths == 1
        assert not result.outcome.degraded

    def test_worker_error_event_retries_not_aborts(self):
        sigma = _delta_hub()
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(
            workers=3,
            fault_plan=FaultPlan.single("error", worker_id=0, batch_index=0),
            **FAST_TIMEOUT,
        )
        result = par_sat(sigma, config, backend="process")
        assert result.satisfiable == expected
        # The injected error is transient (fires once), so the unit's
        # retry succeeds and nothing is quarantined.
        assert result.outcome.retries >= 1
        assert not result.outcome.quarantined

    def test_degradation_when_pool_collapses(self):
        sigma = _delta_hub()
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(
            workers=2,
            max_worker_respawns=0,
            fault_plan=FaultPlan.make(
                [FaultEvent("crash", 0, 0), FaultEvent("crash", 1, 0)]
            ),
            **FAST_TIMEOUT,
        )
        result = par_sat(sigma, config, backend="process")
        assert result.satisfiable == expected
        assert result.outcome.degraded
        assert result.outcome.worker_deaths == 2

    def test_degradation_below_min_live_workers(self):
        sigma = _delta_hub()
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(
            workers=2,
            min_live_workers=2,
            max_worker_respawns=0,
            fault_plan=FaultPlan.single("crash", worker_id=1, batch_index=0),
            **FAST_TIMEOUT,
        )
        result = par_sat(sigma, config, backend="process")
        assert result.satisfiable == expected
        assert result.outcome.degraded
        assert result.outcome.worker_deaths == 1

    def test_strict_faults_raises_typed_error(self):
        sigma = _delta_hub()
        config = RuntimeConfig(
            workers=3,
            strict_faults=True,
            fault_plan=FaultPlan.single("crash", worker_id=0, batch_index=0),
            **FAST_TIMEOUT,
        )
        with pytest.raises(WorkerFault):
            par_sat(sigma, config, backend="process")


# ----------------------------------------------------------------------
# Retry / quarantine on every backend
# ----------------------------------------------------------------------
class TestQuarantine:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_poisoned_unit_is_quarantined_with_traceback(self, backend):
        sigma = _delta_hub()
        assert seq_sat(sigma).satisfiable  # dropping units cannot flip SAT
        config = RuntimeConfig(
            workers=3,
            max_unit_retries=1,
            fault_plan=FaultPlan.make(poisoned=["bg0"]),
            **FAST_TIMEOUT,
        )
        result = par_sat(sigma, config, backend=backend)
        assert result.satisfiable
        outcome = result.outcome
        assert len(outcome.quarantined) == 1, backend
        boxed = outcome.quarantined[0]
        assert boxed.unit.gfd_name == "bg0"
        assert boxed.attempts == config.max_unit_retries + 1
        assert "InjectedFault" in boxed.error  # the worker-side traceback
        assert outcome.retries >= config.max_unit_retries

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_strict_faults_poison_raises(self, backend):
        sigma = _delta_hub()
        config = RuntimeConfig(
            workers=3,
            strict_faults=True,
            fault_plan=FaultPlan.make(poisoned=["bg0"]),
            **FAST_TIMEOUT,
        )
        with pytest.raises(WorkerFault):
            par_sat(sigma, config, backend=backend)


# ----------------------------------------------------------------------
# Crash/degradation on the in-process backends
# ----------------------------------------------------------------------
class TestInProcessBackendSupervision:
    @pytest.mark.parametrize("backend", ["simulated", "threaded"])
    def test_single_crash_survivors_finish(self, backend):
        sigma = _delta_hub()
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(
            workers=3,
            fault_plan=FaultPlan.single("crash", worker_id=1, batch_index=0),
        )
        result = par_sat(sigma, config, backend=backend)
        assert result.satisfiable == expected
        assert result.outcome.worker_deaths == 1
        assert not result.outcome.degraded

    @pytest.mark.parametrize("backend", ["simulated", "threaded"])
    def test_all_workers_dead_degrades(self, backend):
        sigma = _delta_hub()
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(
            workers=2,
            fault_plan=FaultPlan.make(
                [FaultEvent("crash", 0, 0), FaultEvent("hang", 1, 0)]
            ),
        )
        result = par_sat(sigma, config, backend=backend)
        assert result.satisfiable == expected
        assert result.outcome.degraded
        assert result.outcome.worker_deaths == 2
        assert result.outcome.units_executed > 0

    @pytest.mark.parametrize("backend", ["simulated", "threaded"])
    def test_strict_faults_raises(self, backend):
        sigma = _delta_hub()
        config = RuntimeConfig(
            workers=2,
            strict_faults=True,
            fault_plan=FaultPlan.single("crash", worker_id=0, batch_index=0),
        )
        with pytest.raises(WorkerFault):
            par_sat(sigma, config, backend=backend)

    def test_slow_event_charges_virtual_clock(self):
        sigma = random_gfds(10, 4, 3, seed=3)
        clean = par_sat(sigma, RuntimeConfig(workers=2), backend="simulated")
        slowed = par_sat(
            sigma,
            RuntimeConfig(
                workers=2,
                fault_plan=FaultPlan.single("slow", worker_id=0, batch_index=0, seconds=5.0),
            ),
            backend="simulated",
        )
        assert slowed.satisfiable == clean.satisfiable
        # The stalled worker holds the makespan at >= its 5s stall (its
        # peers absorb the queue meanwhile, so the clean makespan does
        # not simply add on top).
        assert slowed.virtual_seconds >= 5.0 > clean.virtual_seconds


# ----------------------------------------------------------------------
# The ISSUE's acceptance scenario: kill 1 of 4 + poison one unit
# ----------------------------------------------------------------------
class TestAcceptanceScenario:
    PLAN = FaultPlan.make(
        [FaultEvent("crash", 1, 2)],  # kill 1 of 4 workers mid-run
        poisoned=["bg0"],             # and poison one unit
    )

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_par_sat_delta_hub(self, backend):
        sigma = _delta_hub()
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(workers=4, fault_plan=self.PLAN, **FAST_TIMEOUT)
        result = par_sat(sigma, config, backend=backend)
        assert result.satisfiable == expected, backend
        assert len(result.outcome.quarantined) == 1
        assert result.outcome.quarantined[0].unit.gfd_name == "bg0"

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_par_imp_under_faults(self, backend):
        sigma = random_gfds(10, 4, 3, seed=5)
        phi = sigma[-1]
        rest = [gfd for gfd in sigma if gfd.name != phi.name]
        expected = seq_imp(rest, phi).implied
        config = RuntimeConfig(
            workers=4,
            fault_plan=FaultPlan.single("crash", worker_id=0, batch_index=0),
            **FAST_TIMEOUT,
        )
        result = par_imp(rest, phi, config, backend=backend)
        assert result.implied == expected, backend
