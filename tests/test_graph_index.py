"""Unit tests for the compiled :class:`GraphIndex` snapshot."""

import pytest

from repro import PropertyGraph
from repro.graph.index import EMPTY_GROUP, NO_LABEL, GraphIndex


@pytest.fixture
def graph():
    g = PropertyGraph()
    a = g.add_node("person")  # 0
    b = g.add_node("person")  # 1
    c = g.add_node("city")  # 2
    g.add_edge(a, b, "knows")
    g.add_edge(a, c, "lives_in")
    g.add_edge(b, c, "lives_in")
    g.add_edge(a, b, "likes")  # second label on the same pair
    return g


class TestBuild:
    def test_label_grouped_adjacency(self, graph):
        index = graph.index()
        knows = index.label_id("knows")
        lives = index.label_id("lives_in")
        assert list(index.out_neighbors(0, knows)) == [1]
        assert list(index.out_neighbors(0, lives)) == [2]
        assert list(index.in_neighbors(2, lives)) == [0, 1]
        assert index.out_neighbors(2, knows) is EMPTY_GROUP

    def test_any_label_groups_dedup_in_order(self, graph):
        index = graph.index()
        # Node 0 has edges to 1 (knows), 2 (lives_in), 1 (likes): the
        # any-label group keeps first-occurrence order without duplicates.
        assert list(index.out_neighbors(0, None)) == [1, 2]
        assert list(index.in_neighbors(1, None)) == [0]

    def test_label_buckets_insertion_order(self, graph):
        index = graph.index()
        assert list(index.nodes_with_label("person")) == [0, 1]
        assert list(index.nodes_with_label("city")) == [2]
        assert index.nodes_with_label("ghost") is EMPTY_GROUP
        assert index.label_id("ghost") == NO_LABEL

    def test_positions_and_nodes(self, graph):
        index = graph.index()
        assert list(index.nodes) == [0, 1, 2]
        assert index.position == {0: 0, 1: 1, 2: 2}

    def test_degrees(self, graph):
        index = graph.index()
        assert index.out_degree[0] == 3  # knows, lives_in, likes
        assert index.in_degree[2] == 2


class TestCachingAndMaintenance:
    def test_index_is_cached_between_mutations(self, graph):
        assert graph.index() is graph.index()

    def test_add_node_is_absorbed_in_place(self, graph):
        first = graph.index()
        graph.add_node("person")
        assert first.stale  # journal pending
        second = graph.index()
        assert second is first  # delta path: same object, maintained
        assert not second.stale
        assert list(second.nodes_with_label("person")) == [0, 1, 3]

    def test_add_edge_is_absorbed_in_place(self, graph):
        first = graph.index()
        graph.add_edge(1, 0, "knows")
        assert graph.index() is first
        assert list(graph.index().out_neighbors(1, graph.index().label_id("knows"))) == [0]

    def test_duplicate_edge_is_not_journaled(self, graph):
        first = graph.index()
        graph.add_edge(0, 1, "knows")  # duplicate triple: ignored
        assert graph.pending_delta_ops == 0
        assert graph.index() is first and not first.stale

    def test_set_attr_is_not_journaled(self, graph):
        first = graph.index()
        graph.set_attr(0, "name", "ada")
        assert graph.pending_delta_ops == 0
        assert graph.index() is first and not first.stale

    def test_mutation_count_monotone(self, graph):
        before = graph.mutation_count
        graph.add_node("x")
        graph.add_edge(0, 1, "new_label")
        assert graph.mutation_count == before + 2

    def test_delta_disabled_rebuilds_from_scratch(self, graph):
        graph.index_delta_enabled = False
        first = graph.index()
        graph.add_node("person")
        second = graph.index()
        assert second is not first
        assert first.stale and not second.stale
        assert list(second.nodes_with_label("person")) == [0, 1, 3]

    def test_compaction_rebuilds_past_threshold(self, graph):
        graph.INDEX_COMPACTION_MIN = 2  # shrink the floor for the test
        first = graph.index()
        for _ in range(8):  # journal (8) > max(2, 0.25 * |G|) -> compaction
            graph.add_node("person")
        second = graph.index()
        assert second is not first
        assert not second.stale and graph.pending_delta_ops == 0


class TestSharedSentinels:
    def test_edge_labels_between_miss_is_shared_frozenset(self, graph):
        miss_a = graph.edge_labels_between(2, 0)
        miss_b = graph.edge_labels_between(99, 98)
        assert miss_a == frozenset()
        assert miss_a is miss_b  # no per-miss allocation

    def test_edge_miss_sentinel_is_immutable(self, graph):
        with pytest.raises(AttributeError):
            graph.edge_labels_between(2, 0).add("boom")

    def test_out_in_edges_miss_is_shared_empty(self, graph):
        assert graph.out_edges("nope") is graph.out_edges("also-nope")
        assert graph.in_edges("nope") is graph.in_edges("also-nope")
        assert list(graph.out_edges("nope")) == []

    def test_hit_still_returns_real_labels(self, graph):
        assert graph.edge_labels_between(0, 1) == {"knows", "likes"}
