"""Unit tests for the GFD text DSL and JSON serialization."""

import pytest

from repro.errors import ParseError
from repro.gfd import FALSE, parse_gfd, parse_gfds, render_gfd, render_gfds
from repro.gfd.literals import ConstantLiteral, VariableLiteral
from repro.gfd.parser import dump_gfds, gfd_from_dict, gfd_to_dict, load_gfds


class TestParsing:
    def test_single_line_gfd(self):
        gfd = parse_gfd("gfd g { x: a; then x.A = 1; }")
        assert gfd.name == "g"
        assert gfd.pattern.label_of("x") == "a"
        assert gfd.consequent == (ConstantLiteral("x", "A", 1),)

    def test_multi_line_with_comments(self):
        gfd = parse_gfd(
            """
            # a comment
            gfd g {
                x: a;  # trailing comment
                y: b;
                x -[knows]-> y;
                when x.A = 1;
                then x.B = y.C;
            }
            """
        )
        assert gfd.antecedent == (ConstantLiteral("x", "A", 1),)
        assert gfd.consequent == (VariableLiteral("x", "B", "y", "C"),)
        assert gfd.pattern.edges[0].label == "knows"

    def test_multiple_gfds(self):
        gfds = parse_gfds(
            "gfd g1 { x: a; then x.A = 1; }\ngfd g2 { y: b; then y.B = 2; }"
        )
        assert [g.name for g in gfds] == ["g1", "g2"]

    def test_false_consequent(self):
        gfd = parse_gfd("gfd g { x: a; then false; }")
        assert gfd.consequent == (FALSE,)

    def test_value_types(self):
        gfd = parse_gfd(
            'gfd g { x: a; then x.A = 1, x.B = 1.5, x.C = "two words", '
            "x.D = bare, x.E = true, x.F = false; }"
        )
        values = {lit.attr: lit.value for lit in gfd.consequent}
        assert values == {"A": 1, "B": 1.5, "C": "two words", "D": "bare", "E": True, "F": False}

    def test_quoted_string_with_comma(self):
        gfd = parse_gfd('gfd g { x: a; then x.A = "a, b", x.B = 2; }')
        values = {lit.attr: lit.value for lit in gfd.consequent}
        assert values == {"A": "a, b", "B": 2}

    def test_wildcard_label(self):
        gfd = parse_gfd("gfd g { x: _; then x.A = 1; }")
        assert gfd.pattern.is_wildcard_var("x")


class TestParseErrors:
    def test_garbage_header(self):
        with pytest.raises(ParseError):
            parse_gfds("not a gfd")

    def test_missing_close_brace(self):
        with pytest.raises(ParseError):
            parse_gfds("gfd g { x: a;")

    def test_bad_statement(self):
        with pytest.raises(ParseError):
            parse_gfds("gfd g { x: a; what is this; }")

    def test_bad_literal(self):
        with pytest.raises(ParseError):
            parse_gfds("gfd g { x: a; then nonsense; }")

    def test_parse_gfd_requires_exactly_one(self):
        with pytest.raises(ParseError):
            parse_gfd("gfd a { x: a; then x.A = 1; } gfd b { y: b; then y.B = 1; }")

    def test_error_carries_line_number(self):
        try:
            parse_gfds("gfd g {\n x: a;\n junk;\n}")
        except ParseError as exc:
            assert exc.line == 3
        else:  # pragma: no cover
            pytest.fail("expected ParseError")


class TestRendering:
    def test_render_parse_round_trip(self, example4_sigma):
        text = render_gfds(example4_sigma)
        reparsed = parse_gfds(text)
        assert reparsed == example4_sigma

    def test_render_escapes_strings(self):
        gfd = parse_gfd('gfd g { x: a; then x.A = "say \\"hi\\""; }')
        round_tripped = parse_gfd(render_gfd(gfd))
        assert round_tripped.consequent == gfd.consequent

    def test_render_booleans(self):
        gfd = parse_gfd("gfd g { x: a; then x.A = true; }")
        assert "true" in render_gfd(gfd)
        assert parse_gfd(render_gfd(gfd)) == gfd


class TestJsonRoundTrip:
    def test_dict_round_trip(self, example8_sigma):
        for gfd in example8_sigma:
            assert gfd_from_dict(gfd_to_dict(gfd)) == gfd

    def test_file_round_trip(self, example4_sigma, tmp_path):
        path = tmp_path / "sigma.json"
        dump_gfds(example4_sigma, path)
        restored = load_gfds(path)
        assert restored == list(example4_sigma)
        assert [g.name for g in restored] == [g.name for g in example4_sigma]

    def test_false_literal_round_trip(self):
        gfd = parse_gfd("gfd g { x: a; then false; }")
        assert gfd_from_dict(gfd_to_dict(gfd)) == gfd

    def test_load_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nodes": {}}')
        with pytest.raises(ParseError):
            load_gfds(path)
