"""Unit tests for the canonical-graph component index."""

from repro.gfd import build_canonical_graph, make_pattern, parse_gfds
from repro.graph.elements import WILDCARD
from repro.matching.component_index import ComponentIndex
from repro.matching.homomorphism import has_homomorphism


class TestComponentIndex:
    def test_components_match_gfd_copies(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        index = ComponentIndex(canonical.graph)
        assert index.num_components() == 3
        # Every node of one GFD copy shares a component.
        for gfd in example4_sigma:
            ids = {
                index.component_of(canonical.node_for(gfd.name, var))
                for var in gfd.pattern.variables
            }
            assert len(ids) == 1

    def test_signature_filter_sound(self, example4_sigma):
        """If the signature filter rejects, no homomorphism exists there."""
        canonical = build_canonical_graph(example4_sigma)
        index = ComponentIndex(canonical.graph)
        for gfd in example4_sigma:
            for comp_id in range(index.num_components()):
                if not index.pattern_compatible(gfd.pattern, comp_id):
                    sub_nodes = index.nodes_of(comp_id)
                    sub = canonical.graph.subgraph(sub_nodes)
                    assert not has_homomorphism(gfd.pattern, sub)

    def test_wildcard_pattern_compatible_everywhere_with_edges(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        index = ComponentIndex(canonical.graph)
        pattern = make_pattern({"x": WILDCARD, "y": WILDCARD}, [("x", "y", WILDCARD)])
        assert index.candidate_components(pattern) == list(range(3))

    def test_wildcard_edge_needs_some_edge(self):
        sigma = parse_gfds("gfd iso { x: a; then x.A = 1; }")
        canonical = build_canonical_graph(sigma)
        index = ComponentIndex(canonical.graph)
        pattern = make_pattern({"x": WILDCARD, "y": WILDCARD}, [("x", "y", WILDCARD)])
        assert index.candidate_components(pattern) == []

    def test_missing_edge_label_rejected(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        index = ComponentIndex(canonical.graph)
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "ghostlabel")])
        assert index.candidate_components(pattern) == []

    def test_compatible_with_pivot(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        index = ComponentIndex(canonical.graph)
        phi7 = canonical.gfds["phi7"]
        pivot = canonical.node_for("phi9", "x")
        assert index.compatible_with_pivot(phi7.pattern, pivot)
