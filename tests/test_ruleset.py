"""Rule-set compilation tests: trie properties + differential fuzz.

The :class:`~repro.matching.ruleset.RuleSetPlan` contract has three parts,
each tested here against the per-rule path as the correctness oracle:

* **construction** — shared prefixes merge on ``step_signature``, merging
  is insensitive to rule insertion order (same per-rule paths, same node
  count), and every rule ends at exactly one leaf;
* **streams** — the per-GFD projection of one trie walk is byte-identical
  to that rule's own :class:`MatcherRun` stream, unpivoted and pivoted,
  and the sequential reasoning layers (``seq_sat`` / ``seq_imp`` /
  ``detect_errors`` / :class:`IncrementalSat`) return identical verdicts
  (and identical violation lists / step outcomes) with the flag on or off;
* **parallel** — grouped work units produce the same verdicts as per-rule
  units on all three backends, under a seeded :class:`FaultPlan`, and
  with the affinity scheduler on or off; TTL breaches degroup instead of
  losing work.

Epoch discipline gets its own section: a watched absent label appearing
via ``apply_delta`` must rebuild the trie, and the rebuilt walk must agree
with a freshly constructed plan.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gfd.canonical import build_canonical_graph
from repro.gfd.generator import GFDGenerator, GFDVocabulary, add_random_conflicts, random_gfds
from repro.gfd.gfd import make_gfd
from repro.gfd.pattern import make_pattern
from repro.graph.graph import PropertyGraph
from repro.matching.homomorphism import MatcherRun
from repro.matching.plan import get_plan
from repro.matching.ruleset import PIVOT_SLOT, RuleSetPlan, pivot_signature
from repro.parallel import RuntimeConfig, par_sat
from repro.parallel.faults import FaultPlan
from repro.parallel.parimp import par_imp
from repro.reasoning.incremental import IncrementalSat
from repro.reasoning.seqimp import seq_imp
from repro.reasoning.seqsat import seq_sat
from repro.reasoning.validation import detect_errors, extract_model
from repro.reasoning.workunits import choose_pivot, generate_grouped_work_units


def small_sigma(seed, count=14, consistent=True):
    vocabulary = GFDVocabulary.default(
        num_labels=5, num_edge_labels=3, num_attributes=4
    )
    generator = GFDGenerator(vocabulary, seed=seed)
    return generator.generate(count, max_pattern_nodes=4, consistent=consistent)


def nontrivial(sigma):
    return [gfd for gfd in sigma if not gfd.is_trivial()]


def rule_paths(plan):
    """name -> the sequence of step signatures along its trie path."""
    paths = {name: [] for name in plan.gfds}
    stack = [(node, [node.signature]) for node in plan.roots.values()]
    while stack:
        node, prefix = stack.pop()
        for leaf in node.leaves:
            paths[leaf.gfd_name] = prefix
        for child in node.children.values():
            stack.append((child, prefix + [child.signature]))
    return paths


class TestTrieConstruction:
    def test_every_rule_reaches_exactly_one_leaf(self):
        sigma = nontrivial(small_sigma(seed=3, count=20))
        graph = build_canonical_graph(sigma).graph
        plan = RuleSetPlan(graph, sigma)
        assert set(plan._leaf_count) == {gfd.name for gfd in sigma}
        assert all(count == 1 for count in plan._leaf_count.values())
        leaf_names = [leaf.gfd_name for leaf in plan.root_leaves]
        for node in plan.nodes():
            leaf_names.extend(leaf.gfd_name for leaf in node.leaves)
        assert sorted(leaf_names) == sorted(gfd.name for gfd in sigma)

    def test_shared_prefixes_actually_merge(self):
        # Two rules with identical patterns must share their entire path.
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "e")])
        sigma = [
            make_gfd(pattern, name="r1"),
            make_gfd(make_pattern({"u": "a", "v": "b"}, [("u", "v", "e")]), name="r2"),
        ]
        graph = build_canonical_graph(sigma).graph
        plan = RuleSetPlan(graph, sigma)
        assert len(plan.roots) == 1
        assert sum(1 for _ in plan.nodes()) == 2  # one shared path of depth 2
        paths = rule_paths(plan)
        assert paths["r1"] == paths["r2"]

    def test_duplicate_rule_name_rejected(self):
        sigma = nontrivial(small_sigma(seed=1, count=4))
        graph = build_canonical_graph(sigma).graph
        plan = RuleSetPlan(graph, sigma)
        with pytest.raises(ValueError):
            plan.add(sigma[0])

    @settings(max_examples=25, deadline=None)
    @given(order_seed=st.integers(min_value=0, max_value=10_000))
    def test_merge_is_insertion_order_insensitive(self, order_seed):
        sigma = nontrivial(small_sigma(seed=7, count=12))
        graph = build_canonical_graph(sigma).graph
        shuffled = list(sigma)
        random.Random(order_seed).shuffle(shuffled)
        base = RuleSetPlan(graph, sigma)
        permuted = RuleSetPlan(graph, shuffled)
        assert rule_paths(base) == rule_paths(permuted)
        assert sum(1 for _ in base.nodes()) == sum(1 for _ in permuted.nodes())
        assert {n: base.rule_cost(n) for n in base.gfds} == {
            n: permuted.rule_cost(n) for n in permuted.gfds
        }

    def test_pivot_signature_groups_by_label_and_self_loops(self):
        plain = make_pattern({"x": "a", "y": "b"}, [("x", "y", "e")])
        loop = make_pattern({"x": "a", "y": "b"}, [("x", "x", "e"), ("x", "y", "e")])
        assert pivot_signature(plain, "x") == ("a", ())
        assert pivot_signature(loop, "x") == ("a", ("e",))
        assert pivot_signature(plain, "x") != pivot_signature(loop, "x")


class TestStreamEquivalence:
    @pytest.mark.parametrize("seed", [0, 4, 11])
    def test_per_rule_projection_equals_matcherrun(self, seed):
        sigma = nontrivial(small_sigma(seed=seed, count=16))
        graph = build_canonical_graph(sigma).graph
        plan = RuleSetPlan(graph, sigma)
        stream = list(plan.matches())
        for gfd in sigma:
            projection = [match for name, match in stream if name == gfd.name]
            run = MatcherRun(gfd.pattern, graph, plan=get_plan(gfd.pattern, graph))
            assert projection == list(run.matches()), gfd.name

    @pytest.mark.parametrize("seed", [2, 9])
    def test_pivoted_projection_equals_pivoted_matcherrun(self, seed):
        sigma = [
            gfd
            for gfd in nontrivial(small_sigma(seed=seed, count=8))
            if gfd.pattern.is_connected()
        ]
        graph = build_canonical_graph(sigma).graph
        pivots = {gfd.name: choose_pivot(gfd, graph) for gfd in sigma}
        plan = RuleSetPlan(graph, sigma, pivot_vars=pivots)
        for gfd in sigma:
            pivot = pivots[gfd.name]
            for node in graph.nodes():
                trie_stream = [
                    match
                    for name, match in plan.matches(
                        active={gfd.name}, pivot_node=node
                    )
                ]
                run = MatcherRun(
                    gfd.pattern,
                    graph,
                    preassigned={pivot: node},
                    plan=get_plan(gfd.pattern, graph),
                )
                assert trie_stream == list(run.matches()), (gfd.name, node)


class TestSequentialDifferential:
    @pytest.mark.parametrize("seed,consistent", [(1, True), (2, False), (6, False)])
    def test_seq_sat_verdicts_agree(self, seed, consistent):
        sigma = small_sigma(seed=seed, count=18, consistent=consistent)
        base = seq_sat(sigma, use_ruleset_plan=False)
        trie = seq_sat(sigma, use_ruleset_plan=True)
        assert base.satisfiable == trie.satisfiable
        if base.satisfiable:
            # A completed (conflict-free) run enforces every match of
            # every rule on both paths: equal totals.
            assert base.stats.matches == trie.stats.matches

    @pytest.mark.parametrize("seed", [3, 8])
    def test_seq_imp_verdicts_agree(self, seed):
        sigma = small_sigma(seed=seed, count=15)
        phi = sigma[4]
        rest = [gfd for gfd in sigma if gfd.name != phi.name]
        base = seq_imp(rest, phi, use_ruleset_plan=False)
        trie = seq_imp(rest, phi, use_ruleset_plan=True)
        assert base.implied == trie.implied

    def test_seq_imp_conflicting_sigma_agrees(self):
        sigma = add_random_conflicts(random_gfds(8, 4, 3, seed=31), 3, seed=5)
        phi = sigma[0]
        rest = sigma[1:]
        base = seq_imp(rest, phi, use_ruleset_plan=False)
        trie = seq_imp(rest, phi, use_ruleset_plan=True)
        assert base.implied == trie.implied

    @pytest.mark.parametrize("seed", [5, 12])
    def test_detect_errors_lists_identical(self, seed):
        sigma = small_sigma(seed=seed, count=10)
        result = seq_sat(sigma)
        assert result.satisfiable
        model = extract_model(result)
        # Dirty the model deterministically so violations exist.
        rng = random.Random(seed)
        for node in sorted(model.nodes(), key=str)[::3]:
            attrs = model.node(node).attrs
            for attr in sorted(attrs):
                if rng.random() < 0.5:
                    model.set_attr(node, attr, "#dirty")
        base = detect_errors(model, sigma, use_ruleset_plan=False)
        trie = detect_errors(model, sigma, use_ruleset_plan=True)
        assert base == trie
        capped_base = detect_errors(model, sigma, limit_per_gfd=1)
        capped_trie = detect_errors(model, sigma, limit_per_gfd=1, use_ruleset_plan=True)
        assert capped_base == capped_trie

    @pytest.mark.parametrize("seed,consistent", [(4, True), (2, False)])
    def test_incremental_steps_agree(self, seed, consistent):
        sigma = small_sigma(seed=seed, count=16, consistent=consistent)
        base = IncrementalSat(sigma, use_ruleset_plan=False)
        trie = IncrementalSat(sigma, use_ruleset_plan=True)
        assert base.satisfiable == trie.satisfiable
        for left, right in zip(base.steps, trie.steps):
            assert (left.gfd_name, left.satisfiable, left.recomputed) == (
                right.gfd_name,
                right.satisfiable,
                right.recomputed,
            )
            if left.satisfiable:
                assert left.new_matches == right.new_matches


class TestEpochRevalidation:
    def test_absent_label_appearing_rebuilds(self):
        graph = PropertyGraph()
        a = graph.add_node("a")
        graph.add_node("a")
        pattern = make_pattern({"x": "a", "y": "z"}, [("x", "y", "e")])
        gfd = make_gfd(pattern, name="needs-z")
        graph.index()
        plan = RuleSetPlan(graph, [gfd])
        assert list(plan.matches()) == []
        # The watched absent label "z" appears through the delta journal.
        z = graph.add_node("z")
        graph.add_edge(a, z, "e")
        graph.index()  # absorb the delta in place
        fresh = RuleSetPlan(graph, [gfd])
        assert list(plan.matches()) == list(fresh.matches())
        assert len(list(plan.matches())) == 1

    def test_untouched_epoch_is_noop(self):
        sigma = nontrivial(small_sigma(seed=5, count=6))
        graph = build_canonical_graph(sigma).graph
        plan = RuleSetPlan(graph, sigma)
        roots_before = plan.roots
        plan.revalidate()
        assert plan.roots is roots_before

    def test_irrelevant_delta_keeps_trie(self):
        sigma = nontrivial(small_sigma(seed=5, count=6))
        graph = build_canonical_graph(sigma).graph
        plan = RuleSetPlan(graph, sigma)
        roots_before = plan.roots
        baseline = list(plan.matches())
        graph.add_node(graph.label(next(iter(graph.nodes()))))  # existing label
        graph.index()
        plan.revalidate()
        assert plan.roots is roots_before  # no rebuild needed
        assert len(list(plan.matches())) >= len(baseline)


class TestGroupedUnits:
    def test_groups_partition_rules_by_pivot_signature(self):
        sigma = small_sigma(seed=9, count=20)
        graph = build_canonical_graph(sigma).graph
        units = generate_grouped_work_units(sigma, graph)
        grouped_rules = set()
        for unit in units:
            if unit.group:
                assert unit.gfd_name == unit.group[0]
                signatures = {
                    pivot_signature(
                        next(g for g in sigma if g.name == name).pattern,
                        choose_pivot(next(g for g in sigma if g.name == name), graph),
                    )
                    for name in unit.group
                }
                assert len(signatures) == 1
                grouped_rules.update(unit.group)
        eligible = {
            gfd.name
            for gfd in sigma
            if not gfd.is_trivial() and gfd.pattern.is_connected()
        }
        # Every eligible rule appears in some group (groups with zero
        # surviving pivot candidates excepted).
        assert grouped_rules <= eligible

    def test_ungrouped_uid_unchanged_by_group_field(self):
        import hashlib

        from repro.reasoning.workunits import WorkUnit

        unit = WorkUnit.make("phi", {"x": "n0"}, radius=2)
        legacy_payload = repr((unit.gfd_name, unit.assignment, unit.radius, unit.generation))
        legacy_uid = hashlib.blake2s(
            legacy_payload.encode("utf-8"), digest_size=10
        ).hexdigest()
        assert unit.uid == legacy_uid
        grouped = WorkUnit.make("phi", {PIVOT_SLOT: "n0"}, radius=2, group=("phi", "psi"))
        assert grouped.uid != legacy_uid
        assert grouped.gfd_names == ("phi", "psi")

    def test_ttl_breach_degroups_without_losing_work(self):
        sigma = small_sigma(seed=3, count=18, consistent=False)
        expected = par_sat(sigma, RuntimeConfig(workers=2)).satisfiable
        tight = RuntimeConfig(workers=2, ttl_seconds=1e-3).with_ruleset_plan()
        result = par_sat(sigma, tight)
        assert result.satisfiable == expected
        assert result.outcome.splits > 0 or result.outcome.terminated_early


class TestParallelGroupedDifferential:
    @pytest.mark.parametrize("backend", ["simulated", "threaded", "process"])
    @pytest.mark.parametrize("seed,consistent", [(1, True), (2, False)])
    def test_par_sat_verdicts_agree(self, backend, seed, consistent):
        sigma = small_sigma(seed=seed, count=14, consistent=consistent)
        base = par_sat(sigma, RuntimeConfig(workers=3), backend=backend)
        trie = par_sat(
            sigma, RuntimeConfig(workers=3).with_ruleset_plan(), backend=backend
        )
        assert base.satisfiable == trie.satisfiable

    @pytest.mark.parametrize("seed", [4, 7])
    def test_par_imp_verdicts_agree(self, seed):
        sigma = small_sigma(seed=seed, count=12)
        phi = sigma[2]
        rest = [gfd for gfd in sigma if gfd.name != phi.name]
        expected = seq_imp(rest, phi).implied
        base = par_imp(rest, phi, RuntimeConfig(workers=3))
        trie = par_imp(rest, phi, RuntimeConfig(workers=3).with_ruleset_plan())
        assert base.implied == expected
        assert trie.implied == expected

    @pytest.mark.parametrize("fault_seed", [0, 1])
    def test_grouped_verdicts_survive_fault_plan(self, fault_seed):
        sigma = small_sigma(seed=6, count=14, consistent=False)
        expected = seq_sat(sigma).satisfiable
        plan = FaultPlan.random(seed=fault_seed, workers=3, events=2)
        config = RuntimeConfig(workers=3, fault_plan=plan).with_ruleset_plan()
        for backend in ("simulated", "process"):
            result = par_sat(sigma, config, backend=backend)
            assert not result.outcome.quarantined
            assert result.satisfiable == expected, backend

    def test_grouped_verdicts_affinity_on_off(self):
        sigma = small_sigma(seed=8, count=14, consistent=False)
        expected = seq_sat(sigma).satisfiable
        grouped = RuntimeConfig(workers=3).with_ruleset_plan()
        for config in (
            grouped,
            grouped.without_affinity(),
            replace(grouped, affinity_cost_feedback=False),
        ):
            result = par_sat(sigma, config)
            assert result.satisfiable == expected
        on = par_sat(sigma, grouped)
        off = par_sat(sigma, grouped.without_affinity())
        assert on.outcome.affinity_overflows >= 0
        assert off.outcome.affinity_overflows == 0
