"""Unit tests for work units, dependency graphs and topological orders."""

from repro.gfd import build_canonical_graph, make_gfd, make_pattern, parse_gfds
from repro.gfd.literals import eq
from repro.reasoning.workunits import (
    WorkUnit,
    choose_pivot,
    generate_work_units,
    gfd_dependency_edges,
    gfd_dependency_order,
    order_units,
    pivot_candidates,
    unit_dependency_edges,
)


class TestWorkUnit:
    def test_make_sorts_assignment(self):
        unit = WorkUnit.make("g", {"z": 1, "a": 2})
        assert unit.assignment == (("a", 2), ("z", 1))
        assert unit.assignment_dict() == {"a": 2, "z": 1}
        assert unit.pivot_node() == 2

    def test_hashable(self):
        a = WorkUnit.make("g", {"x": 1}, radius=2)
        b = WorkUnit.make("g", {"x": 1}, radius=2)
        assert a == b and len({a, b}) == 1


class TestPivotSelection:
    def test_selective_label_preferred(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        phi7 = canonical.gfds["phi7"]
        # Label-count mode: label 'a' (3 nodes) beats 'c' (4 nodes) and x
        # is the pattern's center.
        assert choose_pivot(phi7, canonical.graph, use_plan=False) == "x"
        # Plan-aware mode prefers the leaf w: binding it first makes every
        # other variable reachable by anchor expansion through the single
        # x -[p]-> w edge, so the estimated search tree per candidate
        # (~0.95 expansions) beats pivoting at the hub x (~3.8), even
        # after multiplying by the slightly larger candidate count.
        assert choose_pivot(phi7, canonical.graph) == "w"

    def test_pivot_candidates_by_label(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        phi7 = canonical.gfds["phi7"]
        candidates = pivot_candidates(phi7, "x", canonical.graph)
        assert len(candidates) == 3  # one 'a' node per GFD copy


class TestUnitGeneration:
    def test_units_cover_all_pivot_candidates(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        units = generate_work_units(example4_sigma, canonical.graph)
        by_gfd = {}
        for unit in units:
            by_gfd.setdefault(unit.gfd_name, []).append(unit)
        # One unit per (GFD, candidate node of its chosen pivot), at the
        # pivot's eccentricity radius — regardless of which pivot the
        # plan-aware selection picked.
        for gfd in example4_sigma:
            pivot = choose_pivot(gfd, canonical.graph)
            expected = pivot_candidates(gfd, pivot, canonical.graph)
            gfd_units = by_gfd[gfd.name]
            assert sorted(str(u.pivot_node()) for u in gfd_units) == sorted(
                str(node) for node in expected
            )
            radius = gfd.pattern.eccentricity(pivot)
            assert all(u.radius == radius for u in gfd_units)

    def test_disconnected_pattern_unrestricted(self):
        pattern = make_pattern({"x": "a", "y": "b"})
        gfd = make_gfd(pattern, [], [eq("x", "A", 1)], name="disc")
        canonical = build_canonical_graph([gfd])
        units = generate_work_units([gfd], canonical.graph)
        assert all(unit.radius is None for unit in units)

    def test_pivot_override(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        units = generate_work_units(
            example4_sigma, canonical.graph, pivot_overrides={"phi7": "w"}
        )
        phi7_units = [u for u in units if u.gfd_name == "phi7"]
        assert all(u.assignment[0][0] == "w" for u in phi7_units)


class TestPrunedUnitGeneration:
    def test_pruned_units_subset_of_full(self, example4_sigma):
        from repro.reasoning.workunits import generate_pruned_work_units

        canonical = build_canonical_graph(example4_sigma)
        full = set(generate_work_units(example4_sigma, canonical.graph))
        pruned = set(generate_pruned_work_units(example4_sigma, canonical.graph))
        assert pruned <= full

    def test_pruning_sound_for_verdicts(self, example4_sigma):
        """Pruned and unpruned unit sets lead to the same parallel verdict
        (checked end-to-end by parsat equivalence tests; here: the pruned
        set still contains every unit that produces matches)."""
        from repro.matching.homomorphism import find_homomorphisms
        from repro.reasoning.workunits import generate_pruned_work_units

        canonical = build_canonical_graph(example4_sigma)
        pruned = set(generate_pruned_work_units(example4_sigma, canonical.graph))
        full = generate_work_units(example4_sigma, canonical.graph)
        for unit in full:
            gfd = canonical.gfds[unit.gfd_name]
            matches = find_homomorphisms(
                gfd.pattern, canonical.graph, preassigned=unit.assignment_dict(), limit=1
            )
            if matches:
                assert unit in pruned

    def test_disconnected_pattern_not_sim_pruned(self):
        from repro.reasoning.workunits import generate_pruned_work_units

        pattern = make_pattern({"x": "a", "y": "b"})
        gfd = make_gfd(pattern, [], [eq("x", "A", 1)], name="disc")
        canonical = build_canonical_graph([gfd])
        units = generate_pruned_work_units([gfd], canonical.graph)
        assert units  # falls back to label-candidate generation

    def test_simulation_disabled_falls_back(self, example4_sigma):
        from repro.reasoning.workunits import generate_pruned_work_units

        canonical = build_canonical_graph(example4_sigma)
        no_sim = generate_pruned_work_units(
            example4_sigma, canonical.graph, use_simulation=False
        )
        full = generate_work_units(example4_sigma, canonical.graph)
        assert len(no_sim) == len(full)


class TestGfdDependencies:
    def test_attribute_feed_edge(self, example4_sigma):
        edges = gfd_dependency_edges(example4_sigma)
        # phi7 produces y.B=1 which phi9 consumes; phi9 produces w.C=1
        # which phi10 consumes; phi10 produces x.A which nothing consumes.
        assert "phi9" in edges["phi7"]
        assert "phi10" in edges["phi9"]
        assert edges["phi10"] == set()

    def test_dependency_order_respects_chain(self, example4_sigma):
        order = [g.name for g in gfd_dependency_order(example4_sigma)]
        assert order.index("phi7") < order.index("phi9") < order.index("phi10")

    def test_empty_antecedent_first(self):
        sigma = parse_gfds(
            """
            gfd late { x: a; when x.A = 1; then x.B = 1; }
            gfd early { x: a; then x.A = 1; }
            """
        )
        order = [g.name for g in gfd_dependency_order(sigma)]
        assert order[0] == "early"

    def test_cycle_broken_deterministically(self):
        sigma = parse_gfds(
            """
            gfd g1 { x: a; when x.A = 1; then x.B = 1; }
            gfd g2 { x: a; when x.B = 1; then x.A = 1; }
            """
        )
        order1 = [g.name for g in gfd_dependency_order(sigma)]
        order2 = [g.name for g in gfd_dependency_order(sigma)]
        assert order1 == order2
        assert set(order1) == {"g1", "g2"}


class TestUnitDependencies:
    def test_edges_require_shared_attr_and_proximity(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        units = generate_work_units(example4_sigma, canonical.graph)
        by_name = canonical.gfds
        edges = unit_dependency_edges(units, by_name, canonical.graph)
        # Some dependency edges must exist (phi7 feeds phi9 within each
        # component hosting both pivot candidates).
        assert edges
        for source, targets in edges.items():
            producer = by_name[units[source].gfd_name]
            for target in targets:
                consumer = by_name[units[target].gfd_name]
                assert producer.consequent_attributes() & consumer.antecedent_attributes()

    def test_order_units_is_total_and_deterministic(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        units = generate_work_units(example4_sigma, canonical.graph)
        ordered1 = order_units(units, canonical.gfds, canonical.graph)
        ordered2 = order_units(units, canonical.gfds, canonical.graph)
        assert ordered1 == ordered2
        assert sorted(map(str, ordered1)) == sorted(map(str, units))

    def test_empty_antecedent_units_first(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        units = generate_work_units(example4_sigma, canonical.graph)
        ordered = order_units(units, canonical.gfds, canonical.graph)
        names = [unit.gfd_name for unit in ordered]
        # phi7 has X = empty set; all its units come before the rest.
        last_phi7 = max(i for i, n in enumerate(names) if n == "phi7")
        first_other = min(i for i, n in enumerate(names) if n != "phi7")
        assert last_phi7 < first_other
