"""Unit and property tests for the homomorphism matcher."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PropertyGraph
from repro.gfd.pattern import make_pattern
from repro.graph.elements import WILDCARD
from repro.matching.homomorphism import (
    MatcherRun,
    default_variable_order,
    find_homomorphisms,
    has_homomorphism,
)


def brute_force_matches(pattern, graph):
    """Reference matcher: enumerate all var->node maps and filter."""
    variables = pattern.variables
    nodes = list(graph.nodes())
    result = []
    for combo in itertools.product(nodes, repeat=len(variables)):
        assignment = dict(zip(variables, combo))
        ok = True
        for var in variables:
            label = pattern.label_of(var)
            if label != WILDCARD and graph.label(assignment[var]) != label:
                ok = False
                break
        if not ok:
            continue
        for edge in pattern.edges:
            labels = graph.edge_labels_between(assignment[edge.src], assignment[edge.dst])
            if edge.label == WILDCARD:
                if not labels:
                    ok = False
                    break
            elif edge.label not in labels:
                ok = False
                break
        if ok:
            result.append(assignment)
    return result


def as_key_set(matches):
    return {tuple(sorted(m.items())) for m in matches}


class TestBasicMatching:
    def test_single_node_label(self, small_graph):
        pattern = make_pattern({"x": "a"})
        matches = find_homomorphisms(pattern, small_graph)
        assert as_key_set(matches) == {(("x", "a0"),), (("x", "a1"),)}

    def test_wildcard_matches_all(self, small_graph):
        pattern = make_pattern({"x": WILDCARD})
        assert len(find_homomorphisms(pattern, small_graph)) == 5

    def test_edge_match(self, small_graph):
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "knows")])
        matches = find_homomorphisms(pattern, small_graph)
        assert as_key_set(matches) == {(("x", "a0"), ("y", "b0"))}

    def test_wildcard_edge_label(self, small_graph):
        pattern = make_pattern({"x": "a", "y": WILDCARD}, [("x", "y", WILDCARD)])
        matches = find_homomorphisms(pattern, small_graph)
        targets = {m["y"] for m in matches}
        assert targets == {"b0", "c0"}

    def test_homomorphism_not_injective(self):
        graph = PropertyGraph()
        v = graph.add_node("a")
        graph.add_edge(v, v, "e")
        pattern = make_pattern({"x": "a", "y": "a"}, [("x", "y", "e")])
        matches = find_homomorphisms(pattern, graph)
        assert len(matches) == 1
        assert matches[0] == {"x": v, "y": v}

    def test_path_pattern(self, small_graph):
        pattern = make_pattern(
            {"x": "a", "y": "b", "z": "b"}, [("x", "y", "knows"), ("y", "z", "knows")]
        )
        matches = find_homomorphisms(pattern, small_graph)
        assert as_key_set(matches) == {(("x", "a0"), ("y", "b0"), ("z", "b1"))}

    def test_no_match(self, small_graph):
        pattern = make_pattern({"x": "c", "y": "a"}, [("x", "y", "knows")])
        assert not has_homomorphism(pattern, small_graph)

    def test_disconnected_pattern_cross_product(self, small_graph):
        pattern = make_pattern({"x": "a", "y": "c"})
        matches = find_homomorphisms(pattern, small_graph)
        assert len(matches) == 2  # two 'a' nodes x one 'c' node

    def test_multi_edge_requirement(self):
        graph = PropertyGraph()
        a, b = graph.add_node("a"), graph.add_node("b")
        graph.add_edge(a, b, "e1")
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "e1"), ("x", "y", "e2")])
        assert not has_homomorphism(pattern, graph)
        graph.add_edge(a, b, "e2")
        assert has_homomorphism(pattern, graph)

    def test_limit(self, small_graph):
        pattern = make_pattern({"x": WILDCARD})
        assert len(find_homomorphisms(pattern, small_graph, limit=3)) == 3


class TestPivotsAndRestrictions:
    def test_preassigned_pivot(self, small_graph):
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "knows")])
        matches = find_homomorphisms(pattern, small_graph, preassigned={"x": "a0"})
        assert as_key_set(matches) == {(("x", "a0"), ("y", "b0"))}
        assert find_homomorphisms(pattern, small_graph, preassigned={"x": "a1"}) == []

    def test_inconsistent_preassignment_no_matches(self, small_graph):
        pattern = make_pattern({"x": "a"})
        assert find_homomorphisms(pattern, small_graph, preassigned={"x": "c0"}) == []
        assert find_homomorphisms(pattern, small_graph, preassigned={"x": "ghost"}) == []

    def test_fully_preassigned_match(self, small_graph):
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "knows")])
        matches = find_homomorphisms(
            pattern, small_graph, preassigned={"x": "a0", "y": "b0"}
        )
        assert len(matches) == 1

    def test_fully_preassigned_nonmatch(self, small_graph):
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "knows")])
        assert (
            find_homomorphisms(pattern, small_graph, preassigned={"x": "a0", "y": "b1"})
            == []
        )

    def test_allowed_nodes_restricts(self, small_graph):
        pattern = make_pattern({"x": WILDCARD})
        matches = find_homomorphisms(pattern, small_graph, allowed_nodes={"a0", "b0"})
        assert {m["x"] for m in matches} == {"a0", "b0"}

    def test_candidate_sets_restrict(self, small_graph):
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "knows")])
        run = MatcherRun(pattern, small_graph, candidate_sets={"y": {"b1"}})
        assert list(run.matches()) == []

    def test_pivot_coverage_partition(self, small_graph):
        """Union over pivot candidates == unpivoted matches, disjointly."""
        pattern = make_pattern(
            {"x": "a", "y": "b"}, [("x", "y", "knows")]
        )
        all_matches = as_key_set(find_homomorphisms(pattern, small_graph))
        union = set()
        for node in small_graph.nodes_with_label("a"):
            pivoted = as_key_set(
                find_homomorphisms(pattern, small_graph, preassigned={"x": node})
            )
            assert not (union & pivoted)
            union |= pivoted
        assert union == all_matches


class TestTicksAndOrder:
    def test_ticks_increase(self, small_graph):
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "knows")])
        run = MatcherRun(pattern, small_graph)
        list(run.matches())
        assert run.ticks > 0
        assert run.match_count == 1

    def test_default_order_starts_selective(self, small_graph):
        pattern = make_pattern(
            {"x": WILDCARD, "y": "c"}, [("x", "y", "likes")]
        )
        order = default_variable_order(pattern, small_graph)
        assert order[0] == "y"  # one 'c' node vs 5 wildcards

    def test_explicit_order_respected(self, small_graph):
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "knows")])
        run = MatcherRun(pattern, small_graph, variable_order=["y", "x"])
        assert run.order == ["y", "x"]
        assert len(list(run.matches())) == 1


class TestSplitting:
    @staticmethod
    def dense_graph(n=6):
        graph = PropertyGraph()
        nodes = [graph.add_node("v") for _ in range(n)]
        for a in nodes:
            for b in nodes:
                if a != b:
                    graph.add_edge(a, b, "e")
        return graph

    def test_split_preserves_match_set(self):
        graph = self.dense_graph()
        pattern = make_pattern(
            {"x": "v", "y": "v", "z": "v"}, [("x", "y", "e"), ("y", "z", "e")]
        )
        reference = as_key_set(find_homomorphisms(pattern, graph))

        run = MatcherRun(pattern, graph, preassigned={"x": 0})
        collected = []
        split_assignments = []
        did_split = False
        for match in run.matches():
            collected.append(match)
            if not did_split and run.can_split():
                split_assignments = run.split()
                did_split = True
        assert did_split and split_assignments
        for assignment in split_assignments:
            sub = MatcherRun(pattern, graph, preassigned=assignment)
            collected.extend(sub.matches())

        pivoted_reference = {
            key for key in reference if ("x", 0) in key
        }
        assert as_key_set(collected) == pivoted_reference
        # No duplicates either.
        assert len(collected) == len(pivoted_reference)

    def test_split_respects_max_units(self):
        graph = self.dense_graph()
        pattern = make_pattern(
            {"x": "v", "y": "v", "z": "v"}, [("x", "y", "e"), ("y", "z", "e")]
        )
        run = MatcherRun(pattern, graph, preassigned={"x": 0})
        iterator = run.matches()
        next(iterator)
        units = run.split(max_units=2)
        assert len(units) <= 2

    def test_cannot_split_without_stack(self, small_graph):
        pattern = make_pattern({"x": "a"})
        run = MatcherRun(pattern, small_graph)
        assert run.split() == []


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_matcher_agrees_with_brute_force(seed):
    """Property: backtracking matcher == brute-force on random instances."""
    rng = random.Random(seed)
    graph = PropertyGraph()
    labels = ["a", "b"]
    edge_labels = ["e", "f"]
    num_nodes = rng.randint(1, 5)
    nodes = [graph.add_node(rng.choice(labels)) for _ in range(num_nodes)]
    for _ in range(rng.randint(0, 8)):
        graph.add_edge(rng.choice(nodes), rng.choice(nodes), rng.choice(edge_labels))

    num_vars = rng.randint(1, 3)
    pattern_nodes = {
        f"v{i}": rng.choice(labels + [WILDCARD]) for i in range(num_vars)
    }
    pattern_edges = []
    for _ in range(rng.randint(0, 3)):
        src = f"v{rng.randrange(num_vars)}"
        dst = f"v{rng.randrange(num_vars)}"
        pattern_edges.append((src, dst, rng.choice(edge_labels + [WILDCARD])))
    pattern = make_pattern(pattern_nodes, pattern_edges)

    expected = as_key_set(brute_force_matches(pattern, graph))
    actual_list = find_homomorphisms(pattern, graph)
    actual = as_key_set(actual_list)
    assert actual == expected
    assert len(actual_list) == len(expected)  # no duplicate matches
