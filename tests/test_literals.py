"""Unit tests for GFD literals."""

import pytest

from repro.errors import LiteralError
from repro.gfd.literals import (
    FALSE,
    ConstantLiteral,
    FalseLiteral,
    VariableLiteral,
    eq,
    literal_attribute_names,
    validate_literals,
    vareq,
)


class TestConstantLiteral:
    def test_basic(self):
        literal = eq("x", "A", 5)
        assert literal.variables() == {"x"}
        assert literal.attribute_names() == {"A"}
        assert literal.terms() == (("x", "A"),)
        assert str(literal) == "x.A = 5"

    def test_hashable_and_equal(self):
        assert eq("x", "A", 5) == ConstantLiteral("x", "A", 5)
        assert len({eq("x", "A", 5), eq("x", "A", 5)}) == 1

    def test_distinct_values_differ(self):
        assert eq("x", "A", 5) != eq("x", "A", 6)


class TestVariableLiteral:
    def test_canonical_orientation(self):
        assert vareq("y", "B", "x", "A") == vareq("x", "A", "y", "B")
        literal = vareq("y", "B", "x", "A")
        assert (literal.var, literal.attr) == ("x", "A")

    def test_variables_and_terms(self):
        literal = vareq("x", "A", "y", "B")
        assert literal.variables() == {"x", "y"}
        assert literal.attribute_names() == {"A", "B"}
        assert set(literal.terms()) == {("x", "A"), ("y", "B")}

    def test_same_var_different_attrs(self):
        literal = vareq("x", "B", "x", "A")
        assert literal.variables() == {"x"}
        assert (literal.attr, literal.other_attr) == ("A", "B")


class TestFalseLiteral:
    def test_singleton_properties(self):
        assert FALSE == FalseLiteral()
        assert FALSE.variables() == frozenset()
        assert FALSE.terms() == ()
        assert str(FALSE) == "false"


class TestValidation:
    def test_unknown_variable_rejected(self):
        with pytest.raises(LiteralError):
            validate_literals([eq("z", "A", 1)], ["x", "y"], "X")

    def test_false_rejected_in_antecedent(self):
        with pytest.raises(LiteralError):
            validate_literals([FALSE], ["x"], "X")

    def test_false_allowed_in_consequent(self):
        validate_literals([FALSE], ["x"], "Y")

    def test_valid_literals_pass(self):
        validate_literals([eq("x", "A", 1), vareq("x", "A", "y", "B")], ["x", "y"], "X")

    def test_attribute_names_union(self):
        names = literal_attribute_names([eq("x", "A", 1), vareq("x", "B", "y", "C"), FALSE])
        assert names == {"A", "B", "C"}
