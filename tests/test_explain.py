"""Tests for conflict explanations (backward slicing of the delta log)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import parse_gfds, seq_sat
from repro.gfd.generator import conflict_chain, random_gfds
from repro.reasoning.explain import (
    Explanation,
    explain_unsatisfiability,
    render_explanation,
    slice_conflict,
)


class TestExplain:
    def test_satisfiable_returns_none(self):
        sigma = parse_gfds("gfd g { x: a; then x.A = 1; }")
        assert explain_unsatisfiability(sigma) is None

    def test_direct_conflict_involves_both_rules(self, example2_conflicting):
        explanation = explain_unsatisfiability(example2_conflicting)
        assert explanation is not None
        assert set(explanation.gfds_involved) == {"phi5", "phi6"}
        assert len(explanation.steps) >= 1

    def test_example4_chain_reconstructed(self, example4_sigma):
        """The three-rule interaction of paper Example 4 shows up whole."""
        explanation = explain_unsatisfiability(example4_sigma)
        assert set(explanation.gfds_involved) == {"phi7", "phi9", "phi10"}

    def test_conflict_chain_full_depth(self):
        chain = conflict_chain(5)
        explanation = explain_unsatisfiability(chain)
        # Every link of the chain participates in the derivation.
        names = {gfd.name for gfd in chain}
        assert names <= set(explanation.gfds_involved) | names
        assert len(explanation.gfds_involved) == len(chain)

    def test_reuses_existing_result(self, example4_sigma):
        result = seq_sat(example4_sigma)
        explanation = explain_unsatisfiability(example4_sigma, result)
        assert explanation is not None and explanation.conflict is result.conflict

    def test_render_contains_steps_and_clash(self, example4_sigma):
        explanation = explain_unsatisfiability(example4_sigma)
        text = render_explanation(explanation)
        assert "clash" in text
        assert "rules involved" in text
        assert "1." in text

    def test_slice_is_subset_of_log(self, example4_sigma):
        result = seq_sat(example4_sigma)
        sliced = slice_conflict(result.eq, result.conflict)
        log = result.eq.delta_since(0)
        assert len(sliced) <= len(log)
        log_index = {id(op) for op in log}
        assert all(id(op) in log_index for op in sliced)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_explanation_slice_contains_conflict_sources(seed):
    """Property: whenever a random set is unsatisfiable, the explanation
    derives the conflicting constants — the slice mentions the conflicting
    class's terms and the clash's source rule."""
    sigma = random_gfds(
        10, max_pattern_nodes=4, max_literals=3, seed=seed, consistent=False
    )
    result = seq_sat(sigma)
    if result.satisfiable:
        return
    explanation = explain_unsatisfiability(sigma, result)
    assert explanation is not None
    conflict = result.conflict
    clash_gfd = conflict.provenance.gfd if conflict.provenance else conflict.source
    if clash_gfd:
        assert clash_gfd in explanation.gfds_involved
    # The slice is a subsequence of the log, and every step is connected to
    # the conflict through data (class terms) or control (premise) edges —
    # both read straight off each op's structured provenance.
    log = result.eq.delta_since(0)
    log_ids = [id(op) for op in log]
    positions = [log_ids.index(id(op)) for op in explanation.steps]
    assert positions == sorted(positions)
    relevant = set(result.eq.members(conflict.term))
    if conflict.provenance is not None:
        relevant.update(conflict.provenance.premise_terms)
    for op in reversed(explanation.steps):
        assert any(term in relevant for term in op.terms())
        relevant.update(op.terms())
        if op.provenance is not None:
            relevant.update(op.provenance.premise_terms)
    # Every step's evidence ref resolves in the run's evidence layer.
    store = result.results
    for op in explanation.steps:
        if op.provenance is not None and op.provenance.match_ref:
            assert store.evidence.get(op.provenance.match_ref) is not None
