"""Tests for compiled match plans: reuse, strategy, and determinism."""

import os
import random
import subprocess
import sys

import pytest

from repro import PropertyGraph
from repro.gfd.pattern import make_pattern
from repro.matching.homomorphism import MatcherRun, find_homomorphisms
from repro.matching.plan import get_plan


def match_keys(matches):
    return sorted(tuple(sorted(m.items())) for m in matches)


@pytest.fixture
def social_graph():
    g = PropertyGraph()
    people = [g.add_node("person") for _ in range(6)]
    cities = [g.add_node("city") for _ in range(2)]
    for i, p in enumerate(people):
        g.add_edge(p, people[(i + 1) % len(people)], "knows")
        g.add_edge(p, cities[i % 2], "lives_in")
    return g


class TestPlanReuse:
    def test_get_plan_is_cached_per_pattern_and_index(self, social_graph):
        pattern = make_pattern({"x": "person", "y": "city"}, [("x", "y", "lives_in")])
        assert get_plan(pattern, social_graph) is get_plan(pattern, social_graph)

    def test_plan_survives_mutation_via_delta_epoch(self, social_graph):
        """Since the delta path (PR 3), a mutation no longer discards the
        compiled plan: the index absorbs the journal in place and the
        cached plan revalidates against the new epoch."""
        pattern = make_pattern({"x": "person"})
        before = get_plan(pattern, social_graph)
        epoch_before = before.epoch
        social_graph.add_node("person")
        after = get_plan(pattern, social_graph)
        assert after is before
        assert after.index is social_graph.index()
        assert after.epoch == social_graph.index().epoch > epoch_before

    def test_pivoted_runs_share_one_layout(self, social_graph):
        pattern = make_pattern(
            {"x": "person", "y": "person"}, [("x", "y", "knows")]
        )
        plan = get_plan(pattern, social_graph)
        layouts = {
            id(plan.layout({"x"}))
            for _ in range(5)
        }
        assert len(layouts) == 1  # all pivots on x compile once

    def test_matcher_uses_shared_plan_by_default(self, social_graph):
        pattern = make_pattern({"x": "person", "y": "city"}, [("x", "y", "lives_in")])
        run = MatcherRun(pattern, social_graph)
        assert run.plan is get_plan(pattern, social_graph)

    def test_explicit_plan_yields_same_matches(self, social_graph):
        pattern = make_pattern(
            {"x": "person", "y": "person", "z": "city"},
            [("x", "y", "knows"), ("y", "z", "lives_in")],
        )
        plan = get_plan(pattern, social_graph)
        implicit = find_homomorphisms(pattern, social_graph)
        explicit = find_homomorphisms(pattern, social_graph, plan=plan)
        assert match_keys(implicit) == match_keys(explicit)

    def test_lagging_explicit_plan_is_refreshed(self, social_graph):
        """A plan passed explicitly after a mutation must not poison the
        run — the constructor routes through get_plan, which absorbs the
        pending journal and revalidates the (same, surviving) plan."""
        pattern = make_pattern({"x": "person", "y": "city"}, [("x", "y", "lives_in")])
        lagging_plan = get_plan(pattern, social_graph)
        extra = social_graph.add_node("person")
        city = next(iter(social_graph.nodes_with_label("city")))
        social_graph.add_edge(extra, city, "lives_in")
        assert lagging_plan.index.stale  # journal pending at this point
        run = MatcherRun(pattern, social_graph, plan=lagging_plan)
        assert not run.plan.index.stale
        assert run.plan.epoch == run.plan.index.epoch
        assert any(m["x"] == extra for m in run.matches())

    def test_mismatched_explicit_plan_is_replaced(self, social_graph):
        lives = make_pattern({"x": "person", "y": "city"}, [("x", "y", "lives_in")])
        knows = make_pattern({"x": "person", "y": "person"}, [("x", "y", "knows")])
        wrong = get_plan(knows, social_graph)
        run = MatcherRun(lives, social_graph, plan=wrong)
        assert run.plan.pattern == lives
        assert all(
            social_graph.label(m["y"]) == "city" for m in run.matches()
        )

    def test_structurally_equal_patterns_share_plans(self, social_graph):
        p1 = make_pattern({"x": "person", "y": "city"}, [("x", "y", "lives_in")])
        p2 = make_pattern({"x": "person", "y": "city"}, [("x", "y", "lives_in")])
        assert p1 is not p2
        assert get_plan(p1, social_graph) is get_plan(p2, social_graph)


class TestCandidateStrategy:
    def test_small_bucket_beats_large_anchor_group(self):
        """When the label bucket is smaller than the anchor's adjacency,
        the plan scans the bucket — fewer ticks, same matches."""
        g = PropertyGraph()
        hub = g.add_node("hub")
        rare = g.add_node("rare")
        g.add_edge(hub, rare, "e")
        for _ in range(200):  # fat any-label adjacency on the hub
            other = g.add_node("common")
            g.add_edge(hub, other, "e")
        pattern = make_pattern({"h": "hub", "r": "rare"}, [("h", "r", "e")])
        run = MatcherRun(pattern, g)
        matches = list(run.matches())
        assert match_keys(matches) == [(("h", hub), ("r", rare))]
        # 1 tick for h plus 1 for r via the rare-bucket scan; the anchor
        # group scan would have spent ~201.
        assert run.ticks <= 5

    def test_anchor_expansion_filters_by_node_label(self):
        g = PropertyGraph()
        a = g.add_node("a")
        targets = [g.add_node("b" if i % 4 == 0 else "c") for i in range(40)]
        for t in targets:
            g.add_edge(a, t, "e")
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "e")])
        run = MatcherRun(pattern, g)
        matches = list(run.matches())
        assert len(matches) == 10
        # Ticks: 1 for x's candidate + one per label-matching neighbor.
        assert run.ticks == 1 + 10


class TestEstimatedFanout:
    def test_selective_anchor_beats_global_bucket(self, social_graph):
        # Pivoting at the city end of lives_in means the person variable
        # expands through in-edges of one node; pivoting at a person means
        # expanding its single lives_in edge. Both anchored estimates must
        # be far below the unanchored bucket sizes (6 persons, 2 cities).
        pattern = make_pattern({"x": "person", "y": "city"}, [("x", "y", "lives_in")])
        plan = get_plan(pattern, social_graph)
        for pivot in ("x", "y"):
            assert plan.estimated_fanout(pivot) < 6.0

    def test_estimate_ranking_matches_measured_ticks(self):
        """The pivot the estimator ranks best really costs fewer ticks.

        Total expected work per pivot = candidates × (1 + estimated
        fan-out), the score :func:`choose_pivot` minimizes. On a hub graph
        with a fat leaf bucket the ranking is unambiguous: pivoting on the
        40 leaves wastes a run per leaf, pivoting on the single rare node
        anchors everything.
        """
        g = PropertyGraph()
        hubs = [g.add_node("hub") for _ in range(2)]
        for hub in hubs:
            for _ in range(20):
                g.add_edge(hub, g.add_node("leaf"), "e")
        rare = g.add_node("rare")
        g.add_edge(hubs[0], rare, "r")
        pattern = make_pattern(
            {"h": "hub", "l": "leaf", "r": "rare"},
            [("h", "l", "e"), ("h", "r", "r")],
        )
        plan = get_plan(pattern, g)

        def score(var):
            return len(g.nodes_with_label(pattern.label_of(var))) * (
                1.0 + plan.estimated_fanout(var)
            )

        def measured_ticks(var):
            total = 0
            matches = 0
            for node in g.nodes_with_label(pattern.label_of(var)):
                run = MatcherRun(pattern, g, preassigned={var: node}, plan=plan)
                matches += sum(1 for _ in run.matches())
                total += run.ticks
            assert matches == 20  # every pivot enumerates the same matches
            return total

        ranked = sorted(pattern.variables, key=score)
        best, worst = ranked[0], ranked[-1]
        assert best == "r" and worst == "l"
        assert measured_ticks(best) < measured_ticks(worst)

    def test_absent_label_estimates_zero(self, social_graph):
        pattern = make_pattern({"x": "person", "y": "ghost"}, [("x", "y", "knows")])
        plan = get_plan(pattern, social_graph)
        # The ghost step contributes a zero branch; the estimate collapses.
        assert plan.estimated_fanout("x") == 0.0

    def test_deterministic(self, social_graph):
        pattern = make_pattern(
            {"x": "person", "y": "person"}, [("x", "y", "knows")]
        )
        plan = get_plan(pattern, social_graph)
        assert plan.estimated_fanout("x") == plan.estimated_fanout("x")


class TestDeterministicStreams:
    """Regression for the seed's nondeterministic candidate orders.

    The wildcard + ``allowed_nodes`` and label-index paths used to iterate
    raw sets, so match order (and work-unit splits) could vary between
    interpreter runs with string node ids. All candidate pools now iterate
    in graph insertion order, independent of set hashing.
    """

    SCRIPT = r"""
import random
import sys
from repro import PropertyGraph
from repro.gfd.pattern import make_pattern
from repro.matching.homomorphism import MatcherRun

rng = random.Random(5)
graph = PropertyGraph()
names = [f"node-{i}" for i in range(40)]
rng.shuffle(names)
for name in names:
    graph.add_node(rng.choice(["a", "b"]), node_id=name)
for _ in range(120):
    graph.add_edge(rng.choice(names), rng.choice(names), rng.choice(["e", "f"]))

# Build the allowed set in a scrambled order so set-iteration order (which
# varies with PYTHONHASHSEED for strings) would leak if used.
allowed = set()
for name in sorted(names, key=lambda n: hash(n)):
    allowed.add(name)

pattern = make_pattern({"x": "_", "y": "a"}, [("x", "y", "e")])
run = MatcherRun(pattern, graph, allowed_nodes=allowed)
for match in run.matches():
    print(sorted(match.items()))

split_run = MatcherRun(pattern, graph, allowed_nodes=allowed)
it = split_run.matches()
next(it, None)
print("SPLIT", split_run.split(max_units=3))
"""

    def _stream(self, hashseed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = str(hashseed)
        src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return result.stdout

    def test_match_stream_independent_of_hash_seed(self):
        streams = {self._stream(seed) for seed in (0, 1, 4242)}
        assert len(streams) == 1
        assert "SPLIT" in next(iter(streams))

    def test_same_process_stream_is_reproducible(self, social_graph):
        pattern = make_pattern({"x": "_"})
        allowed = {0, 2, 4, 6}
        first = [
            m["x"]
            for m in MatcherRun(pattern, social_graph, allowed_nodes=allowed).matches()
        ]
        second = [
            m["x"]
            for m in MatcherRun(
                pattern, social_graph, allowed_nodes=set(reversed(sorted(allowed)))
            ).matches()
        ]
        assert first == second == [0, 2, 4, 6]  # graph insertion order
