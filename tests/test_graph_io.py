"""Unit tests for graph JSON (de)serialization."""

import pytest

from repro.errors import ParseError
from repro.graph.io import (
    dump_graph,
    dumps_graph,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    loads_graph,
)


class TestRoundTrip:
    def test_string_round_trip(self, small_graph):
        restored = loads_graph(dumps_graph(small_graph))
        assert restored.num_nodes == small_graph.num_nodes
        assert restored.num_edges == small_graph.num_edges
        assert restored.attrs("a0") == {"x": 1}
        assert restored.has_edge("a0", "b0", "knows")

    def test_file_round_trip(self, small_graph, tmp_path):
        path = tmp_path / "graph.json"
        dump_graph(small_graph, path)
        restored = load_graph(path)
        assert restored.num_nodes == small_graph.num_nodes
        assert restored.edge_label_set() == small_graph.edge_label_set()

    def test_dict_round_trip_preserves_labels(self, small_graph):
        doc = graph_to_dict(small_graph)
        restored = graph_from_dict(doc)
        assert restored.nodes_with_label("b") == {"b0", "b1"}


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(ParseError):
            loads_graph("{not json")

    def test_missing_nodes_key(self):
        with pytest.raises(ParseError):
            graph_from_dict({"edges": []})

    def test_node_missing_field(self):
        with pytest.raises(ParseError):
            graph_from_dict({"nodes": [{"id": 1}]})

    def test_edge_missing_field(self):
        with pytest.raises(ParseError):
            graph_from_dict(
                {"nodes": [{"id": 1, "label": "a"}], "edges": [{"src": 1}]}
            )

    def test_non_dict_document(self):
        with pytest.raises(ParseError):
            graph_from_dict([1, 2, 3])
