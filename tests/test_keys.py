"""Tests for the GED id-literal (keys) extension."""

import pytest

from repro import parse_gfds
from repro.errors import GFDError
from repro.extensions.keys import GedResult, IdLiteral, ged_satisfiable, key_gfd
from repro.gfd import make_gfd, make_pattern
from repro.gfd.literals import eq as lit_eq


def two_person_key(name="key"):
    """Key: persons with the same passport are the same node."""
    pattern = make_pattern({"x": "person", "y": "person"})
    return key_gfd(pattern, [lit_eq("x", "passport", 1), lit_eq("y", "passport", 1)],
                   "x", "y", name=name)


class TestIdLiteral:
    def test_canonical_orientation(self):
        assert IdLiteral("y", "x") == IdLiteral("x", "y")
        assert IdLiteral("x", "y").variables() == {"x", "y"}

    def test_str(self):
        assert str(IdLiteral("x", "y")) == "x.id = y.id"


class TestGedSatisfiability:
    def test_plain_gfds_unchanged(self, example4_sigma, example8_sigma):
        assert not ged_satisfiable(example4_sigma).satisfiable
        assert ged_satisfiable(example8_sigma).satisfiable

    def test_key_alone_satisfiable(self):
        sigma = [two_person_key()] + parse_gfds(
            "gfd seed { x: person; then x.passport = 1; }"
        )
        result = ged_satisfiable(sigma)
        assert result.satisfiable
        assert result.stats.coercions >= 1
        # All person nodes with passport=1 collapsed into one.
        person_nodes = result.graph.nodes_with_label("person")
        assert len(person_nodes) == 1

    def test_key_merges_conflicting_attributes(self):
        """Merging two nodes whose attributes then clash is unsatisfiable:
        the key forces x = y while their A-values are forced to differ."""
        sigma = parse_gfds(
            """
            gfd seed { x: person; then x.passport = 1; }
            gfd left  { p: person; q: q_tag; p -[tag]-> q; then p.A = 1; }
            """
        )
        pattern = make_pattern({"x": "person", "y": "person", "q": "q_tag"},
                               [("x", "q", "tag")])
        # x (with a tag edge) and y merge; afterwards y's copy also gains
        # the tag edge, so 'left' fires on it... build a direct clash:
        sigma2 = parse_gfds(
            """
            gfd seed  { x: person; then x.passport = 1; }
            gfd a_one { x: person; then x.A = 1; }
            """
        )
        # second set: one person copy gets A=2 via a distinguishing label
        extra = make_gfd(
            make_pattern({"z": "vip"}),
            [],
            [lit_eq("z", "B", 2)],
            name="noise",
        )
        result = ged_satisfiable([two_person_key()] + sigma2 + [extra])
        # a_one assigns A=1 to every person; merging persons is consistent.
        assert result.satisfiable

    def test_merge_distinct_labels_conflicts(self):
        """A key over wildcard patterns that forces nodes with different
        concrete labels to merge is unsatisfiable."""
        pattern = make_pattern({"x": "_", "y": "_"})
        key = key_gfd(
            pattern,
            [lit_eq("x", "serial", 7), lit_eq("y", "serial", 7)],
            "x",
            "y",
            name="serial_key",
        )
        seeds = parse_gfds(
            """
            gfd s1 { a: car;  then a.serial = 7; }
            gfd s2 { b: boat; then b.serial = 7; }
            """
        )
        result = ged_satisfiable([key] + seeds)
        assert not result.satisfiable
        assert "labels" in (result.reason or "")

    def test_wildcard_label_specializes(self):
        """Merging a wildcard-labeled node with a concrete one is fine."""
        pattern = make_pattern({"x": "_", "y": "car"})
        key = key_gfd(
            pattern,
            [lit_eq("x", "serial", 7), lit_eq("y", "serial", 7)],
            "x",
            "y",
            name="wild_key",
        )
        seeds = parse_gfds("gfd s2 { b: car; then b.serial = 7; }")
        result = ged_satisfiable([key] + seeds)
        assert result.satisfiable
        # The wildcard copy specialized to 'car' (or merged into one).
        assert not result.graph.nodes_with_label("_") or result.satisfiable

    def test_coercion_exposes_new_matches(self):
        """After merging, combined edges create a match that did not exist
        before coercion — the recursive behavior of GED keys."""
        sigma = parse_gfds(
            """
            # Two halves that only form the 'both' pattern once u and v
            # merge; the extra m1/m2 edges keep the seeds from matching
            # detect's own canonical copy, and detect's k-guard keeps it
            # from firing on its own copy.
            gfd seed_u { u: hub; a: left;  t: tagu; u -[l]-> a; u -[m1]-> t; then u.k = 1; }
            gfd seed_v { v: hub; b: right; s: tagv; v -[r]-> b; v -[m2]-> s; then v.k = 1; }
            gfd detect {
                h: hub; a: left; b: right;
                h -[l]-> a; h -[r]-> b;
                when h.k = 1;
                then h.F = 1, h.F = 2;
            }
            """
        )
        pattern = make_pattern({"x": "hub", "y": "hub"})
        key = key_gfd(
            pattern, [lit_eq("x", "k", 1), lit_eq("y", "k", 1)], "x", "y", name="hubkey"
        )
        # Without the key: 'detect' never matches (no hub has both edges).
        assert ged_satisfiable(sigma).satisfiable
        # With the key: hubs merge, the combined hub matches 'detect',
        # whose contradictory consequent fires.
        result = ged_satisfiable(sigma + [key])
        assert not result.satisfiable

    def test_stats_populated(self):
        sigma = [two_person_key()] + parse_gfds(
            "gfd seed { x: person; then x.passport = 1; }"
        )
        result = ged_satisfiable(sigma)
        assert result.stats.rounds >= 2
        assert result.stats.matches_considered > 0

    def test_max_rounds_guard(self):
        sigma = [two_person_key()] + parse_gfds(
            "gfd seed { x: person; then x.passport = 1; }"
        )
        with pytest.raises(GFDError):
            ged_satisfiable(sigma, max_rounds=1)
