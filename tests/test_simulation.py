"""Unit and property tests for dual simulation pruning."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PropertyGraph
from repro.gfd.pattern import make_pattern
from repro.graph.elements import WILDCARD
from repro.matching.homomorphism import find_homomorphisms, has_homomorphism
from repro.matching.simulation import dual_simulation, may_have_homomorphism


class TestDualSimulation:
    def test_exact_match_survives(self, small_graph):
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "knows")])
        sim = dual_simulation(pattern, small_graph)
        assert sim is not None
        assert "a0" in sim["x"]
        assert "b0" in sim["y"]
        # a1 has no outgoing 'knows' edge -> cannot simulate x.
        assert "a1" not in sim["x"]

    def test_missing_label_kills_simulation(self, small_graph):
        pattern = make_pattern({"x": "zz"})
        assert dual_simulation(pattern, small_graph) is None

    def test_unreachable_structure_kills_simulation(self, small_graph):
        # c -> a edge does not exist anywhere.
        pattern = make_pattern({"x": "c", "y": "a"}, [("x", "y", "knows")])
        assert dual_simulation(pattern, small_graph) is None
        assert not may_have_homomorphism(pattern, small_graph)

    def test_wildcards_allowed(self, small_graph):
        pattern = make_pattern({"x": WILDCARD, "y": WILDCARD}, [("x", "y", WILDCARD)])
        sim = dual_simulation(pattern, small_graph)
        assert sim is not None
        # a1 is a sink; it cannot simulate x (needs an out-edge).
        assert "a1" not in sim["x"]

    def test_simulation_contains_homomorphism_images(self, small_graph):
        pattern = make_pattern(
            {"x": "a", "y": "b", "z": "b"}, [("x", "y", "knows"), ("y", "z", "knows")]
        )
        sim = dual_simulation(pattern, small_graph)
        for match in find_homomorphisms(pattern, small_graph):
            for var, node in match.items():
                assert node in sim[var]


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_simulation_sound_for_pruning(seed):
    """Property: hom exists => simulation non-empty and contains its image."""
    rng = random.Random(seed)
    graph = PropertyGraph()
    labels = ["a", "b"]
    nodes = [graph.add_node(rng.choice(labels)) for _ in range(rng.randint(1, 5))]
    for _ in range(rng.randint(0, 8)):
        graph.add_edge(rng.choice(nodes), rng.choice(nodes), rng.choice(["e", "f"]))

    num_vars = rng.randint(1, 3)
    pattern_nodes = {f"v{i}": rng.choice(labels + [WILDCARD]) for i in range(num_vars)}
    pattern_edges = [
        (
            f"v{rng.randrange(num_vars)}",
            f"v{rng.randrange(num_vars)}",
            rng.choice(["e", "f", WILDCARD]),
        )
        for _ in range(rng.randint(0, 3))
    ]
    pattern = make_pattern(pattern_nodes, pattern_edges)

    matches = find_homomorphisms(pattern, graph)
    sim = dual_simulation(pattern, graph)
    if matches:
        assert sim is not None
        for match in matches:
            for var, node in match.items():
                assert node in sim[var]
    if sim is None:
        assert not matches
