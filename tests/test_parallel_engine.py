"""Tests for the simulated and threaded parallel runtimes."""

import pytest

from repro.gfd.generator import random_gfds, straggler_workload
from repro.parallel import (
    RuntimeConfig,
    make_cluster,
    par_imp,
    par_sat,
    par_sat_nb,
    par_sat_np,
)


class TestMakeCluster:
    def test_factory(self):
        config = RuntimeConfig()
        assert make_cluster(config, "simulated").__class__.__name__ == "SimulatedCluster"
        assert make_cluster(config, "threaded").__class__.__name__ == "ThreadedCluster"
        with pytest.raises(ValueError):
            make_cluster(config, "quantum")


class TestSimulatedCluster:
    def test_deterministic_runs(self, example4_sigma):
        config = RuntimeConfig(workers=3)
        first = par_sat(example4_sigma, config)
        second = par_sat(example4_sigma, config)
        assert first.satisfiable == second.satisfiable
        assert first.virtual_seconds == pytest.approx(second.virtual_seconds)
        assert first.outcome.units_executed == second.outcome.units_executed

    def test_virtual_time_decreases_with_workers(self):
        sigma = straggler_workload(
            num_anchor=1, num_seekers=2, num_background=15, anchor_size=9,
            seeker_length=4, seed=5,
        )
        times = []
        for p in (1, 2, 8):
            result = par_sat(sigma, RuntimeConfig(workers=p))
            assert result.satisfiable
            times.append(result.virtual_seconds)
        assert times[0] > times[1] > times[2]

    def test_early_termination_executes_fewer_units(self, example4_sigma):
        result = par_sat(example4_sigma, RuntimeConfig(workers=2))
        assert not result.satisfiable
        assert result.outcome.units_executed <= result.outcome.units_total

    def test_outcome_accounting(self, example4_sigma):
        result = par_sat(example4_sigma, RuntimeConfig(workers=2))
        outcome = result.outcome
        assert outcome.match_ticks > 0
        assert len(outcome.worker_busy) == 2
        assert outcome.load_imbalance >= 1.0

    def test_makespan_bounds_busy_without_early_termination(self):
        # The busy <= makespan invariant holds for completed runs; an
        # early-terminated run ends at the conflicting unit's completion
        # time, which may undercut another worker's eagerly-simulated batch.
        sigma = random_gfds(30, 4, 3, seed=8)
        result = par_sat(sigma, RuntimeConfig(workers=2))
        assert result.satisfiable
        outcome = result.outcome
        assert outcome.virtual_seconds >= max(outcome.worker_busy) - 1e-9

    def test_worker_busy_bounded_by_makespan(self):
        sigma = random_gfds(30, 4, 3, seed=8)
        result = par_sat(sigma, RuntimeConfig(workers=4))
        for busy in result.outcome.worker_busy:
            assert busy <= result.virtual_seconds + 1e-9

    def test_batching_reduces_overhead(self):
        # The fixed-batch ablation: batch size is exactly what was asked,
        # so bigger batches pay fewer per-round-trip overheads.
        sigma = random_gfds(60, 4, 3, seed=9)
        small = RuntimeConfig(workers=2, batch_size=1).without_affinity()
        big = RuntimeConfig(workers=2, batch_size=10).without_affinity()
        small_batches = par_sat(sigma, small)
        big_batches = par_sat(sigma, big)
        assert big_batches.virtual_seconds < small_batches.virtual_seconds

    def test_splitting_creates_units(self):
        sigma = straggler_workload(
            num_anchor=1, num_seekers=2, num_background=5, anchor_size=9,
            seeker_length=4, seed=5,
        )
        split = par_sat(sigma, RuntimeConfig(workers=4, ttl_seconds=0.05))
        unsplit = par_sat(sigma, RuntimeConfig(workers=4, ttl_seconds=None))
        assert split.outcome.splits > 0
        assert unsplit.outcome.splits == 0
        assert split.satisfiable == unsplit.satisfiable


class TestThreadedCluster:
    def test_same_verdict_as_simulated_sat(self, example4_sigma, example2_cross_pattern):
        for sigma in (example4_sigma, example2_cross_pattern):
            simulated = par_sat(sigma, RuntimeConfig(workers=3))
            threaded = par_sat(sigma, RuntimeConfig(workers=3), runtime="threaded")
            assert simulated.satisfiable == threaded.satisfiable

    def test_same_verdict_as_simulated_imp(self, example8_sigma, example8_phi13):
        simulated = par_imp(example8_sigma, example8_phi13, RuntimeConfig(workers=3))
        threaded = par_imp(
            example8_sigma, example8_phi13, RuntimeConfig(workers=3), runtime="threaded"
        )
        assert simulated.implied == threaded.implied

    def test_threaded_satisfiable_workload(self):
        sigma = random_gfds(25, 4, 3, seed=3)
        result = par_sat(sigma, RuntimeConfig(workers=4), runtime="threaded")
        assert result.satisfiable
        assert result.outcome.units_executed == result.outcome.units_total - result.outcome.splits


class TestVariants:
    def test_np_disables_pipelining_not_verdict(self, example4_sigma):
        full = par_sat(example4_sigma, RuntimeConfig(workers=2))
        np_variant = par_sat_np(example4_sigma, RuntimeConfig(workers=2))
        assert full.satisfiable == np_variant.satisfiable

    def test_nb_disables_splitting_not_verdict(self, example4_sigma):
        full = par_sat(example4_sigma, RuntimeConfig(workers=2))
        nb_variant = par_sat_nb(example4_sigma, RuntimeConfig(workers=2))
        assert full.satisfiable == nb_variant.satisfiable
        assert nb_variant.outcome.splits == 0

    def test_np_never_faster_on_stragglers(self):
        sigma = straggler_workload(
            num_anchor=1, num_seekers=2, num_background=10, anchor_size=9,
            seeker_length=4, seed=5,
        )
        config = RuntimeConfig(workers=4)
        full = par_sat(sigma, config)
        np_variant = par_sat_np(sigma, config)
        assert np_variant.virtual_seconds >= full.virtual_seconds
