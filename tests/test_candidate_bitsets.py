"""Candidate-pipeline bitset tests: representation equivalence end to end.

The ``use_bitsets`` contract: packed and set candidate paths produce
byte-identical match streams (and therefore identical reasoning verdicts
and cost counters) everywhere a candidate set flows — dual simulation,
``MatcherRun`` pools, ``UnitContext`` neighborhoods, SeqSat/SeqImp, the
incremental checker and validation. Plus the PR's bugfix regressions:
``dual_simulation`` no longer freezes caller patterns, and its worklist
refinement can't silently regress to full per-variable rescans.
"""

import os
import subprocess
import sys

import random

import pytest

from repro.gfd.canonical import build_canonical_graph
from repro.gfd.generator import add_random_conflicts, random_gfds
from repro.gfd.pattern import Pattern, make_pattern
from repro.graph.bitset import NodeBitset
from repro.graph.elements import WILDCARD
from repro.graph.graph import PropertyGraph
from repro.matching import CandidateSet, SimulationStats, simulation_candidates
from repro.matching.homomorphism import MatcherRun
from repro.matching.simulation import SimulationStats as DirectStats
from repro.matching.simulation import dual_simulation
from repro.parallel import RuntimeConfig, par_sat
from repro.parallel.units import UnitContext, execute_unit
from repro.reasoning.enforce import EnforcementEngine
from repro.reasoning.incremental import IncrementalSat
from repro.reasoning.seqimp import seq_imp
from repro.reasoning.seqsat import seq_sat
from repro.reasoning.validation import detect_errors
from repro.reasoning.workunits import generate_pruned_work_units


def random_instance(seed):
    rng = random.Random(seed)
    g = PropertyGraph()
    labels = ["a", "b", "c"]
    nodes = [g.add_node(rng.choice(labels)) for _ in range(rng.randint(1, 14))]
    for _ in range(rng.randint(0, 30)):
        g.add_edge(rng.choice(nodes), rng.choice(nodes), rng.choice(["e", "f", WILDCARD]))
    nv = rng.randint(1, 4)
    pattern = make_pattern(
        {f"v{i}": rng.choice(labels + [WILDCARD]) for i in range(nv)},
        [
            (f"v{rng.randrange(nv)}", f"v{rng.randrange(nv)}", rng.choice(["e", "f", WILDCARD]))
            for _ in range(rng.randint(0, 4))
        ],
    )
    return rng, g, nodes, pattern


class TestFrozenPatternBugfix:
    def test_dual_simulation_does_not_mutate_unfrozen_pattern(self, small_graph):
        pattern = Pattern()
        pattern.add_var("x", "a")
        pattern.add_var("y", "b")
        pattern.add_edge("x", "y", "knows")
        assert not pattern.frozen
        sim = dual_simulation(pattern, small_graph)
        # The shared-Pattern mutation is gone: the caller's object is
        # untouched and still mutable (a ThreadedBackend worker freezing
        # it mid-flight was a race).
        assert not pattern.frozen
        pattern.add_var("z", "c")  # would raise PatternError if frozen
        frozen = make_pattern({"x": "a", "y": "b"}, [("x", "y", "knows")])
        reference = dual_simulation(frozen, small_graph)
        assert sim is not None and reference is not None
        assert {v: set(s) for v, s in sim.items()} == {
            v: set(s) for v, s in reference.items()
        }

    def test_empty_pattern_still_rejected(self, small_graph):
        from repro.errors import PatternError

        with pytest.raises(PatternError):
            dual_simulation(Pattern(), small_graph)


class TestWorklistTickRegression:
    def chain_workload(self, n=400, length=12):
        g = PropertyGraph()
        nodes = [g.add_node("a") for _ in range(n)]
        for i in range(n - 1):
            g.add_edge(nodes[i], nodes[i + 1], "e")
        pattern = make_pattern(
            {f"v{j}": "a" for j in range(length + 1)},
            [(f"v{j}", f"v{j + 1}", "e") for j in range(length)],
        )
        return g, pattern

    def test_constraint_targeted_worklist_check_budget(self):
        """Pin the (node, constraint) evaluation count on a cascade.

        The old fixpoint re-ran *every* edge of *every* survivor whenever
        any neighbor shrank; the constraint-targeted worklist re-runs only
        the affected edge. On this 400-node path / 13-variable chain the
        engine measures ~62k checks — a full-rescan regression at least
        doubles that, so the budget below catches it while leaving head
        room for benign drift.
        """
        g, pattern = self.chain_workload()
        counts = {}
        for use_bitsets in (True, False):
            stats = SimulationStats()
            sim = dual_simulation(pattern, g, use_bitsets=use_bitsets, stats=stats)
            assert sim is not None
            counts[use_bitsets] = stats.checks
            assert stats.checks < 100_000, stats
        # Both representations drive the identical refinement engine.
        assert counts[True] == counts[False]

    def test_edgeless_variables_never_enter_the_worklist(self, small_graph):
        stats = SimulationStats()
        sim = dual_simulation(make_pattern({"w": WILDCARD}), small_graph, stats=stats)
        assert stats.checks == 0 and stats.rounds == 0
        assert set(sim["w"]) == set(small_graph.nodes())


class TestRepresentationEquivalence:
    @pytest.mark.parametrize("seed", range(40))
    def test_simulation_sets_equal(self, seed):
        _, g, _, pattern = random_instance(seed)
        packed = dual_simulation(pattern, g, use_bitsets=True)
        plain = dual_simulation(pattern, g, use_bitsets=False)
        assert (packed is None) == (plain is None)
        if packed is not None:
            for var in pattern.variables:
                assert isinstance(packed[var], NodeBitset)
                assert isinstance(plain[var], set)
                assert packed[var].to_set() == plain[var]

    @pytest.mark.parametrize("seed", range(60))
    def test_match_streams_byte_identical(self, seed):
        rng, g, nodes, pattern = random_instance(seed)
        packed = dual_simulation(pattern, g, use_bitsets=True)
        plain = dual_simulation(pattern, g, use_bitsets=False)
        allowed = (
            set(rng.sample(nodes, k=rng.randint(0, len(nodes))))
            if rng.random() < 0.7
            else None
        )
        preassigned = (
            {pattern.variables[0]: rng.choice(nodes)} if rng.random() < 0.5 else None
        )
        index = g.index()
        stream_plain = [
            sorted(m.items())
            for m in MatcherRun(
                pattern, g, preassigned=preassigned, allowed_nodes=allowed,
                candidate_sets=plain,
            ).matches()
        ]
        stream_packed = [
            sorted(m.items())
            for m in MatcherRun(
                pattern, g, preassigned=preassigned,
                allowed_nodes=index.bitset(allowed) if allowed is not None else None,
                candidate_sets=packed,
            ).matches()
        ]
        assert stream_plain == stream_packed

    @pytest.mark.parametrize("seed", range(6))
    def test_seqsat_and_seqimp_ablation_equivalence(self, seed):
        sigma = random_gfds(10, 4, 3, seed=seed)
        packed = seq_sat(sigma, use_bitsets=True)
        plain = seq_sat(sigma, use_bitsets=False)
        assert packed.satisfiable == plain.satisfiable
        assert packed.stats.matches == plain.stats.matches
        assert packed.stats.match_ticks == plain.stats.match_ticks
        assert packed.stats.pruned_by_simulation == plain.stats.pruned_by_simulation
        phi = sigma[-1]
        imp_packed = seq_imp(sigma[:-1], phi, use_bitsets=True)
        imp_plain = seq_imp(sigma[:-1], phi, use_bitsets=False)
        assert imp_packed.implied == imp_plain.implied
        assert imp_packed.stats.matches == imp_plain.stats.matches
        assert imp_packed.stats.match_ticks == imp_plain.stats.match_ticks

    def test_seqsat_conflicting_instances_equivalent(self):
        sigma = add_random_conflicts(random_gfds(8, 4, 3, seed=321), 3, seed=5)
        packed = seq_sat(sigma, use_bitsets=True)
        plain = seq_sat(sigma, use_bitsets=False)
        assert packed.satisfiable == plain.satisfiable
        assert packed.stats.matches == plain.stats.matches

    def test_incremental_ablation_equivalence(self):
        sigma = random_gfds(10, 4, 3, seed=77)
        packed = IncrementalSat(sigma, use_bitsets=True)
        plain = IncrementalSat(sigma, use_bitsets=False)
        assert packed.satisfiable == plain.satisfiable
        assert [
            (s.gfd_name, s.satisfiable, s.new_matches) for s in packed.steps
        ] == [(s.gfd_name, s.satisfiable, s.new_matches) for s in plain.steps]

    def test_validation_ablation_equivalence(self):
        sigma = random_gfds(8, 4, 3, seed=11)
        graph = build_canonical_graph(sigma).graph
        packed = detect_errors(graph, sigma)
        # detect_errors drives find_violations(use_bitsets=True) by default;
        # compare with the explicit set path per GFD.
        from repro.reasoning.validation import find_violations

        plain = []
        for gfd in sigma:
            plain.extend(find_violations(graph, gfd, use_bitsets=False))
        assert packed == plain

    def test_par_sat_bitset_knob_equivalence(self):
        sigma = random_gfds(9, 4, 3, seed=13)
        expected = seq_sat(sigma).satisfiable
        for use_bitsets in (True, False):
            result = par_sat(
                sigma,
                RuntimeConfig(workers=2, use_bitsets=use_bitsets),
                backend="simulated",
            )
            assert result.satisfiable == expected


class TestUnitContextBitsets:
    def make_context(self, seed, use_bitsets):
        sigma = random_gfds(8, 4, 3, seed=seed)
        canonical = build_canonical_graph(sigma)
        units = generate_pruned_work_units(sigma, canonical.graph, use_bitsets=use_bitsets)
        context = UnitContext(canonical.graph, canonical.gfds, use_bitsets=use_bitsets)
        return canonical, units, context

    def test_allowed_nodes_and_candidates_are_bitsets(self):
        canonical, units, context = self.make_context(3, use_bitsets=True)
        unit = next(u for u in units if u.radius is not None)
        allowed = context.allowed_nodes(unit.pivot_node(), unit.radius)
        assert isinstance(allowed, NodeBitset)
        # Equal-radius requests share the materialized object.
        assert context.allowed_nodes(unit.pivot_node(), unit.radius) is allowed
        gfd = canonical.gfds[unit.gfd_name]
        candidates = context.candidate_sets(gfd)
        assert candidates is not None
        assert all(
            isinstance(c, (NodeBitset, set)) for c in candidates.values()
        )

    def test_execute_unit_equivalence(self):
        results = {}
        for use_bitsets in (True, False):
            canonical, units, context = self.make_context(4, use_bitsets=use_bitsets)
            from repro.eq.eqrelation import EqRelation

            engine = EnforcementEngine(EqRelation(), canonical.gfds)
            outcome = [
                (r.matches, r.match_ticks, r.conflict)
                for r in (execute_unit(u, context, engine) for u in units)
            ]
            results[use_bitsets] = outcome
        assert results[True] == results[False]

    def test_pickled_context_drops_bitset_caches_and_recovers(self):
        import pickle

        canonical, units, context = self.make_context(5, use_bitsets=True)
        unit = next(u for u in units if u.radius is not None)
        before = context.allowed_nodes(unit.pivot_node(), unit.radius)
        clone = pickle.loads(pickle.dumps(context))
        after = clone.allowed_nodes(unit.pivot_node(), unit.radius)
        assert isinstance(after, NodeBitset)
        assert after.to_set() == before.to_set()


class TestEntryPointWiring:
    def test_simulation_candidates_is_the_prefilter(self, small_graph):
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "knows")])
        stats = SimulationStats()
        via_entry = simulation_candidates(pattern, small_graph, stats=stats)
        direct = dual_simulation(pattern, small_graph)
        assert via_entry is not None and direct is not None
        assert {v: set(s) for v, s in via_entry.items()} == {
            v: set(s) for v, s in direct.items()
        }
        assert stats.checks > 0
        assert isinstance(stats, DirectStats)

    def test_matching_package_exports(self):
        import repro.matching as matching

        for name in ("simulation_candidates", "SimulationStats", "CandidateSet"):
            assert name in matching.__all__
            assert hasattr(matching, name)
        assert CandidateSet is not None


class TestHashSeedDeterminismWithBitsets:
    SCRIPT = """
import random
from repro import PropertyGraph
from repro.gfd.pattern import make_pattern
from repro.matching.homomorphism import MatcherRun
from repro.matching.simulation import dual_simulation

rng = random.Random(5)
graph = PropertyGraph()
names = [f"node-{i}" for i in range(40)]
rng.shuffle(names)
for name in names:
    graph.add_node(rng.choice(["a", "b"]), node_id=name)
for _ in range(140):
    graph.add_edge(rng.choice(names), rng.choice(names), rng.choice(["e", "f"]))

pattern = make_pattern({"x": "_", "y": "a"}, [("x", "y", "e")])
index = graph.index()
# Hash-order-scrambled allowed set packed into a bitset + packed simulation
# candidates: iteration must stay graph insertion order under any seed.
allowed = set()
for name in sorted(names, key=lambda n: hash(n)):
    allowed.add(name)
candidates = dual_simulation(pattern, graph, use_bitsets=True)
run = MatcherRun(
    pattern, graph,
    allowed_nodes=index.bitset(allowed),
    candidate_sets=candidates,
)
for match in run.matches():
    print(sorted(match.items()))
"""

    def _stream(self, hashseed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = str(hashseed)
        src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return result.stdout

    def test_bitset_match_stream_independent_of_hash_seed(self):
        streams = {self._stream(seed) for seed in (0, 1, 4242)}
        assert len(streams) == 1
        assert streams.pop().strip()
