"""Unit tests for the GFD class."""

import pytest

from repro.errors import LiteralError
from repro.gfd import FALSE, GFD, make_gfd, make_pattern, sigma_size, validate_sigma
from repro.gfd.literals import eq, vareq


@pytest.fixture
def simple_pattern():
    return make_pattern({"x": "a", "y": "b"}, [("x", "y", "e")])


class TestConstruction:
    def test_auto_name(self, simple_pattern):
        gfd = make_gfd(simple_pattern, [], [eq("x", "A", 1)])
        assert gfd.name.startswith("gfd")

    def test_explicit_name(self, simple_pattern):
        gfd = make_gfd(simple_pattern, [], [eq("x", "A", 1)], name="mine")
        assert gfd.name == "mine"

    def test_literal_validation(self, simple_pattern):
        with pytest.raises(LiteralError):
            make_gfd(simple_pattern, [eq("z", "A", 1)], [])
        with pytest.raises(LiteralError):
            make_gfd(simple_pattern, [], [vareq("x", "A", "ghost", "B")])

    def test_false_only_in_consequent(self, simple_pattern):
        with pytest.raises(LiteralError):
            make_gfd(simple_pattern, [FALSE], [])
        gfd = make_gfd(simple_pattern, [], [FALSE])
        assert gfd.has_false_consequent()

    def test_unfrozen_pattern_is_frozen(self):
        from repro.gfd.pattern import Pattern

        pattern = Pattern()
        pattern.add_var("x", "a")
        gfd = make_gfd(pattern, [], [eq("x", "A", 1)])
        assert gfd.pattern.frozen

    def test_literals_sorted_for_determinism(self, simple_pattern):
        gfd1 = make_gfd(simple_pattern, [], [eq("x", "A", 1), eq("x", "B", 2)])
        gfd2 = make_gfd(simple_pattern, [], [eq("x", "B", 2), eq("x", "A", 1)])
        assert gfd1.consequent == gfd2.consequent


class TestProbes:
    def test_empty_antecedent(self, simple_pattern):
        assert make_gfd(simple_pattern, [], [eq("x", "A", 1)]).has_empty_antecedent()
        assert not make_gfd(
            simple_pattern, [eq("x", "A", 1)], [eq("y", "B", 2)]
        ).has_empty_antecedent()

    def test_trivial(self, simple_pattern):
        assert make_gfd(simple_pattern, [eq("x", "A", 1)], []).is_trivial()

    def test_attribute_name_sets(self, simple_pattern):
        gfd = make_gfd(
            simple_pattern, [eq("x", "A", 1)], [vareq("x", "B", "y", "C")]
        )
        assert gfd.antecedent_attributes() == {"A"}
        assert gfd.consequent_attributes() == {"B", "C"}

    def test_constants(self, simple_pattern):
        gfd = make_gfd(simple_pattern, [eq("x", "A", 1)], [eq("y", "B", "two")])
        assert gfd.constants() == {1, "two"}

    def test_counts_and_size(self, simple_pattern):
        gfd = make_gfd(simple_pattern, [eq("x", "A", 1)], [eq("y", "B", 2)])
        assert gfd.literal_count() == 2
        assert gfd.size() == simple_pattern.size() + 2

    def test_str_contains_name_and_arrow(self, simple_pattern):
        gfd = make_gfd(simple_pattern, [], [eq("x", "A", 1)], name="g")
        assert "g" in str(gfd) and "→" in str(gfd)


class TestEqualityAndSigma:
    def test_equality_ignores_name(self, simple_pattern):
        a = make_gfd(simple_pattern, [], [eq("x", "A", 1)], name="a")
        b = make_gfd(
            make_pattern({"x": "a", "y": "b"}, [("x", "y", "e")]),
            [],
            [eq("x", "A", 1)],
            name="b",
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_sigma_size(self, simple_pattern):
        gfd = make_gfd(simple_pattern, [], [eq("x", "A", 1)])
        assert sigma_size([gfd, gfd]) == 2 * gfd.size()

    def test_validate_sigma_warnings(self, simple_pattern):
        trivial = make_gfd(simple_pattern, [eq("x", "A", 1)], [], name="t")
        dup = make_gfd(simple_pattern, [], [eq("x", "A", 1)], name="t")
        warnings = validate_sigma([trivial, dup])
        assert any("duplicate" in w for w in warnings)
        assert any("empty consequent" in w for w in warnings)

    def test_validate_sigma_clean(self, simple_pattern):
        gfd = make_gfd(simple_pattern, [], [eq("x", "A", 1)], name="ok")
        assert validate_sigma([gfd]) == []
