"""NodeBitset engine + GraphIndex bitset-cache maintenance tests.

Covers the packed candidate-set representation itself (set protocol,
ordering, word ops) and the index-side cache contract: lazily packed
vectors stay equal to a from-scratch rebuild across ``apply_delta``
batches and the compaction boundary.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bitset import NodeBitset, bit_count, bit_positions, pack_positions
from repro.graph.graph import PropertyGraph
from repro.graph.index import NO_LABEL, GraphIndex


def diamond_graph():
    g = PropertyGraph()
    a = g.add_node("a")
    b = g.add_node("b")
    c = g.add_node("a")
    d = g.add_node("c")
    g.add_edge(a, b, "e")
    g.add_edge(a, c, "e")
    g.add_edge(b, d, "f")
    g.add_edge(c, d, "f")
    return g, (a, b, c, d)


class TestBitHelpers:
    def test_bit_positions_ascending(self):
        bits = (1 << 0) | (1 << 7) | (1 << 63) | (1 << 64) | (1 << 200)
        assert bit_positions(bits) == [0, 7, 63, 64, 200]

    def test_bit_positions_empty(self):
        assert bit_positions(0) == []

    def test_bit_count(self):
        assert bit_count(0) == 0
        assert bit_count((1 << 100) | 7) == 4

    def test_pack_positions_skips_unknown(self):
        position = {"a": 0, "b": 5}
        assert pack_positions(["a", "zzz", "b"], position) == (1 << 0) | (1 << 5)

    def test_pack_positions_small_and_large_paths_agree(self):
        # The sized fast path (count << 6 < |position|) and the staging
        # buffer must produce identical vectors.
        position = {i: i for i in range(1000)}
        members = [3, 64, 999]
        small = pack_positions(members, position)  # 3 * 64 < 1000 → shifts
        large = pack_positions(list(range(500)), position)  # buffer path
        assert bit_positions(small) == members
        assert bit_positions(large) == list(range(500))


class TestNodeBitset:
    def test_set_protocol(self):
        g, (a, b, c, d) = diamond_graph()
        idx = g.index()
        bs = idx.bitset([c, a])
        assert a in bs and c in bs
        assert b not in bs and d not in bs
        assert "ghost" not in bs
        assert len(bs) == 2
        assert bool(bs)
        assert not bool(idx.bitset([]))
        # Iteration is graph insertion order, not argument order.
        assert list(bs) == [a, c]
        assert bs.to_list() == [a, c]
        assert bs.to_set() == {a, c}

    def test_word_ops_and_comparisons(self):
        g, (a, b, c, d) = diamond_graph()
        idx = g.index()
        x = idx.bitset([a, b])
        y = idx.bitset([b, c])
        assert (x & y).to_set() == {b}
        assert (x | y).to_set() == {a, b, c}
        assert (x - y).to_set() == {a}
        assert not x.isdisjoint(y)
        assert x.isdisjoint(idx.bitset([d]))
        assert idx.bitset([b]) <= y
        assert idx.bitset([b]) < y
        assert y >= idx.bitset([c])
        assert x <= {a, b, d}
        assert x == {a, b}
        assert x == idx.bitset([b, a])
        assert hash(x) == hash(idx.bitset([a, b]))

    def test_universe_mismatch_degrades_not_combines(self):
        g1, (a, b, *_) = diamond_graph()
        g2, _ = diamond_graph()
        x = g1.index().bitset([a])
        y = g2.index().bitset([a, b])
        with pytest.raises(ValueError):
            _ = x & y
        # Content-wise comparison still works across universes.
        assert x <= y
        assert x != y

    def test_registered_as_abstract_set(self):
        from collections.abc import Set

        g, (a, *_) = diamond_graph()
        assert isinstance(g.index().bitset([a]), Set)


class TestIndexBitsetViews:
    def test_bucket_and_adjacency_vectors_match_lists(self):
        g, (a, b, c, d) = diamond_graph()
        idx = g.index()
        for label in ("a", "b", "c"):
            lid = idx.label_id(label)
            assert bit_positions(idx.label_bucket_bits(lid)) == [
                idx.position[n] for n in idx.nodes_with_label_id(lid)
            ]
        assert idx.label_bucket_bits(NO_LABEL) == 0
        e = idx.label_id("e")
        assert bit_positions(idx.out_neighbor_bits(a, e)) == [
            idx.position[n] for n in idx.out_neighbors(a, e)
        ]
        assert bit_positions(idx.in_neighbor_bits(d, None)) == [
            idx.position[n] for n in idx.in_neighbors(d, None)
        ]
        assert idx.out_neighbor_bits(d, e) == 0
        assert idx.all_bits() == (1 << 4) - 1
        assert idx.all_nodes_bitset().to_list() == list(idx.nodes)

    def test_delta_maintains_warm_vectors(self):
        g, (a, b, c, d) = diamond_graph()
        idx = g.index()
        e = idx.label_id("e")
        # Warm every cache flavor, then mutate through the journal.
        idx.all_bits()
        idx.label_bucket_bits(idx.label_id("a"))
        idx.out_neighbor_bits(a, e)
        idx.in_neighbor_bits(b, None)
        n = g.add_node("a")
        g.add_edge(a, n, "e")
        g.add_edge(n, b, "g")
        g.set_node_label(c, "b")
        assert g.index() is idx  # delta path, same object
        fresh = GraphIndex(g)  # rebuild ground truth

        def norm(index, bits):
            return [index.nodes[p] for p in bit_positions(bits)]

        assert norm(idx, idx.all_bits()) == norm(fresh, fresh.all_bits())
        for label in ("a", "b", "c"):
            assert norm(idx, idx.label_bucket_bits(idx.label_id(label))) == norm(
                fresh, fresh.label_bucket_bits(fresh.label_id(label))
            )
        assert norm(idx, idx.out_neighbor_bits(a, idx.label_id("e"))) == norm(
            fresh, fresh.out_neighbor_bits(a, fresh.label_id("e"))
        )
        assert norm(idx, idx.in_neighbor_bits(b, None)) == norm(
            fresh, fresh.in_neighbor_bits(b, None)
        )

    def test_adjacency_groups_are_position_sorted(self):
        g = PropertyGraph()
        nodes = [g.add_node("n") for _ in range(6)]
        # Insert edges in deliberately reversed target order.
        for dst in reversed(nodes[1:]):
            g.add_edge(nodes[0], dst, "e")
        idx = g.index()
        group = idx.out_neighbors(nodes[0], idx.label_id("e"))
        assert list(group) == nodes[1:]
        # Delta-added edges bisect into place, not append.
        older = g.add_node("n")  # position 6
        g.add_edge(nodes[0], older, "e")
        g.add_edge(nodes[0], nodes[0], "e")  # self-loop at position 0
        idx = g.index()
        group = idx.out_neighbors(nodes[0], idx.label_id("e"))
        assert list(group) == [nodes[0]] + nodes[1:] + [older]


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000), st.booleans())
def test_warm_bitset_caches_equal_rebuild_property(seed, tiny_compaction):
    """Random mutation schedules keep warm vectors rebuild-equivalent.

    Half the examples force a tiny compaction threshold so the journal
    crosses the rebuild boundary mid-schedule; the vectors must come out
    identical either way (fresh object, fresh caches, same content).
    """
    rng = random.Random(seed)
    g = PropertyGraph()
    if tiny_compaction:
        g.INDEX_COMPACTION_MIN = 2
    labels = ["a", "b", "c"]
    nodes = [g.add_node(rng.choice(labels)) for _ in range(rng.randint(1, 6))]
    idx = g.index()
    # Warm a random subset of vectors so delta maintenance has targets.
    for node in rng.sample(nodes, k=min(3, len(nodes))):
        idx.out_neighbor_bits(node, None)
        idx.in_neighbor_bits(node, idx.label_id("a"))
    idx.all_bits()
    idx.label_bucket_bits(idx.label_id(rng.choice(labels)))
    for _ in range(rng.randint(1, 25)):
        op = rng.random()
        if op < 0.35:
            nodes.append(g.add_node(rng.choice(labels)))
        elif op < 0.8 and nodes:
            g.add_edge(rng.choice(nodes), rng.choice(nodes), rng.choice(["e", "f"]))
        elif nodes:
            g.set_node_label(rng.choice(nodes), rng.choice(labels))
        if rng.random() < 0.4:
            idx = g.index()
            if rng.random() < 0.5 and nodes:
                idx.out_neighbor_bits(rng.choice(nodes), None)
    idx = g.index()
    fresh = GraphIndex(g)

    def norm(index, bits):
        return [index.nodes[p] for p in bit_positions(bits)]

    assert norm(idx, idx.all_bits()) == norm(fresh, fresh.all_bits())
    for label in labels + ["e", "f"]:
        assert norm(idx, idx.label_bucket_bits(idx.label_id(label))) == norm(
            fresh, fresh.label_bucket_bits(fresh.label_id(label))
        )
    for node in nodes:
        for lid_of in (lambda i: None, lambda i: i.label_id("e"), lambda i: i.label_id("f")):
            assert norm(idx, idx.out_neighbor_bits(node, lid_of(idx))) == norm(
                fresh, fresh.out_neighbor_bits(node, lid_of(fresh))
            ), (node,)
            assert norm(idx, idx.in_neighbor_bits(node, lid_of(idx))) == norm(
                fresh, fresh.in_neighbor_bits(node, lid_of(fresh))
            ), (node,)
