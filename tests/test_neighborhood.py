"""Unit tests for BFS neighborhoods, eccentricity and components."""

from repro import PropertyGraph
from repro.graph.neighborhood import (
    bfs_hops,
    component_of,
    connected_components,
    eccentricity,
    is_connected,
    neighborhood,
    shortest_path_length,
    within_hops,
)


def path_graph(n: int) -> PropertyGraph:
    graph = PropertyGraph()
    nodes = [graph.add_node("v") for _ in range(n)]
    for a, b in zip(nodes, nodes[1:]):
        graph.add_edge(a, b, "e")
    return graph


class TestBfs:
    def test_distances_on_path(self):
        graph = path_graph(4)
        dist = bfs_hops(graph, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_bfs_is_undirected(self):
        graph = path_graph(3)
        dist = bfs_hops(graph, 2)
        assert dist[0] == 2

    def test_max_hops_truncates(self):
        graph = path_graph(5)
        dist = bfs_hops(graph, 0, max_hops=2)
        assert set(dist) == {0, 1, 2}

    def test_neighborhood_inclusive(self):
        graph = path_graph(5)
        assert neighborhood(graph, 2, 1) == {1, 2, 3}
        assert neighborhood(graph, 2, 0) == {2}


class TestEccentricityAndPaths:
    def test_eccentricity_path_end(self):
        graph = path_graph(4)
        assert eccentricity(graph, 0) == 3
        assert eccentricity(graph, 1) == 2

    def test_eccentricity_isolated(self):
        graph = PropertyGraph()
        v = graph.add_node("v")
        assert eccentricity(graph, v) == 0

    def test_shortest_path_length(self):
        graph = path_graph(4)
        assert shortest_path_length(graph, 0, 3) == 3
        other = graph.add_node("w")
        assert shortest_path_length(graph, 0, other) is None

    def test_within_hops(self):
        graph = path_graph(4)
        assert within_hops(graph, 0, 2, 2)
        assert not within_hops(graph, 0, 3, 2)
        assert within_hops(graph, 1, 1, 0)


class TestComponents:
    def test_single_component(self):
        graph = path_graph(3)
        components = connected_components(graph)
        assert len(components) == 1
        assert components[0] == {0, 1, 2}

    def test_multiple_components(self):
        graph = path_graph(2)
        isolated = graph.add_node("w")
        components = connected_components(graph)
        assert len(components) == 2
        assert {isolated} in components

    def test_component_of(self):
        graph = path_graph(2)
        isolated = graph.add_node("w")
        assert component_of(graph, 0) == {0, 1}
        assert component_of(graph, isolated) == {isolated}

    def test_is_connected(self):
        graph = path_graph(3)
        assert is_connected(graph)
        graph.add_node("w")
        assert not is_connected(graph)

    def test_empty_graph_connected(self):
        assert is_connected(PropertyGraph())
