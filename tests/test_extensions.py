"""Tests for the built-in-predicate extension (paper Section IX)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import parse_gfds
from repro.errors import LiteralError, ParseError
from repro.extensions import (
    Bounds,
    CompareLiteral,
    ExtendedEq,
    VarNeqLiteral,
    ext_seq_imp,
    ext_seq_sat,
)
from repro.gfd.parser import gfd_from_dict, gfd_to_dict, parse_gfd, render_gfd


class TestLiterals:
    def test_compare_literal_validation(self):
        CompareLiteral("x", "A", "<", 5)
        CompareLiteral("x", "A", "!=", "text")
        with pytest.raises(LiteralError):
            CompareLiteral("x", "A", "~", 5)
        with pytest.raises(LiteralError):
            CompareLiteral("x", "A", "<", "text")

    def test_var_neq_canonical_orientation(self):
        assert VarNeqLiteral("y", "B", "x", "A") == VarNeqLiteral("x", "A", "y", "B")

    def test_literal_protocol(self):
        literal = CompareLiteral("x", "A", "<=", 3)
        assert literal.variables() == {"x"}
        assert literal.terms() == (("x", "A"),)
        neq = VarNeqLiteral("x", "A", "y", "B")
        assert neq.variables() == {"x", "y"}


class TestBounds:
    def test_tighten_and_empty(self):
        bounds = Bounds()
        assert bounds.tighten_upper(5, strict=True)
        assert bounds.tighten_lower(5, strict=False)
        assert bounds.is_empty()

    def test_point_interval(self):
        bounds = Bounds()
        bounds.tighten_lower(3, strict=False)
        bounds.tighten_upper(3, strict=False)
        assert not bounds.is_empty()
        assert bounds.pins_to_point() == 3

    def test_admits(self):
        bounds = Bounds()
        bounds.tighten_lower(1, strict=True)
        bounds.tighten_upper(4, strict=False)
        assert bounds.admits(2)
        assert bounds.admits(4)
        assert not bounds.admits(1)
        assert not bounds.admits(5)
        assert not bounds.admits("text")

    def test_implications(self):
        bounds = Bounds()
        bounds.tighten_upper(3, strict=True)
        assert bounds.implies_leq(3, strict=True)
        assert bounds.implies_leq(4, strict=False)
        assert not bounds.implies_geq(0, strict=False)


class TestExtendedEq:
    def test_bound_then_constant_ok(self):
        eq = ExtendedEq()
        eq.add_bound(("x", "A"), "<", 5)
        eq.assign_constant(("x", "A"), 3)
        assert not eq.has_conflict()

    def test_constant_violating_bound(self):
        eq = ExtendedEq()
        eq.add_bound(("x", "A"), "<", 5)
        eq.assign_constant(("x", "A"), 9)
        assert eq.has_conflict()

    def test_bound_violating_constant(self):
        eq = ExtendedEq()
        eq.assign_constant(("x", "A"), 9)
        eq.add_bound(("x", "A"), "<", 5)
        assert eq.has_conflict()

    def test_empty_interval_conflict(self):
        eq = ExtendedEq()
        eq.add_bound(("x", "A"), ">", 7)
        eq.add_bound(("x", "A"), "<", 5)
        assert eq.has_conflict()

    def test_point_promotes_to_constant(self):
        eq = ExtendedEq()
        eq.add_bound(("x", "A"), ">=", 4)
        eq.add_bound(("x", "A"), "<=", 4)
        assert eq.constant_of(("x", "A")) == 4

    def test_merge_combines_bounds(self):
        eq = ExtendedEq()
        eq.add_bound(("x", "A"), ">=", 2)
        eq.add_bound(("y", "B"), "<=", 6)
        eq.merge_terms(("x", "A"), ("y", "B"))
        bounds = eq.bounds_of(("x", "A"))
        assert bounds.lower == 2 and bounds.upper == 6

    def test_merge_incompatible_bounds_conflicts(self):
        eq = ExtendedEq()
        eq.add_bound(("x", "A"), ">", 7)
        eq.add_bound(("y", "B"), "<", 5)
        eq.merge_terms(("x", "A"), ("y", "B"))
        assert eq.has_conflict()

    def test_neq_constant(self):
        eq = ExtendedEq()
        eq.add_neq_constant(("x", "A"), 5)
        eq.assign_constant(("x", "A"), 5)
        assert eq.has_conflict()

    def test_neq_constant_after_assignment(self):
        eq = ExtendedEq()
        eq.assign_constant(("x", "A"), 5)
        eq.add_neq_constant(("x", "A"), 5)
        assert eq.has_conflict()

    def test_neq_terms_blocks_merge(self):
        eq = ExtendedEq()
        eq.add_neq_terms(("x", "A"), ("y", "B"))
        eq.merge_terms(("x", "A"), ("y", "B"))
        assert eq.has_conflict()

    def test_neq_terms_on_equal_class_conflicts(self):
        eq = ExtendedEq()
        eq.merge_terms(("x", "A"), ("y", "B"))
        eq.add_neq_terms(("x", "A"), ("y", "B"))
        assert eq.has_conflict()

    def test_neq_pairs_rebased_after_merge(self):
        eq = ExtendedEq()
        eq.add_neq_terms(("x", "A"), ("y", "B"))
        eq.merge_terms(("y", "B"), ("z", "C"))
        assert eq.has_neq(("x", "A"), ("z", "C"))
        eq.merge_terms(("x", "A"), ("z", "C"))
        assert eq.has_conflict()

    def test_disequal_classes_same_constant_conflict(self):
        eq = ExtendedEq()
        eq.add_neq_terms(("x", "A"), ("y", "B"))
        eq.assign_constant(("x", "A"), 1)
        assert not eq.has_conflict()
        eq.assign_constant(("y", "B"), 1)
        assert eq.has_conflict()

    def test_copy_independent(self):
        eq = ExtendedEq()
        eq.add_bound(("x", "A"), "<", 5)
        clone = eq.copy()
        clone.add_bound(("x", "A"), ">", 7)
        assert clone.has_conflict() and not eq.has_conflict()

    def test_completion_respects_constraints(self):
        eq = ExtendedEq()
        eq.add_bound(("x", "A"), ">=", 2)
        eq.add_bound(("x", "A"), "<", 3)
        eq.add_neq_terms(("x", "A"), ("y", "B"))
        eq.add_bound(("y", "B"), ">=", 2)
        eq.add_bound(("y", "B"), "<", 3)
        eq.add_neq_constant(("z", "C"), 7)
        assignment = eq.completed_assignment()
        assert 2 <= assignment[("x", "A")] < 3
        assert 2 <= assignment[("y", "B")] < 3
        assert assignment[("x", "A")] != assignment[("y", "B")]
        assert assignment[("z", "C")] != 7

    def test_completion_rejects_conflicted(self):
        eq = ExtendedEq()
        eq.add_bound(("x", "A"), ">", 7)
        eq.add_bound(("x", "A"), "<", 5)
        with pytest.raises(ValueError):
            eq.completed_assignment()


class TestExtendedSat:
    def test_bound_conflict_unsat(self):
        sigma = parse_gfds(
            """
            gfd g1 { x: a; then x.A < 5; }
            gfd g2 { x: a; then x.A > 7; }
            """
        )
        assert not ext_seq_sat(sigma).satisfiable

    def test_compatible_bounds_sat(self):
        sigma = parse_gfds(
            """
            gfd g1 { x: a; then x.A < 5; }
            gfd g2 { x: a; then x.A >= 2; }
            """
        )
        result = ext_seq_sat(sigma)
        assert result.satisfiable
        assignment = result.eq.completed_assignment()
        assert all(2 <= value < 5 for value in assignment.values())

    def test_point_pin_plus_neq_unsat(self):
        sigma = parse_gfds(
            """
            gfd g1 { x: a; then x.A <= 3; }
            gfd g2 { x: a; then x.A >= 3; }
            gfd g3 { x: a; then x.A != 3; }
            """
        )
        assert not ext_seq_sat(sigma).satisfiable

    def test_neq_and_merge_unsat(self):
        sigma = parse_gfds(
            """
            gfd g1 { x: a; then x.A != x.B; }
            gfd g2 { x: a; then x.A = x.B; }
            """
        )
        assert not ext_seq_sat(sigma).satisfiable

    def test_guarded_bound_antecedent(self):
        # Antecedent with a bound: fires only when the bound is forced.
        sigma = parse_gfds(
            """
            gfd g1 { x: a; then x.A >= 10; }
            gfd g2 { x: a; when x.A > 5; then x.B = 1, x.B = 2; }
            """
        )
        # x.A >= 10 forces x.A > 5, which triggers g2's contradictory Y.
        assert not ext_seq_sat(sigma).satisfiable

    def test_undecided_bound_never_fires(self):
        sigma = parse_gfds(
            """
            gfd g1 { x: a; then x.A <= 10; }
            gfd g2 { x: a; when x.A > 5; then x.B = 1, x.B = 2; }
            """
        )
        # x.A <= 10 does not force x.A > 5; completion can pick x.A = 0.
        assert ext_seq_sat(sigma).satisfiable

    def test_plain_gfds_still_work(self, example4_sigma, example8_sigma):
        assert not ext_seq_sat(example4_sigma).satisfiable
        assert ext_seq_sat(example8_sigma).satisfiable


class TestExtendedImp:
    def test_bound_weakening_implied(self):
        phi = parse_gfd("gfd p { x: a; when x.A < 3; then x.A < 5; }")
        assert ext_seq_imp([], phi).implied

    def test_bound_strengthening_not_implied(self):
        phi = parse_gfd("gfd p { x: a; when x.A < 5; then x.A < 3; }")
        assert not ext_seq_imp([], phi).implied

    def test_neq_from_distinct_constants(self):
        phi = parse_gfd(
            "gfd p { x: a; when x.A = 1, x.B = 2; then x.A != x.B; }"
        )
        assert ext_seq_imp([], phi).implied

    def test_conflict_reason_for_inconsistent_antecedent(self):
        sigma = parse_gfds("gfd s { x: a; then x.A > 9; }")
        phi = parse_gfd("gfd p { x: a; when x.A < 3; then x.Z = 1; }")
        result = ext_seq_imp(sigma, phi)
        assert result.implied and result.reason == "conflict"

    def test_sigma_bound_derivation(self):
        sigma = parse_gfds("gfd s { x: a; then x.A >= 7; }")
        phi = parse_gfd("gfd p { x: a; then x.A > 5; }")
        assert ext_seq_imp(sigma, phi).implied


class TestPredicateParsing:
    def test_parse_all_ops(self):
        gfd = parse_gfd(
            "gfd g { x: a; when x.A < 5, x.B >= 2, x.C != 7; then x.D != x.E; }"
        )
        ops = sorted(str(lit) for lit in gfd.antecedent)
        assert any("< 5" in op for op in ops)
        assert any(">= 2" in op for op in ops)
        assert isinstance(gfd.consequent[0], VarNeqLiteral)

    def test_ordered_term_comparison_rejected(self):
        with pytest.raises(ParseError):
            parse_gfd("gfd g { x: a; then x.A < x.B; }")

    def test_ordered_string_comparison_rejected(self):
        with pytest.raises(ParseError):
            parse_gfd('gfd g { x: a; then x.A < "text"; }')

    def test_render_round_trip(self):
        gfd = parse_gfd(
            "gfd g { x: a; when x.A < 5; then x.B != 3, x.C != x.D; }"
        )
        assert parse_gfd(render_gfd(gfd)) == gfd

    def test_json_round_trip(self):
        gfd = parse_gfd("gfd g { x: a; when x.A <= 2.5; then x.B != x.C; }")
        assert gfd_from_dict(gfd_to_dict(gfd)) == gfd


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("lo"), st.integers(0, 10), st.booleans()),
            st.tuples(st.just("hi"), st.integers(0, 10), st.booleans()),
            st.tuples(st.just("const"), st.integers(0, 10), st.booleans()),
        ),
        max_size=15,
    )
)
def test_extended_eq_constant_always_within_bounds(ops):
    """Property: an unconflicted class's constant satisfies its bounds."""
    eq = ExtendedEq()
    term = ("x", "A")
    for kind, value, flag in ops:
        if kind == "lo":
            eq.add_bound(term, ">" if flag else ">=", value)
        elif kind == "hi":
            eq.add_bound(term, "<" if flag else "<=", value)
        else:
            eq.assign_constant(term, value)
        if eq.has_conflict():
            return
        constant = eq.constant_of(term)
        if constant is not None:
            assert eq.bounds_of(term).admits(constant)
