"""Unit and property tests for the Eq relation (Rules 1 and 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eq.eqrelation import EqRelation


class TestRule1Constants:
    def test_assign_new_constant(self):
        eq = EqRelation()
        assert eq.assign_constant(("x", "A"), 1)
        assert eq.constant_of(("x", "A")) == 1
        assert not eq.has_conflict()

    def test_reassign_same_constant_is_noop(self):
        eq = EqRelation()
        eq.assign_constant(("x", "A"), 1)
        assert not eq.assign_constant(("x", "A"), 1)
        assert not eq.has_conflict()

    def test_conflicting_constant_detected(self):
        eq = EqRelation()
        eq.assign_constant(("x", "A"), 1)
        eq.assign_constant(("x", "A"), 2, source="g")
        assert eq.has_conflict()
        assert eq.conflict.value_a == 1
        assert eq.conflict.value_b == 2
        assert "g" in str(eq.conflict)

    def test_falsy_constants_are_real_values(self):
        eq = EqRelation()
        eq.assign_constant(("x", "A"), 0)
        eq.assign_constant(("x", "A"), False)
        # 0 == False in Python; no conflict is the documented behavior.
        assert not eq.has_conflict()
        eq.assign_constant(("x", "B"), 0)
        eq.assign_constant(("x", "B"), "")
        assert eq.has_conflict()


class TestRule2Merges:
    def test_merge_unifies_classes(self):
        eq = EqRelation()
        assert eq.merge_terms(("x", "A"), ("y", "B"))
        assert eq.same_class(("x", "A"), ("y", "B"))
        assert not eq.merge_terms(("x", "A"), ("y", "B"))

    def test_merge_propagates_constant(self):
        eq = EqRelation()
        eq.assign_constant(("x", "A"), 7)
        eq.merge_terms(("x", "A"), ("y", "B"))
        assert eq.constant_of(("y", "B")) == 7

    def test_merge_propagates_constant_from_absorbed_side(self):
        eq = EqRelation()
        # Build a big class around x.A so y.B's class is absorbed.
        eq.merge_terms(("x", "A"), ("x", "B"))
        eq.merge_terms(("x", "A"), ("x", "C"))
        eq.assign_constant(("y", "B"), 9)
        eq.merge_terms(("x", "A"), ("y", "B"))
        assert eq.constant_of(("x", "C")) == 9

    def test_merge_conflicting_constants(self):
        eq = EqRelation()
        eq.assign_constant(("x", "A"), 1)
        eq.assign_constant(("y", "B"), 2)
        eq.merge_terms(("x", "A"), ("y", "B"))
        assert eq.has_conflict()

    def test_transitivity(self):
        eq = EqRelation()
        eq.merge_terms(("x", "A"), ("y", "B"))
        eq.merge_terms(("y", "B"), ("z", "C"))
        assert eq.same_class(("x", "A"), ("z", "C"))

    def test_transitive_constant_conflict(self):
        eq = EqRelation()
        eq.assign_constant(("x", "A"), 1)
        eq.merge_terms(("x", "A"), ("y", "B"))
        eq.assign_constant(("z", "C"), 2)
        eq.merge_terms(("y", "B"), ("z", "C"))
        assert eq.has_conflict()


class TestDeltasAndChangeTracking:
    def test_delta_replay_reproduces_state(self):
        eq = EqRelation()
        mark = eq.log_position()
        eq.assign_constant(("x", "A"), 1)
        eq.merge_terms(("x", "A"), ("y", "B"))
        delta = eq.delta_since(mark)
        replica = EqRelation()
        replica.apply_delta(delta)
        assert replica.constant_of(("y", "B")) == 1
        assert replica.same_class(("x", "A"), ("y", "B"))

    def test_delta_replay_is_idempotent(self):
        eq = EqRelation()
        eq.assign_constant(("x", "A"), 1)
        delta = eq.delta_since(0)
        replica = EqRelation()
        replica.apply_delta(delta)
        replica.apply_delta(delta)
        assert not replica.has_conflict()
        assert replica.constant_of(("x", "A")) == 1

    def test_changed_terms_cover_whole_class(self):
        eq = EqRelation()
        eq.merge_terms(("x", "A"), ("y", "B"))
        eq.take_changed_terms()
        eq.assign_constant(("x", "A"), 3)
        changed = eq.take_changed_terms()
        assert ("y", "B") in changed
        assert eq.take_changed_terms() == set()

    def test_fail_records_conflict(self):
        eq = EqRelation()
        eq.fail(("x", "<false>"), source="g")
        assert eq.has_conflict()


class TestCompletionAndCopy:
    def test_completed_assignment_fresh_values_distinct(self):
        eq = EqRelation()
        eq.add_term(("x", "A"))
        eq.add_term(("y", "B"))
        eq.assign_constant(("z", "C"), 5)
        assignment = eq.completed_assignment()
        assert assignment[("z", "C")] == 5
        assert assignment[("x", "A")] != assignment[("y", "B")]

    def test_completed_assignment_class_shares_value(self):
        eq = EqRelation()
        eq.merge_terms(("x", "A"), ("y", "B"))
        assignment = eq.completed_assignment()
        assert assignment[("x", "A")] == assignment[("y", "B")]

    def test_copy_independent(self):
        eq = EqRelation()
        eq.assign_constant(("x", "A"), 1)
        clone = eq.copy()
        clone.assign_constant(("x", "A"), 2)
        assert clone.has_conflict()
        assert not eq.has_conflict()

    def test_classes_listing(self):
        eq = EqRelation()
        eq.assign_constant(("x", "A"), 1)
        eq.merge_terms(("y", "B"), ("z", "C"))
        classes = {frozenset(members): const for members, const in eq.classes()}
        assert classes[frozenset({("x", "A")})] == 1
        assert classes[frozenset({("y", "B"), ("z", "C")})] is None


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("const"), st.integers(0, 5), st.integers(0, 2)),
            st.tuples(st.just("merge"), st.integers(0, 5), st.integers(0, 5)),
        ),
        max_size=40,
    )
)
def test_eq_monotone_and_conflict_stable(ops):
    """Property: classes only grow; once conflicted, always conflicted;
    constants never change once assigned (pre-conflict)."""
    eq = EqRelation()
    was_conflicted = False
    known_constants = {}
    for op in ops:
        if op[0] == "const":
            term = (f"n{op[1]}", "A")
            eq.assign_constant(term, op[2])
        else:
            eq.merge_terms((f"n{op[1]}", "A"), (f"n{op[2]}", "A"))
        if was_conflicted:
            assert eq.has_conflict()
        was_conflicted = eq.has_conflict()
        if not eq.has_conflict():
            for term, value in known_constants.items():
                assert eq.constant_of(term) == value
            for term in eq.terms():
                constant = eq.constant_of(term)
                if constant is not None:
                    known_constants[term] = constant
