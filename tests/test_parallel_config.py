"""Tests for the parallel runtime configuration and cost model."""

import pytest

from repro.errors import RuntimeConfigError
from repro.parallel.config import CostModel, RuntimeConfig


class TestCostModel:
    def test_seconds_round_trip(self):
        costs = CostModel(tick_seconds=1e-3)
        assert costs.seconds(2000) == pytest.approx(2.0)
        assert costs.cost_units(2.0) == pytest.approx(2000)

    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel().match_tick = 5


class TestRuntimeConfig:
    def test_defaults_sane(self):
        config = RuntimeConfig()
        assert config.workers == 4
        assert config.pipelined
        assert config.ttl_seconds == 2.0
        assert config.ttl_ticks is not None and config.ttl_ticks > 0

    def test_invalid_workers(self):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(workers=0)

    def test_invalid_ttl(self):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(ttl_seconds=0)

    def test_invalid_split_units(self):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(max_split_units=0)

    def test_invalid_batch(self):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(batch_size=0)

    def test_invalid_max_batch(self):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(max_batch_size=0)

    def test_invalid_delta_budget(self):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(batch_delta_budget=0)

    def test_invalid_batch_target(self):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(batch_target_seconds=0.0)
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(batch_target_seconds=-1.0)

    def test_config_errors_are_value_errors(self):
        # Clear ValueErrors, catchable without importing the hierarchy.
        with pytest.raises(ValueError) as exc_info:
            RuntimeConfig(workers=0)
        assert "workers" in str(exc_info.value)
        with pytest.raises(ValueError) as exc_info:
            RuntimeConfig(batch_delta_budget=-5)
        assert "batch_delta_budget" in str(exc_info.value)

    def test_batch_size_cap_never_below_batch_size(self):
        assert RuntimeConfig(batch_size=6, max_batch_size=32).batch_size_cap == 32
        assert RuntimeConfig(batch_size=48, max_batch_size=32).batch_size_cap == 48

    def test_without_affinity_is_fixed_batch_ablation(self):
        config = RuntimeConfig(workers=8)
        assert config.affinity and config.adaptive_batch
        ablation = config.without_affinity()
        assert not ablation.affinity and not ablation.adaptive_batch
        assert ablation.workers == 8 and ablation.batch_size == config.batch_size

    def test_ttl_none_disables_splitting(self):
        config = RuntimeConfig(ttl_seconds=None)
        assert config.ttl_ticks is None

    def test_variant_builders(self):
        config = RuntimeConfig(workers=8)
        no_pipeline = config.without_pipelining()
        assert not no_pipeline.pipelined and no_pipeline.workers == 8
        no_split = config.without_splitting()
        assert no_split.ttl_seconds is None
        rescaled = config.with_workers(2)
        assert rescaled.workers == 2 and rescaled.pipelined

    def test_ttl_ticks_conversion(self):
        config = RuntimeConfig(ttl_seconds=2.0, costs=CostModel(tick_seconds=1e-3, match_tick=1.0))
        assert config.ttl_ticks == pytest.approx(2000)
