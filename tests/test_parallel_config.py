"""Tests for the parallel runtime configuration and cost model."""

import pytest

from repro.errors import RuntimeConfigError
from repro.parallel.config import CostModel, RuntimeConfig


class TestCostModel:
    def test_seconds_round_trip(self):
        costs = CostModel(tick_seconds=1e-3)
        assert costs.seconds(2000) == pytest.approx(2.0)
        assert costs.cost_units(2.0) == pytest.approx(2000)

    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel().match_tick = 5


class TestRuntimeConfig:
    def test_defaults_sane(self):
        config = RuntimeConfig()
        assert config.workers == 4
        assert config.pipelined
        assert config.ttl_seconds == 2.0
        assert config.ttl_ticks is not None and config.ttl_ticks > 0

    def test_invalid_workers(self):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(workers=0)

    def test_invalid_ttl(self):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(ttl_seconds=0)

    def test_invalid_split_units(self):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(max_split_units=0)

    def test_invalid_batch(self):
        with pytest.raises(RuntimeConfigError):
            RuntimeConfig(batch_size=0)

    def test_ttl_none_disables_splitting(self):
        config = RuntimeConfig(ttl_seconds=None)
        assert config.ttl_ticks is None

    def test_variant_builders(self):
        config = RuntimeConfig(workers=8)
        no_pipeline = config.without_pipelining()
        assert not no_pipeline.pipelined and no_pipeline.workers == 8
        no_split = config.without_splitting()
        assert no_split.ttl_seconds is None
        rescaled = config.with_workers(2)
        assert rescaled.workers == 2 and rescaled.pipelined

    def test_ttl_ticks_conversion(self):
        config = RuntimeConfig(ttl_seconds=2.0, costs=CostModel(tick_seconds=1e-3, match_tick=1.0))
        assert config.ttl_ticks == pytest.approx(2000)
