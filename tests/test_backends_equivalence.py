"""Cross-backend equivalence: identical verdicts on all execution backends.

The backends differ in where workers live (virtual clock, threads,
processes) but run the same Church-Rosser algorithms over a monotone
``Eq`` — so for any (graph, Σ) instance all of them must report the same
satisfiability verdict, and for any (Σ, φ) instance the same implication
verdict. The sequential algorithms provide the ground truth.
"""

from __future__ import annotations

import pytest

from repro.gfd.generator import (
    add_random_conflicts,
    delta_hub_workload,
    random_gfds,
    straggler_workload,
)
from repro.parallel import FaultPlan, RuntimeConfig, available_backends, par_imp, par_sat
from repro.reasoning.seqimp import seq_imp
from repro.reasoning.seqsat import seq_sat

ALL_BACKENDS = available_backends()


def test_registry_exposes_three_backends():
    assert ALL_BACKENDS == ("simulated", "threaded", "process")


class TestSatEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_consistent_fuzz_instances(self, seed):
        sigma = random_gfds(10 + seed, 4, 3, seed=seed)
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(workers=3)
        for backend in ALL_BACKENDS:
            result = par_sat(sigma, config, backend=backend)
            assert result.satisfiable == expected, (backend, seed)
            assert result.outcome.backend == backend

    @pytest.mark.parametrize("seed", range(6))
    def test_conflicting_fuzz_instances(self, seed):
        sigma = add_random_conflicts(
            random_gfds(8, 4, 3, seed=100 + seed), num_conflicts=3, seed=seed
        )
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(workers=3)
        for backend in ALL_BACKENDS:
            result = par_sat(sigma, config, backend=backend)
            assert result.satisfiable == expected, (backend, seed)
            if not result.satisfiable:
                assert result.conflict is not None

    def test_straggler_workload_with_splitting(self):
        sigma = straggler_workload(
            num_anchor=1, num_seekers=2, num_background=6, anchor_size=8,
            seeker_length=4, seed=5,
        )
        expected = seq_sat(sigma).satisfiable
        # A tight TTL forces splits, exercising cross-process requeue.
        config = RuntimeConfig(workers=3, ttl_seconds=0.05)
        for backend in ALL_BACKENDS:
            result = par_sat(sigma, config, backend=backend)
            assert result.satisfiable == expected, backend

    def test_paper_examples(self, example4_sigma, example2_cross_pattern):
        config = RuntimeConfig(workers=2)
        for sigma in (example4_sigma, example2_cross_pattern):
            expected = seq_sat(sigma).satisfiable
            verdicts = {
                backend: par_sat(sigma, config, backend=backend).satisfiable
                for backend in ALL_BACKENDS
            }
            assert set(verdicts.values()) == {expected}, verdicts


class TestSchedulerEquivalence:
    """Affinity routing + adaptive batching change only *where and when*
    units run, never verdicts — on every backend, both scheduler configs
    must agree with the sequential ground truth."""

    @pytest.mark.parametrize("seed", range(4))
    def test_sat_fuzz_affinity_on_off(self, seed):
        sigma = random_gfds(9 + seed, 4, 3, seed=300 + seed)
        if seed % 2:
            sigma = add_random_conflicts(sigma, num_conflicts=3, seed=seed)
        expected = seq_sat(sigma).satisfiable
        base = RuntimeConfig(workers=3, batch_size=2)
        for config in (base, base.without_affinity()):
            for backend in ALL_BACKENDS:
                result = par_sat(sigma, config, backend=backend)
                assert result.satisfiable == expected, (backend, config.affinity, seed)

    def test_delta_hub_workload_all_backends(self):
        sigma = delta_hub_workload(
            num_hubs=3, spokes_per_hub=6, num_writers=4, num_pairers=2,
            num_background=6, seed=7,
        )
        expected = seq_sat(sigma).satisfiable
        base = RuntimeConfig(workers=3)
        for config in (base, base.without_affinity()):
            for backend in ALL_BACKENDS:
                result = par_sat(sigma, config, backend=backend)
                assert result.satisfiable == expected, (backend, config.affinity)

    @pytest.mark.parametrize("seed", range(3))
    def test_imp_fuzz_affinity_on_off(self, seed):
        sigma = random_gfds(8, 4, 3, seed=400 + seed)
        phi = sigma[seed % len(sigma)]
        rest = [gfd for gfd in sigma if gfd.name != phi.name]
        expected = seq_imp(rest, phi).implied
        base = RuntimeConfig(workers=3, batch_size=2)
        for config in (base, base.without_affinity()):
            for backend in ALL_BACKENDS:
                result = par_imp(rest, phi, config, backend=backend)
                assert result.implied == expected, (backend, config.affinity, seed)


class TestFaultedEquivalence:
    """A random (but recoverable) FaultPlan changes only *how* the run
    gets to the fixpoint — crashed replicas rebury their work, erroring
    units retry — never the verdict. ``FaultPlan.random`` draws from the
    recoverable kinds only (no hangs, no poison), so every backend must
    still agree with the clean sequential ground truth."""

    @pytest.mark.parametrize("seed", range(4))
    def test_sat_fuzz_with_random_fault_plan(self, seed):
        sigma = random_gfds(10 + seed, 4, 3, seed=500 + seed)
        if seed % 2:
            sigma = add_random_conflicts(sigma, num_conflicts=3, seed=seed)
        expected = seq_sat(sigma).satisfiable
        plan = FaultPlan.random(seed=600 + seed, workers=3, events=2)
        config = RuntimeConfig(
            workers=3,
            fault_plan=plan,
            batch_timeout_seconds=5.0,
            respawn_backoff_seconds=0.01,
        )
        for backend in ALL_BACKENDS:
            result = par_sat(sigma, config, backend=backend)
            assert result.satisfiable == expected, (backend, seed, plan)
            assert not result.outcome.quarantined, (backend, seed)


class TestImpEquivalence:
    def test_paper_example8(self, example8_sigma, example8_phi13):
        config = RuntimeConfig(workers=3)
        expected = seq_imp(example8_sigma, example8_phi13).implied
        for backend in ALL_BACKENDS:
            result = par_imp(example8_sigma, example8_phi13, config, backend=backend)
            assert result.implied == expected, backend

    @pytest.mark.parametrize("seed", range(5))
    def test_cover_style_fuzz_instances(self, seed):
        # Σ |= φ checks the way minimal-cover computations issue them:
        # φ drawn from the generated set, Σ the rest.
        sigma = random_gfds(8, 4, 3, seed=200 + seed)
        phi = sigma[seed % len(sigma)]
        rest = [gfd for gfd in sigma if gfd.name != phi.name]
        expected = seq_imp(rest, phi).implied
        config = RuntimeConfig(workers=3)
        for backend in ALL_BACKENDS:
            result = par_imp(rest, phi, config, backend=backend)
            assert result.implied == expected, (backend, seed)
