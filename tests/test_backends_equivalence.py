"""Cross-backend equivalence: identical verdicts on all execution backends.

The backends differ in where workers live (virtual clock, threads,
processes) but run the same Church-Rosser algorithms over a monotone
``Eq`` — so for any (graph, Σ) instance all of them must report the same
satisfiability verdict, and for any (Σ, φ) instance the same implication
verdict. The sequential algorithms provide the ground truth.
"""

from __future__ import annotations

import pytest

from repro.gfd.canonical import build_canonical_graph
from repro.gfd.generator import (
    add_random_conflicts,
    delta_hub_workload,
    random_gfds,
    straggler_workload,
)
from repro.graph.fragment import Fragmenter
from repro.matching.homomorphism import MatcherRun
from repro.parallel import FaultPlan, RuntimeConfig, available_backends, par_imp, par_sat
from repro.parallel.units import UnitContext, attach_fragmentation
from repro.reasoning.seqimp import seq_imp
from repro.reasoning.seqsat import seq_sat
from repro.reasoning.validation import detect_errors, find_violations
from repro.reasoning.workunits import choose_pivot, fragment_radius

ALL_BACKENDS = available_backends()

#: Every fragment count the differential suite exercises, 1 through 8.
FRAGMENT_COUNTS = (1, 2, 3, 5, 8)


def _eq_classes(eq):
    """Canonicalized equivalence classes, for cross-run Eq comparison."""
    return sorted(
        (tuple(sorted(repr(term) for term in terms)), repr(value))
        for terms, value in eq.classes()
    )


def _violation_multiset(violations):
    return sorted(
        (v.gfd_name, tuple(sorted(v.assignment.items()))) for v in violations
    )


def test_registry_exposes_three_backends():
    assert ALL_BACKENDS == ("simulated", "threaded", "process")


class TestSatEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_consistent_fuzz_instances(self, seed):
        sigma = random_gfds(10 + seed, 4, 3, seed=seed)
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(workers=3)
        for backend in ALL_BACKENDS:
            result = par_sat(sigma, config, backend=backend)
            assert result.satisfiable == expected, (backend, seed)
            assert result.outcome.backend == backend

    @pytest.mark.parametrize("seed", range(6))
    def test_conflicting_fuzz_instances(self, seed):
        sigma = add_random_conflicts(
            random_gfds(8, 4, 3, seed=100 + seed), num_conflicts=3, seed=seed
        )
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(workers=3)
        for backend in ALL_BACKENDS:
            result = par_sat(sigma, config, backend=backend)
            assert result.satisfiable == expected, (backend, seed)
            if not result.satisfiable:
                assert result.conflict is not None

    def test_straggler_workload_with_splitting(self):
        sigma = straggler_workload(
            num_anchor=1, num_seekers=2, num_background=6, anchor_size=8,
            seeker_length=4, seed=5,
        )
        expected = seq_sat(sigma).satisfiable
        # A tight TTL forces splits, exercising cross-process requeue.
        config = RuntimeConfig(workers=3, ttl_seconds=0.05)
        for backend in ALL_BACKENDS:
            result = par_sat(sigma, config, backend=backend)
            assert result.satisfiable == expected, backend

    def test_paper_examples(self, example4_sigma, example2_cross_pattern):
        config = RuntimeConfig(workers=2)
        for sigma in (example4_sigma, example2_cross_pattern):
            expected = seq_sat(sigma).satisfiable
            verdicts = {
                backend: par_sat(sigma, config, backend=backend).satisfiable
                for backend in ALL_BACKENDS
            }
            assert set(verdicts.values()) == {expected}, verdicts


class TestSchedulerEquivalence:
    """Affinity routing + adaptive batching change only *where and when*
    units run, never verdicts — on every backend, both scheduler configs
    must agree with the sequential ground truth."""

    @pytest.mark.parametrize("seed", range(4))
    def test_sat_fuzz_affinity_on_off(self, seed):
        sigma = random_gfds(9 + seed, 4, 3, seed=300 + seed)
        if seed % 2:
            sigma = add_random_conflicts(sigma, num_conflicts=3, seed=seed)
        expected = seq_sat(sigma).satisfiable
        base = RuntimeConfig(workers=3, batch_size=2)
        for config in (base, base.without_affinity()):
            for backend in ALL_BACKENDS:
                result = par_sat(sigma, config, backend=backend)
                assert result.satisfiable == expected, (backend, config.affinity, seed)

    def test_delta_hub_workload_all_backends(self):
        sigma = delta_hub_workload(
            num_hubs=3, spokes_per_hub=6, num_writers=4, num_pairers=2,
            num_background=6, seed=7,
        )
        expected = seq_sat(sigma).satisfiable
        base = RuntimeConfig(workers=3)
        for config in (base, base.without_affinity()):
            for backend in ALL_BACKENDS:
                result = par_sat(sigma, config, backend=backend)
                assert result.satisfiable == expected, (backend, config.affinity)

    @pytest.mark.parametrize("seed", range(3))
    def test_imp_fuzz_affinity_on_off(self, seed):
        sigma = random_gfds(8, 4, 3, seed=400 + seed)
        phi = sigma[seed % len(sigma)]
        rest = [gfd for gfd in sigma if gfd.name != phi.name]
        expected = seq_imp(rest, phi).implied
        base = RuntimeConfig(workers=3, batch_size=2)
        for config in (base, base.without_affinity()):
            for backend in ALL_BACKENDS:
                result = par_imp(rest, phi, config, backend=backend)
                assert result.implied == expected, (backend, config.affinity, seed)


class TestFaultedEquivalence:
    """A random (but recoverable) FaultPlan changes only *how* the run
    gets to the fixpoint — crashed replicas rebury their work, erroring
    units retry — never the verdict. ``FaultPlan.random`` draws from the
    recoverable kinds only (no hangs, no poison), so every backend must
    still agree with the clean sequential ground truth."""

    @pytest.mark.parametrize("seed", range(4))
    def test_sat_fuzz_with_random_fault_plan(self, seed):
        sigma = random_gfds(10 + seed, 4, 3, seed=500 + seed)
        if seed % 2:
            sigma = add_random_conflicts(sigma, num_conflicts=3, seed=seed)
        expected = seq_sat(sigma).satisfiable
        plan = FaultPlan.random(seed=600 + seed, workers=3, events=2)
        config = RuntimeConfig(
            workers=3,
            fault_plan=plan,
            batch_timeout_seconds=5.0,
            respawn_backoff_seconds=0.01,
        )
        for backend in ALL_BACKENDS:
            result = par_sat(sigma, config, backend=backend)
            assert result.satisfiable == expected, (backend, seed, plan)
            assert not result.outcome.quarantined, (backend, seed)


class TestFragmentedEquivalence:
    """Fragmented execution changes only *data placement* — which replica
    a unit matches against — never verdicts, the final ``Eq``, or the
    per-unit match streams. The whole-graph runs (sequential and
    unfragmented parallel) are the ground truth, across all three
    backends and fragment counts 1..8."""

    @pytest.mark.parametrize("seed", range(3))
    def test_sat_fuzz_all_backends_all_fragment_counts(self, seed):
        sigma = random_gfds(10 + seed, 4, 3, seed=seed)
        if seed % 2:
            sigma = add_random_conflicts(sigma, num_conflicts=3, seed=seed)
        oracle = seq_sat(sigma)
        base = RuntimeConfig(workers=3)
        for fragments in FRAGMENT_COUNTS:
            config = base.with_fragments(fragments)
            for backend in ALL_BACKENDS:
                result = par_sat(sigma, config, backend=backend)
                assert result.satisfiable == oracle.satisfiable, (
                    backend, fragments, seed,
                )
                assert not result.outcome.quarantined, (backend, fragments)
                if oracle.satisfiable:
                    # A run-to-completion reaches the confluent fixpoint:
                    # the fragmented Eq is the sequential oracle's.
                    assert _eq_classes(result.eq) == _eq_classes(oracle.eq), (
                        backend, fragments,
                    )

    @pytest.mark.parametrize("seed", range(3))
    def test_imp_fuzz_all_backends_fragmented(self, seed):
        sigma = random_gfds(8, 4, 3, seed=200 + seed)
        phi = sigma[seed % len(sigma)]
        rest = [gfd for gfd in sigma if gfd.name != phi.name]
        expected = seq_imp(rest, phi).implied
        base = RuntimeConfig(workers=3)
        for fragments in (1, 3, 8):
            config = base.with_fragments(fragments)
            for backend in ALL_BACKENDS:
                result = par_imp(rest, phi, config, backend=backend)
                assert result.implied == expected, (backend, fragments, seed)

    @pytest.mark.parametrize("seed", range(2))
    def test_grouped_units_fragmented(self, seed):
        # PR 7 grouped units compose with fragment routing: the group's
        # shared trie walk runs against the pivot's fragment replica.
        sigma = random_gfds(9, 4, 3, seed=800 + seed)
        if seed % 2:
            sigma = add_random_conflicts(sigma, num_conflicts=2, seed=seed)
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(workers=3).with_ruleset_plan().with_fragments(3)
        for backend in ALL_BACKENDS:
            result = par_sat(sigma, config, backend=backend)
            assert result.satisfiable == expected, (backend, seed)
            assert not result.outcome.quarantined, (backend, seed)

    def test_fresh_unit_match_streams_byte_identical(self):
        # The strongest form of the differential: for every connected
        # rule and every interior pivot, the matcher's stream on the
        # fragment replica (whole-graph pivot and variable order shipped
        # with the kit) equals the whole-graph stream *as an ordered
        # list* — not just as a set.
        sigma = random_gfds(10, 4, 3, seed=42)
        gfds = {gfd.name: gfd for gfd in sigma}
        graph = build_canonical_graph(sigma).graph
        whole = UnitContext(graph, gfds)
        whole.precompile_plans(sigma)
        router = attach_fragmentation(whole, sigma, 3)

        def stream(ctx, gfd, pivot_var, pivot, radius):
            run = MatcherRun(
                gfd.pattern,
                ctx.graph,
                preassigned={pivot_var: pivot},
                allowed_nodes=ctx.allowed_nodes(pivot, radius),
                variable_order=whole.plan_orders[gfd.name],
                candidate_sets=ctx.candidate_sets(gfd),
                plan=ctx.plan_for(gfd),
            )
            return [tuple(sorted(match.items())) for match in run.matches()]

        compared = 0
        for fid in range(router.num_fragments):
            replica = router.build(fid)
            local = UnitContext(
                replica.graph,
                gfds,
                fragment=replica,
                plan_orders=whole.plan_orders,
                pivot_overrides=whole.pivot_overrides,
            )
            for gfd in sigma:
                if gfd.is_trivial() or not gfd.pattern.is_connected():
                    continue
                pivot_var = whole.pivot_overrides[gfd.name]
                radius = gfd.pattern.eccentricity(pivot_var)
                for pivot in replica.spec.interior:
                    expected = stream(whole, gfd, pivot_var, pivot, radius)
                    got = stream(local, gfd, pivot_var, pivot, radius)
                    assert got == expected, (fid, gfd.name, pivot)
                    compared += len(expected)
        assert compared > 0  # the instance actually produced matches

    def test_detect_errors_fragment_union_matches_sequential(self):
        # Error detection fragment-style: each fragment enumerates only
        # the violations whose pivot it owns; the union over fragments
        # must be exactly the sequential detect_errors result.
        sigma = add_random_conflicts(
            random_gfds(8, 4, 3, seed=77), num_conflicts=3, seed=7
        )
        graph = build_canonical_graph(sigma).graph
        expected = _violation_multiset(detect_errors(graph, sigma))
        radius = fragment_radius(sigma, graph)
        for fragments in (1, 3, 5):
            router = Fragmenter(graph, fragments, radius)
            got = []
            for gfd in sigma:
                if gfd.is_trivial():
                    continue
                if not gfd.pattern.is_connected():
                    # Disconnected patterns are never fragment-routed;
                    # they run whole-graph, as in the runtime.
                    got.extend(find_violations(graph, gfd))
                    continue
                pivot_var = choose_pivot(gfd, graph)
                for fid in range(fragments):
                    replica = router.build(fid)
                    for violation in find_violations(replica.graph, gfd):
                        if replica.spec.owns(violation.assignment[pivot_var]):
                            got.append(violation)
            assert _violation_multiset(got) == expected, fragments

    @pytest.mark.parametrize("seed", range(3))
    def test_sat_fragmented_with_random_fault_plan(self, seed):
        sigma = random_gfds(10 + seed, 4, 3, seed=500 + seed)
        expected = seq_sat(sigma).satisfiable
        plan = FaultPlan.random(seed=700 + seed, workers=3, events=2)
        config = RuntimeConfig(
            workers=3,
            fault_plan=plan,
            batch_timeout_seconds=5.0,
            respawn_backoff_seconds=0.01,
        ).with_fragments(3)
        for backend in ALL_BACKENDS:
            result = par_sat(sigma, config, backend=backend)
            assert result.satisfiable == expected, (backend, seed, plan)
            assert not result.outcome.quarantined, (backend, seed)

    def test_process_crash_reships_fragment_to_survivor(self):
        # Kill a worker after its first batch — by then it holds at
        # least one fragment replica. Its units rebury, the fragment
        # re-ships to whichever worker picks them up, and the run
        # completes with zero quarantined units.
        sigma = random_gfds(12, 4, 3, seed=9)
        expected = seq_sat(sigma).satisfiable
        plan = FaultPlan.single("crash", worker_id=0, batch_index=1)
        config = RuntimeConfig(
            workers=3,
            fault_plan=plan,
            batch_timeout_seconds=5.0,
            respawn_backoff_seconds=0.01,
        ).with_fragments(2)
        result = par_sat(sigma, config, backend="process")
        assert result.satisfiable == expected
        assert not result.outcome.quarantined
        assert result.outcome.worker_deaths >= 1
        assert result.outcome.fragments_shipped >= 1

    def test_process_ships_fragments_on_demand(self):
        sigma = delta_hub_workload(
            num_hubs=3, spokes_per_hub=6, num_writers=4, num_pairers=2,
            num_background=6, seed=7,
        )
        expected = seq_sat(sigma).satisfiable
        config = RuntimeConfig(workers=3).with_fragments(3)
        result = par_sat(sigma, config, backend="process")
        assert result.satisfiable == expected
        outcome = result.outcome
        # The workload dispatches real batches: replicas must have moved.
        assert outcome.fragments_shipped + outcome.balls_shipped > 0
        assert outcome.fragments_shipped <= config.fragments + outcome.worker_deaths


class TestLayeredResultEquivalence:
    """The layered result model is backend-invariant. Evidence refs are
    content-derived (rule + assignment only), so a run-to-completion on
    any backend — any fragment count, even through a fault plan — interns
    exactly the evidence set the sequential run does, and its store
    explains conflicts without re-matching. (Unsatisfiable runs terminate
    at the first conflict, so only satisfiable instances compare full ref
    sets; unsat instances compare verdict + explainability.)"""

    @pytest.mark.parametrize("seed", range(3))
    def test_satisfiable_refs_identical_across_backends(self, seed):
        sigma = random_gfds(9 + seed, 4, 3, seed=900 + seed)
        oracle = seq_sat(sigma)
        assert oracle.satisfiable
        expected = set(oracle.results.evidence.refs())
        assert expected  # the instance actually enforced matches
        config = RuntimeConfig(workers=3)
        for backend in ALL_BACKENDS:
            result = par_sat(sigma, config, backend=backend)
            got = set(result.results.evidence.refs())
            assert got == expected, (backend, seed)

    def test_satisfiable_refs_identical_fragmented(self):
        sigma = random_gfds(10, 4, 3, seed=910)
        oracle = seq_sat(sigma)
        assert oracle.satisfiable
        expected = set(oracle.results.evidence.refs())
        base = RuntimeConfig(workers=3)
        for fragments in (1, 4):
            config = base.with_fragments(fragments)
            for backend in ALL_BACKENDS:
                result = par_sat(sigma, config, backend=backend)
                got = set(result.results.evidence.refs())
                assert got == expected, (backend, fragments)

    @pytest.mark.parametrize("seed", range(2))
    def test_satisfiable_refs_survive_fault_plan(self, seed):
        # Crashed replicas lose their parked matches; re-executed units
        # re-derive the same matches, and first-wins interning of the
        # same content-derived refs leaves the merged log unchanged.
        sigma = random_gfds(10, 4, 3, seed=920 + seed)
        oracle = seq_sat(sigma)
        assert oracle.satisfiable
        expected = set(oracle.results.evidence.refs())
        plan = FaultPlan.random(seed=930 + seed, workers=3, events=2)
        config = RuntimeConfig(
            workers=3,
            fault_plan=plan,
            batch_timeout_seconds=5.0,
            respawn_backoff_seconds=0.01,
        ).with_fragments(2)
        for backend in ALL_BACKENDS:
            result = par_sat(sigma, config, backend=backend)
            assert result.satisfiable, (backend, seed, plan)
            got = set(result.results.evidence.refs())
            assert got == expected, (backend, seed, plan)

    def test_unsat_conflict_explainable_on_every_backend(self, example4_sigma):
        base = RuntimeConfig(workers=2)
        for fragments in (1, 4):
            config = base.with_fragments(fragments)
            for backend in ALL_BACKENDS:
                result = par_sat(example4_sigma, config, backend=backend)
                assert not result.satisfiable, (backend, fragments)
                store = result.results
                assert store.conflict is not None
                explanation = store.explain_conflict()
                assert explanation is not None, (backend, fragments)
                assert explanation.gfds_involved, (backend, fragments)
                # Whatever match the conflict cites must have made it into
                # the coordinator's merged evidence layer.
                if store.conflict.evidence_ref:
                    assert store.evidence.get(store.conflict.evidence_ref) is not None

    def test_derivation_provenance_survives_worker_shipping(self):
        # Process workers ship ΔEq ops across pickling; the structured
        # (gfd, match_ref, premise_terms) records must arrive intact and
        # resolve against the merged evidence log.
        sigma = random_gfds(10, 4, 3, seed=910)
        result = par_sat(sigma, RuntimeConfig(workers=3), backend="process")
        store = result.results
        stamped = [op for op in store.derivation if op.provenance is not None]
        assert stamped
        for op in stamped:
            assert op.provenance.gfd
            if op.provenance.match_ref:
                assert store.evidence.get(op.provenance.match_ref) is not None


class TestImpEquivalence:
    def test_paper_example8(self, example8_sigma, example8_phi13):
        config = RuntimeConfig(workers=3)
        expected = seq_imp(example8_sigma, example8_phi13).implied
        for backend in ALL_BACKENDS:
            result = par_imp(example8_sigma, example8_phi13, config, backend=backend)
            assert result.implied == expected, backend

    @pytest.mark.parametrize("seed", range(5))
    def test_cover_style_fuzz_instances(self, seed):
        # Σ |= φ checks the way minimal-cover computations issue them:
        # φ drawn from the generated set, Σ the rest.
        sigma = random_gfds(8, 4, 3, seed=200 + seed)
        phi = sigma[seed % len(sigma)]
        rest = [gfd for gfd in sigma if gfd.name != phi.name]
        expected = seq_imp(rest, phi).implied
        config = RuntimeConfig(workers=3)
        for backend in ALL_BACKENDS:
            result = par_imp(rest, phi, config, backend=backend)
            assert result.implied == expected, (backend, seed)
