"""MVCC read views: version pins, clamped trims, snapshot isolation.

The core property (the serving layer's correctness contract): a read view
pinned at version E yields **byte-identical** query results no matter how
many writes land after E — through in-place head advances, forks, journal
compaction of the snapshot's own index, and aggressive delta-history
trimming on the live graph. The hypothesis suite drives random mutation
scripts against a pinned view and compares its match/violation streams
with a reference graph built from the script prefix alone.
"""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PropertyGraph, parse_gfds
from repro.errors import GraphError
from repro.reasoning.validation import detect_errors
from repro.serve.views import SnapshotManager

LABELS = ["a", "b", "c"]
EDGE_LABELS = ["p", "q"]

SIGMA = parse_gfds(
    """
    gfd never_ab {
        x: a; y: b;
        x -[p]-> y;
        then false;
    }
    gfd chain {
        x: a; y: b; z: c;
        x -[q]-> y; y -[q]-> z;
        when x.k = 1;
        then z.k = 1;
    }
    """
)


# ----------------------------------------------------------------------
# PropertyGraph pin primitives
# ----------------------------------------------------------------------
class TestVersionPins:
    def test_pin_defaults_to_current_version(self):
        graph = PropertyGraph()
        graph.add_node("a")
        assert graph.pin_version() == 1
        assert graph.min_pinned_version == 1
        assert graph.pinned_version_count == 1

    def test_pins_are_refcounted(self):
        graph = PropertyGraph()
        graph.pin_version(0)
        graph.pin_version(0)
        graph.release_version(0)
        assert graph.min_pinned_version == 0
        graph.release_version(0)
        assert graph.min_pinned_version is None

    def test_future_version_rejected(self):
        graph = PropertyGraph()
        with pytest.raises(GraphError):
            graph.pin_version(5)

    def test_release_unpinned_raises(self):
        graph = PropertyGraph()
        with pytest.raises(GraphError):
            graph.release_version(0)

    def test_trim_clamps_to_min_pinned_version(self):
        graph = PropertyGraph()
        graph.retain_deltas(True)
        graph.add_node("a", node_id=0)
        pinned = graph.pin_version()  # version 1
        graph.add_node("b", node_id=1)
        graph.add_edge(0, 1, "p")
        # The process backend's post-refresh trim requests the full
        # mutation count; the pin must keep ops after version 1 alive.
        graph.trim_delta_history(graph.mutation_count)
        assert graph.delta_ops_since(pinned) is not None
        assert len(graph.delta_ops_since(pinned)) == 2
        graph.release_version(pinned)
        graph.trim_delta_history(graph.mutation_count)
        assert graph.delta_ops_since(pinned) is None

    def test_delta_ops_slice_bounds(self):
        graph = PropertyGraph()
        graph.retain_deltas(True)
        for i in range(4):
            graph.add_node("a", node_id=i)
        assert graph.delta_ops_slice(1, 3) is not None
        assert len(graph.delta_ops_slice(1, 3)) == 2
        assert graph.delta_ops_slice(2, 2) == []
        assert graph.delta_ops_slice(3, 1) is None  # reversed bounds
        assert graph.delta_ops_slice(0, 9) is None  # future bound
        graph.trim_delta_history(2)
        assert graph.delta_ops_slice(1, 3) is None  # trimmed past `since`

    def test_pickling_drops_pins(self):
        graph = PropertyGraph()
        graph.add_node("a")
        graph.pin_version()
        clone = pickle.loads(pickle.dumps(graph))
        assert clone.min_pinned_version is None


# ----------------------------------------------------------------------
# SnapshotManager mechanics
# ----------------------------------------------------------------------
def _seed() -> PropertyGraph:
    graph = PropertyGraph()
    for i in range(3):
        graph.add_node(LABELS[i], {"k": i}, node_id=i)
    graph.add_edge(0, 1, "q")
    graph.add_edge(1, 2, "q")
    return graph


class TestSnapshotManager:
    def test_pin_is_isolated_from_later_writes(self):
        graph = _seed()
        manager = SnapshotManager(graph)
        view = manager.pin()
        nodes_at_pin = view.graph.num_nodes
        graph.add_node("a", node_id=99)
        graph.add_edge(99, 1, "p")
        assert view.graph.num_nodes == nodes_at_pin
        assert not view.graph.has_node(99)
        assert graph.has_node(99)
        view.release()

    def test_unpinned_head_advances_in_place(self):
        graph = _seed()
        manager = SnapshotManager(graph)
        manager.pin().release()
        graph.add_node("b", node_id=50)
        with manager.pin() as view:
            assert view.graph.has_node(50)
        assert manager.forks == 0
        assert manager.full_copies == 1
        assert manager.ops_replayed == 1

    def test_pinned_head_forces_fork(self):
        graph = _seed()
        manager = SnapshotManager(graph)
        old = manager.pin()  # holds the head version
        graph.add_node("c", node_id=51)
        new = manager.pin()
        assert manager.forks == 1
        assert not old.graph.has_node(51)
        assert new.graph.has_node(51)
        old.release()
        new.release()

    def test_full_copy_after_history_gap(self):
        graph = _seed()
        manager = SnapshotManager(graph)
        manager.pin().release()
        # Sever the history under the manager: release its standing head
        # pin, trim everything, then mutate.
        manager.close()
        graph.trim_delta_history(graph.mutation_count)
        graph.add_node("a", node_id=60)
        manager2 = SnapshotManager(graph)
        with manager2.pin() as view:
            assert view.graph.has_node(60)
        assert manager2.full_copies == 1

    def test_release_drops_non_head_snapshots(self):
        graph = _seed()
        manager = SnapshotManager(graph)
        old = manager.pin()
        graph.add_node("a", node_id=70)
        new = manager.pin()
        assert manager.stats()["distinct_versions"] == 2
        old.release()
        assert manager.stats()["distinct_versions"] == 1
        new.release()
        assert manager.active_pins == 0

    def test_release_is_idempotent(self):
        manager = SnapshotManager(_seed())
        view = manager.pin()
        view.release()
        view.release()
        assert manager.releases_total == 1

    def test_refresh_head_bounds_history(self):
        graph = _seed()
        manager = SnapshotManager(graph)
        manager.pin().release()
        floor = manager.head_version
        for i in range(10):
            graph.add_node("a", node_id=100 + i)
        manager.refresh_head()
        assert manager.head_version == graph.mutation_count
        graph.trim_delta_history(graph.mutation_count)
        # Everything before the (caught-up) head is gone, head onward kept.
        assert graph.delta_ops_since(floor) is None
        assert graph.delta_ops_since(graph.mutation_count) == []

    def test_pins_protect_history_against_backend_style_trim(self):
        graph = _seed()
        manager = SnapshotManager(graph)
        view = manager.pin()
        for i in range(5):
            graph.add_node("b", node_id=200 + i)
        graph.trim_delta_history(graph.mutation_count)
        # A new pin must still advance by replay, not by full copy.
        before = manager.full_copies
        manager.pin().release()
        assert manager.full_copies == before
        view.release()


# ----------------------------------------------------------------------
# The byte-identical-stream property (satellite: epoch pinning coverage)
# ----------------------------------------------------------------------
_step = st.tuples(
    st.sampled_from(["node", "edge", "relabel", "index", "trim"]),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)


def _apply(graph: PropertyGraph, script, trims_allowed=True) -> None:
    """Replay a step script; every op is legal by construction."""
    for kind, r1, r2 in script:
        n = graph.num_nodes
        if kind == "node":
            graph.add_node(LABELS[r1 % len(LABELS)], {"k": r2 % 3})
        elif kind == "edge" and n:
            nodes = list(graph.nodes())
            graph.add_edge(
                nodes[r1 % n], nodes[r2 % n], EDGE_LABELS[(r1 + r2) % 2]
            )
        elif kind == "relabel" and n:
            nodes = list(graph.nodes())
            graph.set_node_label(nodes[r1 % n], LABELS[r2 % len(LABELS)])
        elif kind == "index":
            graph.index()
        elif kind == "trim" and trims_allowed:
            # The backend-style aggressive trim — must be harmless to
            # pinned views because of the pin clamp.
            graph.trim_delta_history(graph.mutation_count)


def _violation_bytes(graph: PropertyGraph) -> bytes:
    return json.dumps(
        [v.to_json() for v in detect_errors(graph, SIGMA)], sort_keys=True
    ).encode()


@settings(max_examples=60, deadline=None)
@given(
    prefix=st.lists(_step, min_size=1, max_size=25),
    suffix=st.lists(_step, min_size=1, max_size=40),
)
def test_pinned_view_stream_is_immune_to_later_writes(prefix, suffix):
    live = PropertyGraph()
    live.add_node("a", {"k": 1}, node_id="seed-a")
    live.add_node("b", {}, node_id="seed-b")
    live.add_edge("seed-a", "seed-b", "q")
    # Compact eagerly so suffix writes push the snapshot's index through
    # the journal-compaction path as well as the delta path.
    live.INDEX_COMPACTION_MIN = 4
    _apply(live, prefix, trims_allowed=False)

    # Reference: an independent graph holding exactly the pinned state.
    reference = PropertyGraph()
    reference.add_node("a", {"k": 1}, node_id="seed-a")
    reference.add_node("b", {}, node_id="seed-b")
    reference.add_edge("seed-a", "seed-b", "q")
    _apply(reference, prefix, trims_allowed=False)
    expected = _violation_bytes(reference)

    manager = SnapshotManager(live)
    view = manager.pin()
    assert _violation_bytes(view.graph) == expected

    # Writes (and trims, and index compactions) land after the pin...
    _apply(live, suffix)
    # ...and the view's stream is byte-identical to the reference's.
    assert _violation_bytes(view.graph) == expected

    # A fresh pin sees the suffix; the old view still does not.
    with manager.pin() as head_view:
        assert _violation_bytes(head_view.graph) == _violation_bytes(live)
    assert _violation_bytes(view.graph) == expected
    view.release()


@settings(max_examples=30, deadline=None)
@given(
    prefix=st.lists(_step, min_size=1, max_size=20),
    middle=st.lists(_step, min_size=1, max_size=20),
    suffix=st.lists(_step, min_size=1, max_size=20),
)
def test_two_generations_of_pins_stay_consistent(prefix, middle, suffix):
    live = PropertyGraph()
    live.add_node("a", {"k": 1}, node_id="seed-a")
    manager = SnapshotManager(live)

    _apply(live, prefix, trims_allowed=False)
    first = manager.pin()
    first_expected = _violation_bytes(first.graph)

    _apply(live, middle)
    second = manager.pin()
    second_expected = _violation_bytes(second.graph)

    _apply(live, suffix)
    assert _violation_bytes(first.graph) == first_expected
    assert _violation_bytes(second.graph) == second_expected
    first.release()
    assert _violation_bytes(second.graph) == second_expected
    second.release()
