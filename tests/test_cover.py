"""Tests for implication-based rule covers."""

from repro import parse_gfds
from repro.reasoning import graph_satisfies_sigma, minimal_cover, redundant_gfds, seq_imp
from repro.reasoning.validation import extract_model
from repro.reasoning.seqsat import seq_sat


def sigma_with_redundancy():
    return parse_gfds(
        """
        gfd base  { x: a; when x.A = 1; then x.B = 2; }
        gfd chain { x: a; when x.B = 2; then x.C = 3; }
        gfd redundant { x: a; when x.A = 1; then x.C = 3; }
        """
    )


class TestMinimalCover:
    def test_redundant_rule_removed(self):
        sigma = sigma_with_redundancy()
        result = minimal_cover(sigma)
        names = {g.name for g in result.cover}
        assert names == {"base", "chain"}
        assert [g.name for g in result.removed] == ["redundant"]
        assert result.checks > 0
        assert 0 < result.reduction < 1

    def test_cover_still_implies_removed(self):
        sigma = sigma_with_redundancy()
        result = minimal_cover(sigma)
        for gfd in result.removed:
            assert seq_imp(result.cover, gfd).implied

    def test_no_redundancy_keeps_everything(self):
        sigma = parse_gfds(
            """
            gfd g1 { x: a; then x.A = 1; }
            gfd g2 { x: b; then x.B = 2; }
            """
        )
        result = minimal_cover(sigma)
        assert len(result.cover) == 2
        assert result.removed == []
        assert result.reduction == 0.0

    def test_exact_duplicate_removed(self):
        sigma = parse_gfds(
            """
            gfd orig { x: a; y: b; x -[e]-> y; then x.A = 1; }
            gfd dup  { u: a; v: b; u -[e]-> v; then u.A = 1; }
            """
        )
        result = minimal_cover(sigma)
        assert len(result.cover) == 1

    def test_singleton_sigma_kept(self):
        sigma = parse_gfds("gfd only { x: a; then x.A = 1; }")
        result = minimal_cover(sigma)
        assert len(result.cover) == 1
        assert result.checks == 0

    def test_custom_checker_injected(self):
        sigma = sigma_with_redundancy()
        calls = []

        def never_implied(rest, phi):
            calls.append(phi.name)
            return False

        result = minimal_cover(sigma, implication_checker=never_implied)
        assert len(result.cover) == 3
        assert calls


class TestRedundantGfds:
    def test_identifies_without_removal(self):
        sigma = sigma_with_redundancy()
        redundant = redundant_gfds(sigma)
        assert [g.name for g in redundant] == ["redundant"]
        assert len(sigma) == 3
