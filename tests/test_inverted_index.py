"""Unit tests for the deferred-match inverted index."""

from repro.eq.inverted_index import InvertedIndex, PendingMatch


def pending(name="g", **assignment):
    return PendingMatch.from_dict(name, assignment or {"x": "n0"})


class TestPendingMatch:
    def test_round_trip(self):
        match = PendingMatch.from_dict("g", {"b": 2, "a": 1})
        assert match.as_dict() == {"a": 1, "b": 2}

    def test_hashable_dedup(self):
        assert pending(x=1) == pending(x=1)
        assert len({pending(x=1), pending(x=1)}) == 1


class TestIndex:
    def test_register_and_pop(self):
        index = InvertedIndex()
        match = pending()
        assert index.register(match, [("n0", "A"), ("n0", "B")]) == 2
        assert len(index) == 1
        assert index.num_entries() == 2
        woken = index.pop_affected([("n0", "A")])
        assert woken == [match]
        # All entries for the match are purged, not just the popped term.
        assert index.is_empty()

    def test_register_duplicate_terms_counted_once(self):
        index = InvertedIndex()
        match = pending()
        assert index.register(match, [("n0", "A"), ("n0", "A")]) == 1
        assert index.num_entries() == 1

    def test_pop_unaffected_terms_returns_nothing(self):
        index = InvertedIndex()
        index.register(pending(), [("n0", "A")])
        assert index.pop_affected([("other", "Z")]) == []
        assert len(index) == 1

    def test_match_returned_once_for_multiple_terms(self):
        index = InvertedIndex()
        match = pending()
        index.register(match, [("n0", "A"), ("n0", "B")])
        woken = index.pop_affected([("n0", "A"), ("n0", "B")])
        assert woken == [match]

    def test_multiple_matches_on_one_term(self):
        index = InvertedIndex()
        first, second = pending(x=1), pending(x=2)
        index.register(first, [("n0", "A")])
        index.register(second, [("n0", "A")])
        woken = index.pop_affected([("n0", "A")])
        assert set(woken) == {first, second}
        assert index.is_empty()

    def test_re_registration_after_pop(self):
        index = InvertedIndex()
        match = pending()
        index.register(match, [("n0", "A")])
        index.pop_affected([("n0", "A")])
        index.register(match, [("n0", "B")])
        assert index.pop_affected([("n0", "B")]) == [match]

    def test_terms_listing(self):
        index = InvertedIndex()
        index.register(pending(), [("n0", "A")])
        assert index.terms() == {("n0", "A")}
