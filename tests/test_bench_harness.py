"""Tests for the benchmark harness and a smoke pass over experiments."""

import pytest

from repro.bench.harness import (
    Experiment,
    Series,
    implication_workload,
    mined_implication_workload,
    mined_workload,
    parallel_sat_workload,
    sequential_virtual_seconds,
    synthetic_imp_workload,
    synthetic_sat_workload,
    timed,
)
from repro.chase import chase_satisfiability
from repro.reasoning import seq_imp, seq_sat


class TestVirtualSeconds:
    def test_sat_result_priced(self, example4_sigma):
        result = seq_sat(example4_sigma)
        assert sequential_virtual_seconds(result) > 0

    def test_imp_result_priced(self, example8_sigma, example8_phi13):
        result = seq_imp(example8_sigma, example8_phi13)
        assert sequential_virtual_seconds(result) > 0

    def test_chase_result_priced(self, example4_sigma):
        result = chase_satisfiability(example4_sigma)
        assert sequential_virtual_seconds(result) > 0

    def test_more_work_costs_more(self):
        small = seq_sat(synthetic_sat_workload(20, seed=1).sigma)
        large = seq_sat(synthetic_sat_workload(120, seed=1).sigma)
        assert sequential_virtual_seconds(large) > sequential_virtual_seconds(small)


class TestWorkloads:
    def test_mined_workload_with_conflicts_unsat(self):
        workload = mined_workload("dbpedia", count=20, num_nodes=300)
        assert workload.expected_satisfiable is False
        assert not seq_sat(workload.sigma).satisfiable

    def test_mined_workload_clean_sat(self):
        workload = mined_workload("yago2", count=20, num_nodes=300, with_conflicts=False)
        assert seq_sat(workload.sigma).satisfiable

    def test_mined_implication_workload(self):
        workload = mined_implication_workload("pokec", count=15, num_nodes=300)
        assert workload.phi not in workload.sigma

    def test_parallel_sat_workload_satisfiable(self):
        workload = parallel_sat_workload("dbpedia")
        assert workload.expected_satisfiable

    def test_implication_workload_underivable(self):
        workload = implication_workload(num_seekers=1, num_background=5, target_size=6,
                                        seeker_length=3)
        result = seq_imp(workload.sigma, workload.phi)
        assert not result.implied

    def test_implication_workload_derivable(self):
        workload = implication_workload(num_seekers=1, num_background=5, target_size=6,
                                        seeker_length=3, derivable=True)
        result = seq_imp(workload.sigma, workload.phi)
        assert result.implied

    def test_synthetic_workloads_sized(self):
        assert len(synthetic_sat_workload(30).sigma) == 30
        workload = synthetic_imp_workload(30)
        assert len(workload.sigma) == 30


class TestExperimentRendering:
    def test_series_and_lookup(self):
        series = Series("algo")
        series.add(4, 1.5)
        assert series.value_at(4) == 1.5
        assert series.value_at(8) is None

    def test_render_table(self):
        experiment = Experiment("figX", "demo", "p", notes="hello")
        experiment.series_named("A").add(4, 1.0)
        experiment.series_named("A").add(8, 0.5)
        experiment.series_named("B").add(4, 2.0)
        text = experiment.render()
        assert "figX" in text and "A" in text and "B" in text
        assert "hello" in text
        assert "1.00" in text and "-" in text  # B missing at x=8

    def test_series_named_reuses(self):
        experiment = Experiment("figX", "demo", "p")
        first = experiment.series_named("A")
        assert experiment.series_named("A") is first

    def test_timed(self):
        result, seconds = timed(sum, [1, 2, 3])
        assert result == 6
        assert seconds >= 0


class TestExperimentSmoke:
    """Tiny-scale smoke runs of the figure functions (shapes checked in
    integration tests; here we only assert they produce full series)."""

    def test_fig5_smoke(self):
        from repro.bench.experiments import fig5_sequential

        experiment = fig5_sequential(mined_count=10, num_nodes=200, datasets=("yago2",))
        assert {s.algorithm for s in experiment.series} == {"SeqSat", "SeqImp", "ParImpRDF"}
        for series in experiment.series:
            assert series.value_at("yago2") is not None

    def test_fig6e_smoke(self):
        from repro.bench.experiments import fig6e_sat_varying_sigma

        experiment = fig6e_sat_varying_sigma(sigma_sweep=(20, 40))
        for series in experiment.series:
            assert len(series.points) == 2

    def test_fig6k_smoke(self):
        from repro.bench.experiments import fig6k_sat_varying_ttl

        experiment = fig6k_sat_varying_ttl(ttl_sweep=(0.5, 2.0))
        assert {s.algorithm for s in experiment.series} == {"ParSat", "ParSatnp"}

    def test_run_all_subset(self):
        from repro.bench.experiments import ALL_EXPERIMENTS, run_all

        assert len(ALL_EXPERIMENTS) == 13  # Fig 5 + Fig 6(a)-(l)
        results = run_all(["fig5"])
        assert results[0].experiment_id == "fig5"
