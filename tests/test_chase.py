"""Tests for the chase baselines (naive GFD chase and ParImpRDF)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import seq_imp, seq_sat
from repro.chase import (
    RdfFD,
    Triple,
    chase_implication,
    chase_satisfiability,
    rdf_imp,
    reify_gfd,
    reify_graph,
    reify_pattern,
)
from repro.gfd import make_pattern, parse_gfds
from repro.gfd.generator import random_gfds
from repro.graph.elements import WILDCARD
from repro.matching.homomorphism import find_homomorphisms
from repro import PropertyGraph


class TestChaseSatisfiability:
    def test_paper_examples(self, example2_conflicting, example4_sigma, example8_sigma):
        assert not chase_satisfiability(example2_conflicting).verdict
        assert not chase_satisfiability(example4_sigma).verdict
        assert chase_satisfiability(example8_sigma).verdict

    def test_rounds_counted(self, example4_sigma):
        result = chase_satisfiability(example4_sigma)
        assert result.stats.rounds >= 1
        assert result.stats.matches_considered > 0

    def test_chase_reaches_fixpoint_on_satisfiable(self, example8_sigma):
        result = chase_satisfiability(example8_sigma)
        assert result.verdict
        # Another full round would change nothing (fixpoint reached).
        assert result.stats.rounds >= 2


class TestChaseImplication:
    def test_paper_example8(self, example8_sigma, example8_phi13, example8_phi14):
        assert chase_implication(example8_sigma, example8_phi13).verdict
        assert chase_implication(example8_sigma, example8_phi14).verdict
        assert not chase_implication([example8_sigma[0]], example8_phi13).verdict

    def test_trivial_cases(self):
        phi_trivial = parse_gfds("gfd t { x: a; when x.A = 1; }")[0]
        assert chase_implication([], phi_trivial).verdict


class TestReification:
    def test_reify_pattern_structure(self):
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "knows")])
        reified = reify_pattern(pattern)
        assert set(reified.variables) == {"x", "y", "stmt0"}
        assert reified.label_of("stmt0") == "stmt:knows"
        assert len(reified.edges) == 2

    def test_reify_wildcard_edge(self):
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", WILDCARD)])
        reified = reify_pattern(pattern)
        assert reified.label_of("stmt0") == WILDCARD

    def test_reify_graph_preserves_attrs(self, small_graph):
        reified = reify_graph(small_graph)
        assert reified.attrs("a0") == {"x": 1}
        # One statement node per original edge.
        assert reified.num_nodes == small_graph.num_nodes + small_graph.num_edges

    def test_reification_preserves_matches(self, small_graph):
        pattern = make_pattern(
            {"x": "a", "y": "b", "z": "b"}, [("x", "y", "knows"), ("y", "z", "knows")]
        )
        original = find_homomorphisms(pattern, small_graph)
        reified_matches = find_homomorphisms(reify_pattern(pattern), reify_graph(small_graph))
        projected = {
            tuple(sorted((k, v) for k, v in m.items() if not k.startswith("stmt")))
            for m in reified_matches
        }
        assert projected == {tuple(sorted(m.items())) for m in original}

    def test_reify_gfd_keeps_literals(self, example8_sigma):
        reified = reify_gfd(example8_sigma[0])
        assert reified.consequent == example8_sigma[0].consequent
        assert reified.name.endswith("@rdf")


class TestRdfImp:
    def test_agrees_on_paper_example(self, example8_sigma, example8_phi13, example8_phi14):
        assert rdf_imp(example8_sigma, example8_phi13).verdict
        assert rdf_imp(example8_sigma, example8_phi14).verdict
        assert not rdf_imp([example8_sigma[1]], example8_phi13).verdict

    def test_rdf_fd_conversion(self):
        fd = RdfFD(
            triples=(Triple("s", "name", "n"), Triple("s", "email", "m")),
            lhs=("n",),
            rhs=("m",),
            name="name_determines_email",
        )
        gfd = fd.to_gfd()
        assert gfd.name == "name_determines_email"
        assert set(gfd.pattern.variables) == {"s", "n", "m"}
        assert all(gfd.pattern.is_wildcard_var(v) for v in gfd.pattern.variables)

    def test_rdf_fd_with_constants(self):
        fd = RdfFD(
            triples=(Triple("s", "type", "t"),),
            lhs=("t",),
            rhs=("s",),
            constants=(("t", "Person"),),
        )
        gfd = fd.to_gfd()
        assert any(getattr(lit, "value", None) == "Person" for lit in gfd.antecedent)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_chase_sat_agrees_with_seqsat(seed):
    sigma = random_gfds(
        8, max_pattern_nodes=4, max_literals=3, seed=seed, consistent=False
    )
    assert chase_satisfiability(sigma).verdict == seq_sat(sigma).satisfiable


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_chase_and_rdf_imp_agree_with_seqimp(seed):
    sigma = random_gfds(
        6, max_pattern_nodes=4, max_literals=3, seed=seed, consistent=False
    )
    phi = random_gfds(
        1, max_pattern_nodes=4, max_literals=3, seed=seed + 13, consistent=False
    )[0]
    expected = seq_imp(sigma, phi).implied
    assert chase_implication(sigma, phi).verdict == expected
    assert rdf_imp(sigma, phi).verdict == expected
