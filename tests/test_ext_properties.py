"""Property tests for the extension layers (predicates, keys).

Key invariants: on plain GFDs the extended checkers agree with the core
ones; constraint relations stay internally consistent under random
operation sequences; and completion always yields admissible assignments.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import seq_sat
from repro.extensions import ExtendedEq, ext_seq_sat, ged_satisfiable
from repro.gfd.generator import random_gfds


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10_000))
def test_ext_seq_sat_agrees_on_plain_gfds(seed):
    sigma = random_gfds(
        8, max_pattern_nodes=4, max_literals=3, seed=seed, consistent=False
    )
    assert ext_seq_sat(sigma).satisfiable == seq_sat(sigma).satisfiable


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_ged_satisfiable_agrees_on_plain_gfds(seed):
    """Without id literals the GED chase must agree with SeqSat."""
    sigma = random_gfds(
        6, max_pattern_nodes=4, max_literals=3, seed=seed, consistent=False
    )
    assert ged_satisfiable(sigma).satisfiable == seq_sat(sigma).satisfiable


_OP = st.one_of(
    st.tuples(st.just("bound"), st.sampled_from(["<", "<=", ">", ">="]),
              st.integers(0, 8), st.integers(0, 4)),
    st.tuples(st.just("const"), st.just("="), st.integers(0, 8), st.integers(0, 4)),
    st.tuples(st.just("neqc"), st.just("!="), st.integers(0, 8), st.integers(0, 4)),
    st.tuples(st.just("merge"), st.just("="), st.integers(0, 4), st.integers(0, 4)),
    st.tuples(st.just("neqt"), st.just("!="), st.integers(0, 4), st.integers(0, 4)),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_OP, max_size=25))
def test_extended_eq_invariants_under_random_ops(ops):
    """After any unconflicted op sequence: completion succeeds and assigns
    values satisfying every bound, constant, and disequality."""
    eq = ExtendedEq()

    def term(i):
        return (f"n{i}", "A")

    for op in ops:
        kind = op[0]
        if kind == "bound":
            eq.add_bound(term(op[3]), op[1], op[2])
        elif kind == "const":
            eq.assign_constant(term(op[3]), op[2])
        elif kind == "neqc":
            eq.add_neq_constant(term(op[3]), op[2])
        elif kind == "merge":
            eq.merge_terms(term(op[2]), term(op[3]))
        elif kind == "neqt":
            eq.add_neq_terms(term(op[2]), term(op[3]))
        if eq.has_conflict():
            return
    assignment = eq.completed_assignment()
    # Every constant is preserved.
    for source in list(assignment):
        constant = eq.constant_of(source)
        if constant is not None:
            assert assignment[source] == constant
    # Bounds hold for every assigned term.
    for source, value in assignment.items():
        assert eq.bounds_of(source).admits(value) or not isinstance(value, (int, float))
    # Equal classes share values; disequal classes differ.
    terms = list(assignment)
    for a in terms:
        for b in terms:
            if eq.same_class(a, b):
                assert assignment[a] == assignment[b]
            if eq.has_neq(a, b):
                assert assignment[a] != assignment[b]
    # Forbidden constants avoided.
    for source, value in assignment.items():
        assert value not in eq.forbidden_constants(source)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_extended_eq_conflict_is_monotone(seed):
    rng = random.Random(seed)
    eq = ExtendedEq()
    was_conflicted = False
    for _ in range(20):
        choice = rng.randrange(4)
        node = (f"n{rng.randrange(4)}", "A")
        other = (f"n{rng.randrange(4)}", "A")
        if choice == 0:
            eq.add_bound(node, rng.choice(["<", "<=", ">", ">="]), rng.randrange(6))
        elif choice == 1:
            eq.assign_constant(node, rng.randrange(6))
        elif choice == 2:
            eq.merge_terms(node, other)
        else:
            eq.add_neq_terms(node, other)
        if was_conflicted:
            assert eq.has_conflict()
        was_conflicted = eq.has_conflict()
