"""Unit tests for antecedent checking and enforcement (Expand/CheckAttr)."""

from repro.eq.eqrelation import EqRelation
from repro.eq.inverted_index import InvertedIndex
from repro.gfd import make_gfd, make_pattern
from repro.gfd.literals import FALSE, eq, vareq
from repro.reasoning.enforce import (
    AntecedentStatus,
    EnforcementEngine,
    antecedent_status,
    consequent_entailed,
    enforce_consequent,
    literal_status,
)


def gfd_with(antecedent, consequent, name="g"):
    pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "e")])
    return make_gfd(pattern, antecedent, consequent, name=name)


IDENTITY = {"x": "x", "y": "y"}


class TestLiteralStatus:
    def test_constant_literal_satisfied(self):
        relation = EqRelation()
        relation.assign_constant(("x", "A"), 1)
        status, blocking = literal_status(relation, eq("x", "A", 1), IDENTITY)
        assert status is AntecedentStatus.SATISFIED
        assert blocking == []

    def test_constant_literal_violated_is_permanent(self):
        relation = EqRelation()
        relation.assign_constant(("x", "A"), 2)
        status, _ = literal_status(relation, eq("x", "A", 1), IDENTITY)
        assert status is AntecedentStatus.VIOLATED

    def test_constant_literal_undecided_when_missing(self):
        relation = EqRelation()
        status, blocking = literal_status(relation, eq("x", "A", 1), IDENTITY)
        assert status is AntecedentStatus.UNDECIDED
        assert blocking == [("x", "A")]

    def test_constant_literal_undecided_when_uninstantiated(self):
        relation = EqRelation()
        relation.add_term(("x", "A"))
        status, _ = literal_status(relation, eq("x", "A", 1), IDENTITY)
        assert status is AntecedentStatus.UNDECIDED

    def test_variable_literal_same_class(self):
        relation = EqRelation()
        relation.merge_terms(("x", "A"), ("y", "B"))
        status, _ = literal_status(relation, vareq("x", "A", "y", "B"), IDENTITY)
        assert status is AntecedentStatus.SATISFIED

    def test_variable_literal_equal_constants(self):
        relation = EqRelation()
        relation.assign_constant(("x", "A"), 5)
        relation.assign_constant(("y", "B"), 5)
        status, _ = literal_status(relation, vareq("x", "A", "y", "B"), IDENTITY)
        assert status is AntecedentStatus.SATISFIED

    def test_variable_literal_distinct_constants_violated(self):
        relation = EqRelation()
        relation.assign_constant(("x", "A"), 5)
        relation.assign_constant(("y", "B"), 6)
        status, _ = literal_status(relation, vareq("x", "A", "y", "B"), IDENTITY)
        assert status is AntecedentStatus.VIOLATED

    def test_variable_literal_undecided_blocks_on_both_terms(self):
        relation = EqRelation()
        relation.assign_constant(("x", "A"), 5)
        status, blocking = literal_status(relation, vareq("x", "A", "y", "B"), IDENTITY)
        assert status is AntecedentStatus.UNDECIDED
        assert set(blocking) == {("x", "A"), ("y", "B")}

    def test_false_literal_always_violated(self):
        status, _ = literal_status(EqRelation(), FALSE, IDENTITY)
        assert status is AntecedentStatus.VIOLATED


class TestAntecedentStatus:
    def test_empty_antecedent_satisfied(self):
        gfd = gfd_with([], [eq("x", "A", 1)])
        status, _ = antecedent_status(EqRelation(), gfd, IDENTITY)
        assert status is AntecedentStatus.SATISFIED

    def test_violated_dominates_undecided(self):
        relation = EqRelation()
        relation.assign_constant(("x", "A"), 2)
        gfd = gfd_with([eq("x", "A", 1), eq("y", "B", 1)], [eq("x", "C", 1)])
        status, blocking = antecedent_status(relation, gfd, IDENTITY)
        assert status is AntecedentStatus.VIOLATED
        assert blocking == []

    def test_undecided_collects_all_blocking_terms(self):
        gfd = gfd_with([eq("x", "A", 1), eq("y", "B", 1)], [eq("x", "C", 1)])
        status, blocking = antecedent_status(EqRelation(), gfd, IDENTITY)
        assert status is AntecedentStatus.UNDECIDED
        assert set(blocking) == {("x", "A"), ("y", "B")}


class TestEnforceConsequent:
    def test_constant_and_merge_applied(self):
        relation = EqRelation()
        gfd = gfd_with([], [eq("x", "A", 1), vareq("x", "B", "y", "C")])
        assert enforce_consequent(relation, gfd, IDENTITY)
        assert relation.constant_of(("x", "A")) == 1
        assert relation.same_class(("x", "B"), ("y", "C"))

    def test_false_consequent_conflicts(self):
        relation = EqRelation()
        gfd = gfd_with([], [FALSE])
        enforce_consequent(relation, gfd, IDENTITY)
        assert relation.has_conflict()

    def test_idempotent_second_application(self):
        relation = EqRelation()
        gfd = gfd_with([], [eq("x", "A", 1)])
        enforce_consequent(relation, gfd, IDENTITY)
        assert not enforce_consequent(relation, gfd, IDENTITY)

    def test_consequent_entailed(self):
        relation = EqRelation()
        gfd = gfd_with([], [eq("x", "A", 1)])
        assert not consequent_entailed(relation, gfd, IDENTITY)
        enforce_consequent(relation, gfd, IDENTITY)
        assert consequent_entailed(relation, gfd, IDENTITY)

    def test_false_never_entailed(self):
        relation = EqRelation()
        gfd = gfd_with([], [FALSE])
        assert not consequent_entailed(relation, gfd, IDENTITY)


class TestEnforcementEngine:
    def test_satisfied_match_enforced_immediately(self):
        relation = EqRelation()
        gfd = gfd_with([], [eq("x", "A", 1)])
        engine = EnforcementEngine(relation, {gfd.name: gfd})
        assert engine.enforce(gfd, IDENTITY)
        assert engine.stats.enforced == 1
        assert relation.constant_of(("x", "A")) == 1

    def test_undecided_match_parked_then_woken(self):
        """The inverted-index recheck chain of the paper's Example 4."""
        relation = EqRelation()
        trigger = gfd_with([eq("x", "A", 1)], [eq("y", "B", 2)], name="trigger")
        seed = gfd_with([], [eq("x", "A", 1)], name="seed")
        engine = EnforcementEngine(relation, {g.name: g for g in (trigger, seed)})
        engine.enforce(trigger, IDENTITY)
        assert engine.stats.deferred == 1
        assert relation.constant_of(("y", "B")) is None
        # Seeding x.A = 1 wakes the parked match and fires trigger.
        engine.enforce(seed, IDENTITY)
        assert relation.constant_of(("y", "B")) == 2
        assert engine.stats.rechecks >= 1

    def test_violated_match_dropped(self):
        relation = EqRelation()
        relation.assign_constant(("x", "A"), 9)
        gfd = gfd_with([eq("x", "A", 1)], [eq("y", "B", 2)])
        engine = EnforcementEngine(relation, {gfd.name: gfd})
        engine.enforce(gfd, IDENTITY)
        assert engine.stats.dropped == 1
        assert relation.constant_of(("y", "B")) is None

    def test_cascade_chain(self):
        """A -> B -> C propagates through two parked matches."""
        relation = EqRelation()
        step1 = gfd_with([eq("x", "A", 1)], [eq("x", "B", 1)], name="s1")
        step2 = gfd_with([eq("x", "B", 1)], [eq("x", "C", 1)], name="s2")
        seed = gfd_with([], [eq("x", "A", 1)], name="s0")
        registry = {g.name: g for g in (step1, step2, seed)}
        engine = EnforcementEngine(relation, registry)
        engine.enforce(step2, IDENTITY)
        engine.enforce(step1, IDENTITY)
        assert relation.constant_of(("x", "C")) is None
        engine.enforce(seed, IDENTITY)
        assert relation.constant_of(("x", "C")) == 1

    def test_cascade_stops_on_conflict(self):
        relation = EqRelation()
        bomb = gfd_with([eq("x", "A", 1)], [eq("x", "A", 2)], name="bomb")
        seed = gfd_with([], [eq("x", "A", 1)], name="seed")
        engine = EnforcementEngine(relation, {g.name: g for g in (bomb, seed)})
        engine.enforce(bomb, IDENTITY)
        engine.enforce(seed, IDENTITY)
        assert relation.has_conflict()
