"""Tests for SeqSat: paper examples, Church-Rosser, model extraction."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import extract_model, is_model_of, parse_gfds, seq_sat
from repro.gfd.generator import conflict_chain, random_gfds
from repro.reasoning import is_satisfiable
from repro.reasoning.validation import graph_satisfies_sigma


class TestPaperExamples:
    def test_example2_same_pattern_conflict(self, example2_conflicting):
        result = seq_sat(example2_conflicting)
        assert not result.satisfiable
        assert result.conflict is not None

    def test_example2_cross_pattern_conflict(self, example2_cross_pattern):
        assert not seq_sat(example2_cross_pattern).satisfiable
        for gfd in example2_cross_pattern:
            assert seq_sat([gfd]).satisfiable

    def test_example4_inverted_index_chain(self, example4_sigma):
        result = seq_sat(example4_sigma)
        assert not result.satisfiable
        # The conflict is on some x.A receiving 0 and 1.
        assert {result.conflict.value_a, result.conflict.value_b} == {0, 1}

    def test_example4_any_proper_subset_satisfiable(self, example4_sigma):
        for skip in range(3):
            subset = [g for i, g in enumerate(example4_sigma) if i != skip]
            assert seq_sat(subset).satisfiable


class TestBasicProperties:
    def test_empty_sigma_satisfiable(self):
        assert seq_sat([]).satisfiable

    def test_single_trivial_gfd(self):
        sigma = parse_gfds("gfd g { x: a; when x.A = 1; }")
        assert seq_sat(sigma).satisfiable

    def test_false_with_empty_antecedent_unsatisfiable(self):
        sigma = parse_gfds("gfd g { x: a; then false; }")
        assert not seq_sat(sigma).satisfiable

    def test_false_with_guard_satisfiable(self):
        # X can remain unsatisfied in a model (attribute simply missing).
        sigma = parse_gfds("gfd g { x: a; when x.A = 1; then false; }")
        assert seq_sat(sigma).satisfiable

    def test_conflicting_variable_chain(self):
        sigma = parse_gfds(
            """
            gfd g1 { x: a; then x.A = 1; }
            gfd g2 { x: a; then x.B = 2; }
            gfd g3 { x: a; then x.A = x.B; }
            """
        )
        assert not seq_sat(sigma).satisfiable

    def test_wildcard_interaction(self):
        # A wildcard pattern applies to every node, including the 'a' copy.
        sigma = parse_gfds(
            """
            gfd g1 { x: _; then x.A = 1; }
            gfd g2 { x: a; then x.A = 2; }
            """
        )
        assert not seq_sat(sigma).satisfiable

    def test_conflict_chain_lengths(self):
        for length in (2, 3, 5):
            chain = conflict_chain(length)
            assert not seq_sat(chain).satisfiable
            assert seq_sat(chain[:-1]).satisfiable

    def test_conflict_chain_requires_min_length(self):
        with pytest.raises(ValueError):
            conflict_chain(1)

    def test_is_satisfiable_wrapper(self, example2_conflicting):
        assert not is_satisfiable(example2_conflicting)

    def test_ablation_flags_do_not_change_verdict(self, example4_sigma):
        for dep in (True, False):
            for sim in (True, False):
                result = seq_sat(
                    example4_sigma,
                    use_dependency_order=dep,
                    use_simulation_pruning=sim,
                )
                assert not result.satisfiable

    def test_stats_populated(self, example4_sigma):
        result = seq_sat(example4_sigma)
        assert result.stats.gfds == 3
        assert result.stats.matches > 0
        assert result.stats.match_ticks > 0


class TestModelExtraction:
    def test_extracted_model_is_model(self, example8_sigma):
        result = seq_sat(example8_sigma)
        assert result.satisfiable
        model = extract_model(result)
        assert is_model_of(model, example8_sigma)

    def test_extract_from_unsat_raises(self, example2_conflicting):
        result = seq_sat(example2_conflicting)
        with pytest.raises(ValueError):
            extract_model(result)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_church_rosser_order_independence(seed):
    """Property: the verdict is independent of the order GFDs are given
    (the paper's Church-Rosser claim for SeqSat)."""
    rng = random.Random(seed)
    sigma = random_gfds(
        12,
        max_pattern_nodes=4,
        max_literals=3,
        seed=seed,
        consistent=rng.random() < 0.5,
    )
    baseline = seq_sat(sigma).satisfiable
    for _ in range(2):
        shuffled = list(sigma)
        rng.shuffle(shuffled)
        assert seq_sat(shuffled).satisfiable == baseline
        assert seq_sat(shuffled, use_dependency_order=False).satisfiable == baseline


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_satisfiable_implies_valid_model(seed):
    """Property: whenever SeqSat says satisfiable, the extracted model
    really satisfies Σ and hosts a match per pattern (Theorem 1)."""
    sigma = random_gfds(8, max_pattern_nodes=4, max_literals=3, seed=seed, consistent=False)
    result = seq_sat(sigma)
    if result.satisfiable:
        model = extract_model(result)
        assert graph_satisfies_sigma(model, sigma)
        assert is_model_of(model, sigma)
