"""Scheduler: pivot-affinity routing, adaptive batching, worker death."""

from __future__ import annotations

import threading
import time

import pytest

from repro.eq.eqrelation import EqRelation
from repro.gfd.canonical import build_canonical_graph
from repro.gfd.generator import delta_hub_workload
from repro.graph.graph import PropertyGraph
from repro.parallel import (
    ProcessBackend,
    RuntimeConfig,
    Scheduler,
    UnitContext,
    par_sat,
)
from repro.reasoning.enforce import EnforcementEngine
from repro.reasoning.workunits import WorkUnit, generate_work_units


def hub_graph(num_hubs: int = 2, spokes: int = 3) -> PropertyGraph:
    """``num_hubs`` stars: spokes point at their hub center."""
    graph = PropertyGraph()
    for hub in range(num_hubs):
        center = f"hub{hub}"
        graph.add_node("hubc", node_id=center)
        for spoke in range(spokes):
            node = f"s{hub}_{spoke}"
            graph.add_node("spoke", node_id=node)
            graph.add_edge(node, center, "e")
    return graph


def hub_context(num_hubs: int = 2, spokes: int = 3) -> UnitContext:
    return UnitContext(hub_graph(num_hubs, spokes), {})


def spoke_unit(hub: int, spoke: int) -> WorkUnit:
    return WorkUnit.make("phi", {"x": f"s{hub}_{spoke}"}, radius=1)


class TestLocalityKey:
    def test_spokes_share_their_hub_key(self):
        context = hub_context()
        keys = {context.locality_key(spoke_unit(0, s)) for s in range(3)}
        assert keys == {"hub0"}
        assert context.locality_key(spoke_unit(1, 0)) == "hub1"

    def test_hub_is_its_own_key(self):
        context = hub_context()
        unit = WorkUnit.make("phi", {"x": "hub0"}, radius=1)
        assert context.locality_key(unit) == "hub0"

    def test_isolated_pivot_keys_to_itself(self):
        graph = hub_graph()
        graph.add_node("spoke", node_id="loner")
        context = UnitContext(graph, {})
        unit = WorkUnit.make("phi", {"x": "loner"})
        assert context.locality_key(unit) == "loner"

    def test_pivotless_unit_has_no_key(self):
        context = hub_context()
        assert context.locality_key(WorkUnit("phi", ())) is None

    def test_key_cache_invalidated_by_topology_change(self):
        context = hub_context()
        assert context.locality_key(spoke_unit(0, 0)) == "hub0"
        # Growing a spoke into a bigger hub than the original center must
        # re-derive the key after the mutation is noticed.
        graph = context.graph
        for extra in range(8):
            node = f"x{extra}"
            graph.add_node("spoke", node_id=node)
            graph.add_edge(node, "s0_0", "e")
        assert context.locality_key(spoke_unit(0, 1)) == "hub0"
        assert context.locality_key(spoke_unit(0, 0)) == "s0_0"


class TestAffinityRouting:
    def test_same_key_lands_on_same_worker(self):
        context = hub_context()
        units = [spoke_unit(h, s) for h in range(2) for s in range(3)]
        scheduler = Scheduler(units, RuntimeConfig(workers=2, batch_size=3), context)
        batch0 = scheduler.next_batch(0)
        batch1 = scheduler.next_batch(1)
        # Each worker's first batch comes purely from its own pinned
        # queue: one hub's unit group each.
        assert {u.pivot_node()[:2] for u in batch0} == {"s0"}
        assert {u.pivot_node()[:2] for u in batch1} == {"s1"}
        rest = list(batch0 + batch1)
        while len(scheduler):
            rest.extend(scheduler.next_batch(0))
            rest.extend(scheduler.next_batch(1))
        assert {u.pivot_node() for u in rest} == {u.pivot_node() for u in units}
        assert scheduler.affinity_hits >= 5

    def test_stealing_keeps_workers_busy(self):
        context = hub_context(num_hubs=1, spokes=4)
        units = [spoke_unit(0, s) for s in range(4)]
        # Cost feedback off: all four units pin to one worker at enqueue
        # time, so the other worker must steal to stay busy.
        config = RuntimeConfig(workers=2, batch_size=2, affinity_cost_feedback=False)
        scheduler = Scheduler(units, config, context)
        got = []
        for wid in (0, 1, 1, 0):
            got.extend(scheduler.next_batch(wid))
        assert len(got) == 4
        assert len(scheduler) == 0
        assert scheduler.affinity_misses > 0

    def test_cost_feedback_spills_oversized_group(self):
        context = hub_context(num_hubs=1, spokes=4)
        units = [spoke_unit(0, s) for s in range(4)]
        # Cost feedback on (default): once the owner holds its fair share
        # of the estimated cost, the rest of the hub's group spills to the
        # global queue — the second worker serves it without stealing.
        scheduler = Scheduler(units, RuntimeConfig(workers=2, batch_size=2), context)
        assert scheduler.affinity_overflows > 0
        got = []
        for wid in (0, 1, 1, 0):
            got.extend(scheduler.next_batch(wid))
        assert len(got) == 4
        assert len(scheduler) == 0
        assert scheduler.affinity_misses == 0
        assert {u.pivot_node() for u in got} == {u.pivot_node() for u in units}

    def test_fair_share_caps_batches(self):
        context = hub_context(num_hubs=1, spokes=4)
        units = [spoke_unit(0, s) for s in range(4)]
        scheduler = Scheduler(units, RuntimeConfig(workers=4, batch_size=6), context)
        # 4 units over 4 alive workers: nobody may take more than 1.
        assert len(scheduler.next_batch(0)) == 1

    def test_ablation_is_plain_fifo(self):
        context = hub_context()
        units = [spoke_unit(h, s) for h in range(2) for s in range(3)]
        config = RuntimeConfig(workers=2, batch_size=4).without_affinity()
        scheduler = Scheduler(units, config, context)
        batch = scheduler.next_batch(0)
        assert batch == units[:4]
        assert scheduler.affinity_hits == scheduler.affinity_misses == 0

    def test_splits_jump_every_queue(self):
        context = hub_context()
        units = [spoke_unit(0, s) for s in range(3)]
        scheduler = Scheduler(units, RuntimeConfig(workers=1, batch_size=2), context)
        splits = [
            WorkUnit.make("phi", {"x": "s1_0", "y": "s1_1"}, radius=1, generation=1),
            WorkUnit.make("phi", {"x": "s1_0", "y": "s1_2"}, radius=1, generation=1),
        ]
        scheduler.requeue(splits)
        assert scheduler.next_batch(0) == splits


class TestAdaptiveBatching:
    def test_grows_on_cheap_round_trips(self):
        config = RuntimeConfig(workers=1, batch_size=4)
        scheduler = Scheduler([], config, None)
        scheduler.observe(0, executed=4, delta_ops=0, seconds=0.01)
        assert scheduler.batch_size(0) == 8
        scheduler.observe(0, executed=8, delta_ops=0, seconds=0.01)
        assert scheduler.batch_size(0) == 16

    def test_growth_capped(self):
        config = RuntimeConfig(workers=1, batch_size=4, max_batch_size=8)
        scheduler = Scheduler([], config, None)
        for _ in range(5):
            scheduler.observe(0, executed=64, delta_ops=0, seconds=0.01)
        assert scheduler.batch_size(0) == 8

    def test_cap_never_below_initial_batch_size(self):
        config = RuntimeConfig(workers=1, batch_size=16, max_batch_size=4)
        assert config.batch_size_cap == 16

    def test_shrinks_on_heavy_delta_payload(self):
        config = RuntimeConfig(workers=1, batch_size=8, batch_delta_budget=10)
        scheduler = Scheduler([], config, None)
        scheduler.observe(0, executed=8, delta_ops=50, seconds=0.01)
        assert scheduler.batch_size(0) == 4

    def test_shrinks_on_slow_round_trip(self):
        config = RuntimeConfig(workers=1, batch_size=8, batch_target_seconds=0.1)
        scheduler = Scheduler([], config, None)
        scheduler.observe(0, executed=8, delta_ops=0, seconds=0.5)
        assert scheduler.batch_size(0) == 4

    def test_starved_batch_does_not_grow(self):
        config = RuntimeConfig(workers=1, batch_size=8)
        scheduler = Scheduler([], config, None)
        scheduler.observe(0, executed=2, delta_ops=0, seconds=0.01)
        assert scheduler.batch_size(0) == 8

    def test_ablation_keeps_fixed_size(self):
        config = RuntimeConfig(workers=1, batch_size=6).without_affinity()
        scheduler = Scheduler([], config, None)
        scheduler.observe(0, executed=6, delta_ops=0, seconds=0.001)
        assert scheduler.batch_size(0) == 6


class TestWorkerDeath:
    def make(self, workers=3):
        context = hub_context(num_hubs=3, spokes=4)
        units = [spoke_unit(h, s) for h in range(3) for s in range(4)]
        scheduler = Scheduler(units, RuntimeConfig(workers=workers, batch_size=4), context)
        return scheduler, units

    def test_orphans_reassigned_to_survivors(self):
        scheduler, units = self.make()
        scheduler.worker_died(0)
        drained = []
        while len(scheduler):
            for wid in (1, 2):
                drained.extend(scheduler.next_batch(wid))
        assert sorted(u.uid for u in drained) == sorted(u.uid for u in units)
        assert scheduler.reassigned_units > 0

    def test_dead_worker_keys_repinned(self):
        scheduler, _ = self.make()
        scheduler.worker_died(0)
        late = spoke_unit(0, 0)  # key previously owned by any worker
        scheduler._enqueue(late)
        # Every queued unit must be reachable through the survivors alone.
        remaining = len(scheduler)
        drained = []
        for _ in range(remaining):
            for wid in (1, 2):
                drained.extend(scheduler.next_batch(wid))
            if len(drained) >= remaining:
                break
        assert len(drained) == remaining
        assert not scheduler._local[0]

    def test_all_dead_parks_units(self):
        scheduler, units = self.make(workers=2)
        scheduler.worker_died(0)
        scheduler.worker_died(1)
        assert len(scheduler) == len(units)


class TestProcessWorkerDeathUnderAffinity:
    """The satellite: a killed worker's pinned units must land on another
    replica, with stable-uid reconciliation intact."""

    def _setup(self, sigma, workers, persistent=True):
        canonical = build_canonical_graph(sigma)
        context = UnitContext(canonical.graph, dict(canonical.gfds))
        engine = EnforcementEngine(EqRelation(), dict(context.gfds))
        units = generate_work_units(sigma, canonical.graph)
        config = RuntimeConfig(
            workers=workers, persistent_workers=persistent, batch_size=2
        )
        assert config.affinity  # the default: this test runs WITH routing
        return ProcessBackend(config), context, engine, units

    def test_initially_dead_worker_excluded_from_routing(self, example8_sigma):
        backend, context, engine, units = self._setup(example8_sigma, workers=3)
        try:
            outcome = backend.run(units, context, engine)
            assert outcome.conflict is None
            # Kill one standing replica between runs: the refresh must
            # detect it and the next run must route (and steal) around it.
            victim = backend._pool["procs"][0]
            victim.terminate()
            victim.join(timeout=5)
            engine = EnforcementEngine(EqRelation(), dict(context.gfds))
            outcome = backend.run(units, context, engine)
            assert outcome.conflict is None
            assert outcome.units_executed == outcome.units_total - outcome.splits
            assert 0 in backend._pool["dead"]
            assert outcome.worker_busy[0] == 0.0
        finally:
            backend.close()

    def test_mid_run_kill_requeues_on_survivors(self):
        # Heavy enough that the kill usually lands mid-run; the verdict
        # and the per-unit accounting must survive the requeue either way.
        import multiprocessing as mp

        sigma = delta_hub_workload(
            num_hubs=3, spokes_per_hub=10, num_writers=5, num_pairers=2,
            num_background=8, seed=7,
        )
        backend, context, engine, units = self._setup(
            sigma, workers=3, persistent=False
        )
        units = units * 2  # more work => wider kill window
        result = {}

        def runner():
            result["outcome"] = backend.run(units, context, engine)

        thread = threading.Thread(target=runner)
        thread.start()
        deadline = time.monotonic() + 5.0
        try:
            while time.monotonic() < deadline and thread.is_alive():
                children = mp.active_children()
                if children:
                    children[0].terminate()
                    break
                time.sleep(0.002)
        finally:
            thread.join(timeout=120)
            backend.close()
        assert not thread.is_alive()
        outcome = result["outcome"]
        assert outcome.conflict is None
        assert outcome.units_executed == outcome.units_total - outcome.splits


class TestOutcomeAccounting:
    def test_simulated_reports_scheduler_stats(self):
        sigma = delta_hub_workload(
            num_hubs=2, spokes_per_hub=5, num_writers=3, num_pairers=1,
            num_background=4, seed=7,
        )
        result = par_sat(sigma, RuntimeConfig(workers=2))
        outcome = result.outcome
        assert outcome.sync_rounds > 0
        assert outcome.broadcast_volume > 0
        assert outcome.affinity_hits > 0
        assert len(outcome.batch_sizes) == 2
        ablation = par_sat(sigma, RuntimeConfig(workers=2).without_affinity())
        assert ablation.outcome.affinity_hits == 0
        assert ablation.outcome.batch_sizes == [6, 6]
        assert ablation.satisfiable == result.satisfiable

    def test_process_affinity_reduces_broadcast(self):
        sigma = delta_hub_workload(
            num_hubs=4, spokes_per_hub=10, num_writers=5, num_pairers=2,
            num_background=8, seed=7,
        )
        config = RuntimeConfig(workers=3)
        affinity = par_sat(sigma, config, backend="process").outcome
        fixed = par_sat(
            sigma, config.without_affinity(), backend="process"
        ).outcome
        # Identical verdict/work, fewer redundant ops rediscovered and
        # far fewer coordinator round trips.
        assert (affinity.conflict is None) == (fixed.conflict is None)
        assert affinity.units_executed == fixed.units_executed
        assert affinity.sync_rounds < fixed.sync_rounds
        assert affinity.broadcast_ops <= fixed.broadcast_ops
