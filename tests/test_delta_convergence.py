"""Convergence of asynchronous ΔEq broadcast (paper, Section V-B).

Workers exchange ``ΔEq`` asynchronously; correctness rests on ``Eq`` being
monotone (inflationary fixpoint). These tests simulate the gossip: several
replicas apply local operations, exchange deltas in arbitrary interleavings
with duplication and reordering *of whole deltas*, and must converge to the
same classes/constants — or all observe the conflict.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eq.eqrelation import EqRelation


def eq_state(eq: EqRelation):
    """A canonical snapshot: set of (frozen member set, constant).

    Uninstantiated singleton classes are dropped — they are semantically
    equivalent to the term not being mentioned at all (completion gives
    them fresh distinct values either way), and a no-op operation may
    register one locally without producing a delta entry.
    """
    return {
        (frozenset(members), constant)
        for members, constant in eq.classes()
        if constant is not None or len(members) > 1
    }


def random_ops(rng: random.Random, count: int):
    ops = []
    for _ in range(count):
        if rng.random() < 0.5:
            ops.append(("const", (f"n{rng.randrange(6)}", "A"), rng.randrange(3)))
        else:
            ops.append(
                ("merge", (f"n{rng.randrange(6)}", "A"), (f"n{rng.randrange(6)}", "A"))
            )
    return ops


def apply_local(eq: EqRelation, op) -> None:
    if op[0] == "const":
        eq.assign_constant(op[1], op[2])
    else:
        eq.merge_terms(op[1], op[2])


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_replicas_converge_after_full_exchange(seed):
    rng = random.Random(seed)
    replicas = [EqRelation() for _ in range(3)]
    # Each replica performs its own local operations.
    for replica in replicas:
        for op in random_ops(rng, rng.randrange(8)):
            apply_local(replica, op)
    # Full exchange: everyone applies everyone's delta log, in a random
    # order, possibly twice (at-least-once delivery).
    logs = [replica.delta_since(0) for replica in replicas]
    for replica in replicas:
        order = list(range(len(logs)))
        rng.shuffle(order)
        for index in order:
            replica.apply_delta(logs[index])
            if rng.random() < 0.3:
                replica.apply_delta(logs[index])  # duplicate delivery
    # Protocol invariant: conflicts need not propagate through ΔEq (a
    # rejected conflicting op is not logged — the worker reports f^c to the
    # coordinator instead, paper Fig. 3). What must hold is that all
    # *unconflicted* replicas converge to the same classes/constants.
    clean_states = [
        eq_state(replica) for replica in replicas if not replica.has_conflict()
    ]
    assert all(state == clean_states[0] for state in clean_states)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000))
def test_pairwise_gossip_reaches_global_state(seed):
    """Repeated pairwise exchanges reach the same fixpoint as a central
    replica that saw every operation."""
    rng = random.Random(seed)
    all_ops = random_ops(rng, 12)
    central = EqRelation()
    for op in all_ops:
        apply_local(central, op)

    replicas = [EqRelation() for _ in range(3)]
    for index, op in enumerate(all_ops):
        apply_local(replicas[index % 3], op)
    # Gossip rounds: exchange full logs pairwise until quiescent.
    for _ in range(4):
        for a in range(3):
            for b in range(3):
                if a != b:
                    replicas[b].apply_delta(replicas[a].delta_since(0))
    if central.has_conflict():
        # The replica that locally executed the clashing operation observed
        # the conflict (and would raise f^c); rejected ops are not gossiped.
        assert any(replica.has_conflict() for replica in replicas)
    else:
        for replica in replicas:
            assert not replica.has_conflict()
            assert eq_state(replica) == eq_state(central)


def test_conflict_propagates_through_delta():
    source = EqRelation()
    source.assign_constant(("x", "A"), 1)
    sink = EqRelation()
    sink.assign_constant(("x", "A"), 2)
    assert not sink.has_conflict()
    sink.apply_delta(source.delta_since(0))
    assert sink.has_conflict()


def test_delta_prefix_replay_is_safe():
    """Replaying a stale prefix after newer ops is harmless (idempotence +
    monotonicity), as happens with out-of-order broadcast delivery."""
    source = EqRelation()
    source.assign_constant(("x", "A"), 1)
    prefix = source.delta_since(0)
    source.merge_terms(("x", "A"), ("y", "B"))
    full = source.delta_since(0)

    replica = EqRelation()
    replica.apply_delta(full)
    state_before = eq_state(replica)
    replica.apply_delta(prefix)  # stale duplicate
    assert eq_state(replica) == state_before
    assert not replica.has_conflict()
