"""Tests for GFD semantics on concrete graphs (error detection)."""

from repro import PropertyGraph, parse_gfds
from repro.reasoning.validation import (
    detect_errors,
    find_violations,
    graph_satisfies,
    graph_satisfies_sigma,
    is_model_of,
    match_satisfies,
    match_satisfies_literal,
)
from repro.gfd.literals import FALSE, eq, vareq


def dirty_graph():
    graph = PropertyGraph()
    p1 = graph.add_node("place", {"name": "airport"}, node_id="p1")
    p2 = graph.add_node("place", {"name": "town"}, node_id="p2")
    graph.add_edge(p1, p2, "locateIn")
    graph.add_edge(p2, p1, "partOf")
    return graph


PHI1 = parse_gfds(
    """
    gfd phi1 {
        x: place; y: place;
        x -[locateIn]-> y;
        y -[partOf]-> x;
        then false;
    }
    """
)[0]


class TestLiteralSatisfaction:
    def test_constant_literal(self):
        graph = PropertyGraph()
        graph.add_node("a", {"A": 1}, node_id="n")
        assert match_satisfies_literal(graph, eq("x", "A", 1), {"x": "n"})
        assert not match_satisfies_literal(graph, eq("x", "A", 2), {"x": "n"})

    def test_missing_attribute_falsifies(self):
        graph = PropertyGraph()
        graph.add_node("a", {}, node_id="n")
        assert not match_satisfies_literal(graph, eq("x", "A", 1), {"x": "n"})

    def test_variable_literal(self):
        graph = PropertyGraph()
        graph.add_node("a", {"A": 7}, node_id="n")
        graph.add_node("b", {"B": 7}, node_id="m")
        assignment = {"x": "n", "y": "m"}
        assert match_satisfies_literal(graph, vareq("x", "A", "y", "B"), assignment)

    def test_variable_literal_missing_side(self):
        graph = PropertyGraph()
        graph.add_node("a", {"A": 7}, node_id="n")
        graph.add_node("b", {}, node_id="m")
        assert not match_satisfies_literal(
            graph, vareq("x", "A", "y", "B"), {"x": "n", "y": "m"}
        )

    def test_false_literal_never_satisfied(self):
        graph = PropertyGraph()
        graph.add_node("a", node_id="n")
        assert not match_satisfies_literal(graph, FALSE, {"x": "n"})

    def test_empty_conjunction_true(self):
        graph = PropertyGraph()
        graph.add_node("a", node_id="n")
        assert match_satisfies(graph, [], {"x": "n"})


class TestViolations:
    def test_cyclic_place_violation_found(self):
        graph = dirty_graph()
        violations = find_violations(graph, PHI1)
        assert len(violations) == 1
        assert violations[0].gfd_name == "phi1"
        assert violations[0].assignment == {"x": "p1", "y": "p2"}

    def test_clean_graph_no_violation(self):
        graph = PropertyGraph()
        a = graph.add_node("place")
        b = graph.add_node("place")
        graph.add_edge(a, b, "locateIn")
        assert graph_satisfies(graph, PHI1)

    def test_unsatisfied_antecedent_not_a_violation(self):
        sigma = parse_gfds("gfd g { x: a; when x.A = 1; then x.B = 2; }")
        graph = PropertyGraph()
        graph.add_node("a", {"A": 0})
        assert graph_satisfies_sigma(graph, sigma)

    def test_satisfied_antecedent_violated_consequent(self):
        sigma = parse_gfds("gfd g { x: a; when x.A = 1; then x.B = 2; }")
        graph = PropertyGraph()
        graph.add_node("a", {"A": 1, "B": 3})
        assert not graph_satisfies_sigma(graph, sigma)

    def test_limit_respected(self):
        graph = PropertyGraph()
        for _ in range(5):
            graph.add_node("a", {"A": 1})
        gfd = parse_gfds("gfd g { x: a; when x.A = 1; then x.B = 2; }")[0]
        assert len(find_violations(graph, gfd, limit=2)) == 2

    def test_detect_errors_aggregates(self):
        graph = dirty_graph()
        graph.add_node("a", {"A": 1})
        sigma = [PHI1] + parse_gfds("gfd g2 { x: a; when x.A = 1; then x.B = 2; }")
        errors = detect_errors(graph, sigma)
        assert {e.gfd_name for e in errors} == {"phi1", "g2"}

    def test_violation_str(self):
        graph = dirty_graph()
        violation = find_violations(graph, PHI1)[0]
        assert "phi1" in str(violation)


class TestIsModelOf:
    def test_empty_graph_is_no_model(self):
        sigma = parse_gfds("gfd g { x: a; then x.A = 1; }")
        assert not is_model_of(PropertyGraph(), sigma)

    def test_satisfying_graph_without_match_is_no_model(self):
        sigma = parse_gfds("gfd g { x: a; then x.A = 1; }")
        graph = PropertyGraph()
        graph.add_node("b")
        assert not is_model_of(graph, sigma)

    def test_proper_model(self):
        sigma = parse_gfds("gfd g { x: a; then x.A = 1; }")
        graph = PropertyGraph()
        graph.add_node("a", {"A": 1})
        assert is_model_of(graph, sigma)
