"""Unit tests for the property-graph substrate."""

import pytest

from repro import PropertyGraph
from repro.errors import GraphError
from repro.graph.elements import Edge, Node, format_attrs, is_wildcard


class TestNodeAndEdge:
    def test_node_attrs(self):
        node = Node(1, "person", {"name": "ada"})
        assert node.has_attr("name")
        assert node.get_attr("name") == "ada"
        assert node.get_attr("missing") is None
        assert not node.has_attr("missing")

    def test_node_copy_is_independent(self):
        node = Node(1, "person", {"name": "ada"})
        clone = node.copy()
        clone.attrs["name"] = "grace"
        assert node.get_attr("name") == "ada"

    def test_edge_reversed(self):
        edge = Edge("a", "b", "knows")
        assert edge.reversed() == Edge("b", "a", "knows")

    def test_wildcard_predicate(self):
        assert is_wildcard("_")
        assert not is_wildcard("a")
        assert not is_wildcard("")

    def test_format_attrs_sorted(self):
        assert format_attrs({"b": 2, "a": 1}) == "(a=1, b=2)"


class TestPropertyGraphConstruction:
    def test_auto_ids_are_consecutive(self):
        graph = PropertyGraph()
        assert graph.add_node("a") == 0
        assert graph.add_node("b") == 1

    def test_explicit_and_auto_ids_coexist(self):
        graph = PropertyGraph()
        graph.add_node("a", node_id=0)
        other = graph.add_node("b")
        assert other != 0
        assert graph.has_node(other)

    def test_duplicate_id_rejected(self):
        graph = PropertyGraph()
        graph.add_node("a", node_id="n")
        with pytest.raises(GraphError):
            graph.add_node("b", node_id="n")

    def test_edge_requires_existing_endpoints(self):
        graph = PropertyGraph()
        a = graph.add_node("a")
        with pytest.raises(GraphError):
            graph.add_edge(a, "ghost", "e")
        with pytest.raises(GraphError):
            graph.add_edge("ghost", a, "e")

    def test_duplicate_edge_ignored(self):
        graph = PropertyGraph()
        a, b = graph.add_node("a"), graph.add_node("b")
        graph.add_edge(a, b, "e")
        graph.add_edge(a, b, "e")
        assert graph.num_edges == 1

    def test_multi_label_edges_both_kept(self):
        graph = PropertyGraph()
        a, b = graph.add_node("a"), graph.add_node("b")
        graph.add_edge(a, b, "e1")
        graph.add_edge(a, b, "e2")
        assert graph.edge_labels_between(a, b) == {"e1", "e2"}
        assert graph.num_edges == 2

    def test_self_loop(self):
        graph = PropertyGraph()
        a = graph.add_node("a")
        graph.add_edge(a, a, "loop")
        assert graph.has_edge(a, a, "loop")
        assert a in graph.neighbors(a)


class TestPropertyGraphAccess:
    def test_unknown_node_raises(self):
        graph = PropertyGraph()
        with pytest.raises(GraphError):
            graph.node("missing")

    def test_label_index(self, small_graph):
        assert small_graph.nodes_with_label("a") == {"a0", "a1"}
        assert small_graph.nodes_with_label("nope") == set()
        assert small_graph.labels() == {"a", "b", "c"}

    def test_edge_label_set(self, small_graph):
        assert small_graph.edge_label_set() == {"knows", "likes"}

    def test_has_edge_any_label(self, small_graph):
        assert small_graph.has_edge("a0", "b0")
        assert small_graph.has_edge("a0", "b0", "knows")
        assert not small_graph.has_edge("a0", "b0", "likes")
        assert not small_graph.has_edge("b0", "a0")

    def test_successors_predecessors(self, small_graph):
        assert set(small_graph.successors("a0")) == {"b0", "c0"}
        assert set(small_graph.predecessors("b1")) == {"b0"}

    def test_neighbors_undirected(self, small_graph):
        assert small_graph.neighbors("b0") == {"a0", "b1"}

    def test_set_attr(self, small_graph):
        small_graph.set_attr("a0", "x", 42)
        assert small_graph.attrs("a0")["x"] == 42

    def test_contains_and_len(self, small_graph):
        assert "a0" in small_graph
        assert "zz" not in small_graph
        assert len(small_graph) == 5

    def test_size_counts_attrs(self):
        graph = PropertyGraph()
        a = graph.add_node("a", {"p": 1, "q": 2})
        b = graph.add_node("b")
        graph.add_edge(a, b, "e")
        assert graph.size() == 2 + 1 + 2


class TestDerivedGraphs:
    def test_subgraph_induced(self, small_graph):
        sub = small_graph.subgraph(["a0", "b0", "c0"])
        assert sub.num_nodes == 3
        assert sub.has_edge("a0", "b0", "knows")
        assert sub.has_edge("a0", "c0", "likes")
        assert not sub.has_edge("b0", "b1")

    def test_subgraph_copies_attrs(self, small_graph):
        sub = small_graph.subgraph(["a0"])
        sub.set_attr("a0", "x", 99)
        assert small_graph.attrs("a0")["x"] == 1

    def test_copy_equals_original_structure(self, small_graph):
        clone = small_graph.copy()
        assert clone.num_nodes == small_graph.num_nodes
        assert clone.num_edges == small_graph.num_edges
        assert clone.nodes_with_label("a") == {"a0", "a1"}

    def test_disjoint_union_remaps(self, small_graph):
        target = PropertyGraph()
        target.add_node("z", node_id="keep")
        mapping = target.disjoint_union(small_graph)
        assert target.num_nodes == 1 + small_graph.num_nodes
        assert set(mapping) == set(small_graph.nodes())
        assert target.has_edge(mapping["a0"], mapping["b0"], "knows")
