"""Shared fixtures: small graphs and the paper's example GFD sets."""

from __future__ import annotations

import pytest

from repro import PropertyGraph, parse_gfds


@pytest.fixture
def small_graph() -> PropertyGraph:
    """A 5-node labeled graph with attributes used across matcher tests.

    a0 -knows-> b0 -knows-> b1 ; a0 -likes-> c0 ; b1 -knows-> a1
    """
    graph = PropertyGraph()
    a0 = graph.add_node("a", {"x": 1}, node_id="a0")
    b0 = graph.add_node("b", {"x": 2}, node_id="b0")
    b1 = graph.add_node("b", {}, node_id="b1")
    c0 = graph.add_node("c", {"y": "hello"}, node_id="c0")
    a1 = graph.add_node("a", {}, node_id="a1")
    graph.add_edge(a0, b0, "knows")
    graph.add_edge(b0, b1, "knows")
    graph.add_edge(a0, c0, "likes")
    graph.add_edge(b1, a1, "knows")
    return graph


@pytest.fixture
def example2_conflicting():
    """Paper Example 2: phi5/phi6 — same pattern, contradictory constants."""
    return parse_gfds(
        """
        gfd phi5 { x: _; then x.A = 0; }
        gfd phi6 { x: _; then x.A = 1; }
        """
    )


@pytest.fixture
def example2_cross_pattern():
    """Paper Example 2 (second half): phi7/phi8 on patterns Q6/Q7."""
    return parse_gfds(
        """
        gfd phi7 {
            x: a; y: b; z: b; w: c;
            x -[p]-> y; x -[p]-> z; x -[p]-> w;
            then x.A = 0, y.B = 1;
        }
        gfd phi8 {
            x: a; y: b; z: c; w: c;
            x -[p]-> y; x -[p]-> z; x -[p]-> w;
            when y.B = 1;
            then x.A = 1;
        }
        """
    )


@pytest.fixture
def example4_sigma():
    """Paper Example 4: phi7/phi9/phi10 — unsatisfiable via the inverted
    index re-check chain."""
    return parse_gfds(
        """
        gfd phi7 {
            x: a; y: b; z: b; w: c;
            x -[p]-> y; x -[p]-> z; x -[p]-> w;
            then x.A = 0, y.B = 1;
        }
        gfd phi9 {
            x: a; y: b; z: b; w: c;
            x -[p]-> y; x -[p]-> z; x -[p]-> w;
            when y.B = 1;
            then w.C = 1;
        }
        gfd phi10 {
            x: a; y: b; z: c; w: c;
            x -[p]-> y; x -[p]-> z; x -[p]-> w;
            when w.C = 1;
            then x.A = 1;
        }
        """
    )


@pytest.fixture
def example8_sigma():
    """Paper Example 8: phi11/phi12 (implication premises)."""
    return parse_gfds(
        """
        gfd phi11 { x: a; y: b; x -[p]-> y; then x.A = 1; }
        gfd phi12 { x: a; y: c; x -[p]-> y; when x.A = 1, y.B = 2; then y.C = 2; }
        """
    )


@pytest.fixture
def example8_phi13():
    return parse_gfds(
        """
        gfd phi13 {
            x: a; y: b; z: c; w: c;
            x -[p]-> y; x -[p]-> z; x -[p]-> w;
            when z.B = 2;
            then z.C = 2;
        }
        """
    )[0]


@pytest.fixture
def example8_phi14():
    return parse_gfds(
        """
        gfd phi14 {
            x: a; y: b; z: c; w: c;
            x -[p]-> y; x -[p]-> z; x -[p]-> w;
            when x.A = 0;
            then z.C = 2;
        }
        """
    )[0]
