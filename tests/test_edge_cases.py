"""Edge-case and failure-injection tests across the stack."""

import pytest

from repro import PropertyGraph, parse_gfds, seq_imp, seq_sat
from repro.errors import GFDError
from repro.gfd import make_gfd, make_pattern
from repro.gfd.literals import eq as lit_eq
from repro.matching.homomorphism import MatcherRun, find_homomorphisms
from repro.parallel import RuntimeConfig, par_imp, par_sat


class TestEmptyInputs:
    def test_empty_sigma_everywhere(self):
        assert seq_sat([]).satisfiable
        assert par_sat([], RuntimeConfig(workers=2)).satisfiable
        phi = parse_gfds("gfd p { x: a; then x.A = 1; }")[0]
        assert not seq_imp([], phi).implied
        assert not par_imp([], phi, RuntimeConfig(workers=2)).implied

    def test_matching_into_empty_graph(self):
        pattern = make_pattern({"x": "a"})
        assert find_homomorphisms(pattern, PropertyGraph()) == []

    def test_wildcard_into_empty_graph(self):
        pattern = make_pattern({"x": "_"})
        assert find_homomorphisms(pattern, PropertyGraph()) == []


class TestPatternLargerThanGraph:
    def test_injective_impossible_but_hom_possible(self):
        """A 3-variable pattern can match a 1-node graph homomorphically."""
        graph = PropertyGraph()
        v = graph.add_node("a")
        graph.add_edge(v, v, "e")
        pattern = make_pattern(
            {"x": "a", "y": "a", "z": "a"},
            [("x", "y", "e"), ("y", "z", "e")],
        )
        matches = find_homomorphisms(pattern, graph)
        assert matches == [{"x": v, "y": v, "z": v}]

    def test_no_self_loop_no_match(self):
        graph = PropertyGraph()
        graph.add_node("a")
        pattern = make_pattern({"x": "a", "y": "a"}, [("x", "y", "e")])
        assert find_homomorphisms(pattern, graph) == []


class TestSelfLoopPatterns:
    def test_self_loop_pattern_in_canonical_graph(self):
        sigma = parse_gfds(
            """
            gfd loop { x: a; x -[self]-> x; then x.A = 1; }
            gfd probe { y: a; y -[self]-> y; when y.A = 1; then y.A = 2; }
            """
        )
        assert not seq_sat(sigma).satisfiable

    def test_self_loop_satisfiable_alone(self):
        sigma = parse_gfds("gfd loop { x: a; x -[self]-> x; then x.A = 1; }")
        assert seq_sat(sigma).satisfiable


class TestAttributesOnBothSides:
    def test_same_attribute_in_x_and_y(self):
        # x.A = 1 -> x.A = 1 is a tautology; never a conflict.
        sigma = parse_gfds("gfd t { x: a; when x.A = 1; then x.A = 1; }")
        assert seq_sat(sigma).satisfiable

    def test_antecedent_forced_by_own_consequent_of_other_copy(self):
        # g1 forces A=1 on all 'a' nodes; g2's antecedent then fires and its
        # consequent clashes with g1's on g2's own copy.
        sigma = parse_gfds(
            """
            gfd g1 { x: a; then x.A = 1; }
            gfd g2 { x: a; when x.A = 1; then x.B = 1, x.B = 2; }
            """
        )
        assert not seq_sat(sigma).satisfiable

    def test_cross_attribute_chain_via_variable_literal(self):
        sigma = parse_gfds(
            """
            gfd g1 { x: a; then x.A = x.B; }
            gfd g2 { x: a; then x.B = x.C; }
            gfd g3 { x: a; then x.A = 1; }
            gfd g4 { x: a; when x.C = 1; then x.D = 1, x.D = 2; }
            """
        )
        # A=B=C and A=1 force C=1, firing g4's contradictory consequent.
        assert not seq_sat(sigma).satisfiable


class TestValueTypes:
    def test_float_and_int_constants_distinct_classes(self):
        # 1 == 1.0 in Python: the library treats them as the same constant.
        sigma = parse_gfds(
            """
            gfd g1 { x: a; then x.A = 1; }
            gfd g2 { x: a; then x.A = 1.0; }
            """
        )
        assert seq_sat(sigma).satisfiable

    def test_string_vs_int_conflict(self):
        sigma = parse_gfds(
            """
            gfd g1 { x: a; then x.A = 1; }
            gfd g2 { x: a; then x.A = "1"; }
            """
        )
        assert not seq_sat(sigma).satisfiable

    def test_boolean_constants(self):
        sigma = parse_gfds(
            """
            gfd g1 { x: a; then x.A = true; }
            gfd g2 { x: a; then x.A = false; }
            """
        )
        assert not seq_sat(sigma).satisfiable


class TestDuplicateNamesAndValidation:
    def test_duplicate_names_rejected_in_par_sat(self):
        sigma = parse_gfds("gfd same { x: a; then x.A = 1; }") + parse_gfds(
            "gfd same { x: b; then x.B = 1; }"
        )
        with pytest.raises(GFDError):
            par_sat(sigma, RuntimeConfig(workers=2))

    def test_trivial_gfds_are_harmless(self):
        sigma = parse_gfds(
            """
            gfd trivial { x: a; when x.A = 1; }
            gfd real { x: a; then x.A = 2; }
            """
        )
        assert seq_sat(sigma).satisfiable
        assert par_sat(sigma, RuntimeConfig(workers=2)).satisfiable


class TestMatcherResumption:
    def test_generator_can_be_partially_consumed_and_resumed(self, small_graph):
        pattern = make_pattern({"x": "_"})
        run = MatcherRun(pattern, small_graph)
        iterator = run.matches()
        first = next(iterator)
        assert first
        remaining = list(run.matches())
        total = 1 + len(remaining)
        assert total == small_graph.num_nodes

    def test_exhausted_run_yields_nothing(self, small_graph):
        pattern = make_pattern({"x": "a"})
        run = MatcherRun(pattern, small_graph)
        assert len(list(run.matches())) == 2
        assert list(run.matches()) == []


class TestImplicationCornerCases:
    def test_phi_with_disconnected_pattern(self):
        pattern = make_pattern({"x": "a", "y": "b"})
        phi = make_gfd(pattern, [lit_eq("x", "A", 1)], [lit_eq("y", "B", 2)])
        sigma = parse_gfds("gfd s { u: b; then u.B = 2; }")
        assert seq_imp(sigma, phi).implied
        assert par_imp(sigma, phi, RuntimeConfig(workers=2)).implied

    def test_sigma_with_wildcard_applies_inside_gxq(self):
        sigma = parse_gfds("gfd w { z: _; then z.T = 9; }")
        phi = parse_gfds("gfd p { x: a; then x.T = 9; }")[0]
        assert seq_imp(sigma, phi).implied

    def test_phi_needs_attribute_on_specific_node(self):
        sigma = parse_gfds("gfd s { u: a; v: b; u -[e]-> v; then u.T = 1; }")
        # phi's pattern has no edge, so sigma's pattern cannot match G^X_Q.
        phi = parse_gfds("gfd p { x: a; then x.T = 1; }")[0]
        assert not seq_imp(sigma, phi).implied
