"""Tests for the gfd-reason command-line interface."""

import json

import pytest

from repro.cli import EXIT_NEGATIVE, load_rules, main
from repro.gfd.parser import dump_gfds, parse_gfds
from repro.graph.io import dump_graph
from repro import PropertyGraph

SAT_RULES = """
gfd g1 { x: a; then x.A = 1; }
gfd g2 { x: b; then x.B = 2; }
"""

UNSAT_RULES = """
gfd g1 { x: a; then x.A = 1; }
gfd g2 { x: a; then x.A = 2; }
"""

REDUNDANT_RULES = """
gfd base  { x: a; when x.A = 1; then x.B = 2; }
gfd chain { x: a; when x.B = 2; then x.C = 3; }
gfd extra { x: a; when x.A = 1; then x.C = 3; }
"""


@pytest.fixture
def sat_file(tmp_path):
    path = tmp_path / "rules.gfd"
    path.write_text(SAT_RULES)
    return str(path)


@pytest.fixture
def unsat_file(tmp_path):
    path = tmp_path / "bad.gfd"
    path.write_text(UNSAT_RULES)
    return str(path)


class TestLoadRules:
    def test_dsl_file(self, sat_file):
        assert [g.name for g in load_rules(sat_file)] == ["g1", "g2"]

    def test_json_file(self, tmp_path):
        path = tmp_path / "rules.json"
        dump_gfds(parse_gfds(SAT_RULES), path)
        assert len(load_rules(str(path))) == 2

    def test_missing_file(self):
        assert main(["sat", "/nonexistent/rules.gfd"]) == 2


class TestSat:
    def test_satisfiable_exit_zero(self, sat_file, capsys):
        assert main(["sat", sat_file]) == 0
        assert "SATISFIABLE" in capsys.readouterr().out

    def test_unsatisfiable_exit_negative(self, unsat_file, capsys):
        assert main(["sat", unsat_file]) == EXIT_NEGATIVE
        assert "UNSATISFIABLE" in capsys.readouterr().out

    def test_parallel_mode(self, unsat_file, capsys):
        assert main(["sat", unsat_file, "--parallel", "3"]) == EXIT_NEGATIVE
        out = capsys.readouterr().out
        assert "units=" in out

    def test_parallel_backend_selector(self, unsat_file, sat_file, capsys):
        for backend in ("threaded", "process"):
            assert (
                main(["sat", unsat_file, "--parallel", "2", "--backend", backend])
                == EXIT_NEGATIVE
            )
            assert "UNSATISFIABLE" in capsys.readouterr().out
        assert main(["sat", sat_file, "--parallel", "2", "--backend", "process"]) == 0
        assert "SATISFIABLE" in capsys.readouterr().out

    def test_scheduler_flags(self, sat_file, capsys):
        assert main(["sat", sat_file, "--parallel", "2", "--batch-size", "3"]) == 0
        assert main(["sat", sat_file, "--parallel", "2", "--no-affinity"]) == 0
        capsys.readouterr()

    def test_ruleset_plan_flag(self, sat_file, unsat_file, capsys):
        assert main(["sat", sat_file, "--ruleset-plan"]) == 0
        assert main(["sat", unsat_file, "--ruleset-plan"]) == EXIT_NEGATIVE
        assert main(["sat", sat_file, "--parallel", "2", "--ruleset-plan"]) == 0
        capsys.readouterr()

    def test_invalid_batch_size_rejected(self, sat_file, capsys):
        # RuntimeConfigError is a ReproError: a clean exit-2, no traceback.
        assert main(["sat", sat_file, "--parallel", "2", "--batch-size", "0"]) == 2
        assert "batch_size" in capsys.readouterr().err

    def test_unknown_backend_rejected(self, sat_file):
        with pytest.raises(SystemExit):
            main(["sat", sat_file, "--parallel", "2", "--backend", "quantum"])

    def test_explain_flag(self, unsat_file, capsys):
        assert main(["sat", unsat_file, "--explain"]) == EXIT_NEGATIVE
        out = capsys.readouterr().out
        assert "derivation of the conflict" in out
        assert "rules involved" in out

    def test_explain_with_parallel(self, unsat_file, capsys):
        assert main(["sat", unsat_file, "--parallel", "2", "--explain"]) == EXIT_NEGATIVE
        assert "derivation" in capsys.readouterr().out


class TestImp:
    def test_implied(self, tmp_path, capsys):
        path = tmp_path / "rules.gfd"
        path.write_text(REDUNDANT_RULES)
        assert main(["imp", str(path), "--phi", "extra"]) == 0
        assert "IMPLIED" in capsys.readouterr().out

    def test_not_implied(self, sat_file, capsys):
        assert main(["imp", sat_file, "--phi", "g2"]) == EXIT_NEGATIVE
        assert "NOT IMPLIED" in capsys.readouterr().out

    def test_default_phi_is_last(self, tmp_path):
        path = tmp_path / "rules.gfd"
        path.write_text(REDUNDANT_RULES)
        assert main(["imp", str(path)]) == 0

    def test_unknown_phi(self, sat_file):
        assert main(["imp", sat_file, "--phi", "ghost"]) == 2

    def test_single_rule_rejected(self, tmp_path):
        path = tmp_path / "one.gfd"
        path.write_text("gfd only { x: a; then x.A = 1; }")
        assert main(["imp", str(path)]) == 2

    def test_parallel_mode(self, tmp_path):
        path = tmp_path / "rules.gfd"
        path.write_text(REDUNDANT_RULES)
        assert main(["imp", str(path), "--phi", "extra", "--parallel", "2"]) == 0

    def test_parallel_process_backend(self, tmp_path):
        path = tmp_path / "rules.gfd"
        path.write_text(REDUNDANT_RULES)
        assert (
            main(
                ["imp", str(path), "--phi", "extra", "--parallel", "2",
                 "--backend", "process"]
            )
            == 0
        )


class TestDetect:
    @pytest.fixture
    def graph_file(self, tmp_path):
        graph = PropertyGraph()
        graph.add_node("a", {"A": 1, "B": 99})
        graph.add_node("a", {"A": 0})
        path = tmp_path / "graph.json"
        dump_graph(graph, path)
        return str(path)

    def test_violations_reported(self, graph_file, tmp_path, capsys):
        rules = tmp_path / "rules.gfd"
        rules.write_text("gfd g { x: a; when x.A = 1; then x.B = 2; }")
        assert main(["detect", graph_file, str(rules)]) == EXIT_NEGATIVE
        assert "violated" in capsys.readouterr().out

    def test_ruleset_plan_same_violations(self, graph_file, tmp_path, capsys):
        rules = tmp_path / "rules.gfd"
        rules.write_text("gfd g { x: a; when x.A = 1; then x.B = 2; }")
        assert main(["detect", graph_file, str(rules)]) == EXIT_NEGATIVE
        per_rule = capsys.readouterr().out
        assert main(["detect", graph_file, str(rules), "--ruleset-plan"]) == EXIT_NEGATIVE
        assert capsys.readouterr().out == per_rule

    def test_clean_graph(self, graph_file, tmp_path, capsys):
        rules = tmp_path / "rules.gfd"
        rules.write_text("gfd g { x: a; when x.A = 1; then x.B = 99; }")
        assert main(["detect", graph_file, str(rules)]) == 0


class TestCover:
    def test_cover_removes_and_writes(self, tmp_path, capsys):
        rules = tmp_path / "rules.gfd"
        rules.write_text(REDUNDANT_RULES)
        out = tmp_path / "cover.json"
        assert main(["cover", str(rules), "-o", str(out)]) == 0
        assert "removed extra" in capsys.readouterr().out
        assert len(json.loads(out.read_text())) == 2


class TestParseAndBench:
    def test_parse_round_trip(self, sat_file, capsys):
        assert main(["parse", sat_file]) == 0
        out = capsys.readouterr().out
        assert "gfd g1" in out

    def test_parse_error_exit(self, tmp_path):
        path = tmp_path / "broken.gfd"
        path.write_text("this is not a gfd file")
        assert main(["parse", str(path)]) == 2

    def test_bench_unknown_figure(self):
        assert main(["bench", "fig99"]) == 2

    def test_bench_runs_small_figure(self, capsys, monkeypatch):
        # Patch the registry to a fast stand-in so the test stays quick.
        from repro.bench import experiments
        from repro.bench.harness import Experiment

        def tiny():
            experiment = Experiment("figT", "tiny", "x")
            experiment.series_named("A").add(1, 0.5)
            return experiment

        monkeypatch.setitem(experiments.ALL_EXPERIMENTS, "figT", tiny)
        assert main(["bench", "figT"]) == 0
        assert "figT" in capsys.readouterr().out
