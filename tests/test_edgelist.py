"""Tests for the node/edge-list text format."""

import pytest

from repro.errors import ParseError
from repro.graph.edgelist import (
    DEFAULT_LABEL,
    dump_edgelist,
    dumps_edgelist,
    load_edgelist,
    loads_edgelist,
)


SAMPLE = """
# a small knowledge graph
N airport place name="Bamburi airport" elevation=12
N town    place name=Bamburi popular=true
E airport town locateIn
E town airport partOf
"""


class TestLoading:
    def test_nodes_and_attrs(self):
        graph = loads_edgelist(SAMPLE)
        assert graph.num_nodes == 2
        assert graph.label("airport") == "place"
        assert graph.attrs("airport") == {"name": "Bamburi airport", "elevation": 12}
        assert graph.attrs("town")["popular"] is True

    def test_edges(self):
        graph = loads_edgelist(SAMPLE)
        assert graph.has_edge("airport", "town", "locateIn")
        assert graph.has_edge("town", "airport", "partOf")

    def test_forward_reference_and_default_label(self):
        graph = loads_edgelist("E a b knows\nN a person\n")
        assert graph.label("a") == "person"
        assert graph.label("b") == DEFAULT_LABEL

    def test_comments_and_blank_lines(self):
        graph = loads_edgelist("\n# comment only\n\nN a t\n")
        assert graph.num_nodes == 1

    def test_value_types(self):
        graph = loads_edgelist('N a t i=3 f=2.5 s=word q="two words" b=false\n')
        attrs = graph.attrs("a")
        assert attrs == {"i": 3, "f": 2.5, "s": "word", "q": "two words", "b": False}


class TestErrors:
    def test_short_node_line(self):
        with pytest.raises(ParseError):
            loads_edgelist("N only_id\n")

    def test_bad_attr_token(self):
        with pytest.raises(ParseError):
            loads_edgelist("N a t not_an_attr\n")

    def test_duplicate_node(self):
        with pytest.raises(ParseError):
            loads_edgelist("N a t\nN a t\n")

    def test_bad_edge_arity(self):
        with pytest.raises(ParseError):
            loads_edgelist("E a b\n")

    def test_unknown_kind(self):
        with pytest.raises(ParseError):
            loads_edgelist("X a b c\n")

    def test_unbalanced_quotes(self):
        with pytest.raises(ParseError):
            loads_edgelist('N a t x="oops\n')


class TestRoundTrip:
    def test_string_round_trip(self, small_graph):
        restored = loads_edgelist(dumps_edgelist(small_graph))
        assert restored.num_nodes == small_graph.num_nodes
        assert restored.num_edges == small_graph.num_edges
        assert restored.attrs("a0") == small_graph.attrs("a0")
        assert restored.has_edge("a0", "b0", "knows")

    def test_file_round_trip(self, small_graph, tmp_path):
        path = tmp_path / "graph.el"
        dump_edgelist(small_graph, path)
        restored = load_edgelist(path)
        assert restored.edge_label_set() == small_graph.edge_label_set()

    def test_quoted_values_round_trip(self):
        graph = loads_edgelist('N a t msg="say \\"hi\\" now"\n')
        restored = loads_edgelist(dumps_edgelist(graph))
        assert restored.attrs("a")["msg"] == 'say "hi" now'

    def test_end_to_end_with_detection(self, tmp_path):
        """Edge list -> graph -> violation detection pipeline."""
        from repro import parse_gfds
        from repro.reasoning import detect_errors

        path = tmp_path / "kg.el"
        path.write_text(SAMPLE)
        graph = load_edgelist(path)
        rules = parse_gfds(
            """
            gfd phi1 {
                x: place; y: place;
                x -[locateIn]-> y; y -[partOf]-> x;
                then false;
            }
            """
        )
        violations = detect_errors(graph, rules)
        assert len(violations) == 1
