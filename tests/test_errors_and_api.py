"""Public-API surface tests: exception hierarchy, exports, __version__."""

import pytest

import repro
from repro.errors import (
    BudgetExceeded,
    GFDError,
    GraphError,
    LiteralError,
    ParseError,
    PatternError,
    ReproError,
    RuntimeConfigError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [GraphError, PatternError, LiteralError, GFDError, ParseError,
         BudgetExceeded, RuntimeConfigError],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)
        assert issubclass(exc_type, Exception)

    def test_parse_error_line_prefix(self):
        error = ParseError("bad token", line=7)
        assert "line 7" in str(error)
        assert error.line == 7

    def test_parse_error_without_line(self):
        error = ParseError("bad document")
        assert error.line is None
        assert "line" not in str(error)

    def test_single_catch_for_library_errors(self):
        """Callers can catch ReproError alone for any library failure."""
        from repro import PropertyGraph

        with pytest.raises(ReproError):
            PropertyGraph().node("ghost")
        with pytest.raises(ReproError):
            repro.parse_gfds("not a gfd")


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_names_resolve(self):
        import repro.chase
        import repro.extensions
        import repro.gfd
        import repro.graph
        import repro.matching  # noqa: F401
        import repro.parallel
        import repro.reasoning

        for module in (
            repro.graph,
            repro.gfd,
            repro.reasoning,
            repro.parallel,
            repro.chase,
            repro.extensions,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_convenience_literal_builders(self):
        literal = repro.lit_eq("x", "A", 1)
        assert literal.value == 1
        var_literal = repro.lit_vareq("x", "A", "y", "B")
        assert var_literal.variables() == {"x", "y"}


class TestDocstrings:
    def test_public_modules_documented(self):
        import importlib

        modules = [
            "repro",
            "repro.graph.graph",
            "repro.gfd.gfd",
            "repro.gfd.parser",
            "repro.eq.eqrelation",
            "repro.matching.homomorphism",
            "repro.reasoning.seqsat",
            "repro.reasoning.seqimp",
            "repro.parallel.engine",
            "repro.parallel.parsat",
            "repro.parallel.parimp",
            "repro.chase.gfd_chase",
            "repro.extensions.predicates",
            "repro.extensions.keys",
            "repro.bench.experiments",
            "repro.cli",
        ]
        for name in modules:
            module = importlib.import_module(name)
            assert module.__doc__ and len(module.__doc__) > 40, name

    def test_core_entry_points_documented(self):
        from repro import seq_imp, seq_sat
        from repro.parallel import par_imp, par_sat

        for fn in (seq_sat, seq_imp, par_sat, par_imp):
            assert fn.__doc__
