"""Unit tests for graph patterns."""

import pytest

from repro.errors import PatternError
from repro.gfd.pattern import Pattern, make_pattern
from repro.graph.elements import WILDCARD


class TestConstruction:
    def test_duplicate_var_rejected(self):
        pattern = Pattern()
        pattern.add_var("x", "a")
        with pytest.raises(PatternError):
            pattern.add_var("x", "b")

    def test_empty_name_rejected(self):
        with pytest.raises(PatternError):
            Pattern().add_var("", "a")

    def test_edge_requires_declared_vars(self):
        pattern = Pattern()
        pattern.add_var("x", "a")
        with pytest.raises(PatternError):
            pattern.add_edge("x", "y", "e")

    def test_duplicate_edge_ignored(self):
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "e"), ("x", "y", "e")])
        assert pattern.num_edges == 1

    def test_freeze_requires_nonempty(self):
        with pytest.raises(PatternError):
            Pattern().freeze()

    def test_frozen_is_immutable(self):
        pattern = make_pattern({"x": "a"})
        with pytest.raises(PatternError):
            pattern.add_var("y", "b")
        with pytest.raises(PatternError):
            pattern.add_edge("x", "x", "e")

    def test_freeze_idempotent(self):
        pattern = make_pattern({"x": "a"})
        assert pattern.freeze() is pattern


class TestAccessors:
    def test_variables_in_declaration_order(self):
        pattern = make_pattern({"b": "B", "a": "A"})
        assert pattern.variables == ("b", "a")

    def test_label_of_unknown_raises(self):
        pattern = make_pattern({"x": "a"})
        with pytest.raises(PatternError):
            pattern.label_of("y")

    def test_wildcard_detection(self):
        pattern = make_pattern({"x": WILDCARD, "y": "a"})
        assert pattern.is_wildcard_var("x")
        assert not pattern.is_wildcard_var("y")

    def test_size(self):
        pattern = make_pattern({"x": "a", "y": "b"}, [("x", "y", "e")])
        assert pattern.size() == 3

    def test_edges_between_and_directions(self):
        pattern = make_pattern(
            {"x": "a", "y": "b"}, [("x", "y", "e1"), ("y", "x", "e2")]
        )
        assert [e.label for e in pattern.edges_between("x", "y")] == ["e1"]
        assert [e.label for e in pattern.out_edges("y")] == ["e2"]
        assert [e.label for e in pattern.in_edges("y")] == ["e1"]


class TestConnectivity:
    def test_components(self):
        pattern = make_pattern(
            {"x": "a", "y": "b", "z": "c"}, [("x", "y", "e")]
        )
        components = pattern.components
        assert len(components) == 2
        assert frozenset({"x", "y"}) in components
        assert frozenset({"z"}) in components
        assert not pattern.is_connected()

    def test_component_of(self):
        pattern = make_pattern({"x": "a", "y": "b"}, [])
        assert pattern.component_of("x") == frozenset({"x"})
        with pytest.raises(PatternError):
            pattern.component_of("ghost")

    def test_connected_cycle(self):
        pattern = make_pattern(
            {"x": "a", "y": "b"}, [("x", "y", "e"), ("y", "x", "f")]
        )
        assert pattern.is_connected()

    def test_eccentricity_path(self):
        pattern = make_pattern(
            {"x": "a", "y": "b", "z": "c"}, [("x", "y", "e"), ("y", "z", "e")]
        )
        assert pattern.eccentricity("x") == 2
        assert pattern.eccentricity("y") == 1

    def test_pivot_prefers_selective_then_central(self):
        pattern = make_pattern(
            {"w": WILDCARD, "mid": "a", "end": "b"},
            [("w", "mid", "e"), ("mid", "end", "e")],
        )
        candidates = pattern.pivot_candidates()
        # Non-wildcards first; 'mid' has smaller eccentricity than 'end'.
        assert candidates[0] == "mid"
        assert candidates[-1] == "w"


class TestEquality:
    def test_structurally_equal_patterns(self):
        a = make_pattern({"x": "a", "y": "b"}, [("x", "y", "e")])
        b = make_pattern({"y": "b", "x": "a"}, [("x", "y", "e")])
        assert a == b
        assert hash(a) == hash(b)

    def test_different_labels_differ(self):
        a = make_pattern({"x": "a"})
        b = make_pattern({"x": "b"})
        assert a != b
