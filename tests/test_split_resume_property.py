"""Property tests: splitting + resuming reproduces the unsplit match multiset.

Work-unit splitting (paper, Example 6) strips unexplored sibling branches
out of a running search; the resumed units, together with the local
remainder, must enumerate *exactly* the matches of an unsplit run — no
duplicates, no losses — regardless of when and how often splits happen.
"""

import random

import pytest

from repro import PropertyGraph
from repro.gfd.pattern import make_pattern
from repro.matching.homomorphism import MatcherRun


def match_key(match):
    return tuple(sorted(match.items()))


def random_instance(seed):
    rng = random.Random(seed)
    graph = PropertyGraph()
    labels = ["a", "b", "c"][: rng.randint(1, 3)]
    elabels = ["e", "f"][: rng.randint(1, 2)]
    nodes = [graph.add_node(rng.choice(labels)) for _ in range(rng.randint(3, 9))]
    for _ in range(rng.randint(4, 24)):
        graph.add_edge(rng.choice(nodes), rng.choice(nodes), rng.choice(elabels))
    num_vars = rng.randint(2, 4)
    pvars = {f"v{i}": rng.choice(labels + ["_"]) for i in range(num_vars)}
    pedges = []
    for i in range(1, num_vars):  # connected spine + extra chords
        pedges.append((f"v{rng.randrange(i)}", f"v{i}", rng.choice(elabels + ["_"])))
    for _ in range(rng.randint(0, 2)):
        pedges.append(
            (
                f"v{rng.randrange(num_vars)}",
                f"v{rng.randrange(num_vars)}",
                rng.choice(elabels + ["_"]),
            )
        )
    return rng, graph, make_pattern(pvars, pedges), nodes


def run_with_splits(pattern, graph, rng, split_every, max_units, **kwargs):
    """Drain a run, splitting pseudo-randomly; resume every emitted unit
    (which may itself split again) until the queue is dry."""
    collected = []
    queue = [dict(kwargs.get("preassigned") or {})]
    base_kwargs = {k: v for k, v in kwargs.items() if k != "preassigned"}
    while queue:
        prefix = queue.pop()
        run = MatcherRun(pattern, graph, preassigned=prefix, **base_kwargs)
        produced = 0
        for match in run.matches():
            collected.append(match_key(match))
            produced += 1
            if produced % split_every == 0 and run.can_split():
                queue.extend(run.split(max_units=max_units))
    return sorted(collected)


@pytest.mark.parametrize("seed", range(40))
def test_split_resume_matches_unsplit_multiset(seed):
    rng, graph, pattern, nodes = random_instance(seed)
    reference = sorted(
        match_key(m) for m in MatcherRun(pattern, graph).matches()
    )
    split_every = rng.randint(1, 4)
    max_units = rng.choice([None, 1, 2, 5])
    actual = run_with_splits(pattern, graph, rng, split_every, max_units)
    assert actual == reference  # multiset equality: no dupes, no losses


@pytest.mark.parametrize("seed", range(40, 60))
def test_split_resume_with_pivot_and_restrictions(seed):
    rng, graph, pattern, nodes = random_instance(seed)
    variables = list(pattern.variables)
    preassigned = {variables[0]: rng.choice(nodes)}
    allowed = set(rng.sample(nodes, rng.randint(1, len(nodes))))
    candidate_sets = {
        variables[-1]: set(rng.sample(nodes, rng.randint(1, len(nodes))))
    }
    kwargs = dict(
        preassigned=preassigned, allowed_nodes=allowed, candidate_sets=candidate_sets
    )
    reference = sorted(
        match_key(m) for m in MatcherRun(pattern, graph, **kwargs).matches()
    )
    actual = run_with_splits(pattern, graph, rng, rng.randint(1, 3), 2, **kwargs)
    assert actual == reference


def test_resumed_units_preserve_prefix_bindings():
    graph = PropertyGraph()
    nodes = [graph.add_node("v") for _ in range(5)]
    for a in nodes:
        for b in nodes:
            if a != b:
                graph.add_edge(a, b, "e")
    pattern = make_pattern(
        {"x": "v", "y": "v", "z": "v"}, [("x", "y", "e"), ("y", "z", "e")]
    )
    run = MatcherRun(pattern, graph, preassigned={"x": 0})
    next(run.matches())
    units = run.split()
    assert units
    for unit in units:
        assert unit["x"] == 0  # the pivot binding survives the split
        assert set(unit) > {"x"}  # plus at least the split level's binding
