"""Small-scale smoke runs of the parallel-scalability experiment drivers.

The full sweeps live in ``benchmarks/`` and EXPERIMENTS.md; here we only
check that each driver assembles complete series with scaled-down
parameters and that the headline ordering holds at the smallest scale.
"""

import pytest

from repro.bench.experiments import (
    fig6ab_sat_varying_p,
    fig6cd_imp_varying_p,
    fig6k_sat_varying_ttl,
    fig6l_imp_varying_ttl,
)


@pytest.mark.parametrize("dataset,figure", [("dbpedia", "fig6a"), ("yago2", "fig6b")])
def test_fig6ab_small_sweep(dataset, figure):
    experiment = fig6ab_sat_varying_p(dataset, p_sweep=(2, 8))
    assert experiment.experiment_id == figure
    parsat = experiment.series_named("ParSat")
    assert parsat.value_at(2) > parsat.value_at(8)
    for name in ("ParSatnp", "ParSatnb"):
        series = experiment.series_named(name)
        assert len(series.points) == 2


def test_fig6cd_small_sweep():
    experiment = fig6cd_imp_varying_p("dbpedia", p_sweep=(2, 8))
    parimp = experiment.series_named("ParImp")
    assert parimp.value_at(2) > parimp.value_at(8)
    # np is never faster than the pipelined version.
    np_series = experiment.series_named("ParImpnp")
    for p in (2, 8):
        assert np_series.value_at(p) >= parimp.value_at(p)


def test_fig6kl_small_sweep():
    sat_experiment = fig6k_sat_varying_ttl(ttl_sweep=(0.5, 8.0))
    imp_experiment = fig6l_imp_varying_ttl(ttl_sweep=(0.5, 8.0))
    for experiment, algorithm in ((sat_experiment, "ParSat"), (imp_experiment, "ParImp")):
        series = experiment.series_named(algorithm)
        assert len(series.points) == 2
        assert all(seconds > 0 for _, seconds in series.points)


def test_render_of_driver_output():
    experiment = fig6ab_sat_varying_p("dbpedia", p_sweep=(2,))
    text = experiment.render()
    assert "fig6a" in text and "ParSat" in text
