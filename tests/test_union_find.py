"""Unit and property tests for the union-find."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eq.union_find import UnionFind


class TestBasics:
    def test_add_and_contains(self):
        uf = UnionFind()
        assert uf.add("a")
        assert not uf.add("a")
        assert "a" in uf
        assert "b" not in uf
        assert len(uf) == 1

    def test_find_singleton(self):
        uf = UnionFind()
        uf.add("a")
        assert uf.find("a") == "a"

    def test_union_merges(self):
        uf = UnionFind()
        root, absorbed = uf.union("a", "b")
        assert uf.connected("a", "b")
        assert absorbed is not None
        assert root != absorbed
        assert uf.members("a") == {"a", "b"}

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union("a", "b")
        root, absorbed = uf.union("a", "b")
        assert absorbed is None
        assert uf.num_classes() == 1

    def test_connected_unknown_items(self):
        uf = UnionFind()
        uf.add("a")
        assert not uf.connected("a", "ghost")
        assert not uf.connected("ghost", "phantom")

    def test_classes_are_copies(self):
        uf = UnionFind()
        uf.union("a", "b")
        classes = uf.classes()
        classes[0].add("evil")
        assert uf.members("a") == {"a", "b"}

    def test_copy_independent(self):
        uf = UnionFind()
        uf.union("a", "b")
        clone = uf.copy()
        clone.union("a", "c")
        assert not uf.connected("a", "c")
        assert clone.connected("a", "c")


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)),
        min_size=0,
        max_size=50,
    )
)
def test_union_find_matches_naive_partition(pairs):
    """Property: union-find agrees with a naive partition refinement."""
    uf = UnionFind()
    naive = {}  # item -> set (shared object per class)

    def naive_add(item):
        if item not in naive:
            naive[item] = {item}

    for a, b in pairs:
        uf.union(a, b)
        naive_add(a)
        naive_add(b)
        if naive[a] is not naive[b]:
            merged = naive[a] | naive[b]
            for member in merged:
                naive[member] = merged

    for a in naive:
        for b in naive:
            assert uf.connected(a, b) == (naive[a] is naive[b])
        assert uf.members(a) == naive[a]

    # Class count agrees too.
    distinct = {id(cls) for cls in naive.values()}
    assert uf.num_classes() == len(distinct)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 10)),
        min_size=1,
        max_size=30,
    )
)
def test_members_partition_invariant(pairs):
    """Property: member sets partition the registered items."""
    uf = UnionFind()
    for a, b in pairs:
        uf.union(a, b)
    seen = set()
    for members in uf.classes():
        assert not (seen & members)
        seen |= members
    all_items = {item for pair in pairs for item in pair}
    assert seen == all_items
