"""Property tests: work units partition the match space, and splitting at
arbitrary points preserves it — the foundations of ParSat's correctness."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gfd.canonical import build_canonical_graph
from repro.gfd.generator import random_gfds
from repro.matching.homomorphism import MatcherRun, find_homomorphisms
from repro.reasoning.workunits import generate_pruned_work_units, generate_work_units


def match_key(assignment):
    return tuple(sorted(assignment.items()))


def all_matches(gfd, graph):
    return {match_key(m) for m in find_homomorphisms(gfd.pattern, graph)}


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_units_cover_exactly_all_matches(seed):
    """Every match of every pattern appears in exactly one work unit's
    pivoted search (dQ-neighborhood locality included)."""
    sigma = random_gfds(6, max_pattern_nodes=4, max_literals=2, seed=seed)
    canonical = build_canonical_graph(sigma)
    graph = canonical.graph
    units = generate_work_units(sigma, graph)

    from repro.graph.neighborhood import neighborhood

    for gfd in sigma:
        expected = all_matches(gfd, graph)
        covered = []
        for unit in units:
            if unit.gfd_name != gfd.name:
                continue
            pivot = unit.pivot_node()
            allowed = (
                neighborhood(graph, pivot, unit.radius)
                if unit.radius is not None
                else None
            )
            run = MatcherRun(
                gfd.pattern,
                graph,
                preassigned=unit.assignment_dict(),
                allowed_nodes=allowed,
            )
            covered.extend(match_key(m) for m in run.matches())
        assert sorted(covered) == sorted(expected), gfd.name
        # Exactly once: no duplicates across units.
        assert len(covered) == len(expected)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_pruned_units_cover_all_matches(seed):
    """Simulation pruning never drops a unit that had matches."""
    sigma = random_gfds(6, max_pattern_nodes=4, max_literals=2, seed=seed)
    canonical = build_canonical_graph(sigma)
    graph = canonical.graph
    units = generate_pruned_work_units(sigma, graph)

    from repro.graph.neighborhood import neighborhood

    for gfd in sigma:
        expected = all_matches(gfd, graph)
        covered = set()
        for unit in units:
            if unit.gfd_name != gfd.name:
                continue
            pivot = unit.pivot_node()
            allowed = (
                neighborhood(graph, pivot, unit.radius)
                if unit.radius is not None
                else None
            )
            run = MatcherRun(
                gfd.pattern,
                graph,
                preassigned=unit.assignment_dict(),
                allowed_nodes=allowed,
            )
            covered.update(match_key(m) for m in run.matches())
        assert covered == expected, gfd.name


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 6))
def test_split_at_random_point_preserves_matches(seed, split_after):
    """Splitting mid-search (then running the sub-units) yields exactly the
    original match set — no loss, no duplication (paper, Example 6)."""
    rng = random.Random(seed)
    from repro import PropertyGraph
    from repro.gfd.pattern import make_pattern

    graph = PropertyGraph()
    nodes = [graph.add_node(rng.choice("ab")) for _ in range(rng.randint(3, 7))]
    for _ in range(rng.randint(4, 14)):
        graph.add_edge(rng.choice(nodes), rng.choice(nodes), rng.choice("ef"))
    pattern = make_pattern(
        {"x": "_", "y": "_", "z": "_"},
        [("x", "y", rng.choice("ef")), ("y", "z", rng.choice("ef"))],
    )
    reference = {match_key(m) for m in find_homomorphisms(pattern, graph)}

    run = MatcherRun(pattern, graph)
    collected = []
    queue = []
    produced = 0
    for match in run.matches():
        collected.append(match_key(match))
        produced += 1
        if produced == split_after and run.can_split():
            queue.extend(run.split())
    while queue:
        sub = MatcherRun(pattern, graph, preassigned=queue.pop())
        for match in sub.matches():
            collected.append(match_key(match))
    assert sorted(collected) == sorted(reference)
