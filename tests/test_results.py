"""Tests for the layered result model: evidence, derivation, claims.

The three layers reference but never flatten into each other — these
tests pin the contracts each layer stands on: stable content-derived
evidence refs, lazy first-wins interning, first-conflict-wins at the
``Eq``, and a :class:`ResultStore` that answers "which rule, which
pivot, which merge steps" with zero re-matching.
"""

import json
import pickle

import pytest

from repro import parse_gfds, seq_sat
from repro.eq.eqrelation import Conflict, EqRelation, Provenance
from repro.graph.delta import AddEdge, AddNode
from repro.graph.graph import PropertyGraph
from repro.parallel import RuntimeConfig, par_sat
from repro.reasoning.explain import explain_unsatisfiability
from repro.reasoning.validation import detect_errors_store
from repro.results import (
    ConflictClaim,
    EvidenceLog,
    MatchEvidence,
    ResultStore,
    Violation,
    evidence_ref,
)

#: A three-rule chain (paper Example 4 shape): g1 seeds x.A, g2 derives
#: x.B from it, g3 clashes back on x.A — unsatisfiable through control
#: dependence, not a direct clash.
CHAIN_UNSAT = """
gfd g1 { x: a; then x.A = 1; }
gfd g2 { x: a; when x.A = 1; then x.B = 2; }
gfd g3 { x: a; when x.B = 2; then x.A = 3; }
"""

CHAIN_SAT = """
gfd g1 { x: a; then x.A = 1; }
gfd g2 { x: a; when x.A = 1; then x.B = 2; }
"""


def _dirty_graph():
    """Two ``a``-nodes violating ``g: a => A = 1`` and one clean."""
    g = PropertyGraph()
    g.add_node("a", {"A": 5}, node_id="n1")
    g.add_node("a", {"A": 7}, node_id="n2")
    g.add_node("a", {"A": 1}, node_id="n3")
    g.add_node("b", {}, node_id="m1")
    g.add_edge("n1", "m1", "e")
    return g


DETECT_SIGMA = 'gfd g { x: a; then x.A = 1; }'


class TestEvidenceRefs:
    def test_ref_excludes_producer_metadata(self):
        assignment = {"x": "n1", "y": "n2"}
        plain = MatchEvidence.from_match("g", assignment)
        decorated = MatchEvidence.from_match(
            "g", assignment, pivot="n1", origin="unit", plan="ruleset",
            fragment=3, unit_uid="u17",
        )
        assert plain.ref == decorated.ref == evidence_ref("g", assignment)
        assert decorated.fragment == 3 and decorated.origin == "unit"

    def test_ref_insensitive_to_dict_order(self):
        a = evidence_ref("g", {"x": "n1", "y": "n2"})
        b = evidence_ref("g", {"y": "n2", "x": "n1"})
        assert a == b

    def test_ref_distinguishes_rule_and_assignment(self):
        assert evidence_ref("g", {"x": "n1"}) != evidence_ref("h", {"x": "n1"})
        assert evidence_ref("g", {"x": "n1"}) != evidence_ref("g", {"x": "n2"})


class TestEvidenceLog:
    def test_note_is_lazy_and_first_wins(self):
        log = EvidenceLog()
        log.note("g", {"x": "n1"}, {"origin": "seq"})
        log.note("g", {"x": "n1"}, {"origin": "cascade"})  # duplicate match
        log.note("g", {"x": "n2"}, {"origin": "seq"})
        # Nothing materialized yet: capture is append-only on the hot path.
        assert log._pending and not log._records
        # First read flushes; the duplicate interns to the first record.
        assert len(log) == 2
        assert not log._pending
        first = log.get(evidence_ref("g", {"x": "n1"}))
        assert first is not None and first.origin == "seq"

    def test_intern_returns_canonical_record(self):
        log = EvidenceLog()
        record = MatchEvidence.from_match("g", {"x": "n1"}, origin="unit")
        assert log.intern(record) is record
        duplicate = MatchEvidence.from_match("g", {"x": "n1"}, origin="validate")
        assert log.intern(duplicate) is record

    def test_merge_is_idempotent(self):
        source = EvidenceLog()
        source.note("g", {"x": "n1"}, {})
        source.note("g", {"x": "n2"}, {})
        shipped = list(source)
        target = EvidenceLog()
        assert target.merge(shipped) == 2
        assert target.merge(shipped) == 0
        assert target.refs() == source.refs()

    def test_position_and_delta_since(self):
        log = EvidenceLog()
        log.note("g", {"x": "n1"}, {})
        mark = log.position()
        log.note("g", {"x": "n1"}, {})  # dup: not a new record
        log.note("g", {"x": "n2"}, {})
        delta = log.delta_since(mark)
        assert [record.assignment for record in delta] == [(("x", "n2"),)]

    def test_pickle_roundtrip_recreates_lock(self):
        log = EvidenceLog()
        log.note("g", {"x": "n1"}, {})
        clone = pickle.loads(pickle.dumps(log))
        assert clone.refs() == log.refs()
        # The clone is live: it can capture and flush on its own.
        clone.note("g", {"x": "n2"}, {})
        assert len(clone) == 2


class TestFirstConflictWins:
    """Satellite: every route to inconsistency funnels through one
    first-wins path — later clashes never overwrite the conflict that
    ended the run, on any mutator."""

    def _conflicted(self):
        eq = EqRelation()
        eq.assign_constant(("n1", "A"), 1, "first")
        eq.assign_constant(("n1", "A"), 2, "first")
        conflict = eq.conflict
        assert conflict is not None and conflict.source == "first"
        return eq, conflict

    def test_second_assign_clash_does_not_overwrite(self):
        eq, first = self._conflicted()
        eq.assign_constant(("n2", "B"), 1, "later")
        eq.assign_constant(("n2", "B"), 9, "later")
        assert eq.conflict is first

    def test_merge_clash_does_not_overwrite(self):
        eq, first = self._conflicted()
        eq.assign_constant(("n2", "B"), 1, "later")
        eq.assign_constant(("n3", "C"), 9, "later")
        eq.merge_terms(("n2", "B"), ("n3", "C"), "later")
        assert eq.conflict is first

    def test_fail_does_not_overwrite(self):
        eq, first = self._conflicted()
        eq.fail(("n9", "<false>"), "later")
        assert eq.conflict is first

    def test_install_conflict_does_not_overwrite(self):
        eq, first = self._conflicted()
        shipped = Conflict(("n9", "Z"), 0, 1, "replica")
        eq.install_conflict(shipped)
        assert eq.conflict is first

    def test_install_conflict_on_clean_eq_sets_it(self):
        eq = EqRelation()
        shipped = Conflict(("n9", "Z"), 0, 1, "replica")
        eq.install_conflict(shipped)
        assert eq.conflict is shipped

    def test_merge_clash_sets_first_conflict(self):
        eq = EqRelation()
        eq.assign_constant(("n1", "A"), 1, "g1")
        eq.assign_constant(("n2", "B"), 2, "g2")
        eq.merge_terms(("n1", "A"), ("n2", "B"), "g3")
        assert eq.conflict is not None and eq.conflict.source == "g3"
        eq.fail(("n9", "<false>"), "g4")
        assert eq.conflict.source == "g3"


class TestResultStoreUnsat:
    def test_conflict_claim_references_layers(self):
        store = seq_sat(parse_gfds(CHAIN_UNSAT)).results
        assert isinstance(store.conflict, ConflictClaim)
        assert store.conflict.gfd_name == "g3"
        assert store.evidence.get(store.conflict.evidence_ref) is not None
        assert store.conflict in store.claims()

    def test_explain_conflict_reconstructs_the_chain(self):
        store = seq_sat(parse_gfds(CHAIN_UNSAT)).results
        explanation = store.explain_conflict()
        assert explanation is not None
        assert set(explanation.gfds_involved) == {"g1", "g2", "g3"}
        assert len(explanation.steps) >= 2
        # Every step's match resolves in the evidence layer.
        for op in explanation.steps:
            assert op.provenance is not None
            assert store.evidence.get(op.provenance.match_ref) is not None
        assert explanation.evidence  # the supporting matches, deduped

    def test_explain_is_zero_rematching(self, monkeypatch):
        store = seq_sat(parse_gfds(CHAIN_UNSAT)).results
        # After the run, the matcher must never fire again: explanations
        # are reference lookups + a backward slice, nothing else.
        import repro.matching.homomorphism as homomorphism

        def boom(self, *args, **kwargs):
            raise AssertionError("explain re-entered the matcher")

        monkeypatch.setattr(homomorphism.MatcherRun, "matches", boom)
        explanation = store.explain_conflict()
        assert explanation is not None and explanation.steps

    def test_affected_by_conflict_nodes(self):
        store = seq_sat(parse_gfds(CHAIN_UNSAT)).results
        node = store.conflict.term[0]
        assert store.conflict in store.affected_by([node])
        assert store.affected_by(["no-such-node"]) == []

    def test_json_export_round_trips(self):
        store = seq_sat(parse_gfds(CHAIN_UNSAT)).results
        payload = json.loads(store.dumps())
        assert payload["conflict"]["gfd"] == "g3"
        assert payload["violations"] == []
        refs = {record["ref"] for record in payload["evidence"]}
        assert payload["conflict"]["evidence_ref"] in refs
        assert any(step["match_ref"] in refs for step in payload["derivation"])

    def test_capture_off_degrades_gracefully(self):
        result = seq_sat(parse_gfds(CHAIN_UNSAT), capture_provenance=False)
        store = result.results
        assert not result.satisfiable
        assert len(store.evidence) == 0
        # Claims still stand on bare sources; explanation still slices.
        assert store.conflict is not None and store.conflict.gfd_name == "g3"
        explanation = store.explain_conflict()
        assert explanation is not None and explanation.evidence == []


class TestResultStoreSat:
    def test_satisfiable_store_has_evidence_no_claims(self):
        store = seq_sat(parse_gfds(CHAIN_SAT)).results
        assert store.conflict is None and store.violations == []
        assert store.claims() == []
        assert store.explain_conflict() is None
        assert {record.gfd for record in store.evidence} == {"g1", "g2"}
        assert len(store.derivation) >= 2


class TestDetectionStore:
    def test_violations_reference_interned_evidence(self):
        sigma = parse_gfds(DETECT_SIGMA)
        store = detect_errors_store(_dirty_graph(), sigma)
        assert sorted(v.assignment["x"] for v in store.violations) == ["n1", "n2"]
        for violation in store.violations:
            record = store.evidence_for(violation)
            assert record is not None
            assert record.origin == "validate" and record.plan == "per-rule"
            assert record.pivot == violation.assignment["x"]
        # Detection reads concrete values: no Eq chase, empty derivation.
        assert store.derivation == []

    def test_explain_violation_carries_its_evidence(self):
        sigma = parse_gfds(DETECT_SIGMA)
        store = detect_errors_store(_dirty_graph(), sigma)
        violation = store.violations[0]
        explanation = store.explain_violation(violation)
        assert explanation.gfds_involved == ["g"]
        assert explanation.evidence[0].ref == violation.evidence_ref

    def test_affected_by_journal_ops_and_bare_ids(self):
        sigma = parse_gfds(DETECT_SIGMA)
        store = detect_errors_store(_dirty_graph(), sigma)
        by_node = {v.assignment["x"]: v for v in store.violations}
        # A journal op touching n1 flags only n1's claim...
        affected = store.affected_by([AddEdge("n1", "m1", "e")])
        assert affected == [by_node["n1"]]
        # ...an AddNode of a fresh id flags nothing...
        assert store.affected_by([AddNode("a", {}, "n99")]) == []
        # ...and bare node ids work the same as ops.
        assert store.affected_by(["n2"]) == [by_node["n2"]]

    def test_ruleset_plan_store_matches_per_rule(self):
        sigma = parse_gfds(DETECT_SIGMA)
        graph = _dirty_graph()
        per_rule = detect_errors_store(graph, sigma)
        trie = detect_errors_store(graph, sigma, use_ruleset_plan=True)
        key = lambda v: (v.gfd_name, tuple(sorted(v.assignment.items())))
        assert [key(v) for v in trie.violations] == [key(v) for v in per_rule.violations]
        assert set(trie.evidence.refs()) == set(per_rule.evidence.refs())
        assert all(record.plan == "ruleset" for record in trie.evidence)


class TestExplainAcrossExecutionModes:
    """Satellite: explanations hold under the rule-set plan trie and
    fragmented parallel runs, not just the sequential per-rule loop."""

    def test_ruleset_plan_conflict_explains_identically(self):
        sigma = parse_gfds(CHAIN_UNSAT)
        per_rule = seq_sat(sigma).results.explain_conflict()
        result = seq_sat(sigma, use_ruleset_plan=True)
        assert not result.satisfiable
        trie = result.results.explain_conflict()
        assert set(trie.gfds_involved) == set(per_rule.gfds_involved)
        assert {r.ref for r in trie.evidence} == {r.ref for r in per_rule.evidence}

    def test_explain_unsatisfiability_accepts_ruleset_result(self, example4_sigma):
        result = seq_sat(example4_sigma, use_ruleset_plan=True)
        explanation = explain_unsatisfiability(example4_sigma, result)
        assert explanation is not None
        assert set(explanation.gfds_involved) == {"phi7", "phi9", "phi10"}

    @pytest.mark.parametrize("fragments", [1, 4])
    def test_fragmented_run_explains_conflict(self, fragments):
        sigma = parse_gfds(CHAIN_UNSAT)
        config = RuntimeConfig(workers=2).with_fragments(fragments)
        result = par_sat(sigma, config, backend="simulated")
        assert not result.satisfiable
        store = result.results
        explanation = store.explain_conflict()
        assert explanation is not None
        assert "g3" in explanation.gfds_involved
        for op in explanation.steps:
            if op.provenance is not None and op.provenance.match_ref:
                assert store.evidence.get(op.provenance.match_ref) is not None


class TestStoreConstruction:
    def test_from_engine_uses_shared_layers(self):
        result = seq_sat(parse_gfds(CHAIN_SAT))
        store = ResultStore.from_engine(result.engine)
        assert store.evidence is result.engine.evidence
        assert store.eq is result.eq
        assert [op.kind for op in store.derivation] == [
            op.kind for op in result.eq.delta_since(0)
        ]

    def test_violation_claim_str_and_json(self):
        violation = Violation("g", {"x": "n1"}, "abc123")
        assert "g violated" in str(violation)
        assert violation.to_json()["evidence_ref"] == "abc123"

    def test_conflict_claim_lifts_provenance(self):
        prov = Provenance("g3", "ref9", (("n1", "A"),))
        conflict = Conflict(("n1", "A"), 1, 3, "g3", prov)
        claim = ConflictClaim.from_conflict(conflict)
        assert claim.gfd_name == "g3"
        assert claim.evidence_ref == "ref9"
        assert claim.premise_terms == (("n1", "A"),)
