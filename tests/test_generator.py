"""Tests for the GFD generator, miner and conflict injection."""

import pytest

from repro import seq_sat
from repro.datasets import dbpedia_like, pokec_like
from repro.gfd.generator import (
    GFDGenerator,
    GFDVocabulary,
    add_random_conflicts,
    conflict_chain,
    mine_gfds,
    random_gfds,
    straggler_workload,
)


class TestVocabulary:
    def test_default_sizes(self):
        vocab = GFDVocabulary.default(num_labels=5, num_edge_labels=3, num_attributes=4)
        assert len(vocab.node_labels) == 5
        assert len(vocab.edge_labels) == 3
        assert set(vocab.canonical_values) == set(vocab.attributes)

    def test_from_graph_extracts_labels_and_values(self):
        graph = dbpedia_like(200, seed=1)
        vocab = GFDVocabulary.from_graph(graph)
        assert set(vocab.node_labels) <= graph.labels() | set()
        assert vocab.attributes
        for attr, value in vocab.canonical_values.items():
            assert any(
                node.get_attr(attr) == value for node in graph.node_objects()
            )

    def test_from_graph_caps_attributes(self):
        graph = dbpedia_like(300, seed=2)
        vocab = GFDVocabulary.from_graph(graph, max_attributes=3)
        assert len(vocab.attributes) <= 3


class TestRandomGfds:
    def test_determinism(self):
        assert random_gfds(10, seed=5) == random_gfds(10, seed=5)

    def test_respects_k_and_l(self):
        sigma = random_gfds(40, max_pattern_nodes=3, max_literals=2, seed=6)
        for gfd in sigma:
            assert gfd.pattern.num_vars <= 3
            assert 1 <= gfd.literal_count() <= 2

    def test_patterns_connected(self):
        sigma = random_gfds(30, max_pattern_nodes=5, seed=7)
        assert all(gfd.pattern.is_connected() for gfd in sigma)

    def test_consistent_mode_satisfiable(self):
        for seed in (1, 2, 3):
            sigma = random_gfds(25, max_pattern_nodes=5, max_literals=4, seed=seed)
            assert seq_sat(sigma).satisfiable, f"seed {seed}"

    def test_names_unique(self):
        sigma = random_gfds(30, seed=8)
        assert len({g.name for g in sigma}) == 30

    def test_nonempty_consequents(self):
        sigma = random_gfds(30, seed=9)
        assert all(not g.is_trivial() for g in sigma)


class TestMining:
    def test_mined_patterns_match_their_graph_labels(self):
        graph = pokec_like(300, seed=4)
        mined = mine_gfds(graph, 15, seed=4)
        assert len(mined) == 15
        labels = graph.labels()
        edge_labels = graph.edge_label_set()
        for gfd in mined:
            for var in gfd.pattern.variables:
                assert gfd.pattern.label_of(var) in labels
            for edge in gfd.pattern.edges:
                assert edge.label in edge_labels

    def test_mined_set_satisfiable(self):
        graph = dbpedia_like(400, seed=5)
        mined = mine_gfds(graph, 25, seed=5)
        assert seq_sat(mined).satisfiable

    def test_mining_empty_graph_raises(self):
        from repro import PropertyGraph

        with pytest.raises(ValueError):
            mine_gfds(PropertyGraph(), 5)

    def test_mining_deterministic(self):
        graph = dbpedia_like(300, seed=6)
        assert mine_gfds(graph, 10, seed=6) == mine_gfds(graph, 10, seed=6)


class TestConflictInjection:
    def test_chain_structure(self):
        chain = conflict_chain(3, label="L")
        assert len(chain) == 4  # seed + 2 links + closer
        assert all(g.pattern.label_of("x") == "L" for g in chain)

    def test_add_random_conflicts_breaks_satisfiability(self):
        sigma = random_gfds(15, seed=10)
        assert seq_sat(sigma).satisfiable
        expanded = add_random_conflicts(sigma, num_conflicts=5, seed=10)
        assert len(expanded) > len(sigma)
        assert not seq_sat(expanded).satisfiable

    def test_conflict_label_reuses_sigma_labels(self):
        sigma = random_gfds(10, seed=11)
        expanded = add_random_conflicts(sigma, seed=11)
        injected = [g for g in expanded if g.name.startswith("conflict_")]
        labels = {
            g.pattern.label_of(v) for g in sigma for v in g.pattern.variables
        } - {"_"}
        assert injected
        assert injected[0].pattern.label_of("x") in labels


class TestStragglerWorkload:
    def test_satisfiable_and_structured(self):
        sigma = straggler_workload(
            num_anchor=1, num_seekers=2, num_background=10, anchor_size=6,
            seeker_length=3, seed=12,
        )
        names = {g.name for g in sigma}
        assert any(n.startswith("anchor") for n in names)
        assert any(n.startswith("seeker") for n in names)
        assert any(n.startswith("bg") for n in names)
        assert seq_sat(sigma).satisfiable

    def test_seekers_pivot_selectively(self):
        sigma = straggler_workload(
            num_anchor=1, num_seekers=1, num_background=0, anchor_size=6,
            seeker_length=3, seed=13,
        )
        seeker = next(g for g in sigma if g.name.startswith("seeker"))
        assert seeker.pattern.label_of("y0") == "hub0"


class TestGeneratorInternals:
    def test_random_pattern_size_bounds(self):
        generator = GFDGenerator(seed=14)
        for size in (1, 3, 6):
            pattern = generator.random_pattern(size)
            assert pattern.num_vars == size
            assert pattern.is_connected()

    def test_inconsistent_mode_variable_literals_cross_attrs(self):
        generator = GFDGenerator(seed=15, variable_literal_probability=1.0)
        sigma = generator.generate(20, max_pattern_nodes=4, max_literals=3, consistent=False)
        assert sigma  # smoke: generation succeeds with extreme knobs
