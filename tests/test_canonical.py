"""Unit tests for canonical graph constructions."""

import pytest

from repro.errors import GFDError
from repro.gfd import (
    build_canonical_graph,
    build_implication_canonical,
    canonical_node_id,
    eq_from_literals,
    make_gfd,
    make_pattern,
    parse_gfds,
)
from repro.gfd.literals import FALSE, eq, vareq


class TestCanonicalSigma:
    def test_disjoint_union_structure(self, example2_cross_pattern):
        canonical = build_canonical_graph(example2_cross_pattern)
        # Two 4-node patterns -> 8 nodes, 3 edges each.
        assert canonical.graph.num_nodes == 8
        assert canonical.graph.num_edges == 6
        assert set(canonical.gfds) == {"phi7", "phi8"}

    def test_identity_embedding(self, example2_cross_pattern):
        canonical = build_canonical_graph(example2_cross_pattern)
        phi7 = canonical.gfds["phi7"]
        identity = canonical.identity_match(phi7)
        for var in phi7.pattern.variables:
            node = identity[var]
            assert canonical.graph.label(node) == phi7.pattern.label_of(var)
        for edge in phi7.pattern.edges:
            assert canonical.graph.has_edge(identity[edge.src], identity[edge.dst], edge.label)

    def test_node_ids_prefixed_by_gfd_name(self, example2_cross_pattern):
        canonical = build_canonical_graph(example2_cross_pattern)
        assert canonical.node_for("phi7", "x") == canonical_node_id("phi7", "x")

    def test_wildcard_kept_as_label(self):
        sigma = parse_gfds("gfd g { x: _; then x.A = 1; }")
        canonical = build_canonical_graph(sigma)
        node = canonical.node_for("g", "x")
        assert canonical.graph.label(node) == "_"

    def test_duplicate_names_rejected(self):
        pattern = make_pattern({"x": "a"})
        gfd_a = make_gfd(pattern, [], [eq("x", "A", 1)], name="same")
        gfd_b = make_gfd(make_pattern({"x": "b"}), [], [eq("x", "A", 1)], name="same")
        with pytest.raises(GFDError):
            build_canonical_graph([gfd_a, gfd_b])

    def test_component_roots_one_per_gfd(self, example4_sigma):
        canonical = build_canonical_graph(example4_sigma)
        assert len(canonical.component_roots) == 3


class TestImplicationCanonical:
    def test_graph_uses_variable_node_ids(self, example8_phi13):
        canonical = build_implication_canonical(example8_phi13)
        assert set(canonical.graph.nodes()) == set(example8_phi13.pattern.variables)
        assert canonical.identity_match() == {v: v for v in example8_phi13.pattern.variables}

    def test_eq_x_encodes_antecedent(self, example8_phi13):
        canonical = build_implication_canonical(example8_phi13)
        # phi13's X is z.B = 2.
        assert canonical.eq_x.constant_of(("z", "B")) == 2

    def test_fresh_eq_is_a_copy(self, example8_phi13):
        canonical = build_implication_canonical(example8_phi13)
        fresh = canonical.fresh_eq()
        fresh.assign_constant(("z", "B"), 3)
        assert fresh.has_conflict()
        assert not canonical.eq_x.has_conflict()

    def test_inconsistent_antecedent_flagged(self):
        pattern = make_pattern({"x": "a"})
        phi = make_gfd(pattern, [eq("x", "A", 1), eq("x", "A", 2)], [eq("x", "B", 1)])
        canonical = build_implication_canonical(phi)
        assert canonical.eq_x.has_conflict()


class TestEqFromLiterals:
    def test_transitive_closure(self):
        relation = eq_from_literals(
            [vareq("x", "A", "y", "B"), vareq("y", "B", "z", "C")],
            {"x": "x", "y": "y", "z": "z"},
        )
        assert relation.same_class(("x", "A"), ("z", "C"))

    def test_constant_bridge_closure(self):
        # x.A = c and z.C = c puts both in classes holding c.
        relation = eq_from_literals(
            [eq("x", "A", "c"), eq("z", "C", "c")],
            {"x": "x", "z": "z"},
        )
        assert relation.constant_of(("x", "A")) == "c"
        assert relation.constant_of(("z", "C")) == "c"

    def test_false_literal_conflicts(self):
        relation = eq_from_literals([FALSE], {})
        assert relation.has_conflict()
