"""Incremental :class:`GraphIndex` maintenance: delta path, compaction,
plan epoch revalidation, delta history, and the delta-aware layers."""

import pytest

from repro import PropertyGraph, parse_gfds, seq_sat
from repro.chase import IncrementalChase, chase_satisfiability
from repro.graph.delta import AddEdge, AddNode, SetLabel, replay
from repro.graph.index import EMPTY_GROUP, NO_LABEL, GraphIndex
from repro.gfd import make_pattern
from repro.matching.homomorphism import MatcherRun, find_homomorphisms
from repro.matching.plan import get_plan
from repro.reasoning.incremental import IncrementalSat


def small_graph():
    g = PropertyGraph()
    a = g.add_node("person")  # 0
    b = g.add_node("person")  # 1
    c = g.add_node("city")  # 2
    g.add_edge(a, b, "knows")
    g.add_edge(a, c, "lives_in")
    g.add_edge(b, c, "lives_in")
    return g


def assert_equivalent_to_rebuild(graph):
    """The maintained index must match a from-scratch rebuild canonically."""
    maintained = graph.index()
    assert not maintained.stale
    rebuilt = GraphIndex(graph)
    assert maintained.canonical_form() == rebuilt.canonical_form()


class TestApplyDelta:
    def test_node_add_extends_buckets_and_positions(self):
        g = small_graph()
        index = g.index()
        d = g.add_node("person")
        e = g.add_node("village")  # brand-new label
        assert g.index() is index
        assert list(index.nodes_with_label("person")) == [0, 1, d]
        assert list(index.nodes_with_label("village")) == [e]
        assert index.position[e] == 4
        assert index.label_id("village") != NO_LABEL
        assert_equivalent_to_rebuild(g)

    def test_edge_add_extends_adjacency_and_degrees(self):
        g = small_graph()
        index = g.index()
        g.add_edge(1, 0, "knows")
        g.add_edge(0, 1, "likes")  # second label on an existing pair
        assert g.index() is index
        knows = index.label_id("knows")
        assert list(index.out_neighbors(1, knows)) == [0]
        assert index.out_degree[1] == 2  # lives_in + knows
        # Any-label group stays deduplicated: 0 -> 1 existed already.
        assert list(index.out_neighbors(0, None)) == [1, 2]
        assert_equivalent_to_rebuild(g)

    def test_two_labels_on_a_new_pair_in_one_batch(self):
        g = small_graph()
        g.index()
        a = g.add_node("person")
        b = g.add_node("person")
        g.add_edge(a, b, "x")
        g.add_edge(a, b, "y")  # same fresh pair, second label, same batch
        assert list(g.index().out_neighbors(a, None)) == [b]
        assert list(g.index().in_neighbors(b, None)) == [a]
        assert_equivalent_to_rebuild(g)

    def test_second_label_on_preexisting_pair_across_batches(self):
        g = small_graph()
        g.index()
        g.add_edge(0, 1, "likes")  # 0 -> 1 'knows' predates the index
        g.index()
        g.add_edge(0, 1, "admires")  # and a third label, next batch
        assert list(g.index().out_neighbors(0, None)) == [1, 2]
        assert_equivalent_to_rebuild(g)

    def test_edge_with_new_endpoint_in_same_batch(self):
        g = small_graph()
        g.index()
        n = g.add_node("person")
        g.add_edge(n, 0, "knows")
        g.add_edge(2, n, "hosts")
        assert_equivalent_to_rebuild(g)

    def test_relabel_moves_between_buckets_in_position_order(self):
        g = small_graph()
        index = g.index()
        g.set_node_label(2, "person")  # city -> person
        assert g.index() is index
        # Node 2 must sit at its *insertion-order* position in the bucket,
        # exactly where a rebuild would put it.
        assert list(index.nodes_with_label("person")) == [0, 1, 2]
        assert index.nodes_with_label("city") == []
        assert_equivalent_to_rebuild(g)

    def test_relabel_to_same_label_is_a_noop(self):
        g = small_graph()
        g.index()
        g.set_node_label(0, "person")
        assert g.pending_delta_ops == 0

    def test_fanout_caches_refresh_after_delta(self):
        g = small_graph()
        index = g.index()
        lives = index.label_id("lives_in")
        assert index.avg_out_fanout(lives) == 1.0
        n = g.add_node("city")
        g.add_edge(0, n, "lives_in")
        g.index()
        # Node 0 now has two lives_in out-edges, node 1 one: avg 1.5.
        assert index.avg_out_fanout(index.label_id("lives_in")) == 1.5

    def test_version_tracks_mutation_count(self):
        g = small_graph()
        index = g.index()
        g.add_node("x")
        g.add_edge(0, 1, "y")
        g.set_node_label(0, "z")
        g.index()
        assert index.version == g.mutation_count
        assert index.epoch == 1  # one batch, one epoch

    def test_mixed_sequence_matches_rebuild(self):
        g = small_graph()
        g.index()
        for step in range(6):
            n = g.add_node(f"L{step % 3}")
            g.add_edge(n, step % 3, f"e{step % 2}")
            g.set_node_label(step % 3, f"L{(step + 1) % 3}")
            assert_equivalent_to_rebuild(g)


class TestJournalLifecycle:
    def test_no_journal_before_first_compile(self):
        g = PropertyGraph()
        g.add_node("a")
        g.add_node("b")
        assert g.pending_delta_ops == 0  # nothing to patch yet

    def test_journal_consumed_by_index_call(self):
        g = small_graph()
        g.index()
        g.add_node("a")
        assert g.pending_delta_ops == 1
        g.index()
        assert g.pending_delta_ops == 0

    def test_pickled_graph_sheds_journal(self):
        import pickle

        g = small_graph()
        g.index()
        g.add_node("a")
        clone = pickle.loads(pickle.dumps(g))
        assert clone.pending_delta_ops == 0
        assert clone.mutation_count == g.mutation_count
        # A fresh compile on the clone reflects everything.
        assert list(clone.index().nodes_with_label("a")) == [3]

    def test_compaction_boundary_exact(self):
        g = small_graph()
        g.INDEX_COMPACTION_MIN = 4
        g.INDEX_COMPACTION_FRACTION = 0.0
        first = g.index()
        for _ in range(4):  # == limit: delta path
            g.add_node("person")
        assert g.index() is first
        for _ in range(5):  # > limit: compaction rebuild
            g.add_node("person")
        second = g.index()
        assert second is not first
        assert_equivalent_to_rebuild(g)

    def test_delta_disabled_always_rebuilds(self):
        g = small_graph()
        g.index_delta_enabled = False
        first = g.index()
        g.add_node("person")
        assert g.index() is not first
        assert_equivalent_to_rebuild(g)


class TestDeltaHistory:
    def test_history_serves_ops_since_version(self):
        g = small_graph()
        g.retain_deltas(True)
        mark = g.mutation_count
        g.add_node("a")
        g.add_edge(3, 0, "knows")
        ops = g.delta_ops_since(mark)
        assert ops == [AddNode(3, "a", None), AddEdge(3, 0, "knows")]
        assert g.delta_ops_since(g.mutation_count) == []

    def test_history_gap_returns_none(self):
        g = small_graph()
        mark = g.mutation_count
        g.add_node("a")  # not retained: retention enabled after
        g.retain_deltas(True)
        g.add_node("b")
        assert g.delta_ops_since(mark) is None

    def test_trim_forgets_old_ops(self):
        g = small_graph()
        g.retain_deltas(True)
        mark = g.mutation_count
        g.add_node("a")
        g.trim_delta_history(g.mutation_count)
        assert g.delta_ops_since(mark) is None
        assert g.delta_ops_since(g.mutation_count) == []

    def test_replay_reproduces_graph(self):
        g = small_graph()
        replica = g.copy()
        g.retain_deltas(True)
        mark = g.mutation_count
        g.add_node("a", {"k": 1})
        g.add_edge(3, 0, "knows")
        g.set_node_label(2, "metropolis")
        applied = replay(replica, g.delta_ops_since(mark))
        assert applied == 3
        assert replica.label(3) == "a" and replica.attrs(3) == {"k": 1}
        assert replica.has_edge(3, 0, "knows")
        assert replica.label(2) == "metropolis"
        assert GraphIndex(replica).canonical_form() == GraphIndex(g).canonical_form()


class TestSnapshotFreezing:
    def test_snapshot_is_frozen_against_later_deltas(self):
        g = small_graph()
        index = g.index()
        snapshot = index.to_snapshot()
        knows = index.label_id("knows")
        g.add_edge(1, 0, "knows")
        g.add_node("person")
        g.index()  # live index mutates in place...
        assert snapshot["out"].get((1, knows)) is None  # ...snapshot does not
        assert list(snapshot["label_buckets"][index.label_id("person")]) == [0, 1]


class TestPlanEpochRevalidation:
    def test_plan_survives_unrelated_delta(self):
        g = small_graph()
        pattern = make_pattern({"x": "person", "y": "city"}, [("x", "y", "lives_in")])
        plan = get_plan(pattern, g)
        layout_before = plan.layout(())
        g.add_node("village")  # label the plan does not watch
        assert get_plan(pattern, g) is plan
        assert plan.layout(()) is layout_before  # layouts kept

    def test_plan_recompiles_when_watched_label_appears(self):
        g = small_graph()
        pattern = make_pattern({"x": "person", "y": "pub"}, [("x", "y", "visits")])
        plan = get_plan(pattern, g)
        assert find_homomorphisms(pattern, g) == []
        pub = g.add_node("pub")  # 'pub' was compiled as NO_LABEL
        g.add_edge(0, pub, "visits")
        matches = find_homomorphisms(pattern, g)
        assert [(m["x"], m["y"]) for m in matches] == [(0, pub)]
        assert get_plan(pattern, g) is plan  # same surviving plan object

    def test_new_watched_edge_label_triggers_recompile(self):
        g = small_graph()
        pattern = make_pattern({"x": "person", "y": "person"}, [("x", "y", "mentors")])
        get_plan(pattern, g)
        assert find_homomorphisms(pattern, g) == []
        g.add_edge(1, 0, "mentors")
        matches = find_homomorphisms(pattern, g)
        assert [(m["x"], m["y"]) for m in matches] == [(1, 0)]

    def test_matcher_with_lagging_plan_sees_delta(self):
        g = small_graph()
        pattern = make_pattern({"x": "person", "y": "city"}, [("x", "y", "lives_in")])
        plan = get_plan(pattern, g)
        n = g.add_node("person")
        g.add_edge(n, 2, "lives_in")
        run = MatcherRun(pattern, g, plan=plan)
        assert any(m["x"] == n for m in run.matches())


class TestIncrementalLayers:
    def test_incsat_steps_report_delta_ops_and_keep_index(self, example8_sigma):
        state = IncrementalSat()
        state.add(example8_sigma[0])
        index_after_first = state.graph.index()
        step = state.add(example8_sigma[1])
        # The second component flowed through the journal, in place.
        assert step.index_delta_ops > 0
        assert state.graph.index() is index_after_first
        assert state.satisfiable == seq_sat(example8_sigma[:2]).satisfiable

    def test_incsat_verdicts_unchanged(self, example2_conflicting, example4_sigma):
        assert not IncrementalSat(example2_conflicting).satisfiable
        assert not IncrementalSat(example4_sigma).satisfiable

    def test_incremental_chase_agrees_with_batch(self, example4_sigma, example8_sigma):
        chase = IncrementalChase()
        for gfd in example8_sigma:
            assert chase.add(gfd).verdict
        assert chase.satisfiable == chase_satisfiability(example8_sigma).verdict is True
        assert chase.stats.index_delta_ops > 0

        conflicting = IncrementalChase()
        verdicts = [conflicting.add(gfd).verdict for gfd in example4_sigma]
        assert verdicts[-1] is False
        assert not conflicting.satisfiable
        assert conflicting.satisfiable == chase_satisfiability(example4_sigma).verdict

    def test_incremental_chase_conflict_is_permanent(self, example2_conflicting):
        chase = IncrementalChase(example2_conflicting)
        assert not chase.satisfiable
        extra = parse_gfds("gfd extra { q: z; then q.Q = 1; }")[0]
        assert not chase.add(extra).verdict

    def test_incremental_chase_duplicate_name_rejected(self, example8_sigma):
        from repro.errors import GFDError

        chase = IncrementalChase([example8_sigma[0]])
        with pytest.raises(GFDError):
            chase.add(example8_sigma[0])

    def test_incremental_chase_maintains_one_index(self, example8_sigma):
        chase = IncrementalChase([example8_sigma[0]])
        index = chase.graph.index()
        for gfd in example8_sigma[1:]:
            chase.add(gfd)
        assert chase.graph.index() is index
        assert_equivalent_to_rebuild(chase.graph)
