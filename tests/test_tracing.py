"""Tests for simulated-cluster execution traces."""

import pytest

from repro.eq.eqrelation import EqRelation
from repro.gfd import build_canonical_graph
from repro.gfd.generator import random_gfds, straggler_workload
from repro.parallel import (
    RuntimeConfig,
    SimulatedCluster,
    Trace,
    UnitContext,
    render_gantt,
    summarize,
)
from repro.reasoning.enforce import EnforcementEngine
from repro.reasoning.workunits import generate_pruned_work_units


def run_traced(sigma, workers=3, ttl=None):
    canonical = build_canonical_graph(sigma)
    units = generate_pruned_work_units(sigma, canonical.graph)
    context = UnitContext(canonical.graph, canonical.gfds)
    engine = EnforcementEngine(EqRelation(), canonical.gfds)
    trace = Trace()
    config = RuntimeConfig(workers=workers, ttl_seconds=ttl)
    outcome = SimulatedCluster(config).run(units, context, engine, trace=trace)
    return trace, outcome


class TestTrace:
    def test_events_recorded_per_unit(self):
        sigma = random_gfds(10, 4, 3, seed=4)
        trace, outcome = run_traced(sigma)
        assert len(trace.events) == outcome.units_executed
        assert trace.makespan == pytest.approx(outcome.virtual_seconds, rel=1e-6)

    def test_events_do_not_overlap_per_worker(self):
        sigma = random_gfds(15, 4, 3, seed=5)
        trace, _ = run_traced(sigma, workers=2)
        for worker in trace.worker_ids():
            events = trace.events_of(worker)
            for previous, current in zip(events, events[1:]):
                assert current.start >= previous.finish - 1e-9

    def test_busy_time_and_utilization(self):
        sigma = random_gfds(15, 4, 3, seed=6)
        trace, outcome = run_traced(sigma, workers=2)
        for worker in trace.worker_ids():
            busy = trace.busy_time(worker)
            assert 0 < busy <= trace.makespan + 1e-9
            assert 0 < trace.utilization(worker) <= 1.0 + 1e-9

    def test_heaviest_sorted(self):
        sigma = straggler_workload(
            num_anchor=1, num_seekers=1, num_background=8, anchor_size=8,
            seeker_length=4, seed=7,
        )
        trace, _ = run_traced(sigma, workers=2, ttl=None)
        heaviest = trace.heaviest(3)
        assert heaviest == sorted(heaviest, key=lambda e: -e.duration)
        assert heaviest[0].match_ticks >= heaviest[-1].match_ticks / 1000

    def test_splits_visible_in_trace(self):
        sigma = straggler_workload(
            num_anchor=1, num_seekers=1, num_background=5, anchor_size=9,
            seeker_length=4, seed=8,
        )
        trace, outcome = run_traced(sigma, workers=2, ttl=0.05)
        assert outcome.splits > 0
        assert sum(event.splits for event in trace.events) == outcome.splits


class TestRendering:
    def test_gantt_contains_all_workers(self):
        sigma = random_gfds(12, 4, 3, seed=9)
        trace, _ = run_traced(sigma, workers=3)
        art = render_gantt(trace, width=40)
        for worker in trace.worker_ids():
            assert f"w{worker}" in art
        assert "legend:" in art

    def test_gantt_empty_trace(self):
        assert render_gantt(Trace()) == "(empty trace)"

    def test_summary_lists_heaviest(self):
        sigma = random_gfds(12, 4, 3, seed=10)
        trace, _ = run_traced(sigma, workers=2)
        text = summarize(trace, top=2)
        assert "units executed" in text
        assert "heaviest units" in text

    def test_summary_empty(self):
        assert summarize(Trace()) == "(empty trace)"
