"""Cross-algorithm equivalence: ParSat/ParImp agree with SeqSat/SeqImp.

These are the core correctness tests for the parallel algorithms: across
randomized GFD sets (satisfiable and unsatisfiable, with and without
interaction chains), every runtime, worker count and ablation variant must
return the sequential verdict — the paper's Church-Rosser property under
data-partitioned parallelism.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import seq_imp, seq_sat
from repro.gfd.generator import add_random_conflicts, conflict_chain, random_gfds
from repro.parallel import (
    RuntimeConfig,
    par_imp,
    par_imp_nb,
    par_imp_np,
    par_sat,
    par_sat_nb,
    par_sat_np,
)


class TestPaperExamplesParallel:
    def test_example2(self, example2_conflicting, example2_cross_pattern):
        for sigma in (example2_conflicting, example2_cross_pattern):
            for p in (1, 2, 5):
                assert not par_sat(sigma, RuntimeConfig(workers=p)).satisfiable

    def test_example4(self, example4_sigma):
        result = par_sat(example4_sigma, RuntimeConfig(workers=3))
        assert not result.satisfiable
        assert result.conflict is not None

    def test_example8(self, example8_sigma, example8_phi13, example8_phi14):
        r13 = par_imp(example8_sigma, example8_phi13, RuntimeConfig(workers=2))
        assert r13.implied and r13.reason == "derived"
        r14 = par_imp(example8_sigma, example8_phi14, RuntimeConfig(workers=2))
        assert r14.implied and r14.reason == "conflict"

    def test_trivial_imp_cases_parallel(self):
        from repro.gfd import make_gfd, make_pattern
        from repro.gfd.literals import eq

        pattern = make_pattern({"x": "a"})
        trivial_y = make_gfd(pattern, [eq("x", "A", 1)], [])
        assert par_imp([], trivial_y).reason == "trivial-Y"
        bad_x = make_gfd(
            make_pattern({"x": "a"}), [eq("x", "A", 1), eq("x", "A", 2)], [eq("x", "B", 1)]
        )
        assert par_imp([], bad_x).reason == "trivial-X"


class TestConflictChains:
    @pytest.mark.parametrize("length", [2, 4, 6])
    def test_chain_detected_by_all_variants(self, length):
        sigma = conflict_chain(length)
        config = RuntimeConfig(workers=3)
        assert not par_sat(sigma, config).satisfiable
        assert not par_sat_np(sigma, config).satisfiable
        assert not par_sat_nb(sigma, config).satisfiable

    def test_chain_minus_link_satisfiable_parallel(self):
        sigma = conflict_chain(4)[:-1]
        assert par_sat(sigma, RuntimeConfig(workers=3)).satisfiable


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from([1, 2, 4]))
def test_parsat_matches_seqsat_consistent(seed, workers):
    sigma = random_gfds(10, max_pattern_nodes=4, max_literals=3, seed=seed)
    expected = seq_sat(sigma).satisfiable
    assert par_sat(sigma, RuntimeConfig(workers=workers)).satisfiable == expected


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from([1, 3]))
def test_parsat_matches_seqsat_inconsistent_mode(seed, workers):
    """Random inconsistent-mode sets: verdict may be either way, but the
    parallel one must agree, across all variants."""
    sigma = random_gfds(
        10, max_pattern_nodes=4, max_literals=3, seed=seed, consistent=False
    )
    expected = seq_sat(sigma).satisfiable
    config = RuntimeConfig(workers=workers)
    assert par_sat(sigma, config).satisfiable == expected
    assert par_sat_np(sigma, config).satisfiable == expected
    assert par_sat_nb(sigma, config).satisfiable == expected


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_parsat_matches_seqsat_with_conflicts(seed):
    sigma = add_random_conflicts(
        random_gfds(8, max_pattern_nodes=4, max_literals=3, seed=seed),
        num_conflicts=4,
        seed=seed,
    )
    expected = seq_sat(sigma).satisfiable
    assert par_sat(sigma, RuntimeConfig(workers=3)).satisfiable == expected


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from([1, 2, 4]))
def test_parimp_matches_seqimp(seed, workers):
    sigma = random_gfds(
        8, max_pattern_nodes=4, max_literals=3, seed=seed, consistent=False
    )
    phi = random_gfds(
        1, max_pattern_nodes=4, max_literals=3, seed=seed + 77, consistent=False
    )[0]
    expected = seq_imp(sigma, phi).implied
    config = RuntimeConfig(workers=workers)
    assert par_imp(sigma, phi, config).implied == expected
    assert par_imp_np(sigma, phi, config).implied == expected
    assert par_imp_nb(sigma, phi, config).implied == expected


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10_000))
def test_parimp_member_of_sigma_implied(seed):
    sigma = random_gfds(6, max_pattern_nodes=4, max_literals=3, seed=seed, consistent=False)
    phi = sigma[seed % len(sigma)]
    assert par_imp(sigma, phi, RuntimeConfig(workers=2)).implied


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 10_000))
def test_threaded_matches_simulated(seed):
    sigma = random_gfds(
        8, max_pattern_nodes=4, max_literals=3, seed=seed, consistent=False
    )
    simulated = par_sat(sigma, RuntimeConfig(workers=3))
    threaded = par_sat(sigma, RuntimeConfig(workers=3), runtime="threaded")
    assert simulated.satisfiable == threaded.satisfiable
