#!/usr/bin/env python3
"""Parallel scalability demo: ParSat/ParImp speed up as workers grow.

Runs a straggler-heavy satisfiable workload through ParSat (and an
implication instance through ParImp) on the simulated cluster for
p ∈ {1, 2, 4, 8, 16}, printing the virtual running time, the speedup over
p=1 and the contribution of the paper's two optimizations (pipelining,
work-unit splitting). Finishes with a threaded run to show the same verdict
under real concurrency.

Run:  python examples/parallel_scaling.py
"""

from repro.bench.harness import implication_workload
from repro.gfd.generator import straggler_workload
from repro.parallel import (
    RuntimeConfig,
    par_imp,
    par_sat,
    par_sat_nb,
    par_sat_np,
)


def scaling_table() -> None:
    sigma = straggler_workload(seed=11)
    print(f"satisfiability workload: {len(sigma)} GFDs (satisfiable, straggler-heavy)")
    print(f"{'p':>3}  {'ParSat':>9}  {'speedup':>7}  {'no-pipeline':>11}  {'no-split':>9}")
    baseline = None
    for p in (1, 2, 4, 8, 16):
        config = RuntimeConfig(workers=p)
        full = par_sat(sigma, config)
        assert full.satisfiable
        no_pipeline = par_sat_np(sigma, config)
        no_split = par_sat_nb(sigma, config)
        if baseline is None:
            baseline = full.virtual_seconds
        print(
            f"{p:>3}  {full.virtual_seconds:>8.1f}s  {baseline / full.virtual_seconds:>6.1f}x"
            f"  {no_pipeline.virtual_seconds:>10.1f}s  {no_split.virtual_seconds:>8.1f}s"
        )


def implication_scaling() -> None:
    workload = implication_workload(seed=11)
    print(f"\nimplication workload: |Σ|={len(workload.sigma)}, φ={workload.phi.name}")
    print(f"{'p':>3}  {'ParImp':>9}  {'speedup':>7}")
    baseline = None
    for p in (1, 4, 16):
        result = par_imp(workload.sigma, workload.phi, RuntimeConfig(workers=p))
        if baseline is None:
            baseline = result.virtual_seconds
        print(f"{p:>3}  {result.virtual_seconds:>8.1f}s  {baseline / result.virtual_seconds:>6.1f}x")


def trace_demo() -> None:
    """Visualize one simulated run: stragglers and how splitting breaks
    them apart across workers."""
    from repro.eq.eqrelation import EqRelation
    from repro.gfd import build_canonical_graph
    from repro.parallel import SimulatedCluster, Trace, UnitContext, render_gantt, summarize
    from repro.reasoning.enforce import EnforcementEngine
    from repro.reasoning.workunits import generate_pruned_work_units

    sigma = straggler_workload(
        num_anchor=1, num_seekers=2, num_background=15, anchor_size=9,
        seeker_length=4, seed=11,
    )
    canonical = build_canonical_graph(sigma)
    units = generate_pruned_work_units(sigma, canonical.graph)
    context = UnitContext(canonical.graph, canonical.gfds)
    engine = EnforcementEngine(EqRelation(), canonical.gfds)
    trace = Trace()
    SimulatedCluster(RuntimeConfig(workers=4, ttl_seconds=0.2)).run(
        units, context, engine, trace=trace
    )
    print("\n=== execution trace (p=4, TTL=0.2s) ===")
    print(render_gantt(trace, width=64))
    print(summarize(trace, top=3))


def threaded_parity() -> None:
    sigma = straggler_workload(num_anchor=1, num_seekers=2, num_background=20, seed=11)
    simulated = par_sat(sigma, RuntimeConfig(workers=4))
    threaded = par_sat(sigma, RuntimeConfig(workers=4), runtime="threaded")
    print(
        f"\nthreaded parity: simulated verdict={simulated.satisfiable}, "
        f"threaded verdict={threaded.satisfiable} "
        f"(threads took {threaded.wall_seconds:.2f}s wall)"
    )
    assert simulated.satisfiable == threaded.satisfiable


def main() -> None:
    scaling_table()
    implication_scaling()
    trace_demo()
    threaded_parity()
    print("\nParallel scaling demo complete.")


if __name__ == "__main__":
    main()
