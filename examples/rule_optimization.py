#!/usr/bin/env python3
"""Rule-set optimization with implication checking.

The paper motivates the implication analysis as an optimizer: GFDs entailed
by the rest of a (mined) rule set are redundant, and removing them speeds
up every downstream use — error detection in particular, whose cost is
dominated by pattern matching per rule.

This example mines a rule set from a synthetic DBpedia-style graph, plants
redundant rules (duplicates under renaming, plus a rule derivable from two
others), computes a cover with ``minimal_cover``, and shows that error
detection over the cover finds exactly the same violations, faster.

Run:  python examples/rule_optimization.py
"""

import time

from repro import lit_eq, make_gfd, make_pattern, seq_imp
from repro.datasets import dbpedia_like
from repro.gfd.generator import mine_gfds
from repro.reasoning import detect_errors, minimal_cover


def plant_redundancies(sigma):
    """Append rules that are implied by the existing ones."""
    planted = list(sigma)

    # (a) A syntactic duplicate of the first rule under variable renaming —
    # the most common artifact of pattern miners.
    first = sigma[0]
    rename = {var: f"r_{var}" for var in first.pattern.variables}
    nodes = {rename[var]: first.pattern.label_of(var) for var in first.pattern.variables}
    edges = [(rename[e.src], rename[e.dst], e.label) for e in first.pattern.edges]
    remap = lambda lit: type(lit)(*(
        rename.get(value, value) if isinstance(value, str) and value in rename else value
        for value in lit.__dict__.values()
    ))
    duplicate = make_gfd(
        make_pattern(nodes, edges),
        [remap(l) for l in first.antecedent],
        [remap(l) for l in first.consequent],
        name="planted_duplicate",
    )
    planted.append(duplicate)

    # (b) A transitively-derivable rule: A=1 -> B=1 and B=1 -> C=1 entail
    # A=1 -> C=1 on the same pattern shape.
    base = make_pattern({"u": "type0"})
    planted.append(make_gfd(base, [lit_eq("u", "S", 1)], [lit_eq("u", "T", 1)], name="step1"))
    base2 = make_pattern({"u": "type0"})
    planted.append(make_gfd(base2, [lit_eq("u", "T", 1)], [lit_eq("u", "U", 1)], name="step2"))
    base3 = make_pattern({"u": "type0"})
    planted.append(
        make_gfd(base3, [lit_eq("u", "S", 1)], [lit_eq("u", "U", 1)], name="planted_transitive")
    )
    return planted


def main() -> None:
    graph = dbpedia_like(num_nodes=600, seed=3)
    mined = mine_gfds(graph, 25, seed=3)
    sigma = plant_redundancies(mined)
    print(f"rule set: {len(sigma)} GFDs ({len(sigma) - len(mined)} planted)")

    # Sanity: the planted rules are indeed implied by the others.
    for name in ("planted_duplicate", "planted_transitive"):
        phi = next(gfd for gfd in sigma if gfd.name == name)
        rest = [gfd for gfd in sigma if gfd.name != name]
        verdict = seq_imp(rest, phi)
        print(f"  Σ\\{{{name}}} |= {name}? {verdict.implied} ({verdict.reason})")

    cover = minimal_cover(sigma)
    print(
        f"cover: {len(cover.cover)} GFDs kept, {len(cover.removed)} removed "
        f"({cover.reduction:.0%} reduction, {cover.checks} implication checks)"
    )
    removed_names = {gfd.name for gfd in cover.removed}
    assert "planted_duplicate" in removed_names
    assert "planted_transitive" in removed_names

    # Downstream payoff: error detection over the cover is cheaper and
    # finds the same violations.
    started = time.perf_counter()
    all_violations = detect_errors(graph, sigma)
    full_time = time.perf_counter() - started
    started = time.perf_counter()
    cover_violations = detect_errors(graph, cover.cover)
    cover_time = time.perf_counter() - started
    print(
        f"error detection: full set {len(all_violations)} violations in {full_time * 1000:.0f} ms, "
        f"cover {len(cover_violations)} violations in {cover_time * 1000:.0f} ms"
    )
    witnesses = lambda violations: {
        (v.gfd_name, tuple(sorted(v.assignment.items()))) for v in violations
        if not v.gfd_name.startswith("planted") and not v.gfd_name.startswith("step")
    }
    assert witnesses(cover_violations) <= witnesses(all_violations)
    print("cover preserves detection results.")


if __name__ == "__main__":
    main()
