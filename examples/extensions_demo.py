#!/usr/bin/env python3
"""The paper's Section-IX extensions in action: predicates and keys.

1. **Built-in predicates** (≤, <, ≥, >, ≠): validating a rule set about
   speed limits where interval bounds interact — ``x.speed >= 130`` from
   one rule and ``x.speed < 90`` from another conflict only when a third
   rule makes both apply to the same entity.
2. **GED keys** (id literals): entity resolution where two `person` copies
   merge because they share a passport number, and the *merged* entity
   exposes a pattern that no individual copy matched (graph coercion).

Run:  python examples/extensions_demo.py
"""

from repro import parse_gfds
from repro.extensions import ext_seq_imp, ext_seq_sat, ged_satisfiable, key_gfd
from repro.gfd import make_pattern
from repro.gfd.literals import eq as lit_eq


def predicate_demo() -> None:
    print("=== Built-in predicates (<=, <, >=, >, !=) ===")
    # Highway rules: autobahn sections allow >= 130, urban sections < 90.
    # A section tagged both ways is a contradiction.
    rules = parse_gfds(
        """
        gfd autobahn { s: section; t: autobahn_tag; s -[zone]-> t; then s.limit >= 130; }
        gfd urban    { s: section; u: urban_tag;    s -[zone]-> u; then s.limit < 90;  }
        """
    )
    result = ext_seq_sat(rules)
    print(f"autobahn+urban rules satisfiable? {result.satisfiable}")
    assert result.satisfiable  # separate sections: no clash

    both = parse_gfds(
        """
        gfd mixed {
            s: section; t: autobahn_tag; u: urban_tag;
            s -[zone]-> t; s -[zone]-> u;
            then s.limit >= 130, s.limit < 90;
        }
        """
    )
    conflicted = ext_seq_sat(both)
    print(f"section in both zones satisfiable? {conflicted.satisfiable}")
    print(f"  conflict: {conflicted.conflict_reason}")
    assert not conflicted.satisfiable

    # Implication with bounds: a tighter bound implies a looser one.
    phi = parse_gfds("gfd p { s: section; when s.limit < 90; then s.limit < 130; }")[0]
    verdict = ext_seq_imp([], phi)
    print(f"limit < 90 |= limit < 130? {verdict.implied} ({verdict.reason})")
    assert verdict.implied


def keys_demo() -> None:
    print("\n=== GED keys (id literals, graph coercion) ===")
    # Key: persons sharing a passport number are the same entity.
    passport_key = key_gfd(
        make_pattern({"x": "person", "y": "person"}),
        [lit_eq("x", "passport", 4711), lit_eq("y", "passport", 4711)],
        "x",
        "y",
        name="passport_key",
    )
    # Two person records (different sources) with the same passport; one is
    # employed, the other is flagged as a benefits claimant; a compliance
    # rule forbids the same entity doing both.
    facts = parse_gfds(
        """
        gfd employed {
            p: person; e: employer; j: payroll_tag;
            p -[works_at]-> e; p -[flag]-> j;
            then p.passport = 4711;
        }
        gfd claiming {
            q: person; b: benefit; k: claims_tag;
            q -[claims]-> b; q -[flag]-> k;
            then q.passport = 4711;
        }
        gfd compliance {
            p: person; e: employer; b: benefit;
            p -[works_at]-> e; p -[claims]-> b;
            when p.passport = 4711;
            then false;
        }
        """
    )
    without_key = ged_satisfiable(facts)
    print(f"records without the key satisfiable? {without_key.satisfiable}")
    assert without_key.satisfiable  # two separate persons: no violation

    with_key = ged_satisfiable(facts + [passport_key])
    print(f"records with the passport key satisfiable? {with_key.satisfiable}")
    print(f"  reason: {with_key.reason}")
    print(f"  chase rounds: {with_key.stats.rounds}, coercions: {with_key.stats.coercions}")
    assert not with_key.satisfiable  # merged entity works AND claims


def main() -> None:
    predicate_demo()
    keys_demo()
    print("\nExtensions demo complete.")


if __name__ == "__main__":
    main()
