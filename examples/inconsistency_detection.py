#!/usr/bin/env python3
"""Error detection in a knowledge graph with GFDs (paper Example 1).

Builds a small DBpedia-style knowledge graph seeded with the paper's
real-life inconsistencies, then

1. validates the rule set itself with satisfiability checking (a "dirty"
   rule set would flag spurious errors — this is the paper's primary
   motivation for the satisfiability analysis), and
2. runs violation detection, catching:

   * ``ϕ1`` — Bamburi airport is located in Bamburi, yet Bamburi is
     recorded as part of the airport (cyclic place containment);
   * ``ϕ2`` — a tank with two distinct topSpeed values (24.076 / 33.336);
   * ``ϕ3`` — a president and vice president of the same country with
     different nationalities (Botswana vs Tswana).

Run:  python examples/inconsistency_detection.py
"""

from repro import PropertyGraph, parse_gfds, seq_sat
from repro.reasoning import detect_errors


def build_dirty_knowledge_graph() -> PropertyGraph:
    graph = PropertyGraph()

    # --- phi1's violation: cyclic locateIn/partOf between two places.
    airport = graph.add_node("place", {"name": "Bamburi airport"})
    bamburi = graph.add_node("place", {"name": "Bamburi"})
    graph.add_edge(airport, bamburi, "locateIn")
    graph.add_edge(bamburi, airport, "partOf")

    # A clean pair for contrast (no partOf back-edge).
    edinburgh = graph.add_node("place", {"name": "Edinburgh"})
    scotland = graph.add_node("place", {"name": "Scotland"})
    graph.add_edge(edinburgh, scotland, "locateIn")

    # --- phi2's violation: one tank, two topSpeed values.
    tank = graph.add_node("tank", {"name": "tank"})
    speed_a = graph.add_node("speed", {"val": 24.076})
    speed_b = graph.add_node("speed", {"val": 33.336})
    graph.add_edge(tank, speed_a, "topSpeed")
    graph.add_edge(tank, speed_b, "topSpeed")

    # A car with a single (repeated) top speed — not a violation.
    car = graph.add_node("car", {"name": "roadster"})
    speed_c = graph.add_node("speed", {"val": 200})
    graph.add_edge(car, speed_c, "topSpeed")

    # --- phi3's violation: president and vice president of Botswana with
    # mismatched nationality values.
    president = graph.add_node("president", {"c": "Botswana"})
    vice = graph.add_node("vice_president", {"c": "Botswana"})
    nat_a = graph.add_node("nationality", {"val": "Botswana"})
    nat_b = graph.add_node("nationality", {"val": "Tswana"})
    graph.add_edge(president, nat_a, "nationality")
    graph.add_edge(vice, nat_b, "nationality")
    return graph


def build_rules():
    return parse_gfds(
        """
        # phi1: a place located in another place must not contain it.
        gfd phi1 {
            x: place; y: place;
            x -[locateIn]-> y;
            y -[partOf]-> x;
            then false;
        }

        # phi2: topSpeed is a functional property (x is a wildcard: any
        # entity type may carry a top speed).
        gfd phi2 {
            x: _; y: speed; z: speed;
            x -[topSpeed]-> y;
            x -[topSpeed]-> z;
            then y.val = z.val;
        }

        # phi3: president and vice president of the same country share a
        # nationality value.
        gfd phi3 {
            x: president; y: vice_president; z: nationality; w: nationality;
            x -[nationality]-> z;
            y -[nationality]-> w;
            when x.c = y.c;
            then z.val = w.val;
        }
        """
    )


def main() -> None:
    rules = build_rules()

    # Step 1: validate the rule set before trusting its verdicts.
    #
    # A subtlety from the paper's definitions: a *model* of Σ must contain a
    # match of every pattern in Σ, so a forbidden-pattern rule like phi1
    # (``∅ → false``: "this cyclic shape must not occur") can never be part
    # of a satisfiable set — it asserts its own pattern's absence. The
    # consistency check therefore covers the implicational rules; the
    # forbidden-pattern rules are consistency-neutral by construction.
    checkable = [rule for rule in rules if not rule.has_false_consequent()]
    sat = seq_sat(checkable)
    print(f"rule set satisfiable (safe to use)? {sat.satisfiable}")
    assert sat.satisfiable, "dirty rule set — fix the rules before detecting errors"

    # Step 2: detect violations in the (dirty) knowledge graph.
    graph = build_dirty_knowledge_graph()
    print(f"knowledge graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    violations = detect_errors(graph, rules)
    print(f"found {len(violations)} violation(s):")
    for violation in violations:
        assignment = violation.assignment
        names = {
            var: graph.attrs(node).get("name", graph.attrs(node).get("val", node))
            for var, node in assignment.items()
        }
        print(f"  {violation.gfd_name}: {names}")

    detected_rules = {violation.gfd_name for violation in violations}
    assert detected_rules == {"phi1", "phi2", "phi3"}, detected_rules
    print("all three seeded inconsistencies caught; clean entities untouched.")


if __name__ == "__main__":
    main()
