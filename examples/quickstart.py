#!/usr/bin/env python3
"""Quickstart: define GFDs, check satisfiability and implication.

Reproduces the paper's running examples:

* Example 2 — two GFDs that are individually satisfiable but conflict when
  put together (``ϕ5``/``ϕ6`` and ``ϕ7``/``ϕ8``);
* Example 8 — an implication ``Σ |= ϕ13`` that holds only because two GFDs
  interact, and ``Σ |= ϕ14`` that holds because the antecedent is
  inconsistent with Σ.

Run:  python examples/quickstart.py
"""

from repro import parse_gfds, seq_sat, seq_imp, extract_model, is_model_of


def satisfiability_demo() -> None:
    print("=== Satisfiability (paper Example 2) ===")
    # Two GFDs over the same single-wildcard-node pattern requiring A=0 and
    # A=1 simultaneously: no graph can satisfy both.
    sigma = parse_gfds(
        """
        gfd phi5 { x: _; then x.A = 0; }
        gfd phi6 { x: _; then x.A = 1; }
        """
    )
    result = seq_sat(sigma)
    print(f"{{phi5, phi6}} satisfiable? {result.satisfiable}")
    print(f"  conflict witness: {result.conflict}")

    # GFDs with *different* patterns can still interact through shared
    # labels (Q6/Q7 of the paper).
    sigma2 = parse_gfds(
        """
        gfd phi7 {
            x: a; y: b; z: b; w: c;
            x -[p]-> y; x -[p]-> z; x -[p]-> w;
            then x.A = 0, y.B = 1;
        }
        gfd phi8 {
            x: a; y: b; z: c; w: c;
            x -[p]-> y; x -[p]-> z; x -[p]-> w;
            when y.B = 1;
            then x.A = 1;
        }
        """
    )
    print(f"phi7 alone satisfiable? {seq_sat([sigma2[0]]).satisfiable}")
    print(f"phi8 alone satisfiable? {seq_sat([sigma2[1]]).satisfiable}")
    print(f"{{phi7, phi8}} satisfiable? {seq_sat(sigma2).satisfiable}")

    # For a satisfiable set we can materialize an actual model (Theorem 1's
    # bounded population of the canonical graph) and verify it.
    single = seq_sat([sigma2[0]])
    model = extract_model(single)
    print(f"extracted model: {model} — is a model of phi7? {is_model_of(model, [sigma2[0]])}")


def implication_demo() -> None:
    print("\n=== Implication (paper Example 8) ===")
    sigma = parse_gfds(
        """
        gfd phi11 { x: a; y: b; x -[p]-> y; then x.A = 1; }
        gfd phi12 { x: a; y: c; x -[p]-> y; when x.A = 1, y.B = 2; then y.C = 2; }
        """
    )
    phi13 = parse_gfds(
        """
        gfd phi13 {
            x: a; y: b; z: c; w: c;
            x -[p]-> y; x -[p]-> z; x -[p]-> w;
            when z.B = 2;
            then z.C = 2;
        }
        """
    )[0]
    result = seq_imp(sigma, phi13)
    print(f"Sigma |= phi13? {result.implied} (reason: {result.reason})")
    print(f"  phi11 alone: {seq_imp([sigma[0]], phi13).implied}")
    print(f"  phi12 alone: {seq_imp([sigma[1]], phi13).implied}")

    phi14 = parse_gfds(
        """
        gfd phi14 {
            x: a; y: b; z: c; w: c;
            x -[p]-> y; x -[p]-> z; x -[p]-> w;
            when x.A = 0;
            then z.C = 2;
        }
        """
    )[0]
    result14 = seq_imp(sigma, phi14)
    print(f"Sigma |= phi14? {result14.implied} (reason: {result14.reason})")
    print(f"  conflict witness: {result14.conflict}")


def main() -> None:
    satisfiability_demo()
    implication_demo()
    print("\nQuickstart complete.")


if __name__ == "__main__":
    main()
