#!/usr/bin/env python3
"""Quickstart: define GFDs, check satisfiability and implication.

Reproduces the paper's running examples:

* Example 2 — two GFDs that are individually satisfiable but conflict when
  put together (``ϕ5``/``ϕ6`` and ``ϕ7``/``ϕ8``);
* Example 8 — an implication ``Σ |= ϕ13`` that holds only because two GFDs
  interact, and ``Σ |= ϕ14`` that holds because the antecedent is
  inconsistent with Σ.

It also peeks under the hood of the matching hot path: every graph compiles
a read-only ``GraphIndex`` (label-grouped adjacency) on demand, and every
pattern compiles a reusable ``MatchPlan`` against it, shared by all the
pivoted matcher runs the reasoning algorithms spawn.

Run:  python examples/quickstart.py
"""

from repro import parse_gfds, seq_sat, seq_imp, extract_model, is_model_of
from repro.gfd.pattern import make_pattern
from repro.graph.graph import PropertyGraph
from repro.matching.homomorphism import MatcherRun
from repro.matching.plan import get_plan


def satisfiability_demo() -> None:
    print("=== Satisfiability (paper Example 2) ===")
    # Two GFDs over the same single-wildcard-node pattern requiring A=0 and
    # A=1 simultaneously: no graph can satisfy both.
    sigma = parse_gfds(
        """
        gfd phi5 { x: _; then x.A = 0; }
        gfd phi6 { x: _; then x.A = 1; }
        """
    )
    result = seq_sat(sigma)
    print(f"{{phi5, phi6}} satisfiable? {result.satisfiable}")
    print(f"  conflict witness: {result.conflict}")

    # GFDs with *different* patterns can still interact through shared
    # labels (Q6/Q7 of the paper).
    sigma2 = parse_gfds(
        """
        gfd phi7 {
            x: a; y: b; z: b; w: c;
            x -[p]-> y; x -[p]-> z; x -[p]-> w;
            then x.A = 0, y.B = 1;
        }
        gfd phi8 {
            x: a; y: b; z: c; w: c;
            x -[p]-> y; x -[p]-> z; x -[p]-> w;
            when y.B = 1;
            then x.A = 1;
        }
        """
    )
    print(f"phi7 alone satisfiable? {seq_sat([sigma2[0]]).satisfiable}")
    print(f"phi8 alone satisfiable? {seq_sat([sigma2[1]]).satisfiable}")
    print(f"{{phi7, phi8}} satisfiable? {seq_sat(sigma2).satisfiable}")

    # For a satisfiable set we can materialize an actual model (Theorem 1's
    # bounded population of the canonical graph) and verify it.
    single = seq_sat([sigma2[0]])
    model = extract_model(single)
    print(f"extracted model: {model} — is a model of phi7? {is_model_of(model, [sigma2[0]])}")


def implication_demo() -> None:
    print("\n=== Implication (paper Example 8) ===")
    sigma = parse_gfds(
        """
        gfd phi11 { x: a; y: b; x -[p]-> y; then x.A = 1; }
        gfd phi12 { x: a; y: c; x -[p]-> y; when x.A = 1, y.B = 2; then y.C = 2; }
        """
    )
    phi13 = parse_gfds(
        """
        gfd phi13 {
            x: a; y: b; z: c; w: c;
            x -[p]-> y; x -[p]-> z; x -[p]-> w;
            when z.B = 2;
            then z.C = 2;
        }
        """
    )[0]
    result = seq_imp(sigma, phi13)
    print(f"Sigma |= phi13? {result.implied} (reason: {result.reason})")
    print(f"  phi11 alone: {seq_imp([sigma[0]], phi13).implied}")
    print(f"  phi12 alone: {seq_imp([sigma[1]], phi13).implied}")

    phi14 = parse_gfds(
        """
        gfd phi14 {
            x: a; y: b; z: c; w: c;
            x -[p]-> y; x -[p]-> z; x -[p]-> w;
            when x.A = 0;
            then z.C = 2;
        }
        """
    )[0]
    result14 = seq_imp(sigma, phi14)
    print(f"Sigma |= phi14? {result14.implied} (reason: {result14.reason})")
    print(f"  conflict witness: {result14.conflict}")


def matching_internals_demo() -> None:
    print("\n=== Under the hood: GraphIndex + MatchPlan ===")
    graph = PropertyGraph()
    people = [graph.add_node("person") for _ in range(4)]
    city = graph.add_node("city")
    for i, person in enumerate(people):
        graph.add_edge(person, people[(i + 1) % len(people)], "knows")
        graph.add_edge(person, city, "lives_in")

    # The compiled index is built lazily and then *maintained*: topology
    # mutations are journaled and absorbed in place on the next index()
    # call (O(|delta|)), so this object — and the plans cached on it —
    # survives graph growth.
    index = graph.index()
    print(f"compiled index: {index}")
    lives = index.label_id("lives_in")
    print(f"in-neighbors of the city via 'lives_in': {index.in_neighbors(city, lives)}")

    # One plan per (pattern, index); every pivoted run reuses it.
    pattern = make_pattern(
        {"x": "person", "y": "person", "z": "city"},
        [("x", "y", "knows"), ("y", "z", "lives_in")],
    )
    plan = get_plan(pattern, graph)
    total = 0
    for pivot in index.nodes_with_label("person"):
        run = MatcherRun(pattern, graph, preassigned={"x": pivot}, plan=plan)
        total += sum(1 for _ in run.matches())
    print(f"pivoted fan-out over one shared plan found {total} matches")


def backend_selection_demo() -> None:
    print("\n=== Execution backends: simulated / threaded / process ===")
    from repro.gfd.generator import random_gfds
    from repro.parallel import RuntimeConfig, available_backends, par_sat

    sigma = random_gfds(20, 4, 3, seed=3)
    config = RuntimeConfig(workers=4)
    print(f"available backends: {', '.join(available_backends())}")
    for backend in available_backends():
        result = par_sat(sigma, config, backend=backend)
        # The simulated backend reports deterministic *virtual* seconds
        # (the paper's cost model); threaded and process report wall time.
        clock = (
            f"virtual {result.virtual_seconds:.3f}s"
            if backend == "simulated"
            else f"wall {result.wall_seconds:.3f}s"
        )
        print(
            f"  {backend:<9} satisfiable={result.satisfiable} "
            f"units={result.outcome.units_executed} ({clock})"
        )
    # The process backend forks workers against the prebuilt GraphIndex
    # and merges their ΔEq deltas — use it to put real cores on big Σ:
    #   par_sat(sigma, RuntimeConfig(workers=8), backend="process")
    #   par_imp(sigma, phi, RuntimeConfig(workers=8), backend="process")
    # or from the CLI:  gfd-reason sat rules.gfd --parallel 8 --backend process


def scheduler_demo() -> None:
    print("\n=== Scheduling: pivot affinity + adaptive ΔEq batching ===")
    from repro.gfd.generator import delta_hub_workload
    from repro.parallel import RuntimeConfig, par_sat

    # Delta-heavy, hub-skewed: every spoke's match re-derives hub-level
    # ΔEq facts, so broadcast volume — not matching — dominates.
    sigma = delta_hub_workload(
        num_hubs=3, spokes_per_hub=8, num_writers=4, num_pairers=2,
        num_background=6,
    )
    config = RuntimeConfig(workers=3)
    for label, cfg in (("scheduler", config), ("ablation ", config.without_affinity())):
        outcome = par_sat(sigma, cfg, backend="process").outcome
        print(
            f"  {label}: sync_rounds={outcome.sync_rounds} "
            f"broadcast_volume={outcome.broadcast_volume} "
            f"affinity_hits={outcome.affinity_hits} "
            f"final_batches={outcome.batch_sizes}"
        )
    # Units sharing a pivot neighborhood stick to one worker replica
    # (warm caches, duplicate-ΔEq absorption); batch sizes adapt per
    # worker to observed round-trip cost vs ΔEq payload. The ablation
    # (RuntimeConfig.without_affinity(), or --no-affinity on the CLI)
    # is PR-2's fixed-batch FIFO dispatch.


def main() -> None:
    satisfiability_demo()
    implication_demo()
    matching_internals_demo()
    backend_selection_demo()
    scheduler_demo()
    print("\nQuickstart complete.")


if __name__ == "__main__":
    main()
