"""Property-graph substrate: graphs, neighborhoods, and IO."""

from .bitset import NodeBitset
from .delta import AddEdge, AddNode, SetLabel, replay
from .elements import WILDCARD, AttrValue, Edge, Node, NodeId, is_wildcard
from .graph import PropertyGraph
from .index import GraphIndex
from .neighborhood import (
    bfs_hops,
    component_of,
    connected_components,
    eccentricity,
    is_connected,
    neighborhood,
    shortest_path_length,
    within_hops,
)
from .io import dump_graph, dumps_graph, graph_from_dict, graph_to_dict, load_graph, loads_graph
from .edgelist import dump_edgelist, dumps_edgelist, load_edgelist, loads_edgelist

__all__ = [
    "AddEdge",
    "AddNode",
    "SetLabel",
    "replay",
    "WILDCARD",
    "AttrValue",
    "Edge",
    "Node",
    "NodeId",
    "is_wildcard",
    "PropertyGraph",
    "GraphIndex",
    "NodeBitset",
    "bfs_hops",
    "component_of",
    "connected_components",
    "eccentricity",
    "is_connected",
    "neighborhood",
    "shortest_path_length",
    "within_hops",
    "dump_graph",
    "dumps_graph",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
    "loads_graph",
    "dump_edgelist",
    "dumps_edgelist",
    "load_edgelist",
    "loads_edgelist",
]
