"""JSON (de)serialization for property graphs.

The format is intentionally simple and line-oriented friendly:

.. code-block:: json

    {
      "nodes": [{"id": 0, "label": "person", "attrs": {"name": "ada"}}],
      "edges": [{"src": 0, "dst": 1, "label": "lives_in"}]
    }

Node ids must be JSON-representable (ints or strings).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ..errors import ParseError
from .graph import PropertyGraph


def graph_to_dict(graph: PropertyGraph) -> Dict[str, Any]:
    """Convert *graph* to a plain-dict document."""
    return {
        "nodes": [
            {"id": node.id, "label": node.label, "attrs": dict(node.attrs)}
            for node in graph.node_objects()
        ],
        "edges": [
            {"src": edge.src, "dst": edge.dst, "label": edge.label}
            for edge in graph.edges()
        ],
    }


def graph_from_dict(doc: Dict[str, Any]) -> PropertyGraph:
    """Build a :class:`PropertyGraph` from a document produced by
    :func:`graph_to_dict` (or hand-written in the same shape)."""
    if not isinstance(doc, dict) or "nodes" not in doc:
        raise ParseError("graph document must be a dict with a 'nodes' key")
    graph = PropertyGraph()
    for entry in doc.get("nodes", []):
        try:
            graph.add_node(entry["label"], entry.get("attrs") or {}, node_id=entry["id"])
        except KeyError as exc:
            raise ParseError(f"node entry missing key {exc}") from None
    for entry in doc.get("edges", []):
        try:
            graph.add_edge(entry["src"], entry["dst"], entry["label"])
        except KeyError as exc:
            raise ParseError(f"edge entry missing key {exc}") from None
    return graph


def dump_graph(graph: PropertyGraph, path: Union[str, Path]) -> None:
    """Write *graph* to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(graph_to_dict(graph), handle, indent=2, sort_keys=True)


def load_graph(path: Union[str, Path]) -> PropertyGraph:
    """Read a graph previously written by :func:`dump_graph`."""
    with open(path, "r", encoding="utf-8") as handle:
        return graph_from_dict(json.load(handle))


def dumps_graph(graph: PropertyGraph) -> str:
    """Serialize *graph* to a JSON string."""
    return json.dumps(graph_to_dict(graph), sort_keys=True)


def loads_graph(text: str) -> PropertyGraph:
    """Parse a JSON string produced by :func:`dumps_graph`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from None
    return graph_from_dict(doc)
