"""Topology-mutation deltas for incremental :class:`GraphIndex` upkeep.

:class:`PropertyGraph` records every topology mutation performed *after* an
index has been compiled as one of the plain-data ops below (the *mutation
journal*). When :meth:`PropertyGraph.index` is next called, the journal is
either replayed onto the live index in place — O(|delta|), via
:meth:`repro.graph.index.GraphIndex.apply_delta`, which also keeps any
lazily packed bitset views (label buckets, adjacency groups, the all-nodes
vector; see :mod:`repro.graph.bitset`) current bit-by-bit — or, past the
compaction threshold, discarded in favor of a full O(|G|) recompile.

The ops are :class:`typing.NamedTuple` subclasses on purpose: they unpack
like tuples in the hot replay loops, pickle compactly (the process backend
ships them to standing worker replicas instead of fresh snapshots — whole
ops in shared mode, per-fragment streams via
:meth:`~repro.graph.fragment.Fragmenter.split_delta` when the graph is
fragmented, so each replica receives only the ops its interior + halo can
see), and print readably in diagnostics.

Ops carry everything a *remote replica* needs to replay the mutation on its
own :class:`PropertyGraph` copy (see :func:`replay`), not just what the
index consumes — that is why :class:`AddNode` includes the attribute
mapping even though the index stores no attribute data.
"""

from __future__ import annotations

from typing import Mapping, NamedTuple, Optional, Sequence

from .elements import AttrValue, NodeId


class AddNode(NamedTuple):
    """A node was added: ``add_node(label, attrs, node_id=node_id)``."""

    node_id: NodeId
    label: str
    attrs: Optional[Mapping[str, AttrValue]] = None


class AddEdge(NamedTuple):
    """A directed labeled edge was added (duplicates are never journaled)."""

    src: NodeId
    dst: NodeId
    label: str


class SetLabel(NamedTuple):
    """A node's label changed from *old_label* to *new_label*."""

    node_id: NodeId
    old_label: str
    new_label: str


#: Union of the journal op types (kept as a plain tuple for isinstance).
DELTA_OP_TYPES = (AddNode, AddEdge, SetLabel)


def replay(graph, ops: Sequence[tuple]) -> int:
    """Replay journal *ops* onto another :class:`PropertyGraph` replica.

    Used by standing process-backend workers: the coordinator ships the ops
    its graph accumulated since the last exchange (the whole stream in
    shared-graph mode; the fragment-filtered stream from
    :meth:`~repro.graph.fragment.Fragmenter.split_delta` in fragmented
    mode), the worker replays them here, and the worker's *index* then
    absorbs the same ops through its own journal — one delta path end to
    end, no snapshot re-shipping. The serving layer's
    :class:`~repro.serve.views.SnapshotManager` replays the same ops to
    advance MVCC snapshots between pinned versions. Returns the number of
    ops applied. Ops must be replayed in journal order.
    """
    applied = 0
    for op in ops:
        if isinstance(op, AddNode):
            graph.add_node(op.label, op.attrs, node_id=op.node_id)
        elif isinstance(op, AddEdge):
            graph.add_edge(op.src, op.dst, op.label)
        elif isinstance(op, SetLabel):
            graph.set_node_label(op.node_id, op.new_label)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown delta op {op!r}")
        applied += 1
    return applied
