"""Plain-text graph format: labeled node/edge lists.

Real graph dumps (DBpedia extracts, SNAP social networks) usually arrive
as whitespace-separated node and edge lists. This loader reads a compact
line format — one record per line, ``#`` comments allowed::

    N bamburi_airport place name="Bamburi airport" elevation=12
    N bamburi         place name=Bamburi
    E bamburi_airport bamburi locateIn
    E bamburi bamburi_airport partOf

* ``N <id> <label> [attr=value ...]`` declares a node. Values follow the
  GFD DSL conventions: double-quoted strings (with spaces), integers,
  floats, ``true``/``false``, or bare words.
* ``E <src> <dst> <label>`` declares an edge; endpoints may be declared
  later (forward references are resolved at the end; an endpoint never
  declared gets the wildcard-free default label ``node``).

The writer round-trips everything :class:`~repro.graph.graph.
PropertyGraph` can hold, provided ids and labels contain no whitespace.
"""

from __future__ import annotations

import re
import shlex
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..errors import ParseError
from .elements import AttrValue
from .graph import PropertyGraph

#: Label given to edge endpoints that were never declared with an N line.
DEFAULT_LABEL = "node"

_ATTR = re.compile(r"^([A-Za-z_]\w*)=(.*)$", re.S)


def _parse_value(token: str, line: int) -> AttrValue:
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def loads_edgelist(text: str) -> PropertyGraph:
    """Parse the node/edge-list format from a string."""
    graph = PropertyGraph()
    pending_edges: List[Tuple[str, str, str, int]] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        content = raw.strip()
        if not content or content.startswith("#"):
            continue
        try:
            tokens = shlex.split(content, comments=True)
        except ValueError as exc:
            raise ParseError(f"unbalanced quotes: {exc}", number) from None
        if not tokens:
            continue
        kind = tokens[0]
        if kind == "N":
            if len(tokens) < 3:
                raise ParseError("node line needs: N <id> <label> [attr=value ...]", number)
            node_id, label = tokens[1], tokens[2]
            attrs: Dict[str, AttrValue] = {}
            for token in tokens[3:]:
                match = _ATTR.match(token)
                if not match:
                    raise ParseError(f"bad attribute token {token!r}", number)
                attrs[match.group(1)] = _parse_value(match.group(2), number)
            if graph.has_node(node_id):
                raise ParseError(f"duplicate node id {node_id!r}", number)
            graph.add_node(label, attrs, node_id=node_id)
        elif kind == "E":
            if len(tokens) != 4:
                raise ParseError("edge line needs: E <src> <dst> <label>", number)
            pending_edges.append((tokens[1], tokens[2], tokens[3], number))
        else:
            raise ParseError(f"unknown record kind {kind!r} (use N or E)", number)
    for src, dst, label, _number in pending_edges:
        for endpoint in (src, dst):
            if not graph.has_node(endpoint):
                graph.add_node(DEFAULT_LABEL, node_id=endpoint)
        graph.add_edge(src, dst, label)
    return graph


def load_edgelist(path: Union[str, Path]) -> PropertyGraph:
    """Read a graph from a node/edge-list file."""
    return loads_edgelist(Path(path).read_text(encoding="utf-8"))


def _render_value(value: AttrValue) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    text = str(value)
    if not text or any(ch.isspace() for ch in text) or '"' in text:
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return text


def dumps_edgelist(graph: PropertyGraph) -> str:
    """Serialize *graph* into the node/edge-list format."""
    lines = ["# nodes"]
    for node in sorted(graph.node_objects(), key=lambda n: str(n.id)):
        parts = ["N", str(node.id), node.label]
        for attr in sorted(node.attrs):
            parts.append(f"{attr}={_render_value(node.attrs[attr])}")
        lines.append(" ".join(parts))
    lines.append("# edges")
    for edge in sorted(graph.edges(), key=lambda e: (str(e.src), str(e.dst), e.label)):
        lines.append(f"E {edge.src} {edge.dst} {edge.label}")
    return "\n".join(lines) + "\n"


def dump_edgelist(graph: PropertyGraph, path: Union[str, Path]) -> None:
    """Write *graph* to *path* in the node/edge-list format."""
    Path(path).write_text(dumps_edgelist(graph), encoding="utf-8")
