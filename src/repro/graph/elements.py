"""Basic building blocks of property graphs: nodes, edges, and labels.

The paper's graphs are directed, node- and edge-labeled, and every node may
carry a finite tuple of attributes ``FA(v) = (A1 = a1, ..., An = an)``.
Labels come from an alphabet ``Gamma`` and attribute names from ``Theta``;
we model both as plain strings. The distinguished :data:`WILDCARD` label
(``'_'``) is used by graph *patterns* to match any label; inside a canonical
graph it is kept as an ordinary label (paper, Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Optional

#: Wildcard label usable on pattern nodes and edges. Matches any label when
#: used in a pattern; behaves as a normal label inside canonical graphs.
WILDCARD = "_"

#: Type alias for node identifiers. Any hashable works; the library issues
#: consecutive integers when the caller does not supply ids.
NodeId = Hashable

#: Type alias for attribute values. The paper only requires equality
#: comparisons on constants, so any hashable value is accepted.
AttrValue = Hashable


def is_wildcard(label: str) -> bool:
    """Return True if *label* is the wildcard label ``'_'``."""
    return label == WILDCARD


@dataclass
class Node:
    """A node of a property graph.

    Attributes
    ----------
    id:
        The node identifier, unique within its graph.
    label:
        The node label from ``Gamma``.
    attrs:
        The attribute tuple ``FA(v)`` as a name -> value mapping. Graphs in
        the paper are schemaless: a node need not carry any attribute.
    """

    id: NodeId
    label: str
    attrs: Dict[str, AttrValue] = field(default_factory=dict)

    def has_attr(self, name: str) -> bool:
        """Return True if this node carries attribute *name*."""
        return name in self.attrs

    def get_attr(self, name: str) -> Optional[AttrValue]:
        """Return the value of attribute *name*, or None if absent."""
        return self.attrs.get(name)

    def copy(self) -> "Node":
        """Return a deep-enough copy (attrs dict is copied)."""
        return Node(self.id, self.label, dict(self.attrs))


@dataclass(frozen=True)
class Edge:
    """A directed labeled edge ``src -[label]-> dst``.

    Graphs are multigraphs in the sense that two nodes may be connected by
    several edges with distinct labels; a duplicate (src, dst, label) triple
    is ignored on insertion.
    """

    src: NodeId
    dst: NodeId
    label: str

    def reversed(self) -> "Edge":
        """Return the same edge with endpoints swapped (label kept)."""
        return Edge(self.dst, self.src, self.label)


def format_attrs(attrs: Mapping[str, AttrValue]) -> str:
    """Render an attribute mapping as ``(A=1, B='x')`` for diagnostics."""
    inner = ", ".join(f"{k}={v!r}" for k, v in sorted(attrs.items(), key=lambda kv: str(kv[0])))
    return f"({inner})"
