"""Compiled read-only index over a :class:`PropertyGraph`.

:class:`GraphIndex` is a snapshot of a property graph optimized for the
homomorphism hot path. It interns every label into a dense integer id and
precomputes, CSR-style,

* per-``(node, edge-label)`` neighbor tuples in **both** directions (the
  label-grouped adjacency used by anchor expansion),
* per-node any-label neighbor tuples (deduplicated, edge-insertion order),
* per-node-label node tuples in graph insertion order (deterministic
  label-index scans), and
* in/out degree tables for candidate-strategy cardinality estimates.

Indices are built lazily through :meth:`PropertyGraph.index` and cached on
the graph; every topology mutation (``add_node``/``add_edge``) invalidates
the cache, so a fresh :meth:`~PropertyGraph.index` call always reflects the
current graph. Attribute updates (``set_attr``) do **not** invalidate — the
index stores no attribute data. An index handle taken *before* a mutation
must be discarded: like any snapshot, it is only valid for the version of
the graph it was built from (see :attr:`GraphIndex.version`).

The index also owns the per-pattern :class:`repro.matching.plan.MatchPlan`
cache (:attr:`plan_cache`), keyed weakly by pattern, so one compiled plan is
shared by every :class:`~repro.matching.homomorphism.MatcherRun` spawned
from the same pattern — the fan-out shape of the parallel algorithms.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .elements import NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .graph import PropertyGraph

#: Shared empty adjacency group returned for absent ``(node, label)`` keys.
EMPTY_GROUP: Tuple[NodeId, ...] = ()

#: Sentinel label id for labels that do not occur in the indexed graph.
NO_LABEL = -1


class GraphIndex:
    """An immutable, label-grouped adjacency snapshot of a property graph."""

    __slots__ = (
        "graph",
        "version",
        "nodes",
        "position",
        "node_label_id",
        "edge_labels",
        "out_degree",
        "in_degree",
        "plan_cache",
        "_label_ids",
        "_label_buckets",
        "_label_members",
        "_out",
        "_in",
        "_out_any",
        "_in_any",
        "_out_fanout",
        "_in_fanout",
        "__weakref__",
    )

    def __init__(self, graph: "PropertyGraph") -> None:
        self.graph = graph
        #: The graph mutation counter this snapshot was built at.
        self.version = graph.mutation_count
        #: All node ids in insertion order — the canonical scan order.
        self.nodes: Tuple[NodeId, ...] = tuple(graph._nodes)
        #: node id -> dense position in :attr:`nodes` (for deterministic
        #: re-ordering of externally supplied node sets).
        self.position: Dict[NodeId, int] = {
            node: pos for pos, node in enumerate(self.nodes)
        }
        #: Shared reference to the graph's ``(src, dst) -> labels`` table;
        #: valid while this snapshot is (same version).
        self.edge_labels = graph._edge_labels

        intern: Dict[str, int] = {}

        def intern_label(label: str) -> int:
            lid = intern.get(label)
            if lid is None:
                lid = len(intern)
                intern[label] = lid
            return lid

        #: node id -> interned id of its node label.
        self.node_label_id: Dict[NodeId, int] = {}
        buckets: Dict[int, List[NodeId]] = {}
        for node_id, node in graph._nodes.items():
            lid = intern_label(node.label)
            self.node_label_id[node_id] = lid
            buckets.setdefault(lid, []).append(node_id)

        out: Dict[Tuple[NodeId, int], Tuple[NodeId, ...]] = {}
        in_: Dict[Tuple[NodeId, int], Tuple[NodeId, ...]] = {}
        out_any: Dict[NodeId, Tuple[NodeId, ...]] = {}
        in_any: Dict[NodeId, Tuple[NodeId, ...]] = {}
        out_degree: Dict[NodeId, int] = {}
        in_degree: Dict[NodeId, int] = {}
        for node_id, edges in graph._out.items():
            groups: Dict[int, List[NodeId]] = {}
            ordered: List[NodeId] = []
            seen = set()
            for edge in edges:
                lid = intern_label(edge.label)
                groups.setdefault(lid, []).append(edge.dst)
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    ordered.append(edge.dst)
            for lid, neighbors in groups.items():
                out[(node_id, lid)] = tuple(neighbors)
            out_any[node_id] = tuple(ordered)
            out_degree[node_id] = len(edges)
        for node_id, edges in graph._in.items():
            groups = {}
            ordered = []
            seen = set()
            for edge in edges:
                lid = intern_label(edge.label)
                groups.setdefault(lid, []).append(edge.src)
                if edge.src not in seen:
                    seen.add(edge.src)
                    ordered.append(edge.src)
            for lid, neighbors in groups.items():
                in_[(node_id, lid)] = tuple(neighbors)
            in_any[node_id] = tuple(ordered)
            in_degree[node_id] = len(edges)

        self._label_ids = intern
        self._label_buckets: Dict[int, Tuple[NodeId, ...]] = {
            lid: tuple(nodes) for lid, nodes in buckets.items()
        }
        #: label string -> node id set, shared with the graph (membership
        #: tests during candidate intersection).
        self._label_members = graph._by_label
        self._out = out
        self._in = in_
        self._out_any = out_any
        self._in_any = in_any
        self.out_degree = out_degree
        self.in_degree = in_degree
        # Lazily filled average-group-size caches (cardinality estimates).
        self._out_fanout: Dict[Optional[int], float] = {}
        self._in_fanout: Dict[Optional[int], float] = {}
        #: Per-pattern compiled :class:`MatchPlan`s (weakly keyed).
        self.plan_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------
    # Label interning
    # ------------------------------------------------------------------
    def label_id(self, label: str) -> int:
        """Interned id of *label*, or :data:`NO_LABEL` if absent here."""
        return self._label_ids.get(label, NO_LABEL)

    @property
    def num_labels(self) -> int:
        return len(self._label_ids)

    # ------------------------------------------------------------------
    # Adjacency groups
    # ------------------------------------------------------------------
    def out_neighbors(self, node: NodeId, label_id: Optional[int]) -> Tuple[NodeId, ...]:
        """Targets of ``node``'s out-edges with *label_id* (``None`` = any).

        Any-label groups are deduplicated in first-occurrence order; labeled
        groups are duplicate-free by construction (edge triples are unique).
        """
        if label_id is None:
            return self._out_any.get(node, EMPTY_GROUP)
        return self._out.get((node, label_id), EMPTY_GROUP)

    def in_neighbors(self, node: NodeId, label_id: Optional[int]) -> Tuple[NodeId, ...]:
        """Sources of ``node``'s in-edges with *label_id* (``None`` = any)."""
        if label_id is None:
            return self._in_any.get(node, EMPTY_GROUP)
        return self._in.get((node, label_id), EMPTY_GROUP)

    # ------------------------------------------------------------------
    # Label index
    # ------------------------------------------------------------------
    def nodes_with_label_id(self, label_id: int) -> Tuple[NodeId, ...]:
        """Nodes carrying the label *label_id*, in graph insertion order."""
        return self._label_buckets.get(label_id, EMPTY_GROUP)

    def nodes_with_label(self, label: str) -> Tuple[NodeId, ...]:
        return self.nodes_with_label_id(self.label_id(label))

    def label_members(self, label: str):
        """Membership set for *label* (O(1) tests; shared with the graph)."""
        members = self._label_members.get(label)
        return members if members is not None else frozenset()

    def label_count(self, label: str) -> int:
        return len(self.nodes_with_label(label))

    # ------------------------------------------------------------------
    # Cardinality estimates
    # ------------------------------------------------------------------
    def avg_out_fanout(self, label_id: Optional[int]) -> float:
        """Average size of a non-empty ``(node, label)`` out-neighbor group.

        The standard per-edge-label branch-factor estimate: total edges with
        that label divided by the number of source nodes carrying at least
        one such edge (``None`` = any label, i.e. mean out-degree over nodes
        with out-edges). Nodes without the group contribute no candidates at
        run time, so the conditional mean matches the surviving branches.
        """
        if None not in self._out_fanout:
            self._fill_fanouts(self._out, self._out_any, self._out_fanout)
        return self._out_fanout.get(label_id, 0.0)

    def avg_in_fanout(self, label_id: Optional[int]) -> float:
        """Average size of a non-empty ``(node, label)`` in-neighbor group."""
        if None not in self._in_fanout:
            self._fill_fanouts(self._in, self._in_any, self._in_fanout)
        return self._in_fanout.get(label_id, 0.0)

    @staticmethod
    def _fill_fanouts(
        grouped: Dict[Tuple[NodeId, int], Tuple[NodeId, ...]],
        any_label: Dict[NodeId, Tuple[NodeId, ...]],
        cache: Dict[Optional[int], float],
    ) -> None:
        """One pass over the adjacency groups fills every label's average
        (plus the any-label entry under ``None``), so repeated queries —
        plan-aware pivot selection touches one label per anchor step —
        never rescan the index."""
        totals: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        for (_, lid), neighbors in grouped.items():
            totals[lid] = totals.get(lid, 0) + len(neighbors)
            counts[lid] = counts.get(lid, 0) + 1
        for lid, total in totals.items():
            cache[lid] = total / counts[lid]
        any_sizes = [len(neighbors) for neighbors in any_label.values() if neighbors]
        cache[None] = sum(any_sizes) / len(any_sizes) if any_sizes else 0.0

    # ------------------------------------------------------------------
    # Serialization (process-backend worker shipping)
    # ------------------------------------------------------------------
    def to_snapshot(self) -> Dict[str, object]:
        """The precomputed tables as a picklable plain-data snapshot.

        The snapshot carries everything that costs O(|G|) to recompute;
        tables shared with the graph (``edge_labels``, label membership
        sets) and caches (fan-outs, plans) are rebound/refilled on the
        receiving side by :meth:`from_snapshot`.
        """
        return {
            "version": self.version,
            "label_ids": dict(self._label_ids),
            "node_label_id": dict(self.node_label_id),
            "label_buckets": dict(self._label_buckets),
            "out": dict(self._out),
            "in": dict(self._in),
            "out_any": dict(self._out_any),
            "in_any": dict(self._in_any),
            "out_degree": dict(self.out_degree),
            "in_degree": dict(self.in_degree),
        }

    @classmethod
    def from_snapshot(cls, graph: "PropertyGraph", data: Dict[str, object]) -> "GraphIndex":
        """Reconstruct an index over *graph* from :meth:`to_snapshot` data.

        *graph* must be at the same mutation count the snapshot was taken
        at (a pickled graph preserves its counter); shared tables are taken
        from the graph, everything else from the snapshot — no O(|G|)
        recompilation. Raises ``ValueError`` on a version mismatch.
        """
        if data["version"] != graph.mutation_count:
            raise ValueError(
                f"index snapshot version {data['version']} does not match "
                f"graph mutation count {graph.mutation_count}"
            )
        index = object.__new__(cls)
        index.graph = graph
        index.version = data["version"]
        index.nodes = tuple(graph._nodes)
        index.position = {node: pos for pos, node in enumerate(index.nodes)}
        index.edge_labels = graph._edge_labels
        index._label_ids = data["label_ids"]
        index.node_label_id = data["node_label_id"]
        index._label_buckets = data["label_buckets"]
        index._label_members = graph._by_label
        index._out = data["out"]
        index._in = data["in"]
        index._out_any = data["out_any"]
        index._in_any = data["in_any"]
        index.out_degree = data["out_degree"]
        index.in_degree = data["in_degree"]
        index._out_fanout = {}
        index._in_fanout = {}
        index.plan_cache = weakref.WeakKeyDictionary()
        return index

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    @property
    def stale(self) -> bool:
        """True once the underlying graph has mutated past this snapshot."""
        return self.graph.mutation_count != self.version

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"GraphIndex(nodes={len(self.nodes)}, labels={self.num_labels}, "
            f"version={self.version}{', STALE' if self.stale else ''})"
        )
