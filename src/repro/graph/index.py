"""Compiled, incrementally-maintained index over a :class:`PropertyGraph`.

:class:`GraphIndex` is the compiled form of a property graph optimized for
the homomorphism hot path. It interns every label into a dense integer id
and precomputes, CSR-style,

* per-``(node, edge-label)`` neighbor groups in **both** directions (the
  label-grouped adjacency used by anchor expansion), in ascending node
  position — graph insertion order, the one canonical pool order,
* per-node any-label neighbor groups (deduplicated, same order),
* per-node-label node buckets in graph insertion order (deterministic
  label-index scans),
* in/out degree tables for candidate-strategy cardinality estimates, and
* lazily packed **bitset views** of the label buckets and neighbor groups
  (:mod:`repro.graph.bitset`) for word-level candidate intersection —
  filled on first request, kept current through :meth:`apply_delta`.

Indices are built lazily through :meth:`PropertyGraph.index` and cached on
the graph. Since PR 3 the index is **maintained, not discarded**, across
topology mutations: the graph journals every ``add_node`` / ``add_edge`` /
``set_node_label`` as a :mod:`repro.graph.delta` op, and the next
``index()`` call replays the journal onto the live tables in place via
:meth:`apply_delta` — O(|delta|) instead of an O(|G|) recompile. A full
recompile (fresh object) happens only when the journal outgrows the
compaction threshold (:attr:`PropertyGraph.INDEX_COMPACTION_FRACTION`).
Attribute updates (``set_attr``) are not journaled — the index stores no
attribute data.

Lifecycle contract: an index handle is a *live view*, not a frozen
snapshot. Between a mutation and the next ``index()`` call the handle lags
the graph (:attr:`stale` is True); after the call it is current again —
and is the *same object* unless compaction struck. Label ids are
append-only: an interned id never changes or disappears, which is what
lets compiled :class:`~repro.matching.plan.MatchPlan` steps survive deltas
(plans revalidate against :attr:`epoch`, recompiling only when a label
they had resolved as absent has appeared). Do not mutate the graph while
a :class:`~repro.matching.homomorphism.MatcherRun` on it is mid-flight —
that was undefined under snapshot semantics and remains so.

The index also owns the per-pattern :class:`repro.matching.plan.MatchPlan`
cache (:attr:`plan_cache`), keyed weakly by pattern, so one compiled plan
is shared by every :class:`~repro.matching.homomorphism.MatcherRun` spawned
from the same pattern — the fan-out shape of the parallel algorithms — and,
thanks to in-place maintenance, by every *delta epoch* of the index too.
"""

from __future__ import annotations

import weakref
from bisect import insort
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from .bitset import NodeBitset, pack_positions
from .delta import AddEdge, AddNode, SetLabel
from .elements import NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .graph import PropertyGraph

#: Shared empty adjacency group returned for absent ``(node, label)`` keys.
#: Hits return the index's internal lists — treat every group as read-only.
EMPTY_GROUP: Sequence[NodeId] = ()

#: Sentinel label id for labels that do not occur in the indexed graph.
NO_LABEL = -1


class GraphIndex:
    """A label-grouped adjacency index, maintainable in place by deltas."""

    __slots__ = (
        "graph",
        "version",
        "epoch",
        "nodes",
        "position",
        "node_label_id",
        "edge_labels",
        "out_degree",
        "in_degree",
        "plan_cache",
        "_label_ids",
        "_label_buckets",
        "_label_members",
        "_out",
        "_in",
        "_out_any",
        "_in_any",
        "_out_fanout",
        "_in_fanout",
        "_all_bits",
        "_bucket_bits",
        "_out_bits",
        "_in_bits",
        "__weakref__",
    )

    def __init__(self, graph: "PropertyGraph") -> None:
        self.graph = graph
        #: The graph mutation counter these tables currently reflect;
        #: advanced by :meth:`apply_delta`.
        self.version = graph.mutation_count
        #: Maintenance-generation counter: bumped once per applied delta
        #: batch. Plans compiled against this index compare epochs instead
        #: of object identities to decide whether to revalidate.
        self.epoch = 0
        #: All node ids in insertion order — the canonical scan order.
        self.nodes: List[NodeId] = list(graph._nodes)
        #: node id -> dense position in :attr:`nodes` (for deterministic
        #: re-ordering of externally supplied node sets).
        self.position: Dict[NodeId, int] = {
            node: pos for pos, node in enumerate(self.nodes)
        }
        #: Shared reference to the graph's ``(src, dst) -> labels`` table;
        #: always current (the graph mutates it in place).
        self.edge_labels = graph._edge_labels

        intern: Dict[str, int] = {}

        def intern_label(label: str) -> int:
            lid = intern.get(label)
            if lid is None:
                lid = len(intern)
                intern[label] = lid
            return lid

        #: node id -> interned id of its node label.
        self.node_label_id: Dict[NodeId, int] = {}
        buckets: Dict[int, List[NodeId]] = {}
        for node_id, node in graph._nodes.items():
            lid = intern_label(node.label)
            self.node_label_id[node_id] = lid
            buckets.setdefault(lid, []).append(node_id)

        out: Dict[Tuple[NodeId, int], List[NodeId]] = {}
        in_: Dict[Tuple[NodeId, int], List[NodeId]] = {}
        out_any: Dict[NodeId, List[NodeId]] = {}
        in_any: Dict[NodeId, List[NodeId]] = {}
        out_degree: Dict[NodeId, int] = {}
        in_degree: Dict[NodeId, int] = {}
        for node_id, edges in graph._out.items():
            ordered: List[NodeId] = []
            seen = set()
            for edge in edges:
                lid = intern_label(edge.label)
                out.setdefault((node_id, lid), []).append(edge.dst)
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    ordered.append(edge.dst)
            out_any[node_id] = ordered
            out_degree[node_id] = len(edges)
        for node_id, edges in graph._in.items():
            ordered = []
            seen = set()
            for edge in edges:
                lid = intern_label(edge.label)
                in_.setdefault((node_id, lid), []).append(edge.src)
                if edge.src not in seen:
                    seen.add(edge.src)
                    ordered.append(edge.src)
            in_any[node_id] = ordered
            in_degree[node_id] = len(edges)
        # Normalize every adjacency group to ascending node position —
        # graph insertion order, the same order label buckets and the
        # nodes table use. One canonical pool order (a) makes match
        # streams independent of edge insertion history and (b) lets the
        # matcher swap any group scan for a word-level bitset AND without
        # perturbing the stream. apply_delta maintains it by insort.
        by_position = self.position.__getitem__
        for group in out.values():
            group.sort(key=by_position)
        for group in in_.values():
            group.sort(key=by_position)
        for group in out_any.values():
            group.sort(key=by_position)
        for group in in_any.values():
            group.sort(key=by_position)

        self._label_ids = intern
        self._label_buckets = buckets
        #: label string -> node id set, shared with the graph (membership
        #: tests during candidate intersection).
        self._label_members = graph._by_label
        self._out = out
        self._in = in_
        self._out_any = out_any
        self._in_any = in_any
        self.out_degree = out_degree
        self.in_degree = in_degree
        # Lazily filled average-group-size caches (cardinality estimates).
        self._out_fanout: Dict[Optional[int], float] = {}
        self._in_fanout: Dict[Optional[int], float] = {}
        # Lazily packed bitset views of the tables above (see bitset.py):
        # per-label node-bucket vectors, per-(node, label) neighbor-group
        # vectors, and the all-nodes vector. Filled on first request and
        # thereafter *maintained* by apply_delta (set the new bit) rather
        # than invalidated; a compaction rebuild starts them empty again.
        self._all_bits: Optional[int] = None
        self._bucket_bits: Dict[int, int] = {}
        self._out_bits: Dict[Tuple[NodeId, Optional[int]], int] = {}
        self._in_bits: Dict[Tuple[NodeId, Optional[int]], int] = {}
        #: Per-pattern compiled :class:`MatchPlan`s (weakly keyed).
        self.plan_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def apply_delta(self, ops: Sequence[tuple]) -> None:
        """Replay journal *ops* (in order) onto the tables, in place.

        Appends to label buckets and the interned-label table, and bisects
        new neighbors into their (position-sorted) adjacency groups, so
        every table stays in the exact order a from-scratch rebuild would
        produce (relabels likewise bisect into their target bucket by node
        position). Cost is O(|ops|) plus, per relabel or edge insertion,
        the size of the touched bucket/group. Precondition: *ops* are
        the journal of mutations already applied to :attr:`graph` — the
        any-group dedup reads the live ``edge_labels`` table.

        Advances :attr:`version` by ``len(ops)`` (each journaled op is one
        graph mutation) and bumps :attr:`epoch` once per call. The lazily
        cached fan-out averages are reset — they refill on next use — while
        :attr:`plan_cache` survives: plans self-revalidate via the epoch.
        Already-packed bitset views (label buckets, neighbor groups, the
        all-nodes vector) are likewise maintained, not dropped: each op
        sets/clears the affected bit in whichever vectors are cached.
        Callers normally go through :meth:`PropertyGraph.index`, which owns
        the journal hand-off and the compaction decision.
        """
        intern = self._label_ids
        nodes = self.nodes
        position = self.position
        node_label_id = self.node_label_id
        buckets = self._label_buckets
        out, in_ = self._out, self._in
        out_any, in_any = self._out_any, self._in_any
        out_degree, in_degree = self.out_degree, self.in_degree
        edge_labels = self.edge_labels
        bucket_bits = self._bucket_bits
        out_bits, in_bits = self._out_bits, self._in_bits
        # Any-label groups are deduplicated per (src, dst) pair. Membership
        # is derived in O(1) instead of scanning the group: the pair was
        # already present before an op iff the graph's (live, post-batch)
        # label set for it is larger than the batch's own contribution —
        # plus a running per-pair counter for repeats within the batch.
        pair_total: Dict[Tuple[NodeId, NodeId], int] = {}
        for op in ops:
            if type(op) is AddEdge:
                key = (op.src, op.dst)
                pair_total[key] = pair_total.get(key, 0) + 1
        pair_seen: Dict[Tuple[NodeId, NodeId], int] = {}
        by_position = position.__getitem__
        for op in ops:
            if type(op) is AddEdge:
                src, dst, label = op
                lid = intern.get(label)
                if lid is None:
                    lid = len(intern)
                    intern[label] = lid
                group = out.get((src, lid))
                if group is None:
                    out[(src, lid)] = [dst]
                else:
                    insort(group, dst, key=by_position)
                group = in_.get((dst, lid))
                if group is None:
                    in_[(dst, lid)] = [src]
                else:
                    insort(group, src, key=by_position)
                key = (src, dst)
                seen = pair_seen.get(key, 0)
                pair_seen[key] = seen + 1
                preexisting = len(edge_labels[key]) - pair_total[key]
                if preexisting <= 0 and seen == 0:  # first edge on the pair
                    any_group = out_any.get(src)
                    if any_group is None:
                        out_any[src] = [dst]
                    else:
                        insort(any_group, dst, key=by_position)
                    any_group = in_any.get(dst)
                    if any_group is None:
                        in_any[dst] = [src]
                    else:
                        insort(any_group, src, key=by_position)
                out_degree[src] = out_degree.get(src, 0) + 1
                in_degree[dst] = in_degree.get(dst, 0) + 1
                dst_bit = 1 << position[dst]
                src_bit = 1 << position[src]
                key = (src, lid)
                if key in out_bits:
                    out_bits[key] |= dst_bit
                key = (src, None)
                if key in out_bits:
                    out_bits[key] |= dst_bit
                key = (dst, lid)
                if key in in_bits:
                    in_bits[key] |= src_bit
                key = (dst, None)
                if key in in_bits:
                    in_bits[key] |= src_bit
            elif type(op) is AddNode:
                node_id, label = op.node_id, op.label
                lid = intern.get(label)
                if lid is None:
                    lid = len(intern)
                    intern[label] = lid
                position[node_id] = len(nodes)
                nodes.append(node_id)
                node_label_id[node_id] = lid
                bucket = buckets.get(lid)
                if bucket is None:
                    buckets[lid] = [node_id]
                else:
                    bucket.append(node_id)
                bit = 1 << position[node_id]
                if self._all_bits is not None:
                    self._all_bits |= bit
                if lid in bucket_bits:
                    bucket_bits[lid] |= bit
            elif type(op) is SetLabel:
                node_id, old_label, new_label = op
                new_lid = intern.get(new_label)
                if new_lid is None:
                    new_lid = len(intern)
                    intern[new_label] = new_lid
                old_lid = intern[old_label]
                buckets[old_lid].remove(node_id)
                insort(
                    buckets.setdefault(new_lid, []),
                    node_id,
                    key=position.__getitem__,
                )
                node_label_id[node_id] = new_lid
                bit = 1 << position[node_id]
                if old_lid in bucket_bits:
                    bucket_bits[old_lid] &= ~bit
                if new_lid in bucket_bits:
                    bucket_bits[new_lid] |= bit
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown delta op {op!r}")
        self.version += len(ops)
        self.epoch += 1
        self._out_fanout = {}
        self._in_fanout = {}

    # ------------------------------------------------------------------
    # Label interning
    # ------------------------------------------------------------------
    def label_id(self, label: str) -> int:
        """Interned id of *label*, or :data:`NO_LABEL` if absent here."""
        return self._label_ids.get(label, NO_LABEL)

    @property
    def num_labels(self) -> int:
        return len(self._label_ids)

    # ------------------------------------------------------------------
    # Adjacency groups
    # ------------------------------------------------------------------
    def out_neighbors(self, node: NodeId, label_id: Optional[int]) -> Sequence[NodeId]:
        """Targets of ``node``'s out-edges with *label_id* (``None`` = any).

        Groups are duplicate-free (edge triples are unique; any-label
        groups are deduplicated) and iterate in ascending node position —
        graph insertion order. Returns the internal group — read-only for
        callers.
        """
        if label_id is None:
            return self._out_any.get(node, EMPTY_GROUP)
        return self._out.get((node, label_id), EMPTY_GROUP)

    def in_neighbors(self, node: NodeId, label_id: Optional[int]) -> Sequence[NodeId]:
        """Sources of ``node``'s in-edges with *label_id* (``None`` = any)."""
        if label_id is None:
            return self._in_any.get(node, EMPTY_GROUP)
        return self._in.get((node, label_id), EMPTY_GROUP)

    # ------------------------------------------------------------------
    # Label index
    # ------------------------------------------------------------------
    def nodes_with_label_id(self, label_id: int) -> Sequence[NodeId]:
        """Nodes carrying the label *label_id*, in graph insertion order."""
        return self._label_buckets.get(label_id, EMPTY_GROUP)

    def nodes_with_label(self, label: str) -> Sequence[NodeId]:
        return self.nodes_with_label_id(self.label_id(label))

    def label_members(self, label: str):
        """Membership set for *label* (O(1) tests; shared with the graph)."""
        members = self._label_members.get(label)
        return members if members is not None else frozenset()

    def label_count(self, label: str) -> int:
        return len(self.nodes_with_label(label))

    # ------------------------------------------------------------------
    # Bitset views (candidate-set word-level intersection, see bitset.py)
    # ------------------------------------------------------------------
    def all_bits(self) -> int:
        """Packed vector with one bit set per node (the full universe)."""
        bits = self._all_bits
        if bits is None:
            bits = (1 << len(self.nodes)) - 1
            self._all_bits = bits
        return bits

    def label_bucket_bits(self, label_id: int) -> int:
        """The label bucket of *label_id* as a packed bit vector.

        Packed lazily from the bucket list on first request, then kept
        current by :meth:`apply_delta`. :data:`NO_LABEL` (or any absent
        id) packs to 0.
        """
        bits = self._bucket_bits.get(label_id)
        if bits is None:
            bits = pack_positions(
                self._label_buckets.get(label_id, EMPTY_GROUP), self.position
            )
            self._bucket_bits[label_id] = bits
        return bits

    def out_neighbor_bits(self, node: NodeId, label_id: Optional[int]) -> int:
        """``out_neighbors(node, label_id)`` as a packed bit vector."""
        key = (node, label_id)
        bits = self._out_bits.get(key)
        if bits is None:
            if label_id is None:
                group = self._out_any.get(node, EMPTY_GROUP)
            else:
                group = self._out.get(key, EMPTY_GROUP)
            bits = pack_positions(group, self.position)
            self._out_bits[key] = bits
        return bits

    def in_neighbor_bits(self, node: NodeId, label_id: Optional[int]) -> int:
        """``in_neighbors(node, label_id)`` as a packed bit vector."""
        key = (node, label_id)
        bits = self._in_bits.get(key)
        if bits is None:
            if label_id is None:
                group = self._in_any.get(node, EMPTY_GROUP)
            else:
                group = self._in.get(key, EMPTY_GROUP)
            bits = pack_positions(group, self.position)
            self._in_bits[key] = bits
        return bits

    def bitset(self, members) -> NodeBitset:
        """Pack an iterable of node ids into a :class:`NodeBitset` here.

        Ids unknown to this index are skipped (they could never pass a
        membership test against its pools either).
        """
        return NodeBitset(self, pack_positions(members, self.position))

    def bitset_from_bits(self, bits: int) -> NodeBitset:
        """Wrap an already-packed vector (from the accessors above)."""
        return NodeBitset(self, bits)

    def all_nodes_bitset(self) -> NodeBitset:
        """Every node of the graph as a :class:`NodeBitset`."""
        return NodeBitset(self, self.all_bits())

    # ------------------------------------------------------------------
    # Cardinality estimates
    # ------------------------------------------------------------------
    def avg_out_fanout(self, label_id: Optional[int]) -> float:
        """Average size of a non-empty ``(node, label)`` out-neighbor group.

        The standard per-edge-label branch-factor estimate: total edges with
        that label divided by the number of source nodes carrying at least
        one such edge (``None`` = any label, i.e. mean out-degree over nodes
        with out-edges). Nodes without the group contribute no candidates at
        run time, so the conditional mean matches the surviving branches.
        """
        if None not in self._out_fanout:
            self._fill_fanouts(self._out, self._out_any, self._out_fanout)
        return self._out_fanout.get(label_id, 0.0)

    def avg_in_fanout(self, label_id: Optional[int]) -> float:
        """Average size of a non-empty ``(node, label)`` in-neighbor group."""
        if None not in self._in_fanout:
            self._fill_fanouts(self._in, self._in_any, self._in_fanout)
        return self._in_fanout.get(label_id, 0.0)

    @staticmethod
    def _fill_fanouts(
        grouped: Dict[Tuple[NodeId, int], List[NodeId]],
        any_label: Dict[NodeId, List[NodeId]],
        cache: Dict[Optional[int], float],
    ) -> None:
        """One pass over the adjacency groups fills every label's average
        (plus the any-label entry under ``None``), so repeated queries —
        plan-aware pivot selection touches one label per anchor step —
        never rescan the index. :meth:`apply_delta` resets the cache; the
        next query after a delta batch pays one refill pass."""
        totals: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        for (_, lid), neighbors in grouped.items():
            totals[lid] = totals.get(lid, 0) + len(neighbors)
            counts[lid] = counts.get(lid, 0) + 1
        for lid, total in totals.items():
            cache[lid] = total / counts[lid]
        any_sizes = [len(neighbors) for neighbors in any_label.values() if neighbors]
        cache[None] = sum(any_sizes) / len(any_sizes) if any_sizes else 0.0

    # ------------------------------------------------------------------
    # Serialization (process-backend worker shipping)
    # ------------------------------------------------------------------
    def to_snapshot(self) -> Dict[str, object]:
        """The precomputed tables as a picklable plain-data snapshot.

        The snapshot carries everything that costs O(|G|) to recompute;
        tables shared with the graph (``edge_labels``, label membership
        sets) and caches (fan-outs, plans) are rebound/refilled on the
        receiving side by :meth:`from_snapshot`. Group lists are copied —
        the live index keeps mutating under deltas, and a snapshot must
        stay frozen at the version it records.
        """
        return {
            "version": self.version,
            "label_ids": dict(self._label_ids),
            "node_label_id": dict(self.node_label_id),
            "label_buckets": {k: list(v) for k, v in self._label_buckets.items()},
            "out": {k: list(v) for k, v in self._out.items()},
            "in": {k: list(v) for k, v in self._in.items()},
            "out_any": {k: list(v) for k, v in self._out_any.items()},
            "in_any": {k: list(v) for k, v in self._in_any.items()},
            "out_degree": dict(self.out_degree),
            "in_degree": dict(self.in_degree),
        }

    @classmethod
    def from_snapshot(cls, graph: "PropertyGraph", data: Dict[str, object]) -> "GraphIndex":
        """Reconstruct an index over *graph* from :meth:`to_snapshot` data.

        *graph* must be at the same mutation count the snapshot was taken
        at (a pickled graph preserves its counter); shared tables are taken
        from the graph, everything else from the snapshot — no O(|G|)
        recompilation. Raises ``ValueError`` on a version mismatch. The
        reconstructed index starts a fresh epoch/plan-cache lineage and is
        delta-maintainable like any built index.
        """
        if data["version"] != graph.mutation_count:
            raise ValueError(
                f"index snapshot version {data['version']} does not match "
                f"graph mutation count {graph.mutation_count}"
            )
        index = object.__new__(cls)
        index.graph = graph
        index.version = data["version"]
        index.epoch = 0
        index.nodes = list(graph._nodes)
        index.position = {node: pos for pos, node in enumerate(index.nodes)}
        index.edge_labels = graph._edge_labels
        index._label_ids = data["label_ids"]
        index.node_label_id = data["node_label_id"]
        index._label_buckets = data["label_buckets"]
        index._label_members = graph._by_label
        index._out = data["out"]
        index._in = data["in"]
        index._out_any = data["out_any"]
        index._in_any = data["in_any"]
        index.out_degree = data["out_degree"]
        index.in_degree = data["in_degree"]
        index._out_fanout = {}
        index._in_fanout = {}
        index._all_bits = None
        index._bucket_bits = {}
        index._out_bits = {}
        index._in_bits = {}
        index.plan_cache = weakref.WeakKeyDictionary()
        return index

    # ------------------------------------------------------------------
    # Diagnostics / equivalence
    # ------------------------------------------------------------------
    def canonical_form(self) -> Dict[str, object]:
        """A label-*string*-keyed normalization of every table.

        Interned ids are an artifact of construction order (a delta path
        interns labels in journal order, a rebuild in node-then-edge scan
        order), so equivalence between a delta-maintained index and a
        from-scratch rebuild is defined over this form: identical canonical
        forms mean identical candidate pools in identical iteration order
        for every possible query. Used by the equivalence property suite
        and the incremental benchmark's self-check.
        """
        label_of = {lid: label for label, lid in self._label_ids.items()}
        return {
            "nodes": list(self.nodes),
            "position": dict(self.position),
            "node_labels": {
                node: label_of[lid] for node, lid in self.node_label_id.items()
            },
            "buckets": {
                label_of[lid]: list(bucket)
                for lid, bucket in self._label_buckets.items()
                if bucket
            },
            "out": {
                (node, label_of[lid]): list(group)
                for (node, lid), group in self._out.items()
                if group
            },
            "in": {
                (node, label_of[lid]): list(group)
                for (node, lid), group in self._in.items()
                if group
            },
            "out_any": {n: list(g) for n, g in self._out_any.items() if g},
            "in_any": {n: list(g) for n, g in self._in_any.items() if g},
            "out_degree": dict(self.out_degree),
            "in_degree": dict(self.in_degree),
        }

    @property
    def stale(self) -> bool:
        """True while journaled mutations have not been applied here yet.

        A stale handle becomes current again at the next
        :meth:`PropertyGraph.index` call (delta path: same object; past the
        compaction threshold: superseded by a rebuilt one)."""
        return self.graph.mutation_count != self.version

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"GraphIndex(nodes={len(self.nodes)}, labels={self.num_labels}, "
            f"version={self.version}, epoch={self.epoch}"
            f"{', STALE' if self.stale else ''})"
        )
