"""Directed property graphs with label and adjacency indices.

:class:`PropertyGraph` is the single graph type used throughout the library:
data graphs, canonical graphs and (via :class:`repro.gfd.pattern.Pattern`)
the underlying graphs of patterns are all property graphs. The class keeps

* a node table ``id -> Node`` (label + attribute tuple),
* forward and backward adjacency indexed by endpoint,
* per-(pair) edge-label sets for O(1) edge-label membership tests, and
* a label index ``label -> set of node ids`` for candidate filtering.

All mutators keep the indices consistent; there is no "commit" step. For
the matching hot path, :meth:`PropertyGraph.index` additionally compiles a
:class:`repro.graph.index.GraphIndex` (label-grouped adjacency, interned
labels). Topology mutations performed after that compilation are recorded
in a *mutation journal* (:mod:`repro.graph.delta`); the next ``index()``
call replays the journal onto the live index in place — O(|delta|) — and
falls back to a full recompile only when the journal has outgrown the
compaction threshold (:attr:`INDEX_COMPACTION_FRACTION` of |G|). Mutation-
heavy workloads (``IncrementalSat.add``, chase-style canonical-graph
extension) therefore pay per-delta index upkeep instead of O(|G|) per step.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import GraphError
from .delta import AddEdge, AddNode, SetLabel
from .elements import AttrValue, Edge, Node, NodeId

#: Shared immutable sentinels returned on index misses — the hot matching
#: loop calls :meth:`PropertyGraph.edge_labels_between` once per candidate
#: edge check, and allocating a fresh empty container per miss showed up in
#: profiles of ``MatcherRun._node_ok``.
_NO_LABELS: AbstractSet[str] = frozenset()
_NO_EDGES: Sequence[Edge] = ()


class PropertyGraph:
    """A directed, labeled multigraph with node attributes.

    Examples
    --------
    >>> g = PropertyGraph()
    >>> a = g.add_node("person", {"name": "ada"})
    >>> b = g.add_node("city")
    >>> g.add_edge(a, b, "lives_in")
    Edge(src=0, dst=1, label='lives_in')
    >>> g.has_edge(a, b, "lives_in")
    True
    """

    #: Journal sizes up to this floor always take the in-place delta path,
    #: regardless of graph size (small graphs would otherwise compact on
    #: every call).
    INDEX_COMPACTION_MIN = 64
    #: Once the journal exceeds this fraction of |G| (nodes + edges), the
    #: next :meth:`index` call recompiles from scratch instead of replaying
    #: the delta — replay cost approaches rebuild cost at that point.
    INDEX_COMPACTION_FRACTION = 0.25
    #: Ablation/debug switch: ``False`` forces a full recompile on every
    #: post-mutation :meth:`index` call (the pre-delta behavior). May be set
    #: per instance.
    index_delta_enabled = True

    def __init__(self) -> None:
        self._nodes: Dict[NodeId, Node] = {}
        self._out: Dict[NodeId, List[Edge]] = defaultdict(list)
        self._in: Dict[NodeId, List[Edge]] = defaultdict(list)
        # (src, dst) -> set of edge labels, for O(1) membership checks.
        self._edge_labels: Dict[Tuple[NodeId, NodeId], Set[str]] = defaultdict(set)
        self._by_label: Dict[str, Set[NodeId]] = defaultdict(set)
        self._next_id = 0
        self._edge_count = 0
        # Compiled-index cache plus the mutation journal it consumes; the
        # journal only accumulates while a compiled index exists.
        self._mutations = 0
        self._compiled_index = None
        self._journal: List[tuple] = []
        # Optional retained delta history for replica synchronization
        # (process backend): (mutation-count-after-op, op) pairs.
        self._retain_deltas = False
        self._delta_history: List[Tuple[int, tuple]] = []
        # MVCC pins: version -> reference count. While a version is pinned,
        # trim_delta_history will not drop the ops needed to reconstruct
        # any state at or after it (serving-layer read views).
        self._pinned_versions: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        label: str,
        attrs: Optional[Mapping[str, AttrValue]] = None,
        node_id: Optional[NodeId] = None,
    ) -> NodeId:
        """Add a node and return its id.

        When *node_id* is omitted, consecutive integers are issued. Adding a
        duplicate id raises :class:`GraphError`.
        """
        if node_id is None:
            while self._next_id in self._nodes:
                self._next_id += 1
            node_id = self._next_id
            self._next_id += 1
        if node_id in self._nodes:
            raise GraphError(f"duplicate node id {node_id!r}")
        self._nodes[node_id] = Node(node_id, label, dict(attrs or {}))
        self._by_label[label].add(node_id)
        self._record(AddNode(node_id, label, dict(attrs) if attrs else None))
        return node_id

    def add_edge(self, src: NodeId, dst: NodeId, label: str) -> Edge:
        """Add a directed edge; duplicates (same triple) are ignored."""
        if src not in self._nodes:
            raise GraphError(f"unknown source node {src!r}")
        if dst not in self._nodes:
            raise GraphError(f"unknown target node {dst!r}")
        edge = Edge(src, dst, label)
        labels = self._edge_labels[(src, dst)]
        if label in labels:
            return edge
        labels.add(label)
        self._out[src].append(edge)
        self._in[dst].append(edge)
        self._edge_count += 1
        self._record(AddEdge(src, dst, label))
        return edge

    def set_attr(self, node_id: NodeId, name: str, value: AttrValue) -> None:
        """Set attribute *name* of node *node_id* to *value*.

        Attribute updates are not journaled and do not age the compiled
        index — it stores topology and labels only.
        """
        self.node(node_id).attrs[name] = value

    def set_node_label(self, node_id: NodeId, label: str) -> None:
        """Relabel node *node_id* to *label* (a journaled topology mutation).

        Relabeling moves the node between label-index buckets; the compiled
        index absorbs the move in place through the delta path. Setting the
        label a node already carries is a no-op (nothing is journaled).
        """
        node = self.node(node_id)
        old_label = node.label
        if label == old_label:
            return
        node.label = label
        self._by_label[old_label].discard(node_id)
        self._by_label[label].add(node_id)
        self._record(SetLabel(node_id, old_label, label))

    # ------------------------------------------------------------------
    # Compiled index + mutation journal
    # ------------------------------------------------------------------
    def _record(self, op: tuple) -> None:
        """Count one topology mutation and journal it for the live index."""
        self._mutations += 1
        if self._compiled_index is not None:
            self._journal.append(op)
        if self._retain_deltas:
            self._delta_history.append((self._mutations, op))

    @property
    def mutation_count(self) -> int:
        """Monotone topology-mutation counter (index staleness checks)."""
        return self._mutations

    @property
    def pending_delta_ops(self) -> int:
        """Journal ops the compiled index has not absorbed yet."""
        return len(self._journal)

    def _compaction_limit(self) -> int:
        return max(
            self.INDEX_COMPACTION_MIN,
            int(self.INDEX_COMPACTION_FRACTION * (len(self._nodes) + self._edge_count)),
        )

    def index(self):
        """The compiled :class:`repro.graph.index.GraphIndex` for this graph.

        Built lazily on first use. After topology mutations the cached
        index is *maintained*, not discarded: the pending journal is
        replayed onto it in place (O(|delta|)), so the object — and the
        match plans cached on it — survives. Only when the journal exceeds
        the compaction threshold (or :attr:`index_delta_enabled` is off) is
        the index recompiled from scratch, producing a fresh object.
        """
        index = self._compiled_index
        if index is not None and self._journal:
            journal = self._journal
            self._journal = []
            if self.index_delta_enabled and len(journal) <= self._compaction_limit():
                index.apply_delta(journal)
            else:
                index = None  # compaction: fall through to a full rebuild
        if index is None:
            from .index import GraphIndex  # local import: avoids cycle

            index = GraphIndex(self)
        self._compiled_index = index
        return index

    def adopt_index(self, index) -> None:
        """Install a prebuilt :class:`GraphIndex` as this graph's cache.

        Used by process workers that reconstruct the coordinator's index
        from a serialized snapshot instead of recompiling O(|G|) state. The
        index must have been built at this graph's current mutation count;
        any journaled ops are already reflected in it and are discarded.
        """
        if index.version != self._mutations:
            raise GraphError(
                f"index snapshot version {index.version} does not match "
                f"graph mutation count {self._mutations}"
            )
        self._compiled_index = index
        self._journal = []

    # ------------------------------------------------------------------
    # Delta history (replica synchronization, process backend)
    # ------------------------------------------------------------------
    def retain_deltas(self, enabled: bool = True) -> None:
        """Keep (or stop keeping) a replayable history of topology ops.

        While enabled, every mutation is also appended — version-stamped —
        to a history that :meth:`delta_ops_since` can serve, independently
        of the index journal's consume-on-apply lifecycle. The process
        backend enables this to ship standing worker replicas *deltas*
        between runs instead of fresh snapshots; call
        :meth:`trim_delta_history` once all replicas have caught up.
        """
        self._retain_deltas = enabled
        if not enabled:
            self._delta_history = []

    def delta_ops_since(self, version: int) -> Optional[List[tuple]]:
        """Topology ops after mutation-count *version*, in order.

        Returns ``None`` when the retained history does not reach back far
        enough (history disabled, trimmed past *version*, or enabled only
        after *version*) — callers must then fall back to full state
        transfer.
        """
        if version > self._mutations:
            return None
        if version == self._mutations:
            return []
        history = self._delta_history
        ops = [op for stamp, op in history if stamp > version]
        # The history covers (version, now] only if it has one entry per
        # mutation in that range.
        if len(ops) != self._mutations - version:
            return None
        return ops

    def delta_ops_slice(self, since: int, until: int) -> Optional[List[tuple]]:
        """Topology ops with stamps in ``(since, until]``, in order.

        The bounded companion of :meth:`delta_ops_since`: read views pinned
        at *until* are reconstructed by replaying this slice onto a replica
        already synchronized at *since*. Returns ``None`` when the retained
        history does not cover the whole range (one entry per mutation in
        it) or the bounds are out of order / in the future.
        """
        if since > until or until > self._mutations:
            return None
        if since == until:
            return []
        ops = [op for stamp, op in self._delta_history if since < stamp <= until]
        if len(ops) != until - since:
            return None
        return ops

    # ------------------------------------------------------------------
    # MVCC version pins (serving-layer read views)
    # ------------------------------------------------------------------
    def pin_version(self, version: Optional[int] = None) -> int:
        """Pin mutation-count *version* (default: the current one).

        Pins are reference-counted; each successful call must be balanced
        by one :meth:`release_version`. While any version is pinned,
        :meth:`trim_delta_history` is clamped so it never drops ops with
        stamps above the minimum pinned version — a reader holding a pin
        at ``V`` can always replay history forward from ``V``, no matter
        how aggressively writers trim. Returns the pinned version.
        """
        if version is None:
            version = self._mutations
        elif version > self._mutations:
            raise GraphError(
                f"cannot pin future version {version} "
                f"(mutation count is {self._mutations})"
            )
        self._pinned_versions[version] = self._pinned_versions.get(version, 0) + 1
        return version

    def release_version(self, version: int) -> None:
        """Release one pin on *version* (raises if it is not pinned)."""
        count = self._pinned_versions.get(version)
        if count is None:
            raise GraphError(f"version {version} is not pinned")
        if count == 1:
            del self._pinned_versions[version]
        else:
            self._pinned_versions[version] = count - 1

    @property
    def min_pinned_version(self) -> Optional[int]:
        """The lowest pinned version, or ``None`` when nothing is pinned."""
        return min(self._pinned_versions) if self._pinned_versions else None

    @property
    def pinned_version_count(self) -> int:
        """Number of outstanding pins (reference counts summed)."""
        return sum(self._pinned_versions.values())

    def trim_delta_history(self, version: int) -> None:
        """Drop retained ops at or below mutation-count *version*.

        Clamped to the minimum pinned version: ops that a pinned read view
        may still need for forward replay survive the trim, regardless of
        the *version* requested (the process backend trims to the full
        mutation count after every pool refresh — pins keep that safe while
        the serving layer holds snapshots).
        """
        floor = self.min_pinned_version
        if floor is not None and floor < version:
            version = floor
        self._delta_history = [
            entry for entry in self._delta_history if entry[0] > version
        ]

    # ------------------------------------------------------------------
    # Pickling (process-backend worker shipping)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Drop the compiled-index cache (it holds weak references and is
        shipped separately as a plain snapshot, :meth:`GraphIndex.to_snapshot`)
        along with the journal/history that only make sense relative to it."""
        state = dict(self.__dict__)
        state["_compiled_index"] = None
        state["_journal"] = []
        state["_retain_deltas"] = False
        state["_delta_history"] = []
        state["_pinned_versions"] = {}
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def node(self, node_id: NodeId) -> Node:
        """Return the :class:`Node` for *node_id* (raises on unknown id)."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    def has_node(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def label(self, node_id: NodeId) -> str:
        return self.node(node_id).label

    def attrs(self, node_id: NodeId) -> Dict[str, AttrValue]:
        return self.node(node_id).attrs

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over all node ids."""
        return iter(self._nodes)

    def node_objects(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges (each once)."""
        for edges in self._out.values():
            yield from edges

    def out_edges(self, node_id: NodeId) -> Sequence[Edge]:
        return self._out.get(node_id, _NO_EDGES)

    def in_edges(self, node_id: NodeId) -> Sequence[Edge]:
        return self._in.get(node_id, _NO_EDGES)

    def successors(self, node_id: NodeId) -> Iterator[NodeId]:
        for edge in self.out_edges(node_id):
            yield edge.dst

    def predecessors(self, node_id: NodeId) -> Iterator[NodeId]:
        for edge in self.in_edges(node_id):
            yield edge.src

    def neighbors(self, node_id: NodeId) -> Set[NodeId]:
        """Undirected neighbor set (successors plus predecessors)."""
        result = {edge.dst for edge in self.out_edges(node_id)}
        result.update(edge.src for edge in self.in_edges(node_id))
        return result

    def has_edge(self, src: NodeId, dst: NodeId, label: Optional[str] = None) -> bool:
        """Edge existence; with *label* None any label counts."""
        labels = self._edge_labels.get((src, dst))
        if not labels:
            return False
        if label is None:
            return True
        return label in labels

    def edge_labels_between(self, src: NodeId, dst: NodeId) -> AbstractSet[str]:
        """The set of labels on edges from *src* to *dst* (possibly empty).

        The empty result is a shared immutable sentinel — do not mutate.
        """
        return self._edge_labels.get((src, dst), _NO_LABELS)

    def nodes_with_label(self, label: str) -> Set[NodeId]:
        """Node ids carrying exactly *label* (wildcard is not expanded)."""
        return self._by_label.get(label, set())

    def labels(self) -> Set[str]:
        """All node labels present in the graph."""
        return {label for label, ids in self._by_label.items() if ids}

    def edge_label_set(self) -> Set[str]:
        """All edge labels present in the graph."""
        return {edge.label for edge in self.edges()}

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def size(self) -> int:
        """|G| as used in the paper: nodes + edges + attribute entries."""
        attr_entries = sum(len(node.attrs) for node in self._nodes.values())
        return self.num_nodes + self.num_edges + attr_entries

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, node_ids: Iterable[NodeId]) -> "PropertyGraph":
        """Return the induced subgraph on *node_ids* (copies nodes/attrs)."""
        keep = set(node_ids)
        sub = PropertyGraph()
        for node_id in keep:
            node = self.node(node_id)
            sub.add_node(node.label, node.attrs, node_id=node.id)
        for node_id in keep:
            for edge in self.out_edges(node_id):
                if edge.dst in keep:
                    sub.add_edge(edge.src, edge.dst, edge.label)
        return sub

    def copy(self) -> "PropertyGraph":
        return self.subgraph(self._nodes)

    def disjoint_union(self, other: "PropertyGraph", rename: str = "") -> Dict[NodeId, NodeId]:
        """Add a disjoint copy of *other* into this graph.

        Node ids of *other* are remapped to fresh ids here; the mapping
        old id -> new id is returned. *rename* is kept for diagnostics only.
        """
        mapping: Dict[NodeId, NodeId] = {}
        for node in other.node_objects():
            mapping[node.id] = self.add_node(node.label, node.attrs)
        for edge in other.edges():
            self.add_edge(mapping[edge.src], mapping[edge.dst], edge.label)
        return mapping

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"PropertyGraph(nodes={self.num_nodes}, edges={self.num_edges})"
