"""Dense node bitsets over a :class:`~repro.graph.index.GraphIndex`.

The candidate-set plumbing of the matcher — ``allowed_nodes``
neighborhoods, dual-simulation candidate sets, label buckets — spends most
of its time on per-node membership tests and set intersections. For any
compiled index, :attr:`GraphIndex.position` already maps every node id to a
dense integer (its graph-insertion rank), so a candidate set can be packed
into a single Python ``int`` used as a bit vector: bit ``i`` set means
``index.nodes[i]`` is a member. Intersection and union collapse to one
arbitrary-precision ``&``/``|`` over O(|G|/64) machine words, and iterating
set bits in ascending order *is* graph insertion order — the canonical scan
order every candidate pool already uses — so swapping sets for bitsets
cannot perturb match streams.

:class:`NodeBitset` wraps such an ``int`` together with its *universe* (the
index whose ``position`` defined the packing). It is immutable and duck-
types the read side of a ``set`` (``in``, ``iter``, ``len``, ``bool``), so
every consumer that only membership-tests a candidate set — the matcher's
pool filters, ``sorted(sim[pivot])`` in work-unit generation — accepts
either representation unchanged. Word-level fast paths additionally check
``isinstance(..., NodeBitset)`` *and* universe identity before touching
``.bits`` directly; a bitset built over a different index (say a
per-component subgraph) degrades gracefully to membership filtering.

Positions are append-only — nodes are never removed and
:meth:`GraphIndex.apply_delta` only appends to ``nodes`` — so a bitset
built at one delta epoch remains a valid (possibly non-maximal) set at any
later epoch of the same index lineage.
"""

from __future__ import annotations

import struct as _struct
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .index import GraphIndex

from .elements import NodeId

def bit_count(bits: int) -> int:
    """Number of set bits (members) in *bits*."""
    return bits.bit_count()


def bit_positions(bits: int) -> List[int]:
    """The set-bit positions of *bits*, ascending.

    Ascending bit position is ascending :attr:`GraphIndex.position`, i.e.
    graph insertion order — the determinism contract of every candidate
    pool. Decoding goes through one explicit little-endian ``to_bytes``
    conversion and a 64-bit word scan: isolating the lowest set bit of the
    *bigint* directly would cost O(|G|/64) words per member, while a
    word-local low-bit loop is O(1) per member on top of an O(|G|/64)
    Python-level scan.
    """
    positions: List[int] = []
    if not bits:
        return positions
    nbytes = (bits.bit_length() + 7) >> 3
    padded = (nbytes + 7) & ~7
    data = bits.to_bytes(padded, "little")
    append = positions.append
    base = 0
    for word in _struct.unpack(f"<{padded >> 3}Q", data):
        while word:
            low = word & -word
            append(base + low.bit_length() - 1)
            word ^= low
        base += 64
    return positions


def pack_positions(nodes: Iterable[NodeId], position: Dict[NodeId, int]) -> int:
    """Pack *nodes* into a bit vector via the *position* map.

    Nodes absent from the map (e.g. an externally supplied allowed set
    mentioning ids the graph never had) are skipped — they could never pass
    a membership test against the index's pools either. Bits are staged in
    a bytearray and converted once: OR-ing ``1 << pos`` per member would
    cost O(|G|/64) words *per member*, the staging buffer makes packing
    O(members + |G|/8).
    """
    get = position.get
    try:
        count = len(nodes)  # type: ignore[arg-type]
    except TypeError:
        count = None
    if count is not None and count << 6 < len(position):
        # Tiny set over a big universe: per-member shift ORs beat
        # allocating (and converting) a full-universe staging buffer.
        bits = 0
        for node in nodes:
            pos = get(node)
            if pos is not None:
                bits |= 1 << pos
        return bits
    data = bytearray((len(position) >> 3) + 1)
    hit = False
    for node in nodes:
        pos = get(node)
        if pos is not None:
            data[pos >> 3] |= 1 << (pos & 7)
            hit = True
    if not hit:
        return 0
    return int.from_bytes(data, "little")


class NodeBitset:
    """An immutable node set packed as one big ``int`` over an index.

    Construct through :meth:`GraphIndex.bitset` (from an iterable) or
    :meth:`GraphIndex.bitset_from_bits` (from a packed value) rather than
    directly — the universe/packing invariant lives there.
    """

    __slots__ = ("universe", "bits", "_set")

    def __init__(self, universe: "GraphIndex", bits: int) -> None:
        #: The :class:`GraphIndex` whose ``position`` map defined the
        #: packing. Word-level fast paths require identity with the index
        #: they operate over.
        self.universe = universe
        #: The packed membership vector; bit ``i`` = ``universe.nodes[i]``.
        self.bits = bits
        # Lazy frozenset mirror for membership-heavy consumers (filters
        # over non-positional pools probe once per element, and a C-level
        # hash probe beats any bigint/byte arithmetic per call). Built at
        # most once — the vector is immutable — and shared by every run
        # filtering through this object.
        self._set = None

    def as_set(self) -> frozenset:
        """The members as a cached frozenset (O(1) C-level membership)."""
        members = self._set
        if members is None:
            members = frozenset(self.to_list())
            self._set = members
        return members

    # ------------------------------------------------------------------
    # Read-side set protocol
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self.as_set()

    def __iter__(self) -> Iterator[NodeId]:
        nodes = self.universe.nodes
        return iter([nodes[pos] for pos in bit_positions(self.bits)])

    def __len__(self) -> int:
        return bit_count(self.bits)

    def __bool__(self) -> bool:
        return self.bits != 0

    # ------------------------------------------------------------------
    # Word-level combination (same universe only)
    # ------------------------------------------------------------------
    def _check_universe(self, other: "NodeBitset") -> None:
        if self.universe is not other.universe:
            raise ValueError(
                "cannot combine NodeBitsets over different universes; "
                "rebuild one via GraphIndex.bitset(...) first"
            )

    def __and__(self, other: "NodeBitset") -> "NodeBitset":
        self._check_universe(other)
        return NodeBitset(self.universe, self.bits & other.bits)

    def __or__(self, other: "NodeBitset") -> "NodeBitset":
        self._check_universe(other)
        return NodeBitset(self.universe, self.bits | other.bits)

    def __sub__(self, other: "NodeBitset") -> "NodeBitset":
        self._check_universe(other)
        return NodeBitset(self.universe, self.bits & ~other.bits)

    def isdisjoint(self, other: "NodeBitset") -> bool:
        self._check_universe(other)
        return self.bits & other.bits == 0

    # ------------------------------------------------------------------
    # Subset / superset comparison (NodeBitset or any set-like)
    # ------------------------------------------------------------------
    def issubset(self, other) -> bool:
        if isinstance(other, NodeBitset) and other.universe is self.universe:
            return self.bits & ~other.bits == 0
        return all(node in other for node in self)

    def issuperset(self, other) -> bool:
        if isinstance(other, NodeBitset) and other.universe is self.universe:
            return other.bits & ~self.bits == 0
        return all(node in self for node in other)

    def __le__(self, other) -> bool:
        return self.issubset(other)

    def __lt__(self, other) -> bool:
        return self.issubset(other) and len(self) != len(other)

    def __ge__(self, other) -> bool:
        return self.issuperset(other)

    def __gt__(self, other) -> bool:
        return self.issuperset(other) and len(self) != len(other)

    # ------------------------------------------------------------------
    # Conversions / comparison
    # ------------------------------------------------------------------
    def to_set(self) -> set:
        """The members as a plain ``set`` (representation-ablation tests)."""
        return set(self.as_set())

    def to_list(self) -> List[NodeId]:
        """The members as a list in graph insertion order."""
        nodes = self.universe.nodes
        return [nodes[pos] for pos in bit_positions(self.bits)]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, NodeBitset):
            if self.universe is other.universe:
                return self.bits == other.bits
            return self.as_set() == other.as_set()
        if isinstance(other, (set, frozenset)):
            return self.as_set() == other
        return NotImplemented

    # Mirrors set semantics (sets are unhashable only when mutable; this
    # one is immutable, so hash by membership like a frozenset would).
    def __hash__(self) -> int:
        return hash(self.as_set())

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"NodeBitset({len(self)} of {len(self.universe.nodes)} nodes)"


# NodeBitset implements the read-side Set protocol (__contains__, __iter__,
# __len__); register it so `isinstance(x, collections.abc.Set)` checks and
# AbstractSet annotations accept either candidate-set representation.
import collections.abc as _abc  # noqa: E402  (registration, not an import cycle)

_abc.Set.register(NodeBitset)
