"""Neighborhood and connectivity helpers used by pivoted matching.

The parallel algorithms exploit the *data locality of graph homomorphism*
(paper, Section V-B): if a match ``h`` of a connected pattern ``Q`` maps the
pivot ``x`` to node ``v``, then every node of ``h(x̄)`` lies within the
``dQ``-neighborhood of ``v``, where ``dQ`` is the eccentricity of the pivot
in ``Q`` (longest shortest path from the pivot, ignoring edge direction).
This module provides BFS hops, eccentricity, and connected components.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from .graph import PropertyGraph
from .elements import NodeId


def bfs_hops(graph: PropertyGraph, source: NodeId, max_hops: Optional[int] = None) -> Dict[NodeId, int]:
    """Undirected BFS distances from *source*, truncated at *max_hops*.

    Returns a mapping node id -> hop distance (source included at 0).
    """
    dist: Dict[NodeId, int] = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        d = dist[current]
        if max_hops is not None and d >= max_hops:
            continue
        for neighbor in graph.neighbors(current):
            if neighbor not in dist:
                dist[neighbor] = d + 1
                queue.append(neighbor)
    return dist


def neighborhood(graph: PropertyGraph, source: NodeId, radius: int) -> Set[NodeId]:
    """Nodes within *radius* undirected hops of *source* (inclusive)."""
    return set(bfs_hops(graph, source, max_hops=radius))


def eccentricity(graph: PropertyGraph, source: NodeId) -> int:
    """Longest shortest undirected path from *source* to any reachable node."""
    dist = bfs_hops(graph, source)
    return max(dist.values(), default=0)


def connected_components(graph: PropertyGraph) -> List[Set[NodeId]]:
    """Undirected connected components, as a list of node-id sets."""
    seen: Set[NodeId] = set()
    components: List[Set[NodeId]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component = set(bfs_hops(graph, start))
        seen.update(component)
        components.append(component)
    return components


def component_of(graph: PropertyGraph, node: NodeId) -> Set[NodeId]:
    """The connected component containing *node*."""
    return set(bfs_hops(graph, node))


def is_connected(graph: PropertyGraph) -> bool:
    """True for the empty graph and for graphs with one component."""
    if graph.num_nodes == 0:
        return True
    first = next(iter(graph.nodes()))
    return len(bfs_hops(graph, first)) == graph.num_nodes


def within_hops(graph: PropertyGraph, source: NodeId, target: NodeId, hops: int) -> bool:
    """True if *target* is within *hops* undirected hops of *source*."""
    if source == target:
        return True
    dist = bfs_hops(graph, source, max_hops=hops)
    return target in dist


def shortest_path_length(graph: PropertyGraph, source: NodeId, target: NodeId) -> Optional[int]:
    """Undirected shortest path length, or None if unreachable."""
    dist = bfs_hops(graph, source)
    return dist.get(target)


def induced_radius_order(graph: PropertyGraph, nodes: Iterable[NodeId]) -> List[NodeId]:
    """Order *nodes* by eccentricity (most central first).

    Used when choosing pivots: a central pivot yields a small ``dQ``, hence a
    small search neighborhood per work unit.
    """
    return sorted(nodes, key=lambda n: (eccentricity(graph, n), str(n)))
