"""Edge-cut graph fragmentation with boundary-node replication.

The paper's parallel model (Section V) is *fragment-based*: the graph is
partitioned across workers, each worker validates its fragment, and
cross-fragment pivots are resolved by shipping small dQ-neighborhoods
("dQ-balls") instead of whole-graph snapshots. This module is the
data-partitioning half of that model:

* :class:`Fragmenter` — partitions :class:`~repro.graph.index.GraphIndex`
  position space into contiguous ranges. Fragment *f* **owns** its range
  (the *interior*) and **replicates** every node within ``radius``
  undirected hops of it (the *halo*). ``radius`` is the rule set's
  maximum pivot eccentricity (see
  :func:`repro.reasoning.workunits.fragment_radius`), so any work unit
  whose pivot is interior to *f* can be matched entirely inside *f*'s
  replica: a homomorphic match of a pattern with pivot eccentricity
  ``r ≤ radius`` maps every pattern node within ``r`` hops of the pivot
  image, and every shortest-path prefix to such a node stays within
  ``r`` hops too — the whole match lives in ``interior ∪ halo``.
* :class:`FragmentSpec` — the plain-data description of one fragment
  (ownership + replica membership, both in whole-graph position order).
* :class:`FragmentIndex` — a picklable per-fragment sub-index: the
  induced :class:`~repro.graph.graph.PropertyGraph` on the fragment's
  members, built in whole-graph position order so its compiled
  ``GraphIndex`` enumerates candidates in exactly the order the
  whole-graph index would. ``MatcherRun``/``UnitContext`` consume it
  through the same read API they already use for the whole graph.

Because :class:`~repro.graph.graph.PropertyGraph` is grow-only (the
journal ops are ``AddNode``/``AddEdge``/``SetLabel`` — nothing is ever
removed), fragment membership is *monotone*: edges only shrink
distances, so a delta can only add members, never evict them. That is
what makes :meth:`Fragmenter.split_delta` possible — a whole-graph delta
splits into small per-fragment refresh streams, and a mutation only
touches the fragments whose interior or halo it reaches.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .delta import AddEdge, AddNode, SetLabel, replay
from .elements import NodeId
from .graph import PropertyGraph


def bfs_reach(graph: PropertyGraph, sources: Iterable[NodeId], radius: int) -> Set[NodeId]:
    """All nodes within *radius* undirected hops of any of *sources*."""
    seen: Set[NodeId] = set(sources)
    frontier: List[NodeId] = list(seen)
    for _ in range(radius):
        if not frontier:
            break
        next_frontier: List[NodeId] = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return seen


def induced_subgraph(
    graph: PropertyGraph, ordered_members: Sequence[NodeId]
) -> PropertyGraph:
    """The induced subgraph on *ordered_members*, preserving node ids.

    Nodes are inserted in the given order. Callers pass whole-graph
    position order, so the sub-index's ``position`` ranking — and with
    it every candidate-pool iteration in the matcher — agrees with the
    whole graph's. (``PropertyGraph.subgraph`` iterates a *set* and
    cannot guarantee this, which is why fragments do not use it.)
    """
    sub = PropertyGraph()
    inside = set(ordered_members)
    for node_id in ordered_members:
        node = graph.node(node_id)
        sub.add_node(node.label, dict(node.attrs) or None, node_id=node_id)
    for node_id in ordered_members:
        for edge in graph.out_edges(node_id):
            if edge.dst in inside:
                sub.add_edge(edge.src, edge.dst, edge.label)
    return sub


@dataclass(frozen=True)
class FragmentSpec:
    """Plain-data description of one edge-cut fragment.

    ``interior`` is the position-contiguous range this fragment *owns*;
    ``members`` is ``interior ∪ halo`` — everything it *replicates* —
    in whole-graph position order. A dQ-ball shipped for one unit uses
    the sentinel ``fragment_id == -1`` with the pivot as its interior.
    """

    fragment_id: int
    num_fragments: int
    radius: int
    interior: Tuple[NodeId, ...]
    members: Tuple[NodeId, ...]

    @cached_property
    def interior_set(self) -> FrozenSet[NodeId]:
        return frozenset(self.interior)

    @cached_property
    def member_set(self) -> FrozenSet[NodeId]:
        return frozenset(self.members)

    @property
    def halo(self) -> Tuple[NodeId, ...]:
        interior = self.interior_set
        return tuple(node for node in self.members if node not in interior)

    def owns(self, node: NodeId) -> bool:
        return node in self.interior_set

    def covers(self, node: NodeId) -> bool:
        return node in self.member_set


class FragmentIndex:
    """A picklable per-fragment sub-index.

    Wraps the fragment's induced :class:`PropertyGraph` (node ids
    preserved, insertion in whole-graph position order) together with
    its :class:`FragmentSpec`. The graph satisfies the same read API
    ``MatcherRun``/``UnitContext`` consume for the whole graph;
    :meth:`index` compiles (and incrementally maintains) the fragment's
    own :class:`~repro.graph.index.GraphIndex`.
    """

    __slots__ = ("spec", "graph")

    def __init__(self, spec: FragmentSpec, graph: PropertyGraph) -> None:
        self.spec = spec
        self.graph = graph

    def index(self):
        return self.graph.index()

    def canonical_form(self) -> Dict[str, object]:
        return self.graph.index().canonical_form()

    def apply_ops(self, ops: Sequence[tuple]) -> int:
        """Replay a per-fragment delta stream (see ``split_delta``).

        The spec's membership is extended in step: stream-shipped nodes
        sit at the end of position space (``split_delta`` rebuilds
        otherwise), so they append to ``members`` — and to ``interior``
        on the tail fragment, which owns all post-partition growth. A
        standing worker's ``spec.owns()`` check therefore keeps agreeing
        with the coordinator's routing after every refresh.
        """
        count = replay(self.graph, ops)
        spec = self.spec
        new_nodes = tuple(
            op.node_id
            for op in ops
            if isinstance(op, AddNode) and op.node_id not in spec.member_set
        )
        if new_nodes:
            interior = spec.interior
            if 0 <= spec.fragment_id == spec.num_fragments - 1:
                interior = interior + new_nodes
            self.spec = FragmentSpec(
                fragment_id=spec.fragment_id,
                num_fragments=spec.num_fragments,
                radius=spec.radius,
                interior=interior,
                members=spec.members + new_nodes,
            )
        return count

    def replace(self, other: "FragmentIndex") -> None:
        """Adopt a rebuilt replica (ordering-preserving full refresh)."""
        self.spec = other.spec
        self.graph = other.graph

    def __getstate__(self):
        return (self.spec, self.graph)

    def __setstate__(self, state):
        self.spec, self.graph = state

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"FragmentIndex(id={self.spec.fragment_id}, "
            f"|interior|={len(self.spec.interior)}, "
            f"|members|={len(self.spec.members)})"
        )


def dq_ball(
    graph: PropertyGraph,
    center: NodeId,
    radius: int,
    extras: Iterable[NodeId] = (),
) -> FragmentIndex:
    """The serialized dQ-neighborhood of *center*, as a one-off fragment.

    *extras* carries the preassigned bindings of a split work unit: they
    may lie outside ``ball(center, radius)`` (the whole-graph matcher
    exempts preassigned variables from its ``allowed_nodes`` bound), so
    the replica must include them for the residual edge checks. The
    induced subgraph is built in whole-graph position order, hence the
    ball-side candidate enumeration matches the whole graph's exactly.
    """
    position = graph.index().position
    reach = bfs_reach(graph, (center,), radius)
    reach.update(extras)
    ordered = sorted(reach, key=position.__getitem__)
    spec = FragmentSpec(
        fragment_id=-1,
        num_fragments=1,
        radius=radius,
        interior=(center,),
        members=tuple(ordered),
    )
    return FragmentIndex(spec, induced_subgraph(graph, ordered))


class Fragmenter:
    """Edge-cut partitioner over ``GraphIndex.position`` space.

    Splits the position-ordered node list into ``num_fragments``
    contiguous ranges (the interiors) and replicates each range's
    ≤ *radius*-hop neighborhood as its halo. The last fragment owns the
    tail of the range — and, by convention, every node added *after*
    partitioning (grow-only graphs append at the end of position space).

    The instance is the coordinator-side routing table: it knows which
    fragment owns each node (:meth:`fragment_of`), builds shippable
    replicas (:meth:`build`, :meth:`ball_for_unit`) and splits
    whole-graph deltas into per-fragment refresh payloads
    (:meth:`split_delta`).
    """

    def __init__(self, graph: PropertyGraph, num_fragments: int, radius: int) -> None:
        if num_fragments < 1:
            raise ValueError(f"num_fragments must be >= 1, got {num_fragments}")
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self.graph = graph
        self.num_fragments = num_fragments
        self.radius = radius
        order = list(graph.index().nodes)
        base, extra = divmod(len(order), num_fragments)
        self._interiors: List[List[NodeId]] = []
        self._owner: Dict[NodeId, int] = {}
        start = 0
        for fid in range(num_fragments):
            size = base + (1 if fid < extra else 0)
            chunk = order[start : start + size]
            start += size
            self._interiors.append(chunk)
            for node in chunk:
                self._owner[node] = fid
        self._members: List[List[NodeId]] = []
        self._member_sets: List[Set[NodeId]] = []
        self._recompute_members()

    # ------------------------------------------------------------------
    # membership

    def _recompute_members(self) -> None:
        position = self.graph.index().position
        self._members = []
        self._member_sets = []
        for fid in range(self.num_fragments):
            reach = bfs_reach(self.graph, self._interiors[fid], self.radius)
            self._members.append(sorted(reach, key=position.__getitem__))
            self._member_sets.append(reach)

    def fragment_of(self, node: NodeId) -> int:
        """The fragment that owns *node* (unknown nodes → the tail owner)."""
        return self._owner.get(node, self.num_fragments - 1)

    def covers(self, fragment_id: int, node: NodeId) -> bool:
        return node in self._member_sets[fragment_id]

    def covers_unit(self, fragment_id: int, unit) -> bool:
        """Whether every preassigned binding of *unit* is replicated.

        A fresh unit binds only its pivot (interior by routing, so always
        covered); a split unit inherited from a parent that ran elsewhere
        may bind nodes outside this fragment's replica — those fall back
        to dQ-ball shipping.
        """
        members = self._member_sets[fragment_id]
        return all(value in members for _, value in unit.assignment)

    def spec(self, fragment_id: int) -> FragmentSpec:
        return FragmentSpec(
            fragment_id=fragment_id,
            num_fragments=self.num_fragments,
            radius=self.radius,
            interior=tuple(self._interiors[fragment_id]),
            members=tuple(self._members[fragment_id]),
        )

    def specs(self) -> List[FragmentSpec]:
        return [self.spec(fid) for fid in range(self.num_fragments)]

    # ------------------------------------------------------------------
    # replica construction

    def build(self, fragment_id: int) -> FragmentIndex:
        """A shippable replica of one fragment (interior ∪ halo)."""
        return FragmentIndex(
            self.spec(fragment_id),
            induced_subgraph(self.graph, self._members[fragment_id]),
        )

    def ball_for_unit(self, unit) -> FragmentIndex:
        """The dQ-ball a worker needs to run *unit* without the fragment."""
        radius = unit.radius if unit.radius is not None else self.radius
        extras = [value for _, value in unit.assignment]
        return dq_ball(self.graph, unit.pivot_node(), radius, extras)

    # ------------------------------------------------------------------
    # per-fragment delta streams

    def split_delta(self, ops: Sequence[tuple]) -> Dict[int, Optional[List[tuple]]]:
        """Split a whole-graph delta into per-fragment refresh payloads.

        Must be called *after* the coordinator graph has applied *ops*
        (the journal hands out ops it already absorbed). Returns one
        entry per fragment: ``[]`` — untouched, nothing to ship; a
        non-empty op list — replay it on the fragment replica (via
        :meth:`FragmentIndex.apply_ops`); ``None`` — the fragment needs
        a full rebuild (:meth:`build`) because an *old* node newly
        entered its halo and appending it would break the replica's
        position-order insertion invariant.

        New graph nodes are owned by the last fragment (they sit at the
        end of position space). A node that newly enters a fragment's
        reach arrives as an ``AddNode`` carrying its *current* label and
        attributes, followed by its induced edges; journal ops between
        two pre-existing members are forwarded verbatim. Membership is
        monotone (grow-only graph), so nothing is ever retracted.
        """
        position = self.graph.index().position
        tail = self.num_fragments - 1
        for op in ops:
            if isinstance(op, AddNode) and op.node_id not in self._owner:
                self._owner[op.node_id] = tail
                self._interiors[tail].append(op.node_id)
        old_sets = self._member_sets
        self._recompute_members()
        payloads: Dict[int, Optional[List[tuple]]] = {}
        for fid in range(self.num_fragments):
            old = old_sets[fid]
            members = self._member_sets[fid]
            new_nodes = [n for n in self._members[fid] if n not in old]
            max_old_pos = max((position[n] for n in old), default=-1)
            if any(position[n] < max_old_pos for n in new_nodes):
                payloads[fid] = None
                continue
            stream: List[tuple] = []
            new_set = set(new_nodes)
            for node_id in new_nodes:  # already in position order
                node = self.graph.node(node_id)
                stream.append(AddNode(node_id, node.label, dict(node.attrs) or None))
            for node_id in new_nodes:
                for edge in self.graph.out_edges(node_id):
                    if edge.dst in members:
                        stream.append(AddEdge(edge.src, edge.dst, edge.label))
                for edge in self.graph.in_edges(node_id):
                    if edge.src in members and edge.src not in new_set:
                        stream.append(AddEdge(edge.src, edge.dst, edge.label))
            for op in ops:
                if isinstance(op, AddEdge):
                    if (
                        op.src in members
                        and op.dst in members
                        and op.src not in new_set
                        and op.dst not in new_set
                    ):
                        stream.append(op)
                elif isinstance(op, SetLabel):
                    if op.node_id in members and op.node_id not in new_set:
                        stream.append(op)
            payloads[fid] = stream
        return payloads
