"""Execution of individual work units — ``HomMatch`` + ``CheckAttr``.

A work unit ``(Q[z], φ)`` is executed by running the pivoted homomorphism
matcher inside the ``dQ``-neighborhood of ``z`` and enforcing ``φ`` on each
match as it is produced (the pipelined shape of Fig. 3). The function is
runtime-agnostic: the simulated cluster calls it to obtain true operation
counts for its virtual clock, and the thread runtime calls it for real.

Splitting: when the matcher's tick count crosses the TTL budget and
unexplored sibling branches exist, they are stripped into sub-units
(paper, Example 6) and returned to the caller, which routes them back to
the coordinator's queue; the local search then finishes only its current
branch (and any budget-sized chunks after further splits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set

from ..eq.eqrelation import EqRelation
from ..gfd.gfd import GFD
from ..graph.elements import NodeId
from ..graph.graph import PropertyGraph
from ..graph.neighborhood import bfs_hops
from ..matching.homomorphism import MatcherRun
from ..matching.plan import MatchPlan, get_plan
from ..matching.simulation import CandidateSet, simulation_candidates
from ..reasoning.enforce import EnforcementEngine
from ..reasoning.workunits import WorkUnit


class UnitContext:
    """Shared read-only state for unit execution.

    Caches ``dQ``-neighborhoods, per-GFD dual-simulation candidate sets,
    and per-GFD compiled match plans — all depend only on the canonical
    graph's topology, which never changes during a run. The plan cache is
    the unit-level face of the :class:`~repro.matching.plan.MatchPlan`
    reuse: every work unit of one GFD (there are typically thousands)
    shares a single compiled plan.

    Neighborhoods are backed by one BFS *hop map* per pivot, kept at the
    largest radius requested so far: all GFDs pivoting at the same node
    share the BFS regardless of their individual ``dQ`` radii (equal radii
    share the derived node set too, via a ``(pivot, radius)`` view cache).
    :meth:`precompute_neighborhoods` warms the maps coordinator-side for
    hot pivots, so workers — in particular forked process workers, which
    inherit the warm cache — never repeat the traversal.
    """

    #: Above this many target nodes, global dual simulation is skipped —
    #: the per-unit ``dQ``-neighborhood restriction already bounds search,
    #: and an O(|Q|·|G|) pre-pass per GFD would dominate at scale.
    SIMULATION_NODE_LIMIT = 600

    def __init__(
        self,
        graph: PropertyGraph,
        gfds_by_name: Mapping[str, GFD],
        use_simulation_pruning: bool = True,
        use_bitsets: bool = True,
        fragment=None,
        plan_orders: Optional[Mapping[str, Sequence[str]]] = None,
        pivot_overrides: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.graph = graph
        self.gfds = dict(gfds_by_name)
        #: The :class:`~repro.graph.fragment.FragmentIndex` this context is
        #: bound to, when *graph* is a fragment replica rather than the
        #: whole canonical graph. Fragment-bound contexts pickle without
        #: their dQ-ball/candidate caches (see :meth:`__getstate__`).
        self.fragment = fragment
        #: gfd name -> full pivot-first variable order, computed against
        #: the *whole* graph coordinator-side. Fragment replicas pass their
        #: entry to :class:`MatcherRun` so the search order — and hence the
        #: match stream — is byte-identical to whole-graph execution even
        #: though the replica's own statistics would order differently.
        self.plan_orders = dict(plan_orders) if plan_orders is not None else None
        #: gfd name -> pivot variable chosen against the whole graph, so a
        #: replica's :meth:`ruleset_plan` trie paths agree with the
        #: coordinator's grouped units regardless of local statistics.
        self.pivot_overrides = (
            dict(pivot_overrides) if pivot_overrides is not None else None
        )
        #: Coordinator-side only: the :class:`~repro.graph.fragment.Fragmenter`
        #: routing table. When set, :meth:`locality_key` pins every radius-
        #: bounded unit to its pivot's owning fragment. Never pickled.
        self.fragment_router = None
        # The caller's request, kept separately: the effective flag below
        # also depends on graph size, which deltas can change — it is
        # re-derived in :meth:`note_topology_change`.
        self._simulation_requested = use_simulation_pruning
        self.use_simulation_pruning = (
            use_simulation_pruning and graph.num_nodes <= self.SIMULATION_NODE_LIMIT
        )
        #: Candidate-set representation: packed NodeBitset vectors over the
        #: graph's compiled index (default) vs plain sets (ablation). Both
        #: produce byte-identical match streams.
        self.use_bitsets = use_bitsets
        # pivot -> (radius the map was computed to, node -> hop distance).
        self._hop_maps: Dict[NodeId, tuple] = {}
        # pivot -> affinity routing key (dominant neighbor); node -> degree.
        self._locality_keys: Dict[NodeId, NodeId] = {}
        self._degrees: Dict[NodeId, int] = {}
        # (pivot, radius) -> materialized allowed-node set (shared object,
        # so repeated units of equal radius reuse one set instance).
        self._neighborhoods: Dict[tuple, object] = {}
        self._candidates: Dict[str, Optional[Dict[str, CandidateSet]]] = {}
        self._plans: Dict[str, MatchPlan] = {}
        #: Lazily-built shared-prefix trie over all pivotable rules, for
        #: grouped work units (one plan per context; epoch revalidation is
        #: the walk's responsibility). Excluded from worker pickles — it
        #: holds compiled, index-bound steps — and rebuilt worker-side on
        #: first grouped unit.
        self._ruleset_plan = None
        #: unit-cost memo: gfd name -> estimated per-pivot search cost.
        self._unit_costs: Dict[str, float] = {}
        # Graph mutation count the topology caches are valid for; checked
        # lazily at every cache entry point so a context reused across
        # mutations (any backend, or direct execute_unit) never serves
        # stale neighborhoods or candidate sets.
        self._topology_version = graph.mutation_count

    def plan_for(self, gfd: GFD) -> MatchPlan:
        """The compiled match plan shared by all of *gfd*'s work units.

        Delta-aware: a cached plan whose index has pending journal ops (or
        was superseded by a compaction rebuild) is re-fetched through
        :func:`~repro.matching.plan.get_plan`, which absorbs the journal
        and revalidates — normally handing the same plan object back.
        """
        plan = self._plans.get(gfd.name)
        if plan is None or plan.index.graph is not self.graph or plan.index.stale:
            plan = get_plan(gfd.pattern, self.graph)
            self._plans[gfd.name] = plan
        return plan

    def note_topology_change(self) -> None:
        """Invalidate every topology-derived cache after graph mutations.

        Invoked lazily by the cache entry points whenever the graph's
        mutation count has advanced (so *any* run-mutate-run reuse of a
        context is safe, regardless of backend), and explicitly by
        standing process workers when replaying a coordinator delta: BFS
        hop maps, materialized ``dQ``-neighborhood sets and
        dual-simulation candidate sets may all have changed, so they are
        dropped and recomputed on demand. Compiled match plans are *kept*
        — they revalidate against the index epoch on next use
        (:meth:`plan_for`).
        """
        self._hop_maps.clear()
        self._neighborhoods.clear()
        self._candidates.clear()
        self._locality_keys.clear()
        self._degrees.clear()
        # Cost estimates are topology-derived too; the trie itself is kept
        # (its walks revalidate against the index epoch on entry).
        self._unit_costs.clear()
        self._topology_version = self.graph.mutation_count
        # Re-derive the size-gated simulation decision: deltas may have
        # grown the graph past SIMULATION_NODE_LIMIT (or a caller may
        # construct contexts small and grow them), and the global
        # dual-simulation pre-pass is exactly the cost the limit avoids.
        self.use_simulation_pruning = (
            self._simulation_requested
            and self.graph.num_nodes <= self.SIMULATION_NODE_LIMIT
        )

    def precompile_plans(self, gfds=None) -> None:
        """Compile plans for *gfds* (default: all registered) up front, so
        worker-side unit execution never pays compilation latency."""
        for gfd in self.gfds.values() if gfds is None else gfds:
            self.plan_for(gfd)

    def ruleset_plan(self):
        """The shared-prefix trie over all pivotable registered rules.

        Built once per context (O(Σ|Q|), pulling the same cached per-rule
        plans as :meth:`plan_for`, so trie paths and per-rule layouts
        always agree) and revalidated against the index epoch by every
        walk. Pivot variables come from the same deterministic
        :func:`~repro.reasoning.workunits.choose_pivot` the grouped unit
        generator uses, so a unit's ``group`` and the trie's pivoted paths
        line up on any replica holding an identical graph. Trivial and
        disconnected rules are excluded — the former execute as no-ops,
        the latter keep classic ungrouped units.
        """
        if self._ruleset_plan is None:
            from ..matching.ruleset import RuleSetPlan
            from ..reasoning.workunits import choose_pivot

            plan = RuleSetPlan(self.graph)
            for gfd in self.gfds.values():
                if gfd.is_trivial() or not gfd.pattern.is_connected():
                    continue
                pivot = None
                if self.pivot_overrides is not None:
                    pivot = self.pivot_overrides.get(gfd.name)
                if pivot is None:
                    pivot = choose_pivot(gfd, self.graph)
                plan.add(gfd, pivot)
            self._ruleset_plan = plan
        return self._ruleset_plan

    def unit_cost(self, unit: WorkUnit) -> float:
        """Estimated per-pivot search cost of *unit* — the scheduler's
        cost-feedback signal for fair pinned-load balancing.

        Grouped units sum their members' trie-path costs (prefix products
        of per-node branch estimates, shared prefixes counted per rule);
        classic units use the compiled per-rule plan's pivoted fan-out
        estimate. Memoized per rule name — every unit of one rule shares
        the pivot variable, hence the estimate.
        """
        cost = 0.0
        grouped = bool(unit.group)
        for name in unit.gfd_names:
            cached = self._unit_costs.get(name)
            if cached is None:
                gfd = self.gfds.get(name)
                if gfd is None or gfd.is_trivial():
                    # Unregistered rules (bare contexts in tests, foreign
                    # units) cost one flat unit — routing still balances.
                    cached = 1.0
                elif grouped:
                    cached = 1.0 + self.ruleset_plan().rule_cost(name)
                else:
                    bound = [var for var, _ in unit.assignment
                             if var in gfd.pattern.variables]
                    if bound:
                        cached = 1.0 + self.plan_for(gfd).estimated_fanout(bound[0])
                    else:
                        cached = 1.0
                self._unit_costs[name] = cached
            cost += cached
        return cost

    def _ensure_current(self) -> None:
        """Drop topology caches if the graph has mutated since last use."""
        if self.graph.mutation_count != self._topology_version:
            self.note_topology_change()

    def _hop_map(self, pivot: NodeId, radius: int) -> Dict[NodeId, int]:
        self._ensure_current()
        cached = self._hop_maps.get(pivot)
        if cached is None or cached[0] < radius:
            cached = (radius, bfs_hops(self.graph, pivot, max_hops=radius))
            self._hop_maps[pivot] = cached
        return cached[1]

    def allowed_nodes(self, pivot: NodeId, radius: Optional[int]):
        """The materialized ``dQ``-neighborhood of *pivot* at *radius*.

        A :class:`~repro.graph.bitset.NodeBitset` over the graph's compiled
        index when :attr:`use_bitsets` (the matcher then intersects it with
        candidate pools by word-level AND), else a plain set. ``None`` when
        the unit has no radius (disconnected patterns search globally).
        """
        if radius is None:
            return None
        self._ensure_current()
        key = (pivot, radius)
        allowed = self._neighborhoods.get(key)
        if allowed is None:
            hops = self._hop_map(pivot, radius)
            members = {node for node, distance in hops.items() if distance <= radius}
            allowed = self.graph.index().bitset(members) if self.use_bitsets else members
            self._neighborhoods[key] = allowed
        return allowed

    def _degree(self, node: NodeId) -> int:
        degree = self._degrees.get(node)
        if degree is None:
            degree = len(self.graph.neighbors(node))
            self._degrees[node] = degree
        return degree

    def locality_key(self, unit: WorkUnit) -> Optional[NodeId]:
        """The pivot-affinity routing key of *unit* (``None`` = unpinned).

        Units whose pivots share a dense neighborhood — the spokes of one
        hub — must map to the same key, so the
        :class:`~repro.parallel.scheduler.Scheduler` can pin them to one
        worker replica whose warm hop maps and already-applied ``ΔEq``
        ops serve the whole group. The key is the *dominant node of the
        pivot's closed neighborhood*: the pivot's highest-degree neighbor
        when that neighbor out-ranks the pivot itself, else the pivot.
        Ties break on the compiled index's ``position`` (graph insertion
        order), keeping the key deterministic under hash randomization.
        """
        pivot = unit.pivot_node()
        if pivot is None:
            return None
        if self.fragment_router is not None:
            # Fragmented dispatch: the owning fragment's id is the key, so
            # every unit pivoting inside one fragment pins to the worker
            # holding that fragment's replica (composing with affinity
            # routing and grouped units — the key is per unit, however the
            # unit was generated). Radius-less units search the whole
            # graph and stay unpinned.
            if unit.radius is None:
                return None
            return ("frag", self.fragment_router.fragment_of(pivot))
        self._ensure_current()
        key = self._locality_keys.get(pivot)
        if key is None:
            graph = self.graph
            key = pivot
            if graph.has_node(pivot):
                position = graph.index().position
                best_rank = (-self._degree(pivot), position[pivot])
                for neighbor in graph.neighbors(pivot):
                    rank = (-self._degree(neighbor), position[neighbor])
                    if rank < best_rank:
                        key, best_rank = neighbor, rank
            self._locality_keys[pivot] = key
        return key

    def precompute_neighborhoods(
        self, units: Sequence[WorkUnit], min_units: int = 2
    ) -> int:
        """Warm the hop-map cache for hot pivots, coordinator-side.

        A pivot is *hot* when at least *min_units* queued units share it
        (one BFS then serves them all — and every GFD pivoting there). Each
        hot pivot's map is computed once at the largest radius any of its
        units needs. Returns the number of pivots precomputed.
        """
        demand: Dict[NodeId, int] = {}
        count: Dict[NodeId, int] = {}
        for unit in units:
            pivot = unit.pivot_node()
            if pivot is None or unit.radius is None:
                continue
            count[pivot] = count.get(pivot, 0) + 1
            demand[pivot] = max(demand.get(pivot, 0), unit.radius)
        warmed = 0
        for pivot, radius in demand.items():
            if count[pivot] >= min_units:
                self._hop_map(pivot, radius)
                warmed += 1
        return warmed

    # ------------------------------------------------------------------
    # Pickling (process-backend worker shipping)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Ship graph, GFDs, hop maps, and candidate sets — not the plans
        or materialized neighborhoods.

        Compiled plans hold the graph's :class:`GraphIndex` (weak-ref plan
        cache, unpicklable); the index travels separately as a snapshot and
        plans recompile worker-side in O(|Q|) per pattern. Neighborhood
        sets are dropped — they may be :class:`NodeBitset` views bound to
        the coordinator's index object, and workers re-derive them cheaply
        from the shipped hop maps. Dual-simulation candidate sets are
        *kept* (recomputing them is an O(|G|·|Q|) fixpoint per GFD, per
        worker) by downgrading any bitset values to plain picklable sets;
        the matcher accepts either representation with identical streams.

        Fragment-bound contexts (:attr:`fragment` set) additionally drop
        the hop maps and candidate sets: those caches were computed
        against whatever graph the context wrapped *when they warmed* —
        for a context handed a :class:`FragmentIndex` they must be
        rebuilt against the replica, not inherited from a whole-graph
        index whose node universe the fragment does not share.
        """
        state = dict(self.__dict__)
        state["_plans"] = {}
        state["_neighborhoods"] = {}
        # The routing table is coordinator-side state (it wraps the whole
        # graph); replicas never route.
        state["fragment_router"] = None
        # The compiled trie binds the coordinator's index object; workers
        # rebuild it lazily (O(Σ|Q|)) from the shipped graph snapshot.
        state["_ruleset_plan"] = None
        # Affinity routing runs coordinator-side only; workers never ask.
        state["_locality_keys"] = {}
        state["_degrees"] = {}
        state["_unit_costs"] = {}
        state["_candidates"] = {
            name: sim
            if sim is None
            else {var: set(members) for var, members in sim.items()}
            for name, sim in self._candidates.items()
        }
        if self.fragment is not None:
            state["_hop_maps"] = {}
            state["_candidates"] = {}
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    def candidate_sets(self, gfd: GFD) -> Optional[Dict[str, CandidateSet]]:
        """Dual-simulation candidates, or None when pruning is off.

        Computed through :func:`simulation_candidates` in the context's
        candidate-set representation (:attr:`use_bitsets`). A GFD whose
        simulation is empty can never match; that case is encoded as
        ``{var: set()}`` so the matcher terminates immediately.
        """
        self._ensure_current()
        if not self.use_simulation_pruning:
            return None
        if gfd.name not in self._candidates:
            sim = simulation_candidates(
                gfd.pattern, self.graph, use_bitsets=self.use_bitsets
            )
            if sim is None:
                sim = {var: set() for var in gfd.pattern.variables}
            self._candidates[gfd.name] = sim
        return self._candidates[gfd.name]


def attach_fragmentation(context: UnitContext, sigma, num_fragments: int):
    """Fragment *context*'s graph and pin whole-graph matching decisions.

    Builds the :class:`~repro.graph.fragment.Fragmenter` routing table
    (halo radius = Σ's maximum pivot eccentricity) and records, per rule,
    the pivot variable and full variable order the *whole* graph's
    statistics choose. Those travel to every fragment replica and dQ-ball
    — and are installed on the coordinator context itself — so that every
    execution site searches in the same order and the fragmented match
    streams reproduce the unfragmented ones byte for byte. Returns the
    fragmenter (also reachable as ``context.fragment_router``).
    """
    from ..graph.fragment import Fragmenter
    from ..reasoning.workunits import choose_pivot, fragment_radius

    radius = fragment_radius(sigma, context.graph)
    router = Fragmenter(context.graph, num_fragments, radius)
    pivots: Dict[str, str] = {}
    orders: Dict[str, tuple] = {}
    for gfd in sigma:
        if gfd.is_trivial() or not gfd.pattern.is_connected():
            continue
        pivot = choose_pivot(gfd, context.graph)
        pivots[gfd.name] = pivot
        layout = context.plan_for(gfd).layout({pivot})
        orders[gfd.name] = (pivot,) + tuple(layout.order)
    context.fragment_router = router
    context.pivot_overrides = pivots
    context.plan_orders = orders
    return router


@dataclass
class UnitResult:
    """What happened while executing one work unit.

    *evidence* carries the :class:`~repro.results.evidence.MatchEvidence`
    records this unit's enforcements interned (empty when provenance
    capture is off) — the per-unit evidence delta the coordinator merges
    into the master engine's log, dedup'd by stable ref.
    """

    unit: WorkUnit
    matches: int = 0
    match_ticks: int = 0
    enforce_ops: int = 0
    delta_ops: int = 0
    conflict: bool = False
    goal_reached: bool = False
    splits: List[WorkUnit] = field(default_factory=list)
    completed: bool = True
    evidence: List[object] = field(default_factory=list)

    @property
    def terminated_early(self) -> bool:
        return self.conflict or self.goal_reached

    @property
    def unit_uid(self) -> str:
        """The executed unit's stable id (cross-process reconciliation)."""
        return self.unit.uid


def execute_unit(
    unit: WorkUnit,
    context: UnitContext,
    engine: EnforcementEngine,
    ttl_ticks: Optional[float] = None,
    max_split_units: int = 16,
    goal_check: Optional[Callable[[EqRelation], bool]] = None,
) -> UnitResult:
    """Run one work unit to completion (or early termination).

    *engine* wraps the (shared) ``Eq`` and inverted index; *goal_check* is
    the implication variant's ``Y ⊆ Eq_H`` test, evaluated after every
    change. The returned result carries exact operation counts for the
    simulated cost model. Grouped units (``unit.group``) take the
    shared-prefix trie path instead of the per-rule matcher.
    """
    if unit.group:
        return _execute_grouped_unit(
            unit, context, engine, ttl_ticks=ttl_ticks, goal_check=goal_check
        )
    gfd = context.gfds[unit.gfd_name]
    result = UnitResult(unit)
    if gfd.is_trivial():
        return result
    eq = engine.eq
    if eq.has_conflict():
        result.conflict = True
        result.completed = False
        return result
    assignment = unit.assignment_dict()
    pivot = unit.pivot_node()
    allowed = context.allowed_nodes(pivot, unit.radius) if pivot is not None else None
    # Fragment replicas pin the whole-graph variable order (shipped via
    # plan_orders) so their match streams reproduce the coordinator's
    # byte for byte; whole-graph contexts leave it None (default layout).
    order = None
    if context.plan_orders is not None:
        order = context.plan_orders.get(unit.gfd_name)
    run = MatcherRun(
        gfd.pattern,
        context.graph,
        preassigned=assignment,
        allowed_nodes=allowed,
        variable_order=order,
        candidate_sets=context.candidate_sets(gfd),
        plan=context.plan_for(gfd),
    )
    engine.set_evidence_context(
        origin="unit",
        plan="per-rule",
        pivot=pivot,
        fragment=(context.fragment.spec.fragment_id if context.fragment else None),
        unit_uid=unit.uid,
    )
    ops_before = engine.ops
    delta_mark = eq.log_position()
    evidence_mark = engine.evidence.position()
    next_split_at = ttl_ticks if ttl_ticks is not None else None
    for match in run.matches():
        result.matches += 1
        engine.enforce(gfd, match)
        if eq.has_conflict():
            result.conflict = True
            result.completed = False
            break
        if goal_check is not None and goal_check(eq):
            result.goal_reached = True
            result.completed = False
            break
        if next_split_at is not None and run.ticks > next_split_at and run.can_split():
            for sub_assignment in run.split(max_units=max_split_units):
                result.splits.append(
                    WorkUnit.make(
                        unit.gfd_name,
                        sub_assignment,
                        radius=unit.radius,
                        generation=unit.generation + 1,
                    )
                )
            # Reset the straggler clock (paper: "resets τ = 0").
            next_split_at = run.ticks + (ttl_ticks or 0)
    result.match_ticks = run.ticks
    result.enforce_ops = engine.ops - ops_before
    result.delta_ops = eq.log_position() - delta_mark
    result.evidence = engine.evidence.delta_since(evidence_mark)
    return result


def _execute_grouped_unit(
    unit: WorkUnit,
    context: UnitContext,
    engine: EnforcementEngine,
    ttl_ticks: Optional[float] = None,
    goal_check: Optional[Callable[[EqRelation], bool]] = None,
) -> UnitResult:
    """Run one grouped unit: all member rules in a single trie walk.

    The shared ``dQ``-ball (the unit's maximum member radius) confines
    every free slot; the walk validates the pivot per rule and enforces
    each emitted ``(rule, match)`` pair as it appears — the pipelined
    shape, across the whole group.

    Straggler handling degroups instead of prefix-splitting: when the walk
    exceeds the TTL budget, it stops and one *ungrouped* per-rule unit per
    surviving member is emitted at generation+1. Those re-run their full
    per-pivot search through the classic matcher path (with its ordinary
    prefix splitting); re-enforcing matches the aborted walk already
    produced is a no-op on the monotone ``Eq``.
    """
    result = UnitResult(unit)
    eq = engine.eq
    if eq.has_conflict():
        result.conflict = True
        result.completed = False
        return result
    plan = context.ruleset_plan()
    pivot = unit.pivot_node()
    allowed = context.allowed_nodes(pivot, unit.radius) if pivot is not None else None
    run = plan.run(
        active=frozenset(unit.group), pivot_node=pivot, allowed_nodes=allowed
    )
    engine.set_evidence_context(
        origin="unit",
        plan="ruleset",
        pivot=pivot,
        fragment=(context.fragment.spec.fragment_id if context.fragment else None),
        unit_uid=unit.uid,
    )
    ops_before = engine.ops
    delta_mark = eq.log_position()
    evidence_mark = engine.evidence.position()
    for name, match in run.matches():
        result.matches += 1
        engine.enforce(context.gfds[name], match)
        if eq.has_conflict():
            result.conflict = True
            result.completed = False
            break
        if goal_check is not None and goal_check(eq):
            result.goal_reached = True
            result.completed = False
            break
        if ttl_ticks is not None and run.ticks > ttl_ticks:
            for member in run.active_names():
                pivot_var = plan.pivot_vars[member]
                result.splits.append(
                    WorkUnit.make(
                        member,
                        {pivot_var: pivot},
                        radius=context.gfds[member].pattern.eccentricity(pivot_var),
                        generation=unit.generation + 1,
                    )
                )
            break
    result.match_ticks = run.ticks
    result.enforce_ops = engine.ops - ops_before
    result.delta_ops = eq.log_position() - delta_mark
    result.evidence = engine.evidence.delta_since(evidence_mark)
    return result
