"""The ``Backend`` protocol every parallel runtime satisfies.

A backend owns the four coordinator/worker duties of the paper's Fig. 3
protocol, and nothing else:

1. **dispatch** — hand queued :class:`~repro.reasoning.workunits.WorkUnit`
   batches to free workers (dynamic assignment, batch size from the
   :class:`~repro.parallel.config.RuntimeConfig`);
2. **split-requeue** — route TTL-split sub-units back to the *front* of
   the shared queue (paper, lines 9–10 of ParSat);
3. **ΔEq broadcast** — make every worker's ``Eq`` mutations visible to the
   others (instantaneously through a shared object, or as replayed
   :class:`~repro.eq.eqrelation.DeltaOp` batches between processes);
4. **early termination** — stop the run at the first conflict, or when the
   implication goal ``Y ⊆ Eq_H`` is reached.

Workload construction (unit generation, ordering, pruning) and unit
execution (:func:`~repro.parallel.units.execute_unit`) live outside the
backend; all backends therefore produce *identical verdicts* — they differ
only in where the workers live and what the timing numbers mean.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, ClassVar, Optional, Sequence

from ...eq.eqrelation import EqRelation
from ...reasoning.enforce import EnforcementEngine
from ...reasoning.workunits import WorkUnit
from ..config import RuntimeConfig
from ..coordinator import ParallelOutcome
from ..units import UnitContext

#: The uniform goal-check signature (``None`` = satisfiability, no goal).
GoalCheck = Callable[[EqRelation], bool]


class Backend(ABC):
    """A parallel execution runtime for the coordinator/worker protocol."""

    #: Registry key (``'simulated'`` / ``'threaded'`` / ``'process'``).
    name: ClassVar[str] = ""

    def __init__(self, config: RuntimeConfig) -> None:
        self.config = config

    @abstractmethod
    def run(
        self,
        units: Sequence[WorkUnit],
        context: UnitContext,
        engine: EnforcementEngine,
        goal_check: Optional[GoalCheck] = None,
        trace=None,
    ) -> ParallelOutcome:
        """Execute *units* to completion or early termination.

        *engine* wraps the coordinator's ``Eq``; on return it reflects the
        merged fixpoint regardless of backend. *goal_check* must be
        picklable for the process backend (see
        :class:`~repro.parallel.goals.EntailmentGoal`). *trace* is honored
        by the simulated backend (virtual timeline) and ignored by the
        wall-clock backends.
        """

    def close(self) -> None:
        """Release resources held *across* runs.

        The in-process backends hold none (no-op); the process backend
        overrides this to stop a persistent worker pool
        (``RuntimeConfig.persistent_workers``). Safe to call repeatedly.
        """

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"{type(self).__name__}(workers={self.config.workers})"
