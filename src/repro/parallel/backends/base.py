"""The ``Backend`` protocol every parallel runtime satisfies.

A backend owns the four coordinator/worker duties of the paper's Fig. 3
protocol, and nothing else:

1. **dispatch** — hand queued :class:`~repro.reasoning.workunits.WorkUnit`
   batches to free workers (dynamic assignment, batch size from the
   :class:`~repro.parallel.config.RuntimeConfig`);
2. **split-requeue** — route TTL-split sub-units back to the *front* of
   the shared queue (paper, lines 9–10 of ParSat);
3. **ΔEq broadcast** — make every worker's ``Eq`` mutations visible to the
   others (instantaneously through a shared object, or as replayed
   :class:`~repro.eq.eqrelation.DeltaOp` batches between processes);
4. **early termination** — stop the run at the first conflict, or when the
   implication goal ``Y ⊆ Eq_H`` is reached.

Workload construction (unit generation, ordering, pruning) and unit
execution (:func:`~repro.parallel.units.execute_unit`) live outside the
backend; all backends therefore produce *identical verdicts* — they differ
only in where the workers live and what the timing numbers mean.

Backends additionally share the *supervision* contract (PR 6): a
worker-side unit failure is retried up to ``config.max_unit_retries``
times and then quarantined into ``ParallelOutcome.quarantined`` instead
of aborting the run; a dead worker's queued units re-pin to the
survivors (``Scheduler.worker_died``); and when the pool collapses below
``config.min_live_workers`` the backend finishes the queue in-process
via :func:`~repro.parallel.coordinator.drain_in_process` and marks the
outcome ``degraded``. ``config.strict_faults`` flips all of that back to
fail-fast with typed :class:`~repro.errors.WorkerFault` /
:class:`~repro.errors.WorkerPoolError` exceptions. Every failure path is
reachable deterministically through ``config.fault_plan``
(:mod:`repro.parallel.faults`): each backend keys its per-worker
dispatch counter against the plan via :meth:`Backend.fault_event` and
interprets the four event kinds in its own idiom (an OS process can
really crash and hang; a thread "crashes" by burying its batch and
leaving the pool; a virtual worker leaves the ready heap).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, ClassVar, Optional, Sequence

from ...eq.eqrelation import EqRelation
from ...reasoning.enforce import EnforcementEngine
from ...reasoning.workunits import WorkUnit
from ..config import RuntimeConfig
from ..coordinator import ParallelOutcome
from ..faults import FaultEvent
from ..units import UnitContext

#: The uniform goal-check signature (``None`` = satisfiability, no goal).
GoalCheck = Callable[[EqRelation], bool]


class Backend(ABC):
    """A parallel execution runtime for the coordinator/worker protocol."""

    #: Registry key (``'simulated'`` / ``'threaded'`` / ``'process'``).
    name: ClassVar[str] = ""

    def __init__(self, config: RuntimeConfig) -> None:
        self.config = config

    @abstractmethod
    def run(
        self,
        units: Sequence[WorkUnit],
        context: UnitContext,
        engine: EnforcementEngine,
        goal_check: Optional[GoalCheck] = None,
        trace=None,
    ) -> ParallelOutcome:
        """Execute *units* to completion or early termination.

        *engine* wraps the coordinator's ``Eq``; on return it reflects the
        merged fixpoint regardless of backend. *goal_check* must be
        picklable for the process backend (see
        :class:`~repro.parallel.goals.EntailmentGoal`). *trace* is honored
        by the simulated backend (virtual timeline) and ignored by the
        wall-clock backends.
        """

    def fault_event(self, worker_id: int, batch_index: int) -> Optional[FaultEvent]:
        """The scripted fault for this dispatch slot, or ``None``.

        Thin lookup into ``config.fault_plan`` so backends share one
        injection keying convention: *batch_index* is the worker's own
        dispatch counter, starting at 0 and never resetting (a respawned
        process continues its predecessor's count), so a scripted event
        fires at most once per ``(worker, batch)`` slot.
        """
        plan = self.config.fault_plan
        if plan is None:
            return None
        return plan.event_at(worker_id, batch_index)

    def close(self) -> None:
        """Release resources held *across* runs.

        The in-process backends hold none (no-op); the process backend
        overrides this to stop a persistent worker pool
        (``RuntimeConfig.persistent_workers``). Safe to call repeatedly.
        """

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"{type(self).__name__}(workers={self.config.workers})"
