"""Process backend: real cores via ``multiprocessing`` worker replicas.

The paper runs ParSat/ParImp on a shared-nothing cluster: the canonical
graph is replicated, workers keep local ``Eq`` replicas, and ``ΔEq`` is
broadcast between them. This backend is that architecture on one machine:

* **workers** are OS processes forked against the coordinator's prebuilt
  state — on fork platforms they inherit the compiled
  :class:`~repro.graph.index.GraphIndex`, the warm neighborhood caches and
  the initial ``Eq`` replica copy-on-write, paying zero serialization; on
  spawn platforms the same state ships once per worker as a pickled
  snapshot (:meth:`GraphIndex.to_snapshot` + the
  :class:`~repro.parallel.units.UnitContext` pickle support) and the index
  is reconstructed without O(|G|) recompilation;
* **dispatch** pickles :class:`~repro.reasoning.workunits.WorkUnit`
  batches over per-worker pipes, routed by the
  :class:`~repro.parallel.scheduler.Scheduler`: units sharing a pivot
  locality key stick to one replica (warm caches, duplicate-ΔEq
  suppression) and each worker's batch size adapts to its observed
  round-trip cost vs ΔEq payload; split sub-units come back inside
  :class:`~repro.parallel.units.UnitResult` and are requeued into the
  scheduler's priority lane (cross-process requeue tracks units by their
  stable :attr:`WorkUnit.uid`);
* **ΔEq broadcast** is explicit: each worker returns the
  :class:`~repro.eq.eqrelation.DeltaOp` ops its replica appended, the
  coordinator merges them into the master ``Eq`` (idempotent replay), and
  every dispatch carries the master ops the receiving worker has not seen
  — minus the ops that worker itself produced (echo suppression: a
  replica never pays wire volume for its own work);
* **early termination** happens at the first conflict (the
  :class:`Conflict` object itself is shipped — conflicts are not log ops)
  or when the implication goal holds on the *master* ``Eq``, which sees
  the union of all replicas.

After the queue drains, *settlement rounds* broadcast leftover deltas
until no worker's parked-match cascade produces new ops — the distributed
equivalent of the shared-engine fixpoint, so all backends return identical
verdicts (the algorithms are Church-Rosser over a monotone ``Eq``).

With ``RuntimeConfig.persistent_workers`` the pool additionally survives
between ``run()`` calls on the same :class:`UnitContext` — the mutation-
heavy serving shape. The coordinator's graph retains a version-stamped
history of its topology ops (:meth:`PropertyGraph.retain_deltas`); a
follow-up run ships each standing replica only the ops since the last
exchange plus the fresh engine, the worker replays them onto its graph
copy (:func:`repro.graph.delta.replay`), drops its topology-derived caches
(:meth:`UnitContext.note_topology_change`) and lets its *index* absorb the
same ops through the journal/:meth:`GraphIndex.apply_delta` path — no
re-fork, no snapshot re-pickling, no O(|G|) recompile. The caller owns the
pool's lifetime (:meth:`ProcessBackend.close`); a context switch or a
history gap falls back to a cold start transparently.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
from multiprocessing import connection as mp_connection
from typing import Dict, List, Optional, Sequence, Set

from ...graph.delta import replay as replay_delta_ops
from ...graph.index import GraphIndex
from ...reasoning.enforce import EnforcementEngine
from ...reasoning.workunits import WorkUnit
from ..coordinator import ParallelOutcome, absorb_result, register_splits
from ..scheduler import Scheduler
from ..units import UnitContext, execute_unit
from .base import Backend, GoalCheck

#: Seconds a worker is given to exit after a stop message before being
#: terminated forcefully.
_JOIN_TIMEOUT = 5.0


class _WorkerState:
    """Everything one worker process needs: its replica of the run."""

    __slots__ = ("context", "engine", "goal", "ttl_ticks", "max_split_units")

    def __init__(
        self,
        context: UnitContext,
        engine: EnforcementEngine,
        goal: Optional[GoalCheck],
        ttl_ticks: Optional[float],
        max_split_units: int,
    ) -> None:
        self.context = context
        self.engine = engine
        self.goal = goal
        self.ttl_ticks = ttl_ticks
        self.max_split_units = max_split_units


#: Pre-fork state handed to children by inheritance (fork start method).
_FORK_STATE: Optional[_WorkerState] = None


def make_worker_snapshot(
    context: UnitContext,
    engine: EnforcementEngine,
    goal: Optional[GoalCheck],
    ttl_ticks: Optional[float],
    max_split_units: int,
) -> bytes:
    """Serialize one worker's replica for spawn-style process creation.

    A single ``dumps`` covers the context (graph + caches, sans plans),
    the index snapshot, and the engine replica, so shared objects (the
    GFDs, the graph) are pickled once and re-shared on load.
    """
    payload = {
        "context": context,
        "index": context.graph.index().to_snapshot(),
        "engine": engine,
        "goal": goal,
        "ttl_ticks": ttl_ticks,
        "max_split_units": max_split_units,
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def load_worker_snapshot(blob: bytes) -> _WorkerState:
    """Rebuild a worker replica from :func:`make_worker_snapshot` output.

    The graph index is reconstructed from its snapshot tables (no O(|G|)
    recompilation) and installed on the unpickled graph, then match plans
    — deliberately not shipped — recompile locally in O(|Q|) per pattern.
    """
    payload = pickle.loads(blob)
    context: UnitContext = payload["context"]
    graph = context.graph
    graph.adopt_index(GraphIndex.from_snapshot(graph, payload["index"]))
    context.precompile_plans()
    return _WorkerState(
        context,
        payload["engine"],
        payload["goal"],
        payload["ttl_ticks"],
        payload["max_split_units"],
    )


def _handle_batch(state: _WorkerState, batch: Sequence[WorkUnit], ops) -> tuple:
    """Apply a ΔEq broadcast, run *batch* on the local replica, and report.

    The reply carries only ops appended *after* the replay mark: broadcast
    ops the coordinator already knows are never echoed back, while ops
    produced by the replay-triggered cascade of parked matches are.
    """
    engine = state.engine
    eq = engine.eq
    started = time.perf_counter()
    eq.apply_delta(ops)
    mark = eq.log_position()
    engine.cascade()
    results = []
    goal_reached = False
    if not eq.has_conflict():
        if state.goal is not None and state.goal(eq):
            goal_reached = True
        else:
            for unit in batch:
                result = execute_unit(
                    unit,
                    state.context,
                    engine,
                    ttl_ticks=state.ttl_ticks,
                    max_split_units=state.max_split_units,
                    goal_check=state.goal,
                )
                results.append(result)
                if result.conflict or result.goal_reached:
                    goal_reached = goal_reached or result.goal_reached
                    break
    new_ops = eq.delta_since(mark)
    busy = time.perf_counter() - started
    return ("done", results, new_ops, eq.conflict, goal_reached, busy)


def _handle_refresh(state: _WorkerState, message: tuple) -> None:
    """Bring this standing replica up to the coordinator's state.

    The coordinator ships the topology ops its graph accumulated since the
    last exchange (instead of a fresh snapshot); the replica replays them
    onto its own graph — the journal then feeds the local index's
    ``apply_delta``, so worker-side index upkeep is O(|delta|) too — drops
    topology-derived caches, and installs the new run's engine/goal knobs.
    Match plans survive: they revalidate against the index epoch. Only
    GFDs new since the last exchange are shipped (the registry is
    append-only); the engine arrives without its gfd dict and is rebound
    to the merged local registry here.
    """
    _, ops, new_gfds, engine, goal, ttl_ticks, max_split_units = message
    context = state.context
    replay_delta_ops(context.graph, ops)
    context.gfds.update(new_gfds)
    context.note_topology_change()
    context.graph.index()  # absorb the replayed ops in place
    context.precompile_plans()
    engine.gfds = context.gfds
    state.engine = engine
    state.goal = goal
    state.ttl_ticks = ttl_ticks
    state.max_split_units = max_split_units


def _worker_main(conn, payload: Optional[bytes]) -> None:
    """Worker process entry: serve batch/sync/refresh requests until stopped."""
    try:
        state = _FORK_STATE if payload is None else load_worker_snapshot(payload)
        assert state is not None
        # Replicas never serve delta history themselves; a fork-inherited
        # retention flag would only grow dead weight on every refresh.
        state.context.graph.retain_deltas(False)
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return
            kind = message[0]
            if kind == "stop":
                return
            try:
                if kind == "units":
                    conn.send(_handle_batch(state, message[1], message[2]))
                elif kind == "sync":
                    conn.send(_handle_batch(state, (), message[1]))
                elif kind == "refresh":
                    _handle_refresh(state, message)
                    conn.send(("refreshed",))
                else:  # pragma: no cover - defensive
                    conn.send(("error", f"unknown message kind {kind!r}"))
            except Exception as exc:  # pragma: no cover - worker-side crash
                import traceback

                conn.send(("error", f"{exc}\n{traceback.format_exc()}"))
                return
    finally:
        conn.close()


class ProcessBackend(Backend):
    """Coordinator + ``p`` OS-process workers with ΔEq replica exchange.

    With ``config.persistent_workers`` the pool outlives ``run()``: the
    backend remembers the :class:`UnitContext` and graph version it last
    shipped, and follow-up runs on the same context refresh the standing
    replicas with topology delta ops instead of restarting them. Call
    :meth:`close` when done with the pool.
    """

    name = "process"

    def __init__(self, config) -> None:
        super().__init__(config)
        # Persistent-pool state: None, or a dict with conns/procs/dead/
        # context/graph_version (see run()).
        self._pool: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Persistent-pool lifecycle
    # ------------------------------------------------------------------
    def _refresh_pool(self, pool, context, engine, goal_check) -> bool:
        """Ship graph deltas + the fresh engine to every standing replica.

        Returns False — caller must cold-start — when the pool was built
        for a different context, the graph cannot serve the delta history
        back to the last shipped version, or no worker survives the
        exchange. On success the shipped history is trimmed.
        """
        if pool["context"] is not context:
            return False
        graph = context.graph
        ops = graph.delta_ops_since(pool["graph_version"])
        if ops is None:
            return False
        config = self.config
        conns: List = pool["conns"]
        dead: Set[int] = pool["dead"]
        # Ship only GFDs the replicas have not seen — the registry is
        # append-only in this flow — and strip the engine's own gfd dict
        # for the transfer (the worker rebinds it to its merged registry),
        # so refresh cost stays O(|delta|) rather than O(|Σ|) per run.
        shipped: Set[str] = pool["shipped_gfds"]
        new_gfds = {
            name: gfd for name, gfd in context.gfds.items() if name not in shipped
        }
        engine_gfds = engine.gfds
        engine.gfds = {}
        try:
            message = (
                "refresh",
                ops,
                new_gfds,
                engine,
                goal_check,
                config.ttl_ticks,
                config.max_split_units,
            )
            # Serialize once for all workers; a pickling failure (e.g. an
            # unpicklable goal_check closure under a fork-started pool)
            # must degrade to the cold-start fallback, not escape run()
            # with the pool half-refreshed.
            try:
                blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                return False
        finally:
            engine.gfds = engine_gfds
        recipients = [wid for wid in range(len(conns)) if wid not in dead]
        for worker_id in recipients:
            try:
                # send_bytes pairs with the worker's recv(): Connection
                # .recv() unpickles whatever bytes arrive.
                conns[worker_id].send_bytes(blob)
            except (OSError, ValueError):
                dead.add(worker_id)
        for worker_id in recipients:
            if worker_id in dead:
                continue
            try:
                reply = conns[worker_id].recv()
            except (EOFError, ConnectionError):
                dead.add(worker_id)
                continue
            if reply[0] == "error":
                # The worker exits after reporting an error; mark it dead
                # rather than raising, so a fully-failed refresh degrades
                # to the cold-start fallback instead of wedging the pool.
                dead.add(worker_id)
        if len(dead) >= len(conns):
            return False
        pool["graph_version"] = graph.mutation_count
        shipped.update(new_gfds)
        graph.trim_delta_history(graph.mutation_count)
        return True

    @staticmethod
    def _shutdown_workers(conns, procs, dead) -> None:
        """Stop, join (with a deadline), and disconnect a worker set."""
        for worker_id, conn in enumerate(conns):
            if worker_id in dead:
                continue
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        deadline = time.monotonic() + _JOIN_TIMEOUT
        for proc in procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in conns:
            conn.close()

    def close(self) -> None:
        """Tear down the persistent worker pool, if one is standing."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        self._shutdown_workers(pool["conns"], pool["procs"], pool["dead"])
        pool["context"].graph.retain_deltas(False)

    def run(
        self,
        units: Sequence[WorkUnit],
        context: UnitContext,
        engine: EnforcementEngine,
        goal_check: Optional[GoalCheck] = None,
        trace=None,
    ) -> ParallelOutcome:
        global _FORK_STATE
        config = self.config
        started = time.perf_counter()
        eq = engine.eq
        outcome = ParallelOutcome(units_total=len(units), eq=eq, backend=self.name)
        outcome.worker_busy = [0.0] * config.workers
        if eq.has_conflict():
            outcome.conflict = eq.conflict
            outcome.wall_seconds = time.perf_counter() - started
            return outcome

        # Build everything workers inherit/receive *before* starting them:
        # compiled index (absorbing any pending mutation journal), match
        # plans, and (for ParImp) the initial replica.
        context.graph.index()
        context.precompile_plans()

        persistent = config.persistent_workers
        pool = self._pool if persistent else None
        conns: Optional[List] = None
        procs: List = []
        dead: Set[int] = set()
        if pool is not None:
            # Standing pool: ship deltas + the fresh engine instead of
            # restarting; fall back to a cold start when that is impossible.
            if self._refresh_pool(pool, context, engine, goal_check):
                conns = pool["conns"]
                procs = pool["procs"]
                dead = pool["dead"]
            else:
                self.close()
                pool = None
        if conns is None:
            methods = mp.get_all_start_methods()
            if self.config.start_method is not None:
                method = self.config.start_method
            elif "fork" in methods:
                method = "fork"
            else:
                method = "spawn"
            ctx = mp.get_context(method)
            if persistent:
                # Retain a replayable op history from this point on, so the
                # next run can ship deltas instead of snapshots.
                context.graph.retain_deltas(True)
            state = _WorkerState(
                context, engine, goal_check, config.ttl_ticks, config.max_split_units
            )
            if method == "fork":
                payload: Optional[bytes] = None
                _FORK_STATE = state
            else:
                payload = make_worker_snapshot(
                    context, engine, goal_check, config.ttl_ticks, config.max_split_units
                )

            conns = []
            try:
                for _ in range(config.workers):
                    parent_conn, child_conn = ctx.Pipe()
                    proc = ctx.Process(
                        target=_worker_main, args=(child_conn, payload), daemon=True
                    )
                    proc.start()
                    child_conn.close()
                    conns.append(parent_conn)
                    procs.append(proc)
            finally:
                _FORK_STATE = None
            if persistent:
                pool = {
                    "conns": conns,
                    "procs": procs,
                    "dead": dead,
                    "context": context,
                    "graph_version": context.graph.mutation_count,
                    "shipped_gfds": set(context.gfds),
                }

        conn_worker = {conn: wid for wid, conn in enumerate(conns)}
        scheduler = Scheduler(units, config, context)
        for worker_id in dead:
            # A persistent pool may resume with casualties from earlier
            # runs: never pin locality keys to a worker that cannot serve.
            scheduler.worker_died(worker_id)
        synced = [eq.log_position()] * config.workers
        shipped_ops = [0] * config.workers
        dispatched_at = [0.0] * config.workers
        # Echo suppression: master-log regions a worker itself produced
        # (recorded at merge time in receive()). Broadcasting those back to
        # their producer is pure wasted volume — the replica already holds
        # them — so dispatch() filters the regions out of its ΔEq slice.
        own_regions: List[List[tuple]] = [[] for _ in range(config.workers)]
        idle: List[int] = [wid for wid in range(config.workers) if wid not in dead]
        in_flight: Dict[int, List[WorkUnit]] = {}
        terminated = False

        def bury(worker_id: int, lost: List[WorkUnit]) -> None:
            """Mark a worker dead and requeue its units on the survivors.

            The scheduler re-pins the dead worker's locality keys (and any
            still-queued pinned units) before the lost in-flight units go
            back to the queue front, so everything lands on live replicas;
            stable uids make the units re-dispatchable as-is."""
            dead.add(worker_id)
            scheduler.worker_died(worker_id)
            scheduler.requeue(lost)
            if len(dead) == config.workers:
                raise RuntimeError("all process workers died") from None

        def dispatch(worker_id: int, batch: List[WorkUnit], kind: str = "units") -> bool:
            """Send *batch* plus the worker's pending ΔEq; False when the
            worker turns out to be dead (its batch is requeued for the
            survivors, mirroring the receive-side EOF handling)."""
            base = synced[worker_id]
            ops = eq.delta_since(base)
            regions = own_regions[worker_id]
            if regions:
                ops = [
                    op
                    for position, op in enumerate(ops, start=base)
                    if not any(lo <= position < hi for lo, hi in regions)
                ]
            try:
                if kind == "units":
                    conns[worker_id].send((kind, batch, ops))
                else:
                    conns[worker_id].send((kind, ops))
            except OSError:
                bury(worker_id, batch)
                return False
            outcome.broadcast_volume += len(ops)
            outcome.sync_rounds += 1
            shipped_ops[worker_id] = len(ops)
            dispatched_at[worker_id] = time.perf_counter()
            synced[worker_id] = eq.log_position()
            # Every recorded region ends at or before the log position the
            # sync mark just advanced to, so this dispatch consumed them all.
            own_regions[worker_id] = []
            in_flight[worker_id] = batch
            return True

        def receive(worker_id: int) -> bool:
            """Merge one worker reply into the master state; True if the
            run should terminate (conflict or goal)."""
            nonlocal terminated
            reply = conns[worker_id].recv()
            if reply[0] == "error":
                raise RuntimeError(f"process worker {worker_id} failed: {reply[1]}")
            _, results, new_ops, conflict, goal_reached, busy = reply
            batch = in_flight.pop(worker_id, [])
            dispatched = {unit.uid for unit in batch}
            idle.append(worker_id)
            outcome.worker_busy[worker_id] += busy
            outcome.broadcast_volume += len(new_ops)
            if batch:
                # Only unit round trips feed the adaptive batcher —
                # settlement syncs carry no work, so their payload says
                # nothing about what a batch of units costs. The latency
                # axis is the full dispatch→receive interval (pickling,
                # wire and queuing included), which is what
                # batch_target_seconds promises to bound — the worker's
                # own busy clock would miss exactly the communication
                # cost batching exists to control.
                scheduler.observe(
                    worker_id,
                    len(results),
                    shipped_ops[worker_id] + len(new_ops),
                    time.perf_counter() - dispatched_at[worker_id],
                )
            merge_mark = eq.log_position()
            eq.apply_delta(new_ops)
            if eq.log_position() > merge_mark:
                # The novel slice of this reply is the worker's own work;
                # never echo it back to its producer.
                own_regions[worker_id].append((merge_mark, eq.log_position()))
            if conflict is not None:
                eq.install_conflict(conflict)
            for result in results:
                # Reconcile by stable uid: a result must answer a unit of
                # the batch this worker was handed (pickling round-trips
                # preserve uids, so this is pure protocol hygiene).
                if result.unit_uid not in dispatched:  # pragma: no cover
                    continue
                absorb_result(outcome, result)
                if not (result.conflict or result.goal_reached) and not terminated:
                    register_splits(outcome, result, scheduler.requeue)
            if eq.has_conflict():
                outcome.conflict = eq.conflict
                terminated = True
            elif goal_reached or (goal_check is not None and goal_check(eq)):
                outcome.goal_reached = True
                terminated = True
            return terminated

        run_ok = False
        try:
            # Main dispatch loop: dynamic assignment to free workers (own
            # pinned queue first, then global, then stealing), split
            # sub-units requeued at their owner's queue front as results
            # come back.
            while True:
                while len(scheduler) and idle and not terminated:
                    worker_id = idle.pop(0)
                    if worker_id in dead:
                        continue
                    batch = scheduler.next_batch(worker_id)
                    if not batch:  # pragma: no cover - len() said otherwise
                        idle.append(worker_id)
                        break
                    dispatch(worker_id, batch)
                if not in_flight:
                    break
                ready = mp_connection.wait(
                    [conns[wid] for wid in in_flight], timeout=None
                )
                for conn in ready:
                    worker_id = conn_worker[conn]
                    try:
                        receive(worker_id)
                    except (EOFError, ConnectionError):
                        # Worker died mid-batch: re-pin its keys and put
                        # the lost units back for the survivors.
                        bury(worker_id, in_flight.pop(worker_id, []))

            # Settlement: flush remaining deltas so worker-side parked
            # matches cascade to the shared fixpoint before declaring the
            # verdict. Quiescence = a full round with no new ops anywhere.
            while not terminated:
                recipients = [
                    wid
                    for wid in range(config.workers)
                    if wid not in dead and synced[wid] < eq.log_position()
                ]
                if not recipients:
                    break
                for worker_id in recipients:
                    dispatch(worker_id, [], kind="sync")
                # Drain every successfully dispatched sync — also when a
                # reply terminates the run mid-round, so shutdown stays
                # orderly.
                for worker_id in recipients:
                    if worker_id not in in_flight:
                        continue  # dispatch failed; worker already dead
                    try:
                        receive(worker_id)
                    except (EOFError, ConnectionError):
                        in_flight.pop(worker_id, None)
                        dead.add(worker_id)
                        scheduler.worker_died(worker_id)
            run_ok = True
        finally:
            if pool is not None and run_ok and len(dead) < config.workers:
                # Persistent mode: keep the surviving replicas standing for
                # the next run's delta refresh.
                self._pool = pool
            else:
                if pool is not None:
                    self._pool = None
                    context.graph.retain_deltas(False)
                self._shutdown_workers(conns, procs, dead)

        scheduler.export_stats(outcome)
        outcome.wall_seconds = time.perf_counter() - started
        outcome.virtual_seconds = outcome.wall_seconds
        return outcome
