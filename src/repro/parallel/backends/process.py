"""Process backend: real cores via ``multiprocessing`` worker replicas.

The paper runs ParSat/ParImp on a shared-nothing cluster: the canonical
graph is replicated, workers keep local ``Eq`` replicas, and ``ΔEq`` is
broadcast between them. This backend is that architecture on one machine:

* **workers** are OS processes forked against the coordinator's prebuilt
  state — on fork platforms they inherit the compiled
  :class:`~repro.graph.index.GraphIndex`, the warm neighborhood caches and
  the initial ``Eq`` replica copy-on-write, paying zero serialization; on
  spawn platforms the same state ships once per worker as a pickled
  snapshot (:meth:`GraphIndex.to_snapshot` + the
  :class:`~repro.parallel.units.UnitContext` pickle support) and the index
  is reconstructed without O(|G|) recompilation;
* **dispatch** pickles :class:`~repro.reasoning.workunits.WorkUnit`
  batches over per-worker pipes, routed by the
  :class:`~repro.parallel.scheduler.Scheduler`: units sharing a pivot
  locality key stick to one replica (warm caches, duplicate-ΔEq
  suppression) and each worker's batch size adapts to its observed
  round-trip cost vs ΔEq payload; split sub-units come back inside
  :class:`~repro.parallel.units.UnitResult` and are requeued into the
  scheduler's priority lane (cross-process requeue tracks units by their
  stable :attr:`WorkUnit.uid`);
* **ΔEq broadcast** is explicit: each worker returns the
  :class:`~repro.eq.eqrelation.DeltaOp` ops its replica appended, the
  coordinator merges them into the master ``Eq`` (idempotent replay), and
  every dispatch carries the master ops the receiving worker has not seen
  — minus the ops that worker itself produced (echo suppression: a
  replica never pays wire volume for its own work);
* **early termination** happens at the first conflict (the
  :class:`Conflict` object itself is shipped — conflicts are not log ops)
  or when the implication goal holds on the *master* ``Eq``, which sees
  the union of all replicas.

After the queue drains, *settlement rounds* broadcast leftover deltas
until no worker's parked-match cascade produces new ops — the distributed
equivalent of the shared-engine fixpoint, so all backends return identical
verdicts (the algorithms are Church-Rosser over a monotone ``Eq``).

**Supervision.** The paper assumes all ``p`` workers survive to the
fixpoint; this backend does not. The coordinator supervises its replicas
through four mechanisms, each driven by the same state machine
(live → suspected → dead → respawning, see ``docs/architecture.md``):

* *hang detection* — every wait on worker replies carries a deadline
  derived from the pool's observed round-trip history
  (:meth:`RuntimeConfig.batch_deadline`); a worker past it is killed and
  treated as dead. No wait is ever infinite;
* *retry + quarantine* — a worker-side exception no longer aborts the
  run: the worker reports the failing unit (with its traceback) and
  carries on, and the coordinator retries the unit up to
  ``config.max_unit_retries`` times before quarantining it into
  :attr:`ParallelOutcome.quarantined`. A worker *crash* mid-batch is
  bisected instead: the lost batch re-dispatches as singleton batches, so
  the unit that kills replicas is isolated, charged its retries, and
  quarantined — innocents are simply re-run. Because a dead replica takes
  its parked (UNDECIDED) matches with it, the units it had completed are
  also re-executed on the survivors — re-deriving ``ΔEq`` ops is
  idempotent over the monotone master ``Eq``;
* *respawn with backoff* — a dead slot is restarted (up to
  ``config.max_worker_respawns`` times, exponential backoff) from the
  coordinator's *current* state: fork inheritance or a fresh snapshot of
  the master engine, so the replica arrives fully caught up and the
  scheduler re-opens it for locality pinning (``worker_revived``);
* *graceful degradation* — when the pool still collapses below
  ``config.min_live_workers`` (including the all-dead case), the
  coordinator finishes the remaining queue in-process through the
  simulated path (:func:`~repro.parallel.coordinator.drain_in_process`)
  instead of failing, marking the outcome ``degraded``.

``config.strict_faults`` restores fail-fast: the first fault raises a
typed :class:`~repro.errors.WorkerFault` (or
:class:`~repro.errors.WorkerPoolError` on pool collapse) and the pool is
torn down whole — survivors are never left half-buried. All failure paths
are exercised deterministically via ``config.fault_plan``
(:mod:`repro.parallel.faults`).

With ``RuntimeConfig.persistent_workers`` the pool additionally survives
between ``run()`` calls on the same :class:`UnitContext` — the mutation-
heavy serving shape. The coordinator's graph retains a version-stamped
history of its topology ops (:meth:`PropertyGraph.retain_deltas`); a
follow-up run ships each standing replica only the ops since the last
exchange plus the fresh engine, the worker replays them onto its graph
copy (:func:`repro.graph.delta.replay`), drops its topology-derived caches
(:meth:`UnitContext.note_topology_change`) and lets its *index* absorb the
same ops through the journal/:meth:`GraphIndex.apply_delta` path — no
re-fork, no snapshot re-pickling, no O(|G|) recompile. The caller owns the
pool's lifetime (:meth:`ProcessBackend.close`); a context switch or a
history gap falls back to a cold start transparently.

**Fragmented execution.** With ``RuntimeConfig.fragments`` (the
coordinator context carries a ``fragment_router``) workers no longer
receive the whole graph. The cold-start payload is a small *kit* — the
rules, the pinned whole-graph pivot/variable-order decisions, and the
engine replica — and graph data arrives as per-fragment replicas: an
edge-cut fragment with its ≤dQ-hop halo (:mod:`repro.graph.fragment`),
shipped on demand to whichever worker the scheduler routes the
fragment's units to, and recorded in the coordinator's *holdings* table.
Units whose preassigned bindings escape their fragment's replica (splits
inherited from a unit that ran elsewhere) get a one-shot serialized
dQ-ball instead; units no fragment can serve (disconnected patterns
search the whole graph) run coordinator-side before the pool spins up.
When a worker holding fragments dies its holdings are forgotten, so the
next dispatch of those fragments' units re-ships each full replica to a
survivor — fragment loss costs a re-ship, never a quarantine.
Persistent-pool refreshes split the delta journal *per fragment*
(:meth:`~repro.graph.fragment.Fragmenter.split_delta`): a mutation only
refreshes the fragments whose interior or halo it touches, and a
fragment whose position-order insertion invariant a delta would break is
re-shipped whole.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
import traceback
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Deque, Dict, List, Optional, Sequence, Set

from ...errors import WorkerFault, WorkerPoolError
from ...graph.delta import replay as replay_delta_ops
from ...graph.fragment import FragmentIndex
from ...graph.index import GraphIndex
from ...reasoning.enforce import EnforcementEngine
from ...reasoning.workunits import WorkUnit
from ..coordinator import (
    ParallelOutcome,
    QuarantinedUnit,
    absorb_result,
    drain_in_process,
    register_splits,
)
from ..faults import FaultPlan, InjectedFault, RetryTracker
from ..scheduler import Scheduler
from ..units import UnitContext, execute_unit
from .base import Backend, GoalCheck

#: Seconds a worker is given to exit after a stop message before being
#: terminated forcefully.
_JOIN_TIMEOUT = 5.0


class _WorkerState:
    """Everything one worker process needs: its replica of the run.

    Two shapes share the class. Classic mode carries a whole-graph
    ``context`` (``kit``/``fragments`` are None). Fragmented mode carries
    no whole-graph context at all: ``kit`` holds the graph-independent
    pieces (rules, flags, the pinned whole-graph pivot/order decisions)
    and ``fragments`` maps fragment id → the per-fragment
    :class:`UnitContext` built from its shipped replica.
    """

    __slots__ = (
        "context",
        "engine",
        "goal",
        "ttl_ticks",
        "max_split_units",
        "fault_plan",
        "kit",
        "fragments",
    )

    def __init__(
        self,
        context: Optional[UnitContext],
        engine: EnforcementEngine,
        goal: Optional[GoalCheck],
        ttl_ticks: Optional[float],
        max_split_units: int,
        fault_plan: Optional[FaultPlan] = None,
        kit: Optional[Dict[str, object]] = None,
        fragments: Optional[Dict[int, UnitContext]] = None,
    ) -> None:
        self.context = context
        self.engine = engine
        self.goal = goal
        self.ttl_ticks = ttl_ticks
        self.max_split_units = max_split_units
        self.fault_plan = fault_plan
        self.kit = kit
        self.fragments = fragments


#: Pre-fork state handed to children by inheritance (fork start method).
_FORK_STATE: Optional[_WorkerState] = None


def make_worker_snapshot(
    context: UnitContext,
    engine: EnforcementEngine,
    goal: Optional[GoalCheck],
    ttl_ticks: Optional[float],
    max_split_units: int,
    fault_plan: Optional[FaultPlan] = None,
) -> bytes:
    """Serialize one worker's replica for spawn-style process creation.

    A single ``dumps`` covers the context (graph + caches, sans plans),
    the index snapshot, and the engine replica, so shared objects (the
    GFDs, the graph) are pickled once and re-shared on load.
    """
    payload = {
        "context": context,
        "index": context.graph.index().to_snapshot(),
        "engine": engine,
        "goal": goal,
        "ttl_ticks": ttl_ticks,
        "max_split_units": max_split_units,
        "fault_plan": fault_plan,
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def make_fragment_snapshot(
    context: UnitContext,
    engine: EnforcementEngine,
    goal: Optional[GoalCheck],
    ttl_ticks: Optional[float],
    max_split_units: int,
    fault_plan: Optional[FaultPlan] = None,
    fragments: Optional[Dict[int, FragmentIndex]] = None,
) -> bytes:
    """Serialize a fragmented worker's cold-start payload.

    Unlike :func:`make_worker_snapshot` this ships *no* whole-graph data:
    only the kit (rules, pruning flags, and the pivot/variable-order
    decisions pinned against the whole graph so fragment-local matching
    reproduces whole-graph streams) plus the engine replica. Fragment
    replicas themselves normally arrive later, on demand, inside dispatch
    extras; *fragments* pre-seeds them when a caller wants to.
    """
    payload = {
        "fragmented": True,
        "kit": {
            "gfds": context.gfds,
            "use_simulation_pruning": context._simulation_requested,
            "use_bitsets": context.use_bitsets,
            "plan_orders": context.plan_orders,
            "pivot_overrides": context.pivot_overrides,
        },
        "fragments": dict(fragments or {}),
        "engine": engine,
        "goal": goal,
        "ttl_ticks": ttl_ticks,
        "max_split_units": max_split_units,
        "fault_plan": fault_plan,
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def _fragment_context(kit: Dict[str, object], findex: FragmentIndex) -> UnitContext:
    """Build the per-fragment :class:`UnitContext` around a replica.

    The context wraps the fragment's induced graph; the kit's pinned
    ``plan_orders``/``pivot_overrides`` make its searches agree with the
    whole graph's. Plans compile here, once per fragment, in O(|Q|).
    """
    context = UnitContext(
        findex.graph,
        kit["gfds"],
        use_simulation_pruning=kit["use_simulation_pruning"],
        use_bitsets=kit["use_bitsets"],
        fragment=findex,
        plan_orders=kit["plan_orders"],
        pivot_overrides=kit["pivot_overrides"],
    )
    context.precompile_plans()
    return context


def _resolve_context(
    state: _WorkerState, unit: WorkUnit, balls: Dict[str, FragmentIndex]
) -> UnitContext:
    """Pick the replica a fragmented worker runs *unit* against.

    A dQ-ball shipped for this specific unit wins (one-shot context, not
    retained); otherwise the held fragment that *owns* the unit's pivot
    serves it. The coordinator only dispatches units it has arranged a
    replica for, so the final raise is protocol hygiene — it surfaces in
    the reply's failures slot and goes through retry/quarantine.
    """
    findex = balls.get(unit.uid)
    if findex is not None:
        return _fragment_context(state.kit, findex)
    pivot = unit.pivot_node()
    for context in state.fragments.values():
        if context.fragment.spec.owns(pivot):
            return context
    raise RuntimeError(
        f"worker holds no fragment replica owning the pivot of unit {unit.uid}"
    )


def load_worker_snapshot(blob: bytes) -> _WorkerState:
    """Rebuild a worker replica from :func:`make_worker_snapshot` or
    :func:`make_fragment_snapshot` output.

    Classic payloads: the graph index is reconstructed from its snapshot
    tables (no O(|G|) recompilation) and installed on the unpickled
    graph, then match plans — deliberately not shipped — recompile
    locally in O(|Q|) per pattern. Fragmented payloads build one context
    per pre-seeded fragment replica and otherwise wait for dispatch
    extras to deliver graph data.
    """
    payload = pickle.loads(blob)
    if payload.get("fragmented"):
        kit = payload["kit"]
        fragments = {
            fid: _fragment_context(kit, findex)
            for fid, findex in payload["fragments"].items()
        }
        return _WorkerState(
            None,
            payload["engine"],
            payload["goal"],
            payload["ttl_ticks"],
            payload["max_split_units"],
            payload.get("fault_plan"),
            kit=kit,
            fragments=fragments,
        )
    context: UnitContext = payload["context"]
    graph = context.graph
    graph.adopt_index(GraphIndex.from_snapshot(graph, payload["index"]))
    context.precompile_plans()
    return _WorkerState(
        context,
        payload["engine"],
        payload["goal"],
        payload["ttl_ticks"],
        payload["max_split_units"],
        payload.get("fault_plan"),
    )


def _handle_batch(
    state: _WorkerState,
    batch: Sequence[WorkUnit],
    ops,
    worker_id: int = 0,
    batch_index: Optional[int] = None,
    extras: Optional[Dict[str, dict]] = None,
) -> tuple:
    """Apply a ΔEq broadcast, run *batch* on the local replica, and report.

    The reply carries only ops appended *after* the replay mark: broadcast
    ops the coordinator already knows are never echoed back, while ops
    produced by the replay-triggered cascade of parked matches are. A unit
    that raises — organically or via injection — is reported in the
    ``failures`` slot with its traceback and the worker carries on with
    the rest of the batch: unit failures are the coordinator's
    retry/quarantine problem, not a reason to lose the replica.

    *extras* (fragmented mode) carries graph data riding along with the
    batch: ``"fragments"`` maps fragment id → replica to install and keep
    (the worker now *holds* that fragment), ``"balls"`` maps unit uid →
    one-shot dQ-ball replica used for that unit only. Replicas install
    before anything else so a mid-batch conflict or goal cannot strand
    the coordinator's holdings bookkeeping.
    """
    balls: Dict[str, FragmentIndex] = {}
    if extras:
        for fid, findex in extras.get("fragments", {}).items():
            state.fragments[fid] = _fragment_context(state.kit, findex)
        balls = extras.get("balls", {})
    engine = state.engine
    eq = engine.eq
    started = time.perf_counter()
    event = None
    plan = state.fault_plan
    if plan is not None and batch_index is not None:
        event = plan.event_at(worker_id, batch_index)
    if event is not None:
        if event.kind == "crash":
            # Injected abrupt death: no reply, no cleanup — the
            # coordinator sees EOF exactly as for a real crash.
            os._exit(1)
        elif event.kind in ("hang", "slow"):
            # A hang sleeps past any reasonable deadline (the coordinator
            # kills us mid-sleep); a slow event merely stalls the batch.
            time.sleep(event.stall_seconds)
    eq.apply_delta(ops)
    mark = eq.log_position()
    # Evidence produced from here on — by the replay-triggered cascade as
    # well as unit execution — ships back with the reply; the coordinator
    # interns it by stable ref (idempotent with per-UnitResult evidence).
    evidence_mark = engine.evidence.position()
    engine.set_evidence_context(origin="cascade")
    engine.cascade()
    results = []
    failures: List[tuple] = []
    goal_reached = False
    if not eq.has_conflict():
        if state.goal is not None and state.goal(eq):
            goal_reached = True
        else:
            for position, unit in enumerate(batch):
                try:
                    if plan is not None:
                        plan.check_unit(unit)
                    if event is not None and event.kind == "error" and position == 0:
                        raise InjectedFault(
                            f"injected worker-side error (worker {worker_id}, "
                            f"batch {batch_index})"
                        )
                    context = (
                        state.context
                        if state.fragments is None
                        else _resolve_context(state, unit, balls)
                    )
                    result = execute_unit(
                        unit,
                        context,
                        engine,
                        ttl_ticks=state.ttl_ticks,
                        max_split_units=state.max_split_units,
                        goal_check=state.goal,
                    )
                except Exception:
                    failures.append((unit.uid, traceback.format_exc()))
                    continue
                results.append(result)
                if result.conflict or result.goal_reached:
                    goal_reached = goal_reached or result.goal_reached
                    break
    new_ops = eq.delta_since(mark)
    new_evidence = engine.evidence.delta_since(evidence_mark)
    busy = time.perf_counter() - started
    return (
        "done", results, new_ops, eq.conflict, goal_reached, busy, failures,
        new_evidence,
    )


def _handle_refresh(state: _WorkerState, message: tuple) -> None:
    """Bring this standing replica up to the coordinator's state.

    The coordinator ships the topology ops its graph accumulated since the
    last exchange (instead of a fresh snapshot); the replica replays them
    onto its own graph — the journal then feeds the local index's
    ``apply_delta``, so worker-side index upkeep is O(|delta|) too — drops
    topology-derived caches, and installs the new run's engine/goal knobs.
    Match plans survive: they revalidate against the index epoch. Only
    GFDs new since the last exchange are shipped (the registry is
    append-only); the engine arrives without its gfd dict and is rebound
    to the merged local registry here.

    Fragmented replicas take the per-fragment path instead: the ninth
    message slot carries ``{"updates": {fid: ops-list | FragmentIndex},
    "plan_orders": ..., "pivot_overrides": ...}``. An ops list replays
    onto the held fragment (its interior/halo was touched); a
    :class:`FragmentIndex` replaces it whole (a delta broke the replica's
    position-order invariant); a held fragment with no entry was not
    touched by the mutation and keeps every cache warm. The re-pinned
    whole-graph pivot/order decisions install on every held context —
    graph growth can change them, and replicas must keep agreeing with
    the coordinator.
    """
    (_, ops, new_gfds, engine, goal, ttl_ticks, max_split_units, fault_plan) = message[:8]
    if state.fragments is not None:
        kit = state.kit
        kit["gfds"].update(new_gfds)
        frag_message = message[8] if len(message) > 8 else None
        updates: Dict[int, object] = {}
        if frag_message is not None:
            kit["plan_orders"] = frag_message["plan_orders"]
            kit["pivot_overrides"] = frag_message["pivot_overrides"]
            updates = frag_message["updates"]
        for fid, context in list(state.fragments.items()):
            payload = updates.get(fid)
            if isinstance(payload, FragmentIndex):
                state.fragments[fid] = _fragment_context(kit, payload)
                continue
            if payload:
                context.fragment.apply_ops(payload)
                context.note_topology_change()
                context.graph.index()  # absorb the replayed ops in place
            context.gfds.update(new_gfds)
            context.plan_orders = (
                dict(kit["plan_orders"]) if kit["plan_orders"] is not None else None
            )
            context.pivot_overrides = (
                dict(kit["pivot_overrides"])
                if kit["pivot_overrides"] is not None
                else None
            )
            # The trie binds pivot choices that may have been re-pinned.
            context._ruleset_plan = None
            context.precompile_plans()
        engine.gfds = kit["gfds"]
    else:
        context = state.context
        replay_delta_ops(context.graph, ops)
        context.gfds.update(new_gfds)
        context.note_topology_change()
        context.graph.index()  # absorb the replayed ops in place
        context.precompile_plans()
        engine.gfds = context.gfds
    state.engine = engine
    state.goal = goal
    state.ttl_ticks = ttl_ticks
    state.max_split_units = max_split_units
    state.fault_plan = fault_plan


def _worker_main(conn, payload: Optional[bytes], worker_id: int = 0) -> None:
    """Worker process entry: serve batch/sync/refresh requests until stopped."""
    try:
        state = _FORK_STATE if payload is None else load_worker_snapshot(payload)
        assert state is not None
        # Replicas never serve delta history themselves; a fork-inherited
        # retention flag would only grow dead weight on every refresh.
        if state.context is not None:
            state.context.graph.retain_deltas(False)
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return
            kind = message[0]
            if kind == "stop":
                return
            try:
                if kind == "units":
                    conn.send(
                        _handle_batch(
                            state,
                            message[1],
                            message[2],
                            worker_id,
                            message[3],
                            message[4] if len(message) > 4 else None,
                        )
                    )
                elif kind == "sync":
                    conn.send(_handle_batch(state, (), message[1], worker_id, None))
                elif kind == "refresh":
                    _handle_refresh(state, message)
                    conn.send(("refreshed",))
                else:  # pragma: no cover - defensive
                    conn.send(("error", f"unknown message kind {kind!r}"))
            except Exception as exc:  # pragma: no cover - worker-side crash
                conn.send(("error", f"{exc}\n{traceback.format_exc()}"))
                return
    finally:
        conn.close()


class ProcessBackend(Backend):
    """Coordinator + ``p`` OS-process workers with ΔEq replica exchange.

    Workers are supervised: hung replicas are killed after a deadline,
    failing units are retried then quarantined, dead slots respawn with
    backoff, and a collapsed pool degrades to in-process execution (see
    the module docstring). With ``config.persistent_workers`` the pool
    outlives ``run()``: the backend remembers the :class:`UnitContext`
    and graph version it last shipped, and follow-up runs on the same
    context refresh the standing replicas with topology delta ops instead
    of restarting them. Call :meth:`close` when done with the pool.
    """

    name = "process"

    def __init__(self, config) -> None:
        super().__init__(config)
        # Persistent-pool state: None, or a dict with conns/procs/dead/
        # method/context/graph_version (see run()).
        self._pool: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Persistent-pool lifecycle
    # ------------------------------------------------------------------
    def _refresh_pool(self, pool, context, engine, goal_check) -> bool:
        """Ship graph deltas + the fresh engine to every standing replica.

        In shared-graph mode every replica receives the whole op stream;
        in fragmented mode the pool's own :class:`Fragmenter` splits it
        with ``split_delta`` into per-fragment refresh streams, and each
        replica receives only the streams of the fragments it holds
        (``None`` for a fragment means its halo changed — the fresh
        sub-replica ships whole), plus the re-pinned whole-graph
        pivot/order decisions.

        Returns False — caller must cold-start — when the pool was built
        for a different context, the graph cannot serve the delta history
        back to the last shipped version, or no worker survives the
        exchange. On success the shipped history is trimmed (clamped by
        any MVCC version pins the serving layer holds on the graph).
        """
        if pool["context"] is not context:
            return False
        router = getattr(context, "fragment_router", None)
        pool_router = pool.get("router")
        # Fragmentation toggled (or re-cut differently) between runs: the
        # standing replicas hold the wrong kind of state — cold-start.
        if (pool_router is None) != (router is None):
            return False
        if pool_router is not None and pool_router.num_fragments != router.num_fragments:
            return False
        graph = context.graph
        ops = graph.delta_ops_since(pool["graph_version"])
        if ops is None:
            return False
        config = self.config
        conns: List = pool["conns"]
        dead: Set[int] = pool["dead"]
        # Ship only GFDs the replicas have not seen — the registry is
        # append-only in this flow — and strip the engine's own gfd dict
        # for the transfer (the worker rebinds it to its merged registry),
        # so refresh cost stays O(|delta|) rather than O(|Σ|) per run.
        shipped: Set[str] = pool["shipped_gfds"]
        new_gfds = {
            name: gfd for name, gfd in context.gfds.items() if name not in shipped
        }
        per_frag = None
        if pool_router is not None:
            # The standing replicas were cut by the *pool's* fragmenter;
            # adopt it for this run's routing (the fresh router the entry
            # point attached may partition the grown graph differently
            # than the fragments the workers actually hold), then split
            # the delta into per-fragment refresh streams.
            per_frag = pool_router.split_delta(ops)
            context.fragment_router = pool_router
        engine_gfds = engine.gfds
        engine.gfds = {}
        recipients = [wid for wid in range(len(conns)) if wid not in dead]
        blobs: Dict[int, bytes] = {}
        try:
            # A pickling failure (e.g. an unpicklable goal_check closure
            # under a fork-started pool) must degrade to the cold-start
            # fallback, not escape run() with the pool half-refreshed.
            try:
                if pool_router is None:
                    # Serialize once for all workers.
                    message = (
                        "refresh",
                        ops,
                        new_gfds,
                        engine,
                        goal_check,
                        config.ttl_ticks,
                        config.max_split_units,
                        config.fault_plan,
                    )
                    blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
                    for worker_id in recipients:
                        blobs[worker_id] = blob
                else:
                    # Fragmented refreshes are per-worker: each standing
                    # replica receives only the streams of the fragments
                    # it holds (untouched fragments ship nothing; a
                    # rebuild ships the fresh replica whole), plus the
                    # whole-graph pivot/order decisions re-pinned against
                    # the mutated graph.
                    holdings: List[Set[int]] = pool["holdings"]
                    for worker_id in recipients:
                        updates: Dict[int, object] = {}
                        for fid in holdings[worker_id]:
                            payload = per_frag.get(fid, [])
                            if payload is None:
                                updates[fid] = pool_router.build(fid)
                            elif payload:
                                updates[fid] = payload
                        message = (
                            "refresh",
                            (),
                            new_gfds,
                            engine,
                            goal_check,
                            config.ttl_ticks,
                            config.max_split_units,
                            config.fault_plan,
                            {
                                "updates": updates,
                                "plan_orders": context.plan_orders,
                                "pivot_overrides": context.pivot_overrides,
                            },
                        )
                        blobs[worker_id] = pickle.dumps(
                            message, protocol=pickle.HIGHEST_PROTOCOL
                        )
            except Exception:
                return False
        finally:
            engine.gfds = engine_gfds
        for worker_id in recipients:
            try:
                # send_bytes pairs with the worker's recv(): Connection
                # .recv() unpickles whatever bytes arrive.
                conns[worker_id].send_bytes(blobs[worker_id])
            except (OSError, ValueError):
                dead.add(worker_id)
        # The acks share one deadline (replicas process the refresh
        # concurrently): a standing worker that is alive but unresponsive
        # must not wedge run() at the door — no wait is ever infinite.
        procs: List = pool["procs"]
        ack_deadline = time.monotonic() + config.batch_deadline(0.0)
        for worker_id in recipients:
            if worker_id in dead:
                continue
            try:
                if not conns[worker_id].poll(
                    max(0.0, ack_deadline - time.monotonic())
                ):
                    # Hung mid-refresh: kill the replica and degrade like a
                    # death (to the cold-start fallback if nobody survives).
                    self._kill_worker(procs[worker_id], conns[worker_id])
                    dead.add(worker_id)
                    continue
                reply = conns[worker_id].recv()
            except (EOFError, ConnectionError, OSError):
                dead.add(worker_id)
                continue
            if reply[0] == "error":
                # The worker exits after reporting an error; mark it dead
                # rather than raising, so a fully-failed refresh degrades
                # to the cold-start fallback instead of wedging the pool.
                dead.add(worker_id)
        if len(dead) >= len(conns):
            return False
        pool["graph_version"] = graph.mutation_count
        shipped.update(new_gfds)
        graph.trim_delta_history(graph.mutation_count)
        return True

    @staticmethod
    def _shutdown_workers(conns, procs, dead) -> None:
        """Stop, join (with a deadline), and disconnect a worker set."""
        for worker_id, conn in enumerate(conns):
            if worker_id in dead:
                continue
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        deadline = time.monotonic() + _JOIN_TIMEOUT
        for proc in procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    @staticmethod
    def _kill_worker(proc, conn) -> None:
        """Force-terminate one worker (hang detection / crash cleanup)."""
        if proc is not None:
            try:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
                    if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                        proc.kill()
                        proc.join(timeout=1.0)
                else:
                    proc.join(timeout=0.1)
            except Exception:  # pragma: no cover - already reaped
                pass
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def close(self) -> None:
        """Tear down the persistent worker pool, if one is standing."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        self._shutdown_workers(pool["conns"], pool["procs"], pool["dead"])
        pool["context"].graph.retain_deltas(False)

    def _run_local_units(
        self, units, context, engine, goal_check, outcome, tracker
    ) -> bool:
        """Execute units no fragment can serve, coordinator-side.

        Fragmented mode only: radius-less units (disconnected patterns)
        search the whole graph, which no fragment replica holds, so they
        run here against the master engine before the pool spins up.
        Splits stay local (they inherit the parent's missing radius);
        retry/quarantine and fault injection apply exactly as they would
        worker-side. Returns True when the run terminated early.
        """
        config = self.config
        eq = engine.eq
        plan = config.fault_plan
        pending: Deque[WorkUnit] = deque(units)
        while pending:
            unit = pending.popleft()
            try:
                if plan is not None:
                    plan.check_unit(unit)
                result = execute_unit(
                    unit,
                    context,
                    engine,
                    ttl_ticks=config.ttl_ticks,
                    max_split_units=config.max_split_units,
                    goal_check=goal_check,
                )
            except Exception as exc:
                detail = traceback.format_exc()
                if config.strict_faults:
                    raise WorkerFault(
                        f"unit {unit.uid} failed during coordinator-side "
                        f"execution: {exc}",
                        unit_uid=unit.uid,
                        worker_traceback=detail,
                    ) from exc
                if tracker.record_failure(unit):
                    outcome.retries += 1
                    pending.append(unit)
                else:
                    outcome.quarantined.append(
                        QuarantinedUnit(unit, detail, tracker.attempts(unit))
                    )
                continue
            outcome.coordinator_units += 1
            absorb_result(outcome, result)
            if result.conflict or eq.has_conflict():
                outcome.conflict = eq.conflict
                return True
            if result.goal_reached or (goal_check is not None and goal_check(eq)):
                outcome.goal_reached = True
                return True
            register_splits(
                outcome, result, lambda splits: pending.extendleft(reversed(splits))
            )
        return False

    def run(
        self,
        units: Sequence[WorkUnit],
        context: UnitContext,
        engine: EnforcementEngine,
        goal_check: Optional[GoalCheck] = None,
        trace=None,
    ) -> ParallelOutcome:
        global _FORK_STATE
        config = self.config
        started = time.perf_counter()
        eq = engine.eq
        outcome = ParallelOutcome(units_total=len(units), eq=eq, backend=self.name)
        outcome.worker_busy = [0.0] * config.workers
        if eq.has_conflict():
            outcome.conflict = eq.conflict
            outcome.wall_seconds = time.perf_counter() - started
            return outcome

        # Build everything workers inherit/receive *before* starting them:
        # compiled index (absorbing any pending mutation journal), match
        # plans, and (for ParImp) the initial replica.
        context.graph.index()
        context.precompile_plans()

        tracker = RetryTracker(config.max_unit_retries)
        router = getattr(context, "fragment_router", None)
        if router is not None:
            # Units no fragment can serve (disconnected patterns search
            # the whole graph) run coordinator-side before the pool spins
            # up; only fragment-servable units are dispatched remotely.
            local = [
                unit
                for unit in units
                if unit.pivot_node() is None or unit.radius is None
            ]
            units = [
                unit
                for unit in units
                if not (unit.pivot_node() is None or unit.radius is None)
            ]
            if local and self._run_local_units(
                local, context, engine, goal_check, outcome, tracker
            ):
                outcome.wall_seconds = time.perf_counter() - started
                outcome.virtual_seconds = outcome.wall_seconds
                return outcome

        persistent = config.persistent_workers
        pool = self._pool if persistent else None
        conns: Optional[List] = None
        procs: List = []
        dead: Set[int] = set()
        method: Optional[str] = None
        holdings: Optional[List[Set[int]]] = None
        if pool is not None:
            # Standing pool: ship deltas + the fresh engine instead of
            # restarting; fall back to a cold start when that is impossible.
            if self._refresh_pool(pool, context, engine, goal_check):
                conns = pool["conns"]
                procs = pool["procs"]
                dead = pool["dead"]
                method = pool["method"]
                # The refresh adopted the pool's fragmenter (the holdings
                # on the standing replicas were cut by it).
                router = getattr(context, "fragment_router", None)
                holdings = pool.get("holdings")
            else:
                self.close()
                pool = None
        if conns is None:
            methods = mp.get_all_start_methods()
            if self.config.start_method is not None:
                method = self.config.start_method
            elif "fork" in methods:
                method = "fork"
            else:
                method = "spawn"
            ctx = mp.get_context(method)
            if persistent:
                # Retain a replayable op history from this point on, so the
                # next run can ship deltas instead of snapshots.
                context.graph.retain_deltas(True)
            if router is not None:
                # Fragmented cold start: every worker receives the same
                # graph-free kit; fragment replicas ship later, on demand,
                # inside dispatch extras (the holdings table tracks who
                # holds what). Explicit payloads even under fork — the
                # point is that replicas never depend on whole-graph state.
                holdings = [set() for _ in range(config.workers)]
                payload: Optional[bytes] = make_fragment_snapshot(
                    context,
                    engine,
                    goal_check,
                    config.ttl_ticks,
                    config.max_split_units,
                    config.fault_plan,
                )
            elif method == "fork":
                payload = None
                _FORK_STATE = _WorkerState(
                    context,
                    engine,
                    goal_check,
                    config.ttl_ticks,
                    config.max_split_units,
                    config.fault_plan,
                )
            else:
                payload = make_worker_snapshot(
                    context,
                    engine,
                    goal_check,
                    config.ttl_ticks,
                    config.max_split_units,
                    config.fault_plan,
                )

            conns = []
            try:
                for worker_id in range(config.workers):
                    parent_conn, child_conn = ctx.Pipe()
                    proc = ctx.Process(
                        target=_worker_main,
                        args=(child_conn, payload, worker_id),
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()
                    conns.append(parent_conn)
                    procs.append(proc)
            finally:
                _FORK_STATE = None
            if persistent:
                pool = {
                    "conns": conns,
                    "procs": procs,
                    "dead": dead,
                    "method": method,
                    "context": context,
                    "graph_version": context.graph.mutation_count,
                    "shipped_gfds": set(context.gfds),
                    "router": router,
                    "holdings": holdings,
                }

        conn_worker = {conn: wid for wid, conn in enumerate(conns)}
        scheduler = Scheduler(units, config, context)
        for worker_id in dead:
            # A persistent pool may resume with casualties from earlier
            # runs: never pin locality keys to a worker that cannot serve.
            scheduler.worker_died(worker_id)
        synced = [eq.log_position()] * config.workers
        shipped_ops = [0] * config.workers
        dispatched_at = [0.0] * config.workers
        # Echo suppression: master-log regions a worker itself produced
        # (recorded at merge time in receive()). Broadcasting those back to
        # their producer is pure wasted volume — the replica already holds
        # them — so dispatch() filters the regions out of its ΔEq slice.
        own_regions: List[List[tuple]] = [[] for _ in range(config.workers)]
        idle: List[int] = [wid for wid in range(config.workers) if wid not in dead]
        in_flight: Dict[int, List[WorkUnit]] = {}
        terminated = False
        # --- supervision state (tracker created before the coordinator-
        # side local-unit pass, which shares its retry accounting) ---
        #: Units from a crashed worker's batch, re-dispatched as singleton
        #: batches so a replica-killing unit can be isolated (bisection).
        suspects: Deque[WorkUnit] = deque()
        #: Per-worker units absorbed so far this run: a dead replica's
        #: parked matches die with it, so its completed units re-execute
        #: on the survivors (idempotent over the monotone master Eq).
        completed: List[Dict[str, WorkUnit]] = [{} for _ in range(config.workers)]
        #: Dispatch counters per slot — drive FaultPlan (worker, batch)
        #: event keys and keep counting across respawns, so an injected
        #: event fires at most once per slot.
        batch_counters = [0] * config.workers
        respawn_counts = [0] * config.workers
        #: Dead slots awaiting restart: worker_id → not-before timestamp.
        #: The exponential backoff elapses inside the main loop's wait
        #: cycle — never as a coordinator-blocking sleep, which would stall
        #: hang detection for the surviving in-flight workers.
        pending_respawns: Dict[int, float] = {}
        #: Slowest completed round trip (seconds) — the adaptive hang
        #: deadline's history input.
        slowest_trip = 0.0

        def live_count() -> int:
            return config.workers - len(dead)

        def collapsed() -> bool:
            return live_count() < max(1, config.min_live_workers)

        def pending_work() -> bool:
            return bool(len(scheduler) or suspects)

        def schedule_respawn(worker_id: int) -> None:
            """Queue a dead slot for restart once its backoff elapses."""
            if respawn_counts[worker_id] >= config.max_worker_respawns:
                return
            backoff = config.respawn_backoff_seconds * (
                2 ** respawn_counts[worker_id]
            )
            pending_respawns[worker_id] = time.perf_counter() + backoff

        def perform_due_respawns() -> None:
            """Restart every pending slot whose backoff has elapsed."""
            now = time.perf_counter()
            for worker_id in [
                wid for wid, due in pending_respawns.items() if due <= now
            ]:
                del pending_respawns[worker_id]
                respawn(worker_id)

        def respawn(worker_id: int) -> bool:
            """Restart a dead slot from the coordinator's current state."""
            global _FORK_STATE
            if respawn_counts[worker_id] >= config.max_worker_respawns:
                return False
            respawn_counts[worker_id] += 1
            ctx = mp.get_context(method)
            # The replica is rebuilt from *current* master state (master
            # Eq included), so it needs no catch-up broadcast: fork
            # inherits it copy-on-write, spawn ships a fresh snapshot. A
            # fragmented respawn restarts from the bare kit — its slot's
            # holdings were cleared at burial, so fragments re-ship on
            # demand with the units that need them.
            try:
                if router is not None:
                    blob: Optional[bytes] = make_fragment_snapshot(
                        context,
                        engine,
                        goal_check,
                        config.ttl_ticks,
                        config.max_split_units,
                        config.fault_plan,
                    )
                elif method == "fork":
                    blob = None
                    _FORK_STATE = _WorkerState(
                        context,
                        engine,
                        goal_check,
                        config.ttl_ticks,
                        config.max_split_units,
                        config.fault_plan,
                    )
                else:
                    blob = make_worker_snapshot(
                        context,
                        engine,
                        goal_check,
                        config.ttl_ticks,
                        config.max_split_units,
                        config.fault_plan,
                    )
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main, args=(child_conn, blob, worker_id), daemon=True
                )
                proc.start()
                child_conn.close()
            except Exception:  # pragma: no cover - out of pids/memory
                return False
            finally:
                _FORK_STATE = None
            conns[worker_id] = parent_conn
            procs[worker_id] = proc
            conn_worker[parent_conn] = worker_id
            dead.discard(worker_id)
            scheduler.worker_revived(worker_id)
            synced[worker_id] = eq.log_position()
            own_regions[worker_id] = []
            shipped_ops[worker_id] = 0
            if worker_id not in idle:
                idle.append(worker_id)
            outcome.respawns += 1
            return True

        def bury(worker_id: int, lost: List[WorkUnit], cause: str, crashed: bool = True) -> None:
            """Declare a worker dead, recover its work, schedule a respawn.

            The scheduler re-pins the dead worker's locality keys (and any
            still-queued pinned units) onto the survivors. In-flight units
            of a *crashed* worker go to the suspect lane (singleton
            re-dispatch — bisection — with a singleton's death charged to
            its unit); units a dispatch failure never delivered are simply
            requeued. The worker's completed units re-run elsewhere (its
            parked matches died with it). Idempotent per worker.
            """
            if worker_id in dead:
                return
            dead.add(worker_id)
            outcome.worker_deaths += 1
            scheduler.worker_died(worker_id)
            if holdings is not None:
                # The dead replica's fragments died with it: forgetting
                # its holdings makes the next dispatch of those fragments'
                # units re-ship each full replica to whichever survivor
                # receives them — fragment loss never quarantines a unit.
                holdings[worker_id].clear()
            if worker_id in idle:
                idle.remove(worker_id)
            self._kill_worker(procs[worker_id], conns[worker_id])
            if config.strict_faults:
                raise WorkerFault(
                    f"process worker {worker_id} failed: {cause}",
                    worker_id=worker_id,
                    worker_traceback=cause,
                )
            if lost:
                if crashed:
                    if len(lost) == 1:
                        unit = lost[0]
                        if tracker.record_failure(unit):
                            outcome.retries += 1
                            suspects.append(unit)
                        else:
                            outcome.quarantined.append(
                                QuarantinedUnit(
                                    unit, cause, tracker.attempts(unit), worker_id
                                )
                            )
                    else:
                        suspects.extend(lost)
                else:
                    scheduler.requeue(lost)
            orphans = list(completed[worker_id].values())
            completed[worker_id].clear()
            if orphans:
                scheduler.requeue(orphans)
            schedule_respawn(worker_id)

        def fragment_extras(worker_id: int, batch: List[WorkUnit]):
            """Graph data riding along with a fragmented dispatch.

            Per unit: nothing when the receiving worker already holds the
            pivot's owning fragment; the full fragment replica when no
            *other* live worker holds it (initial placement, or a re-ship
            after the previous holder died); a one-shot dQ-ball otherwise
            — the unit was stolen from the holder's queue, or its
            preassigned bindings (split inheritance) escape the replica.
            """
            frags: Dict[int, object] = {}
            balls: Dict[str, object] = {}
            for unit in batch:
                pivot = unit.pivot_node()
                if pivot is None or unit.radius is None:  # pragma: no cover
                    continue  # local units never reach dispatch
                fid = router.fragment_of(pivot)
                if router.covers_unit(fid, unit):
                    if fid in holdings[worker_id]:
                        continue
                    if not any(
                        fid in holdings[wid]
                        for wid in range(config.workers)
                        if wid != worker_id and wid not in dead
                    ):
                        frags[fid] = router.build(fid)
                        holdings[worker_id].add(fid)
                        outcome.fragments_shipped += 1
                        continue
                balls[unit.uid] = router.ball_for_unit(unit)
                outcome.balls_shipped += 1
            if frags or balls:
                return {"fragments": frags, "balls": balls}
            return None

        def dispatch(worker_id: int, batch: List[WorkUnit], kind: str = "units") -> bool:
            """Send *batch* plus the worker's pending ΔEq; False when the
            worker turns out to be dead (its batch is requeued for the
            survivors, mirroring the receive-side EOF handling)."""
            base = synced[worker_id]
            ops = eq.delta_since(base)
            regions = own_regions[worker_id]
            if regions:
                ops = [
                    op
                    for position, op in enumerate(ops, start=base)
                    if not any(lo <= position < hi for lo, hi in regions)
                ]
            extras = None
            if router is not None and kind == "units" and batch:
                extras = fragment_extras(worker_id, batch)
            try:
                if kind == "units":
                    conns[worker_id].send(
                        (kind, batch, ops, batch_counters[worker_id], extras)
                    )
                    batch_counters[worker_id] += 1
                else:
                    conns[worker_id].send((kind, ops))
            except OSError:
                bury(worker_id, batch, "dispatch pipe closed", crashed=False)
                return False
            outcome.broadcast_volume += len(ops)
            outcome.sync_rounds += 1
            shipped_ops[worker_id] = len(ops)
            dispatched_at[worker_id] = time.perf_counter()
            synced[worker_id] = eq.log_position()
            # Every recorded region ends at or before the log position the
            # sync mark just advanced to, so this dispatch consumed them all.
            own_regions[worker_id] = []
            in_flight[worker_id] = batch
            return True

        def receive(worker_id: int) -> bool:
            """Merge one worker reply into the master state; True if the
            run should terminate (conflict or goal)."""
            nonlocal terminated, slowest_trip
            reply = conns[worker_id].recv()
            if reply[0] == "error":
                # The worker exits after reporting: an infrastructure-level
                # failure (not a unit exception — those come back in the
                # failures slot of a normal reply). Treated as a crash.
                bury(
                    worker_id,
                    in_flight.pop(worker_id, []),
                    f"process worker {worker_id} failed: {reply[1]}",
                )
                return terminated
            _, results, new_ops, conflict, goal_reached, busy, failures = reply[:7]
            # Evidence interned worker-side since the batch started (unit
            # execution plus replay-triggered cascades). Merged by stable
            # content-derived ref, so double delivery — here and inside a
            # retried unit's result — is a no-op.
            if len(reply) > 7:
                engine.evidence.merge(reply[7])
            batch = in_flight.pop(worker_id, [])
            dispatched = {unit.uid: unit for unit in batch}
            if worker_id not in idle:
                # Settlement syncs dispatch to workers still on the idle
                # list; an unconditional append would duplicate the entry,
                # and a duplicated worker could be popped twice by the main
                # loop — its second batch overwriting in_flight and losing
                # the first one's results.
                idle.append(worker_id)
            trip = time.perf_counter() - dispatched_at[worker_id]
            slowest_trip = max(slowest_trip, trip)
            outcome.worker_busy[worker_id] += busy
            outcome.broadcast_volume += len(new_ops)
            if batch:
                # Only unit round trips feed the adaptive batcher —
                # settlement syncs carry no work, so their payload says
                # nothing about what a batch of units costs. The latency
                # axis is the full dispatch→receive interval (pickling,
                # wire and queuing included), which is what
                # batch_target_seconds promises to bound — the worker's
                # own busy clock would miss exactly the communication
                # cost batching exists to control.
                scheduler.observe(
                    worker_id,
                    len(results),
                    shipped_ops[worker_id] + len(new_ops),
                    trip,
                )
            merge_mark = eq.log_position()
            eq.apply_delta(new_ops)
            if eq.log_position() > merge_mark:
                # The novel slice of this reply is the worker's own work;
                # never echo it back to its producer.
                own_regions[worker_id].append((merge_mark, eq.log_position()))
            if conflict is not None:
                eq.install_conflict(conflict)
            for unit_uid, detail in failures:
                unit = dispatched.get(unit_uid)
                if unit is None:  # pragma: no cover - protocol hygiene
                    continue
                if config.strict_faults:
                    raise WorkerFault(
                        f"process worker {worker_id} failed on unit {unit_uid}",
                        worker_id=worker_id,
                        unit_uid=unit_uid,
                        worker_traceback=detail,
                    )
                if tracker.record_failure(unit):
                    outcome.retries += 1
                    scheduler.requeue([unit])
                else:
                    outcome.quarantined.append(
                        QuarantinedUnit(unit, detail, tracker.attempts(unit), worker_id)
                    )
            for result in results:
                # Reconcile by stable uid: a result must answer a unit of
                # the batch this worker was handed (pickling round-trips
                # preserve uids, so this is pure protocol hygiene).
                if result.unit_uid not in dispatched:  # pragma: no cover
                    continue
                completed[worker_id][result.unit_uid] = dispatched[result.unit_uid]
                absorb_result(outcome, result)
                if not (result.conflict or result.goal_reached) and not terminated:
                    register_splits(outcome, result, scheduler.requeue)
            if eq.has_conflict():
                outcome.conflict = eq.conflict
                terminated = True
            elif goal_reached or (goal_check is not None and goal_check(eq)):
                outcome.goal_reached = True
                terminated = True
            return terminated

        def reap_hung_workers() -> None:
            """Kill and bury every in-flight worker past the deadline."""
            limit = config.batch_deadline(slowest_trip)
            now = time.perf_counter()
            for worker_id in [
                wid for wid in in_flight if now - dispatched_at[wid] >= limit
            ]:
                bury(
                    worker_id,
                    in_flight.pop(worker_id),
                    f"process worker {worker_id} exceeded the "
                    f"{limit:.2f}s batch deadline (hang detection)",
                )

        def main_loop() -> None:
            """Dispatch until the queue drains, the run terminates, or the
            pool collapses — whichever comes first. Every wait carries the
            hang-detection deadline; worker death recovers through
            ``bury`` (suspects, completed-unit re-runs, respawn)."""
            while True:
                perform_due_respawns()
                if not terminated and not collapsed():
                    # Dynamic assignment to free workers: the suspect lane
                    # first (singleton batches — bisection), then the
                    # scheduler (own pinned queue, global, stealing).
                    while pending_work() and idle and not terminated:
                        worker_id = idle.pop(0)
                        if worker_id in dead:
                            continue
                        if suspects:
                            batch = [suspects.popleft()]
                        else:
                            batch = scheduler.next_batch(worker_id)
                        if not batch:  # pragma: no cover - len() said otherwise
                            idle.append(worker_id)
                            break
                        dispatch(worker_id, batch)
                if not in_flight:
                    if pending_respawns and not terminated and pending_work():
                        # Nothing in flight, but a backoff is still ticking:
                        # wait it out here rather than declaring the pool
                        # collapsed while a replacement is on its way.
                        due = min(pending_respawns.values())
                        time.sleep(max(0.0, due - time.perf_counter()))
                        continue
                    return
                limit = config.batch_deadline(slowest_trip)
                now = time.perf_counter()
                expiry = min(dispatched_at[wid] + limit for wid in in_flight)
                if pending_respawns:
                    # Wake for the nearest due respawn too, so a restart is
                    # never delayed by a full batch deadline.
                    expiry = min(expiry, min(pending_respawns.values()))
                ready = mp_connection.wait(
                    [conns[wid] for wid in in_flight],
                    timeout=max(0.0, expiry - now),
                )
                if not ready:
                    reap_hung_workers()
                    continue
                for conn in ready:
                    worker_id = conn_worker[conn]
                    if worker_id not in in_flight:  # pragma: no cover
                        continue  # buried by an earlier conn of this round
                    try:
                        receive(worker_id)
                    except (EOFError, ConnectionError, OSError):
                        # Worker died mid-batch: re-pin its keys and put
                        # the lost units into the suspect lane.
                        bury(
                            worker_id,
                            in_flight.pop(worker_id, []),
                            f"process worker {worker_id} died mid-batch",
                        )

        def settle() -> bool:
            """One settlement pass: flush remaining deltas so worker-side
            parked matches cascade to the shared fixpoint. Returns True at
            quiescence; False when a death re-opened the work queue (the
            dead worker's completed units must re-run through the main
            loop first)."""
            while not terminated:
                perform_due_respawns()
                if pending_work():
                    return False
                recipients = [
                    wid
                    for wid in range(config.workers)
                    if wid not in dead and synced[wid] < eq.log_position()
                ]
                if not recipients:
                    return True
                for worker_id in recipients:
                    dispatch(worker_id, [], kind="sync")
                # Drain every successfully dispatched sync — also when a
                # reply terminates the run mid-round, so shutdown stays
                # orderly. A worker that dies or hangs during settlement
                # goes through bury() exactly like the main loop, so its
                # locality keys re-pin exactly once.
                limit = config.batch_deadline(slowest_trip)
                for worker_id in recipients:
                    if worker_id not in in_flight:
                        continue  # dispatch failed; worker already dead
                    remaining = dispatched_at[worker_id] + limit - time.perf_counter()
                    try:
                        if not conns[worker_id].poll(max(0.0, remaining)):
                            in_flight.pop(worker_id, None)
                            bury(
                                worker_id,
                                [],
                                f"process worker {worker_id} exceeded the "
                                f"{limit:.2f}s settlement deadline (hang detection)",
                            )
                            continue
                        receive(worker_id)
                    except (EOFError, ConnectionError, OSError):
                        in_flight.pop(worker_id, None)
                        bury(worker_id, [], f"process worker {worker_id} died during settlement")
            return True

        run_ok = False
        degrade = False
        try:
            while True:
                main_loop()
                if not terminated and collapsed() and pending_work():
                    # Not enough replicas left to finish remotely: the
                    # coordinator takes over in-process below.
                    if config.strict_faults:  # pragma: no cover - defensive
                        raise WorkerPoolError(
                            f"worker pool collapsed to {live_count()} live "
                            f"worker(s) (min_live_workers={config.min_live_workers})",
                            live_workers=live_count(),
                            dead_workers=len(dead),
                        )
                    degrade = True
                    break
                if settle():
                    break
            if degrade:
                # Survivors' parked matches are unreachable without
                # settlement; every completed unit re-runs in-process so
                # the master engine reaches the same fixpoint on its own.
                extra = list(suspects)
                suspects.clear()
                for units_by_uid in completed:
                    extra.extend(units_by_uid.values())
                    units_by_uid.clear()
                drain_in_process(
                    outcome,
                    scheduler,
                    context,
                    engine,
                    config,
                    goal_check=goal_check,
                    tracker=tracker,
                    extra_units=extra,
                )
            run_ok = True
        finally:
            if pool is not None and run_ok and len(dead) < config.workers:
                # Persistent mode: keep the surviving replicas standing for
                # the next run's delta refresh.
                self._pool = pool
            else:
                if pool is not None:
                    self._pool = None
                    context.graph.retain_deltas(False)
                self._shutdown_workers(conns, procs, dead)

        scheduler.export_stats(outcome)
        outcome.wall_seconds = time.perf_counter() - started
        outcome.virtual_seconds = outcome.wall_seconds
        return outcome
