"""Virtual-clock backend: ``p`` simulated workers, exact verdicts.

Reproduces the coordinator/worker protocol under a discrete-event clock.
Work units are really executed (so all verdicts are exact); the clock
charges each unit the operations it actually performed, priced by the
:class:`~repro.parallel.config.CostModel`. The simulation executes units
in dispatch order against a shared ``Eq`` (instantaneous broadcast);
because ``Eq`` grows monotonically and the algorithms are Church-Rosser,
the *verdict* is identical to any real interleaving — only second-order
timing effects are approximated. This is the documented substitution for
the paper's 20-machine Java cluster in the scalability figures.
"""

from __future__ import annotations

import heapq
import time
from typing import Optional, Sequence

from ...reasoning.enforce import EnforcementEngine
from ...reasoning.workunits import WorkUnit
from ..coordinator import (
    ParallelOutcome,
    absorb_result,
    register_splits,
    unit_duration,
)
from ..scheduler import Scheduler
from ..units import UnitContext, execute_unit
from .base import Backend, GoalCheck


class SimulatedBackend(Backend):
    """Coordinator + ``p`` simulated workers under a virtual clock."""

    name = "simulated"

    def run(
        self,
        units: Sequence[WorkUnit],
        context: UnitContext,
        engine: EnforcementEngine,
        goal_check: Optional[GoalCheck] = None,
        trace=None,
    ) -> ParallelOutcome:
        config = self.config
        started = time.perf_counter()
        eq = engine.eq
        outcome = ParallelOutcome(units_total=len(units), eq=eq, backend=self.name)
        outcome.worker_busy = [0.0] * config.workers
        scheduler = Scheduler(units, config, context)
        # Broadcast accounting: although the simulated workers share one
        # Eq (instantaneous visibility), each dispatch *models* shipping
        # the worker the ops it has not seen, priced by the cost model —
        # the same per-sync bookkeeping the process backend pays for real.
        synced = [eq.log_position()] * config.workers
        # (next-free virtual time, worker id); heap gives dynamic assignment
        # to the earliest available worker.
        free = [(0.0, worker_id) for worker_id in range(config.workers)]
        heapq.heapify(free)
        makespan = 0.0
        ttl_ticks = config.ttl_ticks
        terminated = False
        while len(scheduler) and not terminated:
            now, worker_id = heapq.heappop(free)
            # One coordinator round-trip hands the worker a small batch
            # (paper, Section V-B); the batch pays one dispatch overhead
            # plus the broadcast of the ΔEq ops this worker has not seen.
            batch = scheduler.next_batch(worker_id)
            shipped = eq.log_position() - synced[worker_id]
            outcome.broadcast_volume += shipped
            outcome.sync_rounds += 1
            executed = 0
            # The clock charges the round trip itself; shipped-op volume is
            # *recorded* (broadcast_volume) but not re-priced — each op's
            # broadcast already costs broadcast_per_op once, inside
            # unit_duration, exactly as before the scheduler existed.
            elapsed = config.costs.batch_overhead * config.costs.tick_seconds
            for unit in batch:
                unit_start = now + elapsed
                result = execute_unit(
                    unit,
                    context,
                    engine,
                    ttl_ticks=ttl_ticks,
                    max_split_units=config.max_split_units,
                    goal_check=goal_check,
                )
                elapsed += unit_duration(result, config) * config.costs.tick_seconds
                executed += 1
                if trace is not None:
                    from ..tracing import TraceEvent

                    trace.record(
                        TraceEvent(
                            worker=worker_id,
                            unit=unit,
                            start=unit_start,
                            finish=now + elapsed,
                            matches=result.matches,
                            match_ticks=result.match_ticks,
                            splits=len(result.splits),
                            conflict=result.conflict,
                            goal_reached=result.goal_reached,
                        )
                    )
                absorb_result(outcome, result)
                if result.conflict:
                    outcome.conflict = engine.eq.conflict
                    terminated = True
                elif result.goal_reached:
                    outcome.goal_reached = True
                    terminated = True
                else:
                    register_splits(outcome, result, scheduler.requeue)
                if terminated:
                    break
            # The worker's reply ships back the ops this batch appended.
            produced = eq.log_position() - synced[worker_id] - shipped
            outcome.broadcast_volume += produced
            synced[worker_id] = eq.log_position()
            scheduler.observe(worker_id, executed, shipped + produced, elapsed)
            finish = now + elapsed
            outcome.worker_busy[worker_id] += elapsed
            if terminated:
                makespan = finish
                break
            makespan = max(makespan, finish)
            heapq.heappush(free, (finish, worker_id))
        scheduler.export_stats(outcome)
        outcome.virtual_seconds = makespan
        outcome.wall_seconds = time.perf_counter() - started
        return outcome
