"""Virtual-clock backend: ``p`` simulated workers, exact verdicts.

Reproduces the coordinator/worker protocol under a discrete-event clock.
Work units are really executed (so all verdicts are exact); the clock
charges each unit the operations it actually performed, priced by the
:class:`~repro.parallel.config.CostModel`. The simulation executes units
in dispatch order against a shared ``Eq`` (instantaneous broadcast);
because ``Eq`` grows monotonically and the algorithms are Church-Rosser,
the *verdict* is identical to any real interleaving — only second-order
timing effects are approximated. This is the documented substitution for
the paper's 20-machine Java cluster in the scalability figures.

Supervision (see :mod:`.base`): fault events resolve deterministically
against the virtual dispatch order, which makes this backend the place to
*unit-test* supervision logic without wall-clock machinery. ``crash`` and
``hang`` remove the virtual worker from the ready heap before it touches
its batch (its units rebury and its locality keys re-pin); ``slow``
charges the stall to the virtual clock; ``error`` events and poisoned
units flow through the shared retry/quarantine tracker. When every
virtual worker has died with work remaining, the coordinator drains the
queue in-process (``degraded``) — the degraded units run outside the
clock, mirroring the process backend whose degraded execution is not a
parallel computation either.
"""

from __future__ import annotations

import heapq
import time
import traceback
from typing import Optional, Sequence

from ...errors import WorkerFault
from ...reasoning.enforce import EnforcementEngine
from ...reasoning.workunits import WorkUnit
from ..coordinator import (
    ParallelOutcome,
    QuarantinedUnit,
    absorb_result,
    drain_in_process,
    register_splits,
    unit_duration,
)
from ..faults import InjectedFault, RetryTracker
from ..scheduler import Scheduler
from ..units import UnitContext, execute_unit
from .base import Backend, GoalCheck


class SimulatedBackend(Backend):
    """Coordinator + ``p`` simulated workers under a virtual clock."""

    name = "simulated"

    def run(
        self,
        units: Sequence[WorkUnit],
        context: UnitContext,
        engine: EnforcementEngine,
        goal_check: Optional[GoalCheck] = None,
        trace=None,
    ) -> ParallelOutcome:
        config = self.config
        started = time.perf_counter()
        eq = engine.eq
        outcome = ParallelOutcome(units_total=len(units), eq=eq, backend=self.name)
        outcome.worker_busy = [0.0] * config.workers
        scheduler = Scheduler(units, config, context)
        # Broadcast accounting: although the simulated workers share one
        # Eq (instantaneous visibility), each dispatch *models* shipping
        # the worker the ops it has not seen, priced by the cost model —
        # the same per-sync bookkeeping the process backend pays for real.
        synced = [eq.log_position()] * config.workers
        # (next-free virtual time, worker id); heap gives dynamic assignment
        # to the earliest available worker.
        free = [(0.0, worker_id) for worker_id in range(config.workers)]
        heapq.heapify(free)
        makespan = 0.0
        ttl_ticks = config.ttl_ticks
        terminated = False
        tracker = RetryTracker(config.max_unit_retries)
        batch_counters = [0] * config.workers
        while len(scheduler) and not terminated:
            if not free:
                break  # every virtual worker died; degrade below
            now, worker_id = heapq.heappop(free)
            # One coordinator round-trip hands the worker a small batch
            # (paper, Section V-B); the batch pays one dispatch overhead
            # plus the broadcast of the ΔEq ops this worker has not seen.
            batch = scheduler.next_batch(worker_id)
            event = self.fault_event(worker_id, batch_counters[worker_id])
            batch_counters[worker_id] += 1
            if event is not None and event.kind in ("crash", "hang"):
                # The virtual replica dies before touching its batch: the
                # units rebury, the worker's keys re-pin, and the worker
                # never returns to the ready heap. (A hung virtual worker
                # is indistinguishable from a crashed one — the simulated
                # coordinator's deadline is "immediately".)
                scheduler.requeue(batch)
                scheduler.worker_died(worker_id)
                outcome.worker_deaths += 1
                if config.strict_faults:
                    raise WorkerFault(
                        f"simulated worker {worker_id} died (injected {event.kind})",
                        worker_id=worker_id,
                    )
                continue
            shipped = eq.log_position() - synced[worker_id]
            outcome.broadcast_volume += shipped
            outcome.sync_rounds += 1
            executed = 0
            # The clock charges the round trip itself; shipped-op volume is
            # *recorded* (broadcast_volume) but not re-priced — each op's
            # broadcast already costs broadcast_per_op once, inside
            # unit_duration, exactly as before the scheduler existed.
            elapsed = config.costs.batch_overhead * config.costs.tick_seconds
            if event is not None and event.kind == "slow":
                # A slow replica stalls on the virtual clock, not the wall.
                elapsed += event.stall_seconds
            for position, unit in enumerate(batch):
                unit_start = now + elapsed
                try:
                    if config.fault_plan is not None:
                        config.fault_plan.check_unit(unit)
                    if event is not None and event.kind == "error" and position == 0:
                        raise InjectedFault(
                            f"injected worker-side error (worker {worker_id}, "
                            f"batch {batch_counters[worker_id] - 1})"
                        )
                    result = execute_unit(
                        unit,
                        context,
                        engine,
                        ttl_ticks=ttl_ticks,
                        max_split_units=config.max_split_units,
                        goal_check=goal_check,
                    )
                except Exception as exc:
                    detail = traceback.format_exc()
                    if config.strict_faults:
                        raise WorkerFault(
                            f"simulated worker {worker_id} failed on "
                            f"unit {unit.uid}: {exc}",
                            worker_id=worker_id,
                            unit_uid=unit.uid,
                            worker_traceback=detail,
                        ) from exc
                    if tracker.record_failure(unit):
                        outcome.retries += 1
                        scheduler.requeue([unit])
                    else:
                        outcome.quarantined.append(
                            QuarantinedUnit(
                                unit, detail, tracker.attempts(unit), worker_id
                            )
                        )
                    continue
                elapsed += unit_duration(result, config) * config.costs.tick_seconds
                executed += 1
                if trace is not None:
                    from ..tracing import TraceEvent

                    trace.record(
                        TraceEvent(
                            worker=worker_id,
                            unit=unit,
                            start=unit_start,
                            finish=now + elapsed,
                            matches=result.matches,
                            match_ticks=result.match_ticks,
                            splits=len(result.splits),
                            conflict=result.conflict,
                            goal_reached=result.goal_reached,
                        )
                    )
                absorb_result(outcome, result)
                if result.conflict:
                    outcome.conflict = engine.eq.conflict
                    terminated = True
                elif result.goal_reached:
                    outcome.goal_reached = True
                    terminated = True
                else:
                    register_splits(outcome, result, scheduler.requeue)
                if terminated:
                    break
            # The worker's reply ships back the ops this batch appended.
            produced = eq.log_position() - synced[worker_id] - shipped
            outcome.broadcast_volume += produced
            synced[worker_id] = eq.log_position()
            scheduler.observe(worker_id, executed, shipped + produced, elapsed)
            finish = now + elapsed
            outcome.worker_busy[worker_id] += elapsed
            if terminated:
                makespan = finish
                break
            makespan = max(makespan, finish)
            heapq.heappush(free, (finish, worker_id))
        if not terminated and len(scheduler):
            # Pool collapse (all virtual workers crashed): finish the
            # queue in-process. The shared Eq kept every parked match, so
            # only the queued units need to run; the degraded work is
            # unpriced on the virtual clock by design.
            drain_in_process(
                outcome,
                scheduler,
                context,
                engine,
                config,
                goal_check=goal_check,
                tracker=tracker,
            )
        scheduler.export_stats(outcome)
        outcome.virtual_seconds = makespan
        outcome.wall_seconds = time.perf_counter() - started
        return outcome
