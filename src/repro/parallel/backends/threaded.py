"""Thread backend: the same protocol on real ``threading`` workers.

Demonstrates functional correctness under true concurrency: workers share
one lock-protected :class:`~repro.reasoning.enforce.EnforcementEngine`
(matching runs lock-free — the canonical graph is immutable during a run;
only ``Eq``/index mutations take the lock). Python's GIL limits its
speedups on CPU-bound matching, hence the simulated backend for the
scalability figures and the process backend for real-core scaling.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Sequence

from ...eq.eqrelation import EqRelation
from ...reasoning.enforce import EnforcementEngine
from ...reasoning.workunits import WorkUnit
from ..coordinator import ParallelOutcome, absorb_result
from ..scheduler import Scheduler
from ..units import UnitContext, UnitResult, execute_unit
from .base import Backend, GoalCheck


class _LockedEngine(EnforcementEngine):
    """An :class:`EnforcementEngine` whose mutations are serialized.

    Matching runs lock-free (the canonical graph is immutable during a
    run); only ``Eq``/index mutations and reads that may path-compress the
    union-find take the lock.
    """

    def __init__(self, inner: EnforcementEngine, lock: threading.RLock) -> None:
        super().__init__(inner.eq, inner.gfds, inner.index)
        self._lock = lock
        self.stats = inner.stats

    def enforce(self, gfd, assignment) -> bool:  # type: ignore[override]
        with self._lock:
            return super().enforce(gfd, assignment)


class ThreadedBackend(Backend):
    """The same protocol on real threads (functional-parity runtime)."""

    name = "threaded"

    def run(
        self,
        units: Sequence[WorkUnit],
        context: UnitContext,
        engine: EnforcementEngine,
        goal_check: Optional[GoalCheck] = None,
        trace=None,
    ) -> ParallelOutcome:
        config = self.config
        started = time.perf_counter()
        outcome = ParallelOutcome(units_total=len(units), eq=engine.eq, backend=self.name)
        outcome.worker_busy = [0.0] * config.workers
        lock = threading.RLock()
        locked_engine = _LockedEngine(engine, lock)
        # The scheduler (affinity routing + adaptive batches) is shared
        # mutable state: every interaction happens under queue_lock.
        scheduler = Scheduler(units, config, context)
        queue_lock = threading.Lock()
        stop = threading.Event()
        results: List[UnitResult] = []
        results_lock = threading.Lock()
        sync_rounds = [0] * config.workers
        ttl_ticks = config.ttl_ticks

        locked_goal = None
        if goal_check is not None:
            def locked_goal(eq: EqRelation) -> bool:
                with lock:
                    return goal_check(eq)

        def worker(worker_id: int) -> None:
            while not stop.is_set():
                with queue_lock:
                    batch = scheduler.next_batch(worker_id)
                if not batch:
                    return
                sync_rounds[worker_id] += 1
                batch_started = time.perf_counter()
                executed = 0
                for unit in batch:
                    if stop.is_set():
                        break
                    result = execute_unit(
                        unit,
                        context,
                        locked_engine,
                        ttl_ticks=ttl_ticks,
                        max_split_units=config.max_split_units,
                        goal_check=locked_goal,
                    )
                    executed += 1
                    with results_lock:
                        results.append(result)
                    if result.conflict or result.goal_reached:
                        stop.set()
                        break
                    if result.splits:
                        with queue_lock:
                            scheduler.requeue(result.splits)
                elapsed = time.perf_counter() - batch_started
                outcome.worker_busy[worker_id] += elapsed
                with queue_lock:
                    # ΔEq payload is 0 on purpose: all workers share one
                    # in-memory Eq, so there is no broadcast to economize
                    # on — shrinking batches for it would only multiply
                    # lock round trips. Only the latency axis adapts here.
                    scheduler.observe(worker_id, executed, 0, elapsed)

        threads = [
            threading.Thread(target=worker, args=(worker_id,), daemon=True)
            for worker_id in range(config.workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for result in results:
            absorb_result(outcome, result)
            outcome.splits += len(result.splits)
            if result.goal_reached:
                outcome.goal_reached = True
        outcome.units_total += outcome.splits
        outcome.sync_rounds = sum(sync_rounds)
        # ΔEq broadcast is free here — all workers share one Eq in memory —
        # so the shipped volume is genuinely zero, not merely unmeasured.
        scheduler.export_stats(outcome)
        if engine.eq.has_conflict():
            outcome.conflict = engine.eq.conflict
        outcome.wall_seconds = time.perf_counter() - started
        outcome.virtual_seconds = outcome.wall_seconds
        return outcome
