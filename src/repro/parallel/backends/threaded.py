"""Thread backend: the same protocol on real ``threading`` workers.

Demonstrates functional correctness under true concurrency: workers share
one lock-protected :class:`~repro.reasoning.enforce.EnforcementEngine`
(matching runs lock-free — the canonical graph is immutable during a run;
only ``Eq``/index mutations take the lock). Python's GIL limits its
speedups on CPU-bound matching, hence the simulated backend for the
scalability figures and the process backend for real-core scaling.

Supervision (see :mod:`.base`): a thread cannot be killed from outside,
so both ``crash`` and ``hang`` fault events make the worker *leave the
pool* — it reburies its unstarted batch (the scheduler re-pins its
locality keys onto the survivors) and returns. Because all threads share
the coordinator's engine, a dead thread loses no parked matches — only
its queued units, which the survivors pick up. Unit-level failures
(``error`` events, poisoned units, organic exceptions) go through the
shared retry/quarantine tracker; if every thread dies with work left, the
coordinator finishes the queue in-process (``degraded``).
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import List, Optional, Sequence

from ...errors import WorkerFault
from ...eq.eqrelation import EqRelation
from ...reasoning.enforce import EnforcementEngine
from ...reasoning.workunits import WorkUnit
from ..coordinator import (
    ParallelOutcome,
    QuarantinedUnit,
    absorb_result,
    drain_in_process,
)
from ..faults import InjectedFault, RetryTracker
from ..scheduler import Scheduler
from ..units import UnitContext, UnitResult, execute_unit
from .base import Backend, GoalCheck


class _LockedEngine(EnforcementEngine):
    """An :class:`EnforcementEngine` whose mutations are serialized.

    Matching runs lock-free (the canonical graph is immutable during a
    run); only ``Eq``/index mutations and reads that may path-compress the
    union-find take the lock.
    """

    def __init__(self, inner: EnforcementEngine, lock: threading.RLock) -> None:
        super().__init__(
            inner.eq, inner.gfds, inner.index,
            capture_provenance=inner.capture_provenance,
        )
        self._lock = lock
        self.stats = inner.stats
        # Share the master evidence log: threaded enforcements intern
        # straight into the coordinator's layer (refs are content-derived,
        # so interleaved workers cannot disagree on ids). Evidence-context
        # metadata may interleave across threads — it is display-only and
        # never part of a ref.
        self.evidence = inner.evidence

    def set_evidence_context(self, **context: object) -> None:
        with self._lock:
            super().set_evidence_context(**context)

    def enforce(self, gfd, assignment) -> bool:  # type: ignore[override]
        with self._lock:
            return super().enforce(gfd, assignment)


class ThreadedBackend(Backend):
    """The same protocol on real threads (functional-parity runtime)."""

    name = "threaded"

    def run(
        self,
        units: Sequence[WorkUnit],
        context: UnitContext,
        engine: EnforcementEngine,
        goal_check: Optional[GoalCheck] = None,
        trace=None,
    ) -> ParallelOutcome:
        config = self.config
        started = time.perf_counter()
        outcome = ParallelOutcome(units_total=len(units), eq=engine.eq, backend=self.name)
        outcome.worker_busy = [0.0] * config.workers
        lock = threading.RLock()
        locked_engine = _LockedEngine(engine, lock)
        # The scheduler (affinity routing + adaptive batches) is shared
        # mutable state: every interaction happens under queue_lock.
        scheduler = Scheduler(units, config, context)
        queue_lock = threading.Lock()
        stop = threading.Event()
        results: List[UnitResult] = []
        results_lock = threading.Lock()
        sync_rounds = [0] * config.workers
        ttl_ticks = config.ttl_ticks
        # Supervision state shared by the workers, all under fault_lock:
        # the retry tracker, the outcome's fault counters, and (strict
        # mode) the first fault to re-raise coordinator-side.
        tracker = RetryTracker(config.max_unit_retries)
        fault_lock = threading.Lock()
        strict_faults: List[WorkerFault] = []

        locked_goal = None
        if goal_check is not None:
            def locked_goal(eq: EqRelation) -> bool:
                with lock:
                    return goal_check(eq)

        def worker(worker_id: int) -> None:
            batch_index = 0
            while not stop.is_set():
                with queue_lock:
                    batch = scheduler.next_batch(worker_id)
                if not batch:
                    return
                event = self.fault_event(worker_id, batch_index)
                batch_index += 1
                if event is not None and event.kind in ("crash", "hang"):
                    # A thread cannot be terminated from outside, so a
                    # hang is handled like a crash: the worker reburies
                    # its unstarted batch and leaves the pool for good.
                    with queue_lock:
                        scheduler.requeue(batch)
                        scheduler.worker_died(worker_id)
                    with fault_lock:
                        outcome.worker_deaths += 1
                        if config.strict_faults:
                            strict_faults.append(
                                WorkerFault(
                                    f"threaded worker {worker_id} died "
                                    f"(injected {event.kind})",
                                    worker_id=worker_id,
                                )
                            )
                            stop.set()
                    return
                if event is not None and event.kind == "slow":
                    time.sleep(event.stall_seconds)
                sync_rounds[worker_id] += 1
                batch_started = time.perf_counter()
                executed = 0
                for position, unit in enumerate(batch):
                    if stop.is_set():
                        break
                    try:
                        if config.fault_plan is not None:
                            config.fault_plan.check_unit(unit)
                        if event is not None and event.kind == "error" and position == 0:
                            raise InjectedFault(
                                f"injected worker-side error (worker {worker_id}, "
                                f"batch {batch_index - 1})"
                            )
                        result = execute_unit(
                            unit,
                            context,
                            locked_engine,
                            ttl_ticks=ttl_ticks,
                            max_split_units=config.max_split_units,
                            goal_check=locked_goal,
                        )
                    except Exception as exc:
                        detail = traceback.format_exc()
                        with fault_lock:
                            if config.strict_faults:
                                strict_faults.append(
                                    WorkerFault(
                                        f"threaded worker {worker_id} failed on "
                                        f"unit {unit.uid}: {exc}",
                                        worker_id=worker_id,
                                        unit_uid=unit.uid,
                                        worker_traceback=detail,
                                    )
                                )
                                stop.set()
                                return
                            if tracker.record_failure(unit):
                                outcome.retries += 1
                                retry = True
                            else:
                                outcome.quarantined.append(
                                    QuarantinedUnit(
                                        unit, detail, tracker.attempts(unit), worker_id
                                    )
                                )
                                retry = False
                        if retry:
                            with queue_lock:
                                scheduler.requeue([unit])
                        continue
                    executed += 1
                    with results_lock:
                        results.append(result)
                    if result.conflict or result.goal_reached:
                        stop.set()
                        break
                    if result.splits:
                        with queue_lock:
                            scheduler.requeue(result.splits)
                elapsed = time.perf_counter() - batch_started
                outcome.worker_busy[worker_id] += elapsed
                with queue_lock:
                    # ΔEq payload is 0 on purpose: all workers share one
                    # in-memory Eq, so there is no broadcast to economize
                    # on — shrinking batches for it would only multiply
                    # lock round trips. Only the latency axis adapts here.
                    scheduler.observe(worker_id, executed, 0, elapsed)

        threads = [
            threading.Thread(target=worker, args=(worker_id,), daemon=True)
            for worker_id in range(config.workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        if strict_faults:
            raise strict_faults[0]

        thread_splits = 0
        for result in results:
            absorb_result(outcome, result)
            thread_splits += len(result.splits)
            if result.goal_reached:
                outcome.goal_reached = True
        outcome.splits += thread_splits
        outcome.units_total += thread_splits
        if engine.eq.has_conflict():
            outcome.conflict = engine.eq.conflict
        if not outcome.terminated_early and len(scheduler):
            # Every thread left the pool with work remaining (crash/hang
            # injection): finish the queue coordinator-side. The shared
            # engine kept all parked matches, so only the queued units run.
            drain_in_process(
                outcome,
                scheduler,
                context,
                engine,
                config,
                goal_check=goal_check,
                tracker=tracker,
            )
        outcome.sync_rounds = sum(sync_rounds)
        # ΔEq broadcast is free here — all workers share one Eq in memory —
        # so the shipped volume is genuinely zero, not merely unmeasured.
        scheduler.export_stats(outcome)
        if engine.eq.has_conflict():
            outcome.conflict = engine.eq.conflict
        outcome.wall_seconds = time.perf_counter() - started
        outcome.virtual_seconds = outcome.wall_seconds
        return outcome
