"""Execution backends: one coordinator/worker protocol, three runtimes.

========== ===================== ==========================================
key        class                 what the workers are
========== ===================== ==========================================
simulated  SimulatedBackend      virtual-clock discrete events (exact
                                 verdicts, deterministic timing figures)
threaded   ThreadedBackend       ``threading`` workers over one
                                 lock-protected engine (GIL-bound)
process    ProcessBackend        ``multiprocessing`` replicas with ΔEq
                                 exchange (real cores)
========== ===================== ==========================================

All backends satisfy the :class:`~repro.parallel.backends.base.Backend`
protocol and produce identical verdicts; select one by key through
:func:`get_backend` or the ``backend=`` parameter of
:func:`~repro.parallel.parsat.par_sat` / :func:`~repro.parallel.parimp.par_imp`.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ..config import RuntimeConfig
from .base import Backend, GoalCheck
from .process import ProcessBackend
from .simulated import SimulatedBackend
from .threaded import ThreadedBackend

#: Registry of selectable backends, keyed by their ``name``.
BACKENDS: Dict[str, Type[Backend]] = {
    backend.name: backend
    for backend in (SimulatedBackend, ThreadedBackend, ProcessBackend)
}


def available_backends() -> Tuple[str, ...]:
    """The selectable backend keys, in registry order."""
    return tuple(BACKENDS)


def resolve_backend_name(backend: "str | None", runtime: "str | None") -> str:
    """Merge the ``backend=`` selector with its legacy ``runtime=`` alias.

    Entry points (:func:`par_sat`, :func:`par_imp`) accept both; passing
    conflicting names is an error, passing neither selects ``simulated``.
    """
    if backend is not None and runtime is not None and backend != runtime:
        raise ValueError(
            f"conflicting selectors: backend={backend!r} vs runtime={runtime!r}"
        )
    return backend or runtime or "simulated"


def get_backend(name: str, config: RuntimeConfig) -> Backend:
    """Instantiate the backend registered under *name*.

    Raises ``ValueError`` (listing the choices) for unknown names, so CLI
    and API callers get a uniform error.
    """
    backend_cls = BACKENDS.get(name)
    if backend_cls is None:
        choices = ", ".join(repr(key) for key in BACKENDS)
        raise ValueError(f"unknown backend {name!r} (use one of {choices})")
    return backend_cls(config)


__all__ = [
    "BACKENDS",
    "Backend",
    "GoalCheck",
    "ProcessBackend",
    "SimulatedBackend",
    "ThreadedBackend",
    "available_backends",
    "get_backend",
    "resolve_backend_name",
]
