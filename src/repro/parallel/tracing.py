"""Execution traces of the simulated cluster, with ASCII rendering.

A :class:`Trace` records one :class:`TraceEvent` per executed work unit
(worker id, virtual start/finish, match/enforcement counts, splits). The
renderers turn a trace into terminal-friendly views:

* :func:`render_gantt` — one lane per worker, time binned into columns;
  stragglers show up as long runs of the same unit marker, and the effect
  of TTL splitting is directly visible as the long runs break apart;
* :func:`summarize` — per-worker utilization and the heaviest units.

Tracing is off by default (zero overhead); pass ``trace=Trace()`` to
:meth:`repro.parallel.engine.SimulatedCluster.run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..reasoning.workunits import WorkUnit


@dataclass(frozen=True)
class TraceEvent:
    """One executed unit on the virtual timeline."""

    worker: int
    unit: WorkUnit
    start: float
    finish: float
    matches: int
    match_ticks: int
    splits: int
    conflict: bool = False
    goal_reached: bool = False

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class Trace:
    """A recorded run: events plus the final makespan."""

    events: List[TraceEvent] = field(default_factory=list)
    makespan: float = 0.0

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)
        self.makespan = max(self.makespan, event.finish)

    def worker_ids(self) -> List[int]:
        return sorted({event.worker for event in self.events})

    def events_of(self, worker: int) -> List[TraceEvent]:
        return sorted(
            (event for event in self.events if event.worker == worker),
            key=lambda e: e.start,
        )

    def busy_time(self, worker: int) -> float:
        return sum(event.duration for event in self.events_of(worker))

    def utilization(self, worker: int) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.busy_time(worker) / self.makespan

    def heaviest(self, count: int = 5) -> List[TraceEvent]:
        return sorted(self.events, key=lambda e: -e.duration)[:count]


_MARKERS = "abcdefghijklmnopqrstuvwxyz"


def render_gantt(trace: Trace, width: int = 72) -> str:
    """ASCII Gantt chart: one lane per worker, one column per time bin.

    Each unit gets a letter marker (cycled by the GFD it enforces); ``.``
    is idle time, ``!`` marks the bin where a conflict/goal fired.
    """
    if not trace.events or trace.makespan <= 0:
        return "(empty trace)"
    bin_width = trace.makespan / width
    gfd_names = sorted({event.unit.gfd_name for event in trace.events})
    marker_of = {
        name: _MARKERS[index % len(_MARKERS)] for index, name in enumerate(gfd_names)
    }
    lines = [f"virtual makespan: {trace.makespan:.3f}s  ({width} cols, "
             f"{bin_width:.4f}s/col)"]
    for worker in trace.worker_ids():
        lane = ["."] * width
        for event in trace.events_of(worker):
            first = min(width - 1, int(event.start / bin_width))
            last = min(width - 1, int(max(event.finish - 1e-12, event.start) / bin_width))
            for column in range(first, last + 1):
                lane[column] = marker_of[event.unit.gfd_name]
            if event.conflict or event.goal_reached:
                lane[last] = "!"
        lines.append(f"w{worker:<3}|{''.join(lane)}|")
    legend = ", ".join(f"{marker}={name}" for name, marker in sorted(marker_of.items(), key=lambda kv: kv[1]))
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def summarize(trace: Trace, top: int = 5) -> str:
    """Plain-text utilization and straggler summary."""
    if not trace.events:
        return "(empty trace)"
    lines = [f"units executed: {len(trace.events)}, makespan: {trace.makespan:.3f}s"]
    for worker in trace.worker_ids():
        busy = trace.busy_time(worker)
        lines.append(
            f"  w{worker}: {len(trace.events_of(worker))} units, "
            f"busy {busy:.3f}s ({trace.utilization(worker):.0%})"
        )
    lines.append("heaviest units:")
    for event in trace.heaviest(top):
        flags = "".join(
            marker for condition, marker in ((event.conflict, "C"), (event.splits, "S"),
                                             (event.goal_reached, "G"))
            if condition
        )
        lines.append(
            f"  {event.duration:8.3f}s  {event.unit.gfd_name:<16} "
            f"matches={event.matches} ticks={event.match_ticks} "
            f"splits={event.splits} {flags}"
        )
    return "\n".join(lines)
