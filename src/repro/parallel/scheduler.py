"""Work-unit scheduling: pivot-affinity routing + adaptive ΔEq batching.

The paper's Section V architecture is a coordinator exchanging work units
and ``ΔEq`` deltas with ``p`` workers; on delta-heavy workloads the
broadcast traffic — not the matching — dominates. The
:class:`Scheduler` owns the coordinator's pending queue and attacks that
traffic on two axes:

* **pivot affinity** — work units whose pivots share a neighborhood (the
  spokes of one hub, say) are pinned to the same worker replica. The
  replica's warm BFS hop maps serve every unit of the group, and the
  duplicate ``ΔEq`` ops that co-located units rediscover (hub-level facts
  each spoke's match re-derives) are absorbed by the replica's local
  ``Eq`` instead of crossing the coordinator boundary once per worker.
  The routing key is :meth:`UnitContext.locality_key
  <repro.parallel.units.UnitContext.locality_key>` — the dominant node of
  the pivot's closed neighborhood, derived from the compiled
  :class:`~repro.graph.index.GraphIndex`;
* **adaptive batch sizing** — each worker's batch grows (toward
  ``RuntimeConfig.max_batch_size``) while round trips come back cheap,
  and halves as soon as the observed ``ΔEq`` payload exceeds
  ``batch_delta_budget`` ops or the round trip overshoots
  ``batch_target_seconds``: delta-heavy workers then sync more often, so
  their peers stop re-deriving facts already known elsewhere.

Fairness: pinning must not starve a free worker. Every worker serves the
split priority lane first (paper, lines 9–10 of ParSat: straggler
sub-units jump the queue — and stay unpinned, since spreading one
over-heavy unit is their whole purpose), then its own pinned queue, then
the unpinned global queue, and finally *steals* from the back of the most
loaded peer's queue — the paper's dynamic assignment, with affinity as a
preference rather than a constraint.

The ``affinity=False`` / ``adaptive_batch=False`` ablation collapses to
the PR-2 behavior exactly: one FIFO queue, fixed ``batch_size`` batches to
whichever worker frees up first.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set

from ..reasoning.workunits import WorkUnit
from .config import RuntimeConfig


class Scheduler:
    """Owns the pending work-unit queue for one parallel run.

    Backends interact through six calls: :meth:`next_batch` (dispatch),
    :meth:`requeue` (split sub-units to the front), :meth:`observe`
    (adaptive-batch feedback after a round trip), :meth:`worker_died`
    (re-pin a dead worker's queue onto the survivors), its inverse
    :meth:`worker_revived` (a respawned replica rejoins the routing
    pool) and ``len()`` (remaining units). All bookkeeping is deterministic: dictionaries are
    keyed by insertion order and ties break on worker id, so the simulated
    backend's virtual timings stay reproducible.
    """

    def __init__(
        self,
        units: Sequence[WorkUnit],
        config: RuntimeConfig,
        context=None,
    ) -> None:
        self.config = config
        workers = config.workers
        #: Affinity needs a context (the locality key is topology-derived);
        #: backends always pass one, but a bare Scheduler degrades to FIFO.
        self.affinity = bool(config.affinity and context is not None)
        self._context = context
        #: Cost feedback: pinning consults the context's per-unit search
        #: cost estimate (plan/trie ``estimated_fanout``), so an oversized
        #: locality group spills to the global queue *at enqueue time*
        #: instead of waiting for the fair-share cap to repair the
        #: imbalance batch by batch.
        self.cost_feedback = (
            self.affinity
            and config.affinity_cost_feedback
            and hasattr(context, "unit_cost")
        )
        self._alive: Set[int] = set(range(workers))
        #: Split sub-units: highest priority, unpinned (any worker).
        self._priority: Deque[WorkUnit] = deque()
        #: Unpinned units (no pivot, or affinity off), plain FIFO.
        self._global: Deque[WorkUnit] = deque()
        #: Per-worker pinned queues.
        self._local: List[Deque[WorkUnit]] = [deque() for _ in range(workers)]
        #: locality key -> owning worker (first-touch, least-loaded).
        self._owner: Dict[object, int] = {}
        #: Queued pinned units per worker (routing load balance).
        self._pinned_load: List[int] = [0] * workers
        #: Estimated cost ever pinned to each worker (monotone within a
        #: worker's lifetime; reset when the worker dies).
        self._pinned_cost: List[float] = [0.0] * workers
        self._batch: List[int] = [config.batch_size] * workers
        self._size = 0
        # --- stats (exported into ParallelOutcome by the backends) ---
        #: Units a worker took from its own pinned queue.
        self.affinity_hits = 0
        #: Pinned units executed away from their owner (work stealing).
        self.affinity_misses = 0
        #: Units whose locality key's owner was already cost-saturated,
        #: rerouted to the global queue at enqueue time (cost feedback).
        self.affinity_overflows = 0
        #: Batch-size changes made by :meth:`observe`.
        self.batch_adaptations = 0
        #: Units re-pinned by :meth:`worker_died`.
        self.reassigned_units = 0
        #: Total estimated cost of the initial queue — each worker's fair
        #: cost share is this divided by the number of live workers.
        self._total_cost = (
            sum(context.unit_cost(unit) for unit in units)
            if self.cost_feedback
            else 0.0
        )
        for unit in units:
            self._enqueue(unit)

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _key(self, unit: WorkUnit):
        if not self.affinity:
            return None
        return self._context.locality_key(unit)

    def _owner_for(self, key) -> int:
        """The worker pinned to *key* (first touch: least-loaded survivor)."""
        owner = self._owner.get(key)
        if owner is None or owner not in self._alive:
            owner = min(self._alive, key=lambda wid: (self._pinned_load[wid], wid))
            self._owner[key] = owner
        return owner

    def _cost_share(self) -> float:
        """One worker's fair share of the initial queue's estimated cost."""
        return self._total_cost / max(1, len(self._alive))

    def _enqueue(self, unit: WorkUnit, front: bool = False) -> None:
        key = self._key(unit)
        if key is None:
            queue = self._global
        else:
            owner = self._owner_for(key)
            cost = self._context.unit_cost(unit) if self.cost_feedback else 0.0
            if (
                self.cost_feedback
                and self._pinned_cost[owner] > 0.0
                and self._pinned_cost[owner] + cost > self._cost_share()
            ):
                # The owner already holds its fair cost share: spill the
                # rest of this (oversized) locality group to the global
                # queue so free replicas absorb it immediately.
                self.affinity_overflows += 1
                queue = self._global
            else:
                queue = self._local[owner]
                self._pinned_load[owner] += 1
                self._pinned_cost[owner] += cost
        if front:
            queue.appendleft(unit)
        else:
            queue.append(unit)
        self._size += 1

    def requeue(self, splits: Sequence[WorkUnit]) -> None:
        """Queue split sub-units at the *global* front, preserving order.

        Splits jump every queue (paper, lines 9–10 of ParSat) and stay
        *unpinned*: a straggler's sub-units exist precisely to spread one
        over-heavy unit across free workers, so pinning them back to the
        parent's owner — whose warm caches their siblings already keep
        busy — would re-serialize the work TTL splitting just broke up.
        """
        self._priority.extendleft(reversed(splits))
        self._size += len(splits)

    def next_batch(self, worker_id: int) -> List[WorkUnit]:
        """Pop the next batch for *worker_id* (own queue, global, steal).

        Returns at most the worker's current adaptive batch size; empty
        only when no units remain anywhere. Order: split sub-units (the
        priority lane) first, then the worker's own pinned queue, then
        the global queue, then stealing. Stolen units come from the
        *back* of the most loaded peer's queue — the coldest work, whose
        owner would reach it last anyway.
        """
        limit = self._batch[worker_id] if self.config.adaptive_batch else self.config.batch_size
        if self.affinity or self.config.adaptive_batch:
            # Fair-share cap: a batch never takes more than this worker's
            # share of the remaining queue, so a replica with a popular
            # locality key cannot swallow the tail of the run in one trip
            # while its peers idle (the ablation keeps PR-2's plain cap).
            alive = len(self._alive) or 1
            limit = min(limit, max(1, -(-self._size // alive)))
        batch: List[WorkUnit] = []
        own = self._local[worker_id]
        while len(batch) < limit and self._size:
            if self._priority:
                batch.append(self._priority.popleft())
            elif own:
                batch.append(own.popleft())
                self._pinned_load[worker_id] -= 1
                if self.affinity:
                    self.affinity_hits += 1
            elif self._global:
                batch.append(self._global.popleft())
            else:
                victim = max(
                    (wid for wid in range(len(self._local)) if self._local[wid]),
                    key=lambda wid: (self._pinned_load[wid], -wid),
                    default=None,
                )
                if victim is None:  # pragma: no cover - _size said otherwise
                    break
                batch.append(self._local[victim].pop())
                self._pinned_load[victim] -= 1
                self.affinity_misses += 1
            self._size -= 1
        return batch

    # ------------------------------------------------------------------
    # Adaptive batch sizing
    # ------------------------------------------------------------------
    def batch_size(self, worker_id: int) -> int:
        """The worker's current adaptive batch size."""
        return self._batch[worker_id]

    @property
    def batch_sizes(self) -> List[int]:
        return list(self._batch)

    def observe(
        self,
        worker_id: int,
        executed: int,
        delta_ops: int,
        seconds: Optional[float] = None,
    ) -> None:
        """Adapt *worker_id*'s batch size from one observed round trip.

        *executed* units came back after *seconds* (virtual on the
        simulated backend, wall elsewhere; ``None`` when the backend has
        no meaningful per-trip clock) carrying *delta_ops* ``ΔEq`` ops of
        payload (shipped both directions). Shrink when the payload blew
        the budget or the trip overshot the latency target; grow only when
        the worker filled its batch and came back cheap on both axes.
        """
        if not self.config.adaptive_batch:
            return
        config = self.config
        size = self._batch[worker_id]
        overloaded = delta_ops > config.batch_delta_budget or (
            seconds is not None and seconds > config.batch_target_seconds
        )
        if overloaded:
            new_size = max(1, size // 2)
        elif (
            executed >= size
            and delta_ops * 2 <= config.batch_delta_budget
            and (seconds is None or seconds * 2 <= config.batch_target_seconds)
        ):
            new_size = min(config.batch_size_cap, size * 2)
        else:
            return
        if new_size != size:
            self._batch[worker_id] = new_size
            self.batch_adaptations += 1

    # ------------------------------------------------------------------
    # Worker failure
    # ------------------------------------------------------------------
    def worker_died(self, worker_id: int) -> None:
        """Re-pin a dead worker's queue and keys onto the survivors.

        Its queued units keep their relative order and their front
        priority; its locality keys are forgotten, so future units of
        those keys re-pin by load. Safe to call repeatedly; when the last
        worker dies the backend raises its all-workers-dead error — the
        units are parked unpinned here only so ``len()`` stays truthful
        for that error path.
        """
        self._alive.discard(worker_id)
        orphans = self._local[worker_id]
        self._local[worker_id] = deque()
        self._pinned_load[worker_id] = 0
        self._pinned_cost[worker_id] = 0.0
        self._size -= len(orphans)
        for key in [key for key, owner in self._owner.items() if owner == worker_id]:
            del self._owner[key]
        if not self._alive:
            self._global.extendleft(reversed(orphans))
            self._size += len(orphans)
            return
        for unit in reversed(orphans):
            self._enqueue(unit, front=True)
        self.reassigned_units += len(orphans)

    def worker_revived(self, worker_id: int) -> None:
        """Bring a respawned worker back into the routing pool.

        The inverse of :meth:`worker_died`: the slot rejoins ``_alive`` so
        future locality keys can pin to it again (first-touch goes to the
        least-loaded survivor, and a freshly revived replica has load 0 —
        it naturally absorbs new keys). Keys re-pinned to survivors while
        the slot was dead stay where they are: their new owners hold the
        warm caches now. Safe to call for a worker that never died.
        """
        self._alive.add(worker_id)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def export_stats(self, outcome) -> None:
        """Copy scheduling counters into a :class:`ParallelOutcome`."""
        outcome.affinity_hits = self.affinity_hits
        outcome.affinity_misses = self.affinity_misses
        outcome.affinity_overflows = self.affinity_overflows
        outcome.batch_adaptations = self.batch_adaptations
        outcome.batch_sizes = self.batch_sizes

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"Scheduler(pending={self._size}, affinity={self.affinity}, "
            f"batch={self._batch})"
        )
