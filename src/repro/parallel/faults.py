"""Deterministic fault injection for the parallel runtime.

The supervision layer (batch timeouts, retry/quarantine, respawn,
degradation) only earns its keep if every failure path can be exercised
on demand. A :class:`FaultPlan` is a *seeded, declarative script* of
failures threaded through :class:`~repro.parallel.config.RuntimeConfig`
into all three backends:

* **worker events** are keyed by ``(worker_id, batch_index)`` — the
  ``batch_index``-th ``units`` dispatch the coordinator hands worker
  ``worker_id`` (settlement syncs never trigger events, and the index
  keeps counting across respawns, so one event fires at most once):

  - ``crash`` — the worker dies abruptly (``os._exit`` on the process
    backend; the thread/simulated worker stops serving). Its in-flight
    units are recovered by the supervisor;
  - ``hang`` — the worker goes silent without dying (process backend:
    sleeps past any deadline until the coordinator's hang detection
    kills it; the in-thread/simulated runtimes cannot suspend a worker
    they could never preempt, so they degrade it to ``crash``);
  - ``error`` — the first unit of the batch raises
    :class:`InjectedFault` (a worker-side exception: the unit enters the
    retry/quarantine path, the worker survives);
  - ``slow`` — the worker stalls ``seconds`` before executing the batch
    (wall sleep; virtual-clock charge on the simulated backend);

* **poisoned units** fail *everywhere*: any unit whose ``uid`` or
  ``gfd_name`` is listed raises :class:`InjectedFault` on every replica
  (and on the coordinator's degraded path), so after
  ``max_unit_retries`` failures it lands in
  ``ParallelOutcome.quarantined`` with the traceback attached.

Plans are plain picklable data: the process backend ships them inside
the worker snapshot/fork state. :meth:`FaultPlan.random` generates a
seeded plan for the cross-backend equivalence fuzz — restricted to
*recoverable* kinds by default, so verdicts must still match a clean
sequential run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import ReproError

#: Recognized worker-event kinds.
FAULT_KINDS = ("crash", "hang", "error", "slow")

#: Default stall for ``slow`` events (seconds) when none is given.
DEFAULT_SLOW_SECONDS = 0.05

#: Default sleep for ``hang`` events: long enough that only the
#: coordinator's batch deadline — never the event itself — ends the wait.
DEFAULT_HANG_SECONDS = 3600.0


class InjectedFault(ReproError):
    """The exception a :class:`FaultPlan` injection raises worker-side.

    Deliberately a :class:`ReproError` subclass and nothing more specific:
    the supervision layer must treat it exactly like any organic
    worker-side exception, which is the point of injecting it.
    """


@dataclass(frozen=True)
class FaultEvent:
    """One scripted worker failure at ``(worker_id, batch_index)``."""

    kind: str
    worker_id: int
    batch_index: int
    #: Stall length for ``slow``/``hang`` (``None`` = the kind's default).
    seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (use one of {FAULT_KINDS})"
            )

    @property
    def stall_seconds(self) -> float:
        if self.seconds is not None:
            return self.seconds
        return DEFAULT_HANG_SECONDS if self.kind == "hang" else DEFAULT_SLOW_SECONDS


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic script of worker events and poisoned units.

    *events* maps ``(worker_id, batch_index)`` to a :class:`FaultEvent`;
    *poisoned* lists unit ``uid``\\ s and/or GFD names whose units raise
    :class:`InjectedFault` on every replica. Both are immutable so a plan
    can be shared (and pickled to process workers) safely.
    """

    events: Tuple[FaultEvent, ...] = ()
    poisoned: FrozenSet[str] = frozenset()
    _by_slot: Dict[Tuple[int, int], FaultEvent] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        by_slot = {(event.worker_id, event.batch_index): event for event in self.events}
        if len(by_slot) != len(self.events):
            raise ValueError("FaultPlan has multiple events for one (worker, batch)")
        object.__setattr__(self, "_by_slot", by_slot)

    # -- construction ---------------------------------------------------
    @classmethod
    def make(
        cls,
        events: Iterable[FaultEvent] = (),
        poisoned: Iterable[str] = (),
    ) -> "FaultPlan":
        return cls(events=tuple(events), poisoned=frozenset(poisoned))

    @classmethod
    def single(
        cls,
        kind: str,
        worker_id: int = 0,
        batch_index: int = 0,
        seconds: Optional[float] = None,
    ) -> "FaultPlan":
        """A plan with exactly one worker event (the common test shape)."""
        return cls.make([FaultEvent(kind, worker_id, batch_index, seconds)])

    @classmethod
    def random(
        cls,
        seed: int,
        workers: int,
        events: int = 2,
        max_batch_index: int = 4,
        kinds: Tuple[str, ...] = ("crash", "error", "slow"),
    ) -> "FaultPlan":
        """A seeded plan of *events* recoverable faults for fuzzing.

        The default *kinds* exclude ``hang`` (recovery then depends on a
        wall-clock deadline — correct but slow in a fuzz loop) and never
        poison units (quarantine deliberately drops work, so verdicts
        could legitimately diverge from the clean baseline).
        """
        rng = random.Random(seed)
        slots = [(wid, bidx) for wid in range(workers) for bidx in range(max_batch_index)]
        rng.shuffle(slots)
        chosen: List[FaultEvent] = []
        for wid, bidx in slots[: max(0, events)]:
            kind = rng.choice(list(kinds))
            seconds = 0.01 if kind in ("slow", "hang") else None
            chosen.append(FaultEvent(kind, wid, bidx, seconds))
        return cls.make(chosen)

    # -- queries --------------------------------------------------------
    def event_at(self, worker_id: int, batch_index: int) -> Optional[FaultEvent]:
        """The scripted event for this dispatch, or ``None``."""
        return self._by_slot.get((worker_id, batch_index))

    def poisons(self, unit) -> bool:
        """Whether *unit* (a :class:`WorkUnit`) is poisoned everywhere.

        Grouped units are poisoned when *any* member GFD is listed — a
        group containing a poisoned rule must fail wherever the singleton
        unit would have.
        """
        if not self.poisoned:
            return False
        if unit.uid in self.poisoned:
            return True
        return any(name in self.poisoned for name in unit.gfd_names)

    def check_unit(self, unit) -> None:
        """Raise :class:`InjectedFault` if *unit* is poisoned."""
        if self.poisons(unit):
            raise InjectedFault(
                f"poisoned unit {unit.uid} (gfd {unit.gfd_name!r}) "
                "injected by FaultPlan"
            )

    def __bool__(self) -> bool:
        return bool(self.events or self.poisoned)

    # _by_slot is derived state; keep pickles minimal and rebuildable.
    def __getstate__(self):
        return {"events": self.events, "poisoned": self.poisoned}

    def __setstate__(self, state):
        object.__setattr__(self, "events", state["events"])
        object.__setattr__(self, "poisoned", state["poisoned"])
        object.__setattr__(
            self,
            "_by_slot",
            {(e.worker_id, e.batch_index): e for e in self.events},
        )


class RetryTracker:
    """Per-unit failure accounting shared by every backend.

    A unit may fail ``max_retries`` times and still be retried; the
    failure after that quarantines it. The tracker only counts — the
    backend owns the requeue/quarantine mechanics — so the same instance
    serves worker-side exceptions, worker crashes attributed to a
    singleton batch, and degraded-mode in-process failures alike.
    """

    def __init__(self, max_retries: int) -> None:
        self.max_retries = max_retries
        self._attempts: Dict[str, int] = {}

    def record_failure(self, unit) -> bool:
        """Count one failure of *unit*; True = retry, False = quarantine."""
        attempts = self._attempts.get(unit.uid, 0) + 1
        self._attempts[unit.uid] = attempts
        return attempts <= self.max_retries

    def attempts(self, unit) -> int:
        return self._attempts.get(unit.uid, 0)

    @property
    def total_failures(self) -> int:
        return sum(self._attempts.values())
