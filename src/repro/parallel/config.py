"""Configuration of the parallel runtimes: cost model and knobs.

The simulated cluster charges *virtual time* for the work a unit really
performs: matcher consistency checks (``match_tick``), enforcement
operations (``enforce_op``), scheduling overhead, split-message shipping and
``ΔEq`` broadcast. The defaults are calibrated so that the relative effects
reported in the paper (pipelining ≈1.5×, splitting ≈4×, TTL optimum in the
interior of the sweep) are observable on scaled workloads; absolute numbers
are in virtual seconds and are not comparable to the authors' Java cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import RuntimeConfigError
from .faults import FaultPlan

#: Paper default for the straggler threshold (virtual seconds), Exp-4.
DEFAULT_TTL_SECONDS = 2.0

#: Hang detection: a worker with no latency history yet is allowed this
#: many wall seconds per batch before being declared dead.
DEFAULT_BATCH_TIMEOUT_FLOOR = 30.0


@dataclass(frozen=True)
class CostModel:
    """Virtual-time prices of the operations a worker performs."""

    match_tick: float = 1.0        # one matcher consistency check
    enforce_op: float = 3.0        # one enforcement (CheckAttr) operation
    unit_overhead: float = 0.1     # per-unit scheduling cost within a batch
    batch_overhead: float = 2.0    # coordinator round-trip per assigned batch
    split_message: float = 40.0    # shipping one split sub-unit to Sc
    broadcast_per_op: float = 0.1  # broadcasting one ΔEq operation
    pipeline_sync: float = 0.2     # residual sync cost when pipelined
    tick_seconds: float = 1e-3     # virtual seconds per cost unit

    def seconds(self, cost_units: float) -> float:
        return cost_units * self.tick_seconds

    def cost_units(self, seconds: float) -> float:
        return seconds / self.tick_seconds


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything a parallel run needs besides the workload itself.

    Attributes
    ----------
    workers:
        ``p`` — the number of workers (the coordinator is not counted,
        matching the paper's setup).
    ttl_seconds:
        Straggler threshold: a unit whose matching exceeds this much
        virtual time is split (paper, Section V-B). ``None`` disables
        splitting — the ``nb`` variants.
    pipelined:
        Overlap HomMatch and CheckAttr (paper's pipelined parallelism).
        ``False`` gives the ``np`` variants: enforcement waits until all
        matches of the unit are enumerated.
    max_split_units:
        Cap on sub-units shipped per split decision, to bound message size.
    batch_size:
        Units handed to a worker per coordinator round-trip ("work units
        can be assigned ... in a small batch rather than a single w, to
        reduce the communication cost", paper Section V-B). With
        ``adaptive_batch`` this is the *initial* per-worker size; batches
        are exactly this size only in the full ablation
        (:meth:`without_affinity`) — while either scheduler feature is
        on, the fair-share cap may still trim a batch to the worker's
        share of the remaining queue.
    affinity:
        Pivot-locality scheduling: the
        :class:`~repro.parallel.scheduler.Scheduler` routes work units
        whose pivots share a neighborhood (same locality key, see
        :meth:`~repro.parallel.units.UnitContext.locality_key`) to the
        same worker replica, so its warm BFS hop maps and already-applied
        ``ΔEq`` ops are reused instead of re-derived — and the duplicate
        ops that co-located units rediscover never cross the coordinator
        boundary. ``False`` is the ablation: plain FIFO dispatch to
        whichever worker frees up first.
    affinity_cost_feedback:
        Cost-aware pinning: the scheduler consults the
        :meth:`~repro.parallel.units.UnitContext.unit_cost` estimate
        (compiled plan/trie fan-out) and spills a locality group's units
        to the global queue once their owner holds its fair share of the
        initial queue's estimated cost — oversized groups split across
        replicas at enqueue time instead of waiting for the fair-share
        batch cap and work stealing to repair the imbalance.
        ``ParallelOutcome.affinity_overflows`` counts the spills.
        ``False`` restores pure first-touch pinning (the ablation).
        Ignored when ``affinity`` is off.
    adaptive_batch:
        Per-worker adaptive batch sizing: the scheduler grows a worker's
        batch (toward ``max_batch_size``) while round trips come back
        cheap, and halves it when the observed ``ΔEq`` payload exceeds
        ``batch_delta_budget`` ops or the round trip overshoots
        ``batch_target_seconds`` — delta-heavy workers then sync more
        often, keeping every replica's ``Eq`` fresh. ``False`` keeps the
        fixed ``batch_size`` (the ablation, paired with
        ``affinity=False`` by :meth:`without_affinity`).
    max_batch_size:
        Upper bound for adaptive batch growth. Values below ``batch_size``
        are not an error: the effective cap is
        ``max(batch_size, max_batch_size)``.
    batch_delta_budget:
        ΔEq ops per round trip above which an adaptive batch shrinks.
    batch_target_seconds:
        Round-trip duration (virtual seconds on the simulated backend,
        wall seconds elsewhere) above which an adaptive batch shrinks;
        batches only grow while round trips finish in half this budget.
    use_dependency_order / use_simulation_pruning:
        The remaining optimizations, togglable for ablations.
    use_bitsets:
        Candidate-set representation: packed
        :class:`~repro.graph.bitset.NodeBitset` vectors over the graph's
        compiled index (default) vs plain sets. Match streams are
        byte-identical either way; the bitset path trades per-node
        membership tests for word-level intersection.
    use_ruleset_plan:
        Rule-set compilation: generate one *grouped* work unit per
        (pivot-signature group, pivot node) and execute it as a single
        shared-prefix :class:`~repro.matching.ruleset.RuleSetPlan` walk,
        instead of one unit per (GFD, pivot). Verdicts are unchanged
        (monotone ``Eq``, Church-Rosser); unit counts, split shapes and
        virtual timings differ. ``False`` (default) keeps the classic
        per-rule units — the ablation and the correctness oracle.
    start_method:
        Process backend only: the ``multiprocessing`` start method
        (``'fork'``, ``'spawn'``, ``'forkserver'``). ``None`` (default)
        picks ``fork`` where available — workers then inherit the prebuilt
        index and caches copy-on-write — and falls back to ``spawn`` with
        a pickled worker snapshot elsewhere.
    persistent_workers:
        Process backend only: keep the worker pool alive between ``run()``
        calls on the same :class:`~repro.parallel.units.UnitContext`.
        Follow-up runs then ship standing replicas the graph's topology
        *delta ops* (plus the fresh engine) instead of re-forking or
        re-pickling full snapshots — the mutation-heavy serving shape.
        The caller owns the pool's lifetime: call ``Backend.close()``
        when done. Off by default (one-shot runs tear down as before).
    max_unit_retries:
        Supervision: how many times a work unit that failed worker-side
        (an exception, or a crash attributed to it) is retried before it
        is quarantined into ``ParallelOutcome.quarantined`` with its
        worker traceback. ``0`` quarantines on the first failure.
    strict_faults:
        The fail-fast ablation: any worker fault aborts the run with a
        typed :class:`~repro.errors.WorkerFault` /
        :class:`~repro.errors.WorkerPoolError` instead of entering the
        retry/quarantine/respawn/degradation machinery. Off by default.
    batch_timeout_seconds:
        Hang detection (process backend): a worker whose batch round trip
        exceeds this many wall seconds is declared dead, killed, and its
        in-flight units are recovered. ``None`` (default) derives the
        deadline adaptively from the worker pool's observed latency
        history: ``max(batch_timeout_floor, batch_timeout_factor × the
        slowest round trip seen so far)`` — generous enough that a slow
        batch never trips it, bounded enough that a hung worker cannot
        block the run forever.
    batch_timeout_floor / batch_timeout_factor:
        The adaptive deadline's parameters (see above). The floor also
        covers the first round trip, before any history exists.
    max_worker_respawns:
        How many times one worker slot may be respawned after its process
        dies (crash or hang). Respawned replicas are rebuilt from the
        coordinator's current state — fork inheritance or a fresh
        snapshot — so they arrive fully caught up, and the
        :class:`~repro.parallel.scheduler.Scheduler` re-pins locality
        keys to them (``worker_revived``). ``0`` disables respawn.
    respawn_backoff_seconds:
        Base delay before a respawn; doubles with each respawn of the
        same slot (exponential backoff).
    min_live_workers:
        Graceful degradation threshold: when fewer than this many workers
        survive (and the respawn budget is spent), the coordinator stops
        dispatching and finishes the remaining queue in-process through
        the simulated path instead of failing. Must not exceed
        ``workers``. The default ``1`` degrades only when *every* worker
        is gone — the case that used to raise a bare ``RuntimeError``.
    fault_plan:
        Deterministic fault injection
        (:class:`~repro.parallel.faults.FaultPlan`): scripted
        crash/hang/error/slow events keyed by ``(worker_id,
        batch_index)`` plus poisoned units, honored by all three
        backends. ``None`` (default) injects nothing.
    capture_provenance:
        Layered result model: engines intern
        :class:`~repro.results.evidence.MatchEvidence` records for every
        enforced match and stamp structured
        :class:`~repro.eq.eqrelation.Provenance` on ΔEq ops, shipped in
        ``UnitResult``s and merged coordinator-side with stable
        cross-worker refs. ``True`` (default) enables post-run
        explanations; ``False`` is the overhead ablation.
    fragments:
        Fragmented execution (the paper's fragment-parallel model): the
        canonical graph is edge-cut into this many
        :class:`~repro.graph.fragment.FragmentSpec` partitions with
        boundary-node replication, fragment id becomes the scheduler's
        locality key, and the process backend ships each worker only its
        fragments' replicas — cross-fragment pivots are resolved by
        shipping per-unit dQ-balls, and persistent-pool refreshes ship
        per-fragment delta streams. ``None`` (default) keeps whole-graph
        snapshots. The simulated/threaded backends honor the
        fragment-local dispatch keys against their shared whole graph.
    """

    workers: int = 4
    ttl_seconds: Optional[float] = DEFAULT_TTL_SECONDS
    pipelined: bool = True
    max_split_units: int = 16
    batch_size: int = 6
    affinity: bool = True
    affinity_cost_feedback: bool = True
    adaptive_batch: bool = True
    max_batch_size: int = 32
    batch_delta_budget: int = 64
    batch_target_seconds: float = 0.25
    use_dependency_order: bool = True
    use_simulation_pruning: bool = True
    use_bitsets: bool = True
    use_ruleset_plan: bool = False
    start_method: Optional[str] = None
    persistent_workers: bool = False
    max_unit_retries: int = 2
    strict_faults: bool = False
    batch_timeout_seconds: Optional[float] = None
    batch_timeout_floor: float = DEFAULT_BATCH_TIMEOUT_FLOOR
    batch_timeout_factor: float = 8.0
    max_worker_respawns: int = 1
    respawn_backoff_seconds: float = 0.05
    min_live_workers: int = 1
    fault_plan: Optional[FaultPlan] = None
    fragments: Optional[int] = None
    capture_provenance: bool = True
    costs: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise RuntimeConfigError(f"workers must be >= 1, got {self.workers}")
        if self.ttl_seconds is not None and self.ttl_seconds <= 0:
            raise RuntimeConfigError("ttl_seconds must be positive (or None to disable)")
        if self.max_split_units < 1:
            raise RuntimeConfigError("max_split_units must be >= 1")
        if self.batch_size < 1:
            raise RuntimeConfigError("batch_size must be >= 1")
        if self.max_batch_size < 1:
            raise RuntimeConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.batch_delta_budget < 1:
            raise RuntimeConfigError(
                f"batch_delta_budget must be >= 1, got {self.batch_delta_budget}"
            )
        if self.batch_target_seconds <= 0:
            raise RuntimeConfigError(
                f"batch_target_seconds must be positive, got {self.batch_target_seconds}"
            )
        if self.start_method is not None and self.start_method not in (
            "fork",
            "spawn",
            "forkserver",
        ):
            raise RuntimeConfigError(
                f"start_method must be 'fork', 'spawn', or 'forkserver', "
                f"got {self.start_method!r}"
            )
        if self.max_unit_retries < 0:
            raise RuntimeConfigError(
                f"max_unit_retries must be >= 0, got {self.max_unit_retries}"
            )
        if self.batch_timeout_seconds is not None and self.batch_timeout_seconds <= 0:
            raise RuntimeConfigError(
                "batch_timeout_seconds must be positive (or None for adaptive)"
            )
        if self.batch_timeout_floor <= 0 or self.batch_timeout_factor <= 0:
            raise RuntimeConfigError(
                "batch_timeout_floor and batch_timeout_factor must be positive"
            )
        if self.max_worker_respawns < 0:
            raise RuntimeConfigError(
                f"max_worker_respawns must be >= 0, got {self.max_worker_respawns}"
            )
        if self.respawn_backoff_seconds < 0:
            raise RuntimeConfigError(
                f"respawn_backoff_seconds must be >= 0, got {self.respawn_backoff_seconds}"
            )
        if self.min_live_workers < 0:
            raise RuntimeConfigError(
                f"min_live_workers must be >= 0, got {self.min_live_workers}"
            )
        if self.fragments is not None and self.fragments < 1:
            raise RuntimeConfigError(
                f"fragments must be >= 1 (or None to disable), got {self.fragments}"
            )
        if self.min_live_workers > self.workers:
            # A threshold above the pool size would make every run degrade
            # to in-process execution before dispatching anything (or fail
            # under strict_faults with zero actual faults).
            raise RuntimeConfigError(
                f"min_live_workers ({self.min_live_workers}) must not "
                f"exceed workers ({self.workers})"
            )

    @property
    def ttl_ticks(self) -> Optional[float]:
        """The TTL converted to matcher-tick cost units."""
        if self.ttl_seconds is None:
            return None
        return self.costs.cost_units(self.ttl_seconds) / self.costs.match_tick

    def without_pipelining(self) -> "RuntimeConfig":
        return replace(self, pipelined=False)

    def without_splitting(self) -> "RuntimeConfig":
        return replace(self, ttl_seconds=None)

    def without_affinity(self) -> "RuntimeConfig":
        """The scheduler ablation: FIFO routing and fixed ``batch_size``."""
        return replace(self, affinity=False, adaptive_batch=False)

    def with_ruleset_plan(self) -> "RuntimeConfig":
        """Grouped work units through the shared-prefix trie."""
        return replace(self, use_ruleset_plan=True)

    def with_fragments(self, fragments: Optional[int]) -> "RuntimeConfig":
        """Fragmented execution over *fragments* edge-cut partitions."""
        return replace(self, fragments=fragments)

    def without_provenance(self) -> "RuntimeConfig":
        """The provenance-capture ablation (no evidence, bare sources)."""
        return replace(self, capture_provenance=False)

    @property
    def batch_size_cap(self) -> int:
        """The effective adaptive-batch ceiling (never below ``batch_size``)."""
        return max(self.batch_size, self.max_batch_size)

    def batch_deadline(self, slowest_round_trip: float = 0.0) -> float:
        """Wall seconds one batch round trip may take before the worker is
        declared hung: the explicit ``batch_timeout_seconds`` when set,
        else adaptive from the pool's slowest observed round trip."""
        if self.batch_timeout_seconds is not None:
            return self.batch_timeout_seconds
        return max(
            self.batch_timeout_floor, self.batch_timeout_factor * slowest_round_trip
        )

    def with_workers(self, workers: int) -> "RuntimeConfig":
        return replace(self, workers=workers)
