"""Configuration of the parallel runtimes: cost model and knobs.

The simulated cluster charges *virtual time* for the work a unit really
performs: matcher consistency checks (``match_tick``), enforcement
operations (``enforce_op``), scheduling overhead, split-message shipping and
``ΔEq`` broadcast. The defaults are calibrated so that the relative effects
reported in the paper (pipelining ≈1.5×, splitting ≈4×, TTL optimum in the
interior of the sweep) are observable on scaled workloads; absolute numbers
are in virtual seconds and are not comparable to the authors' Java cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import RuntimeConfigError

#: Paper default for the straggler threshold (virtual seconds), Exp-4.
DEFAULT_TTL_SECONDS = 2.0


@dataclass(frozen=True)
class CostModel:
    """Virtual-time prices of the operations a worker performs."""

    match_tick: float = 1.0        # one matcher consistency check
    enforce_op: float = 3.0        # one enforcement (CheckAttr) operation
    unit_overhead: float = 0.1     # per-unit scheduling cost within a batch
    batch_overhead: float = 2.0    # coordinator round-trip per assigned batch
    split_message: float = 40.0    # shipping one split sub-unit to Sc
    broadcast_per_op: float = 0.1  # broadcasting one ΔEq operation
    pipeline_sync: float = 0.2     # residual sync cost when pipelined
    tick_seconds: float = 1e-3     # virtual seconds per cost unit

    def seconds(self, cost_units: float) -> float:
        return cost_units * self.tick_seconds

    def cost_units(self, seconds: float) -> float:
        return seconds / self.tick_seconds


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything a parallel run needs besides the workload itself.

    Attributes
    ----------
    workers:
        ``p`` — the number of workers (the coordinator is not counted,
        matching the paper's setup).
    ttl_seconds:
        Straggler threshold: a unit whose matching exceeds this much
        virtual time is split (paper, Section V-B). ``None`` disables
        splitting — the ``nb`` variants.
    pipelined:
        Overlap HomMatch and CheckAttr (paper's pipelined parallelism).
        ``False`` gives the ``np`` variants: enforcement waits until all
        matches of the unit are enumerated.
    max_split_units:
        Cap on sub-units shipped per split decision, to bound message size.
    batch_size:
        Units handed to a worker per coordinator round-trip ("work units
        can be assigned ... in a small batch rather than a single w, to
        reduce the communication cost", paper Section V-B). With
        ``adaptive_batch`` this is the *initial* per-worker size; batches
        are exactly this size only in the full ablation
        (:meth:`without_affinity`) — while either scheduler feature is
        on, the fair-share cap may still trim a batch to the worker's
        share of the remaining queue.
    affinity:
        Pivot-locality scheduling: the
        :class:`~repro.parallel.scheduler.Scheduler` routes work units
        whose pivots share a neighborhood (same locality key, see
        :meth:`~repro.parallel.units.UnitContext.locality_key`) to the
        same worker replica, so its warm BFS hop maps and already-applied
        ``ΔEq`` ops are reused instead of re-derived — and the duplicate
        ops that co-located units rediscover never cross the coordinator
        boundary. ``False`` is the ablation: plain FIFO dispatch to
        whichever worker frees up first.
    adaptive_batch:
        Per-worker adaptive batch sizing: the scheduler grows a worker's
        batch (toward ``max_batch_size``) while round trips come back
        cheap, and halves it when the observed ``ΔEq`` payload exceeds
        ``batch_delta_budget`` ops or the round trip overshoots
        ``batch_target_seconds`` — delta-heavy workers then sync more
        often, keeping every replica's ``Eq`` fresh. ``False`` keeps the
        fixed ``batch_size`` (the ablation, paired with
        ``affinity=False`` by :meth:`without_affinity`).
    max_batch_size:
        Upper bound for adaptive batch growth. Values below ``batch_size``
        are not an error: the effective cap is
        ``max(batch_size, max_batch_size)``.
    batch_delta_budget:
        ΔEq ops per round trip above which an adaptive batch shrinks.
    batch_target_seconds:
        Round-trip duration (virtual seconds on the simulated backend,
        wall seconds elsewhere) above which an adaptive batch shrinks;
        batches only grow while round trips finish in half this budget.
    use_dependency_order / use_simulation_pruning:
        The remaining optimizations, togglable for ablations.
    use_bitsets:
        Candidate-set representation: packed
        :class:`~repro.graph.bitset.NodeBitset` vectors over the graph's
        compiled index (default) vs plain sets. Match streams are
        byte-identical either way; the bitset path trades per-node
        membership tests for word-level intersection.
    start_method:
        Process backend only: the ``multiprocessing`` start method
        (``'fork'``, ``'spawn'``, ``'forkserver'``). ``None`` (default)
        picks ``fork`` where available — workers then inherit the prebuilt
        index and caches copy-on-write — and falls back to ``spawn`` with
        a pickled worker snapshot elsewhere.
    persistent_workers:
        Process backend only: keep the worker pool alive between ``run()``
        calls on the same :class:`~repro.parallel.units.UnitContext`.
        Follow-up runs then ship standing replicas the graph's topology
        *delta ops* (plus the fresh engine) instead of re-forking or
        re-pickling full snapshots — the mutation-heavy serving shape.
        The caller owns the pool's lifetime: call ``Backend.close()``
        when done. Off by default (one-shot runs tear down as before).
    """

    workers: int = 4
    ttl_seconds: Optional[float] = DEFAULT_TTL_SECONDS
    pipelined: bool = True
    max_split_units: int = 16
    batch_size: int = 6
    affinity: bool = True
    adaptive_batch: bool = True
    max_batch_size: int = 32
    batch_delta_budget: int = 64
    batch_target_seconds: float = 0.25
    use_dependency_order: bool = True
    use_simulation_pruning: bool = True
    use_bitsets: bool = True
    start_method: Optional[str] = None
    persistent_workers: bool = False
    costs: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise RuntimeConfigError(f"workers must be >= 1, got {self.workers}")
        if self.ttl_seconds is not None and self.ttl_seconds <= 0:
            raise RuntimeConfigError("ttl_seconds must be positive (or None to disable)")
        if self.max_split_units < 1:
            raise RuntimeConfigError("max_split_units must be >= 1")
        if self.batch_size < 1:
            raise RuntimeConfigError("batch_size must be >= 1")
        if self.max_batch_size < 1:
            raise RuntimeConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.batch_delta_budget < 1:
            raise RuntimeConfigError(
                f"batch_delta_budget must be >= 1, got {self.batch_delta_budget}"
            )
        if self.batch_target_seconds <= 0:
            raise RuntimeConfigError(
                f"batch_target_seconds must be positive, got {self.batch_target_seconds}"
            )
        if self.start_method is not None and self.start_method not in (
            "fork",
            "spawn",
            "forkserver",
        ):
            raise RuntimeConfigError(
                f"start_method must be 'fork', 'spawn', or 'forkserver', "
                f"got {self.start_method!r}"
            )

    @property
    def ttl_ticks(self) -> Optional[float]:
        """The TTL converted to matcher-tick cost units."""
        if self.ttl_seconds is None:
            return None
        return self.costs.cost_units(self.ttl_seconds) / self.costs.match_tick

    def without_pipelining(self) -> "RuntimeConfig":
        return replace(self, pipelined=False)

    def without_splitting(self) -> "RuntimeConfig":
        return replace(self, ttl_seconds=None)

    def without_affinity(self) -> "RuntimeConfig":
        """The scheduler ablation: FIFO routing and fixed ``batch_size``."""
        return replace(self, affinity=False, adaptive_batch=False)

    @property
    def batch_size_cap(self) -> int:
        """The effective adaptive-batch ceiling (never below ``batch_size``)."""
        return max(self.batch_size, self.max_batch_size)

    def with_workers(self, workers: int) -> "RuntimeConfig":
        return replace(self, workers=workers)
