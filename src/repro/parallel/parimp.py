"""``ParImp`` — parallel implication checking (paper, Section VI-C).

ParImp parallelizes SeqImp: work units enforce the GFDs of ``Σ`` on the
canonical graph ``G^X_Q`` of ``φ``, expanding ``Eq_H`` (initialized to
``Eq_X``) across workers. Differences from ParSat (faithful to the paper):

* units whose GFD's antecedent is already subsumed by ``Eq_X`` get the
  highest queue priority;
* a worker signals early termination not only on a conflict but also when
  ``Y ⊆ Eq_H`` — and in *both* cases the answer is ``True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..eq.eqrelation import Conflict, EqRelation
from ..gfd.canonical import build_implication_canonical
from ..gfd.gfd import GFD
from ..reasoning.enforce import EnforcementEngine, consequent_entailed
from ..reasoning.seqimp import _subsumed_by_eqx
from ..reasoning.workunits import (
    generate_grouped_work_units,
    generate_pruned_work_units,
    order_units,
)
from .backends import get_backend, resolve_backend_name
from .config import RuntimeConfig
from .coordinator import ParallelOutcome
from .goals import EntailmentGoal
from .units import UnitContext, attach_fragmentation


@dataclass
class ParImpResult:
    """Outcome of a parallel implication check ``Σ |= φ``.

    *reason* mirrors :class:`repro.reasoning.seqimp.ImpResult`.
    """

    implied: bool
    reason: str
    conflict: Optional[Conflict]
    outcome: ParallelOutcome
    eq: EqRelation
    engine: Optional[EnforcementEngine] = None

    def __bool__(self) -> bool:
        return self.implied

    @property
    def virtual_seconds(self) -> float:
        return self.outcome.virtual_seconds

    @property
    def wall_seconds(self) -> float:
        return self.outcome.wall_seconds

    @property
    def results(self) -> "ResultStore":
        """The layered result store merged by the coordinator.

        Trivial short-circuits ran no workers; their store carries only
        the ``Eq_X`` derivation (plus the conflict claim for trivial-X).
        """
        from ..results.claims import ConflictClaim
        from ..results.store import ResultStore

        if self.engine is not None:
            return ResultStore.from_engine(self.engine)
        return ResultStore(
            derivation=list(self.eq.delta_since(0)),
            conflict=ConflictClaim.from_conflict(self.conflict) if self.conflict else None,
            eq=self.eq,
        )


def par_imp(
    sigma: Sequence[GFD],
    phi: GFD,
    config: Optional[RuntimeConfig] = None,
    backend: Optional[str] = None,
    runtime: Optional[str] = None,
) -> ParImpResult:
    """Decide ``Σ |= φ`` with ``p = config.workers`` workers.

    *backend* (or its legacy alias *runtime*) selects ``'simulated'``
    (default), ``'threaded'``, or ``'process'``.
    """
    config = config or RuntimeConfig()
    backend_name = resolve_backend_name(backend, runtime)
    canonical = build_implication_canonical(phi)
    eq = canonical.fresh_eq()
    identity = canonical.identity_match()

    empty_outcome = ParallelOutcome(eq=eq)
    if eq.has_conflict():
        return ParImpResult(True, "trivial-X", eq.conflict, empty_outcome, eq)
    if phi.is_trivial():
        return ParImpResult(True, "trivial-Y", None, empty_outcome, eq)
    if consequent_entailed(eq, phi, identity):
        return ParImpResult(True, "derived", None, empty_outcome, eq)

    gfds_by_name = {gfd.name: gfd for gfd in sigma}
    if config.use_ruleset_plan:
        units = generate_grouped_work_units(
            sigma,
            canonical.graph,
            use_simulation=config.use_simulation_pruning,
            use_bitsets=config.use_bitsets,
        )
    else:
        units = generate_pruned_work_units(
            sigma,
            canonical.graph,
            use_simulation=config.use_simulation_pruning,
            use_bitsets=config.use_bitsets,
        )
    if config.use_dependency_order:
        subsumed = {gfd.name for gfd in sigma if _subsumed_by_eqx(gfd, canonical)}
        units = order_units(
            units,
            gfds_by_name,
            canonical.graph,
            high_priority=lambda unit: any(
                name in subsumed for name in unit.gfd_names
            ),
        )
    context = UnitContext(
        canonical.graph,
        gfds_by_name,
        use_simulation_pruning=config.use_simulation_pruning,
        use_bitsets=config.use_bitsets,
    )
    # One compiled match plan per GFD, shared across all of its work
    # units; hop maps for hot pivots warmed coordinator-side.
    context.precompile_plans(sigma)
    if config.use_ruleset_plan:
        context.ruleset_plan()
    context.precompute_neighborhoods(units)
    if config.fragments is not None:
        attach_fragmentation(context, sigma, config.fragments)
    engine = EnforcementEngine(
        eq, gfds_by_name, capture_provenance=config.capture_provenance
    )

    # The goal ``Y ⊆ Eq_H`` as a picklable value object, so the process
    # backend can ship it to worker replicas (plain closures cannot cross
    # the process boundary).
    goal_check = EntailmentGoal.make(phi, identity)

    outcome = get_backend(backend_name, config).run(
        units, context, engine, goal_check=goal_check
    )
    if outcome.conflict is not None:
        return ParImpResult(True, "conflict", outcome.conflict, outcome, eq, engine)
    if outcome.goal_reached:
        return ParImpResult(True, "derived", None, outcome, eq, engine)
    return ParImpResult(False, "not-implied", None, outcome, eq, engine)


def par_imp_np(
    sigma: Sequence[GFD],
    phi: GFD,
    config: Optional[RuntimeConfig] = None,
    backend: Optional[str] = None,
    runtime: Optional[str] = None,
) -> ParImpResult:
    """``ParImpnp``: ParImp without pipelined parallelism (ablation)."""
    config = (config or RuntimeConfig()).without_pipelining()
    return par_imp(sigma, phi, config, backend, runtime)


def par_imp_nb(
    sigma: Sequence[GFD],
    phi: GFD,
    config: Optional[RuntimeConfig] = None,
    backend: Optional[str] = None,
    runtime: Optional[str] = None,
) -> ParImpResult:
    """``ParImpnb``: ParImp without work-unit splitting (ablation)."""
    config = (config or RuntimeConfig()).without_splitting()
    return par_imp(sigma, phi, config, backend, runtime)
