"""``ParSat`` — parallel satisfiability checking (paper, Section V).

ParSat parallelizes SeqSat over work units ``(Q[z], φ)``: the canonical
graph ``GΣ`` is replicated (shared, here), the coordinator orders all units
topologically by the unit dependency graph (empty-antecedent units first)
and assigns them dynamically to ``p`` workers; workers match locally in the
``dQ``-neighborhood of their pivot, enforce GFDs through the shared
monotone ``Eq``, split stragglers after TTL, and the run stops at the first
conflict. ParSat is parallel scalable relative to SeqSat — the benchmark
suite measures ``T(|Σ|, p)`` against ``t(|Σ|)/p``.

The ``np``/``nb`` ablation variants of the paper's evaluation are exposed
as :func:`par_sat_np` (no pipelining) and :func:`par_sat_nb` (no work-unit
splitting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..eq.eqrelation import Conflict, EqRelation
from ..gfd.canonical import CanonicalGraph, build_canonical_graph
from ..gfd.gfd import GFD
from ..matching.component_index import ComponentIndex
from ..reasoning.enforce import EnforcementEngine
from ..reasoning.workunits import (
    WorkUnit,
    generate_grouped_work_units,
    generate_pruned_work_units,
    generate_work_units,
    order_units,
)
from .backends import get_backend, resolve_backend_name
from .config import RuntimeConfig
from .coordinator import ParallelOutcome
from .units import UnitContext, attach_fragmentation


@dataclass
class ParSatResult:
    """Outcome of a parallel satisfiability check."""

    satisfiable: bool
    conflict: Optional[Conflict]
    outcome: ParallelOutcome
    canonical: CanonicalGraph
    eq: EqRelation
    engine: Optional[EnforcementEngine] = None

    def __bool__(self) -> bool:
        return self.satisfiable

    @property
    def virtual_seconds(self) -> float:
        return self.outcome.virtual_seconds

    @property
    def wall_seconds(self) -> float:
        return self.outcome.wall_seconds

    @property
    def results(self) -> "ResultStore":
        """The layered result store merged by the coordinator — same
        evidence/derivation refs as the sequential run (stable ids)."""
        from ..results.store import ResultStore

        if self.engine is None:
            return ResultStore(derivation=list(self.eq.delta_since(0)), eq=self.eq)
        return ResultStore.from_engine(self.engine)


@dataclass
class PreparedSat:
    """A rule set compiled for repeated parallel satisfiability runs.

    Splits :func:`par_sat` into a *build* phase (canonical graph, unit
    context, compiled match plans, warm hop maps — everything that is pure
    in Σ and the config) and a *run* phase (fresh work units + enforcement
    engine per call). Because :meth:`run` reuses one :class:`UnitContext`
    across calls, a ``persistent_workers`` process backend recognizes the
    context on the second run and refreshes its standing replicas through
    :meth:`~repro.graph.graph.PropertyGraph.delta_ops_since` instead of
    cold-starting — the serving layer keeps one ``PreparedSat`` per active
    rule set for exactly this reason.
    """

    sigma: Sequence[GFD]
    config: RuntimeConfig
    canonical: CanonicalGraph
    context: UnitContext

    @classmethod
    def build(cls, sigma: Sequence[GFD], config: Optional[RuntimeConfig] = None) -> "PreparedSat":
        config = config or RuntimeConfig()
        canonical = build_canonical_graph(sigma)
        context = UnitContext(
            canonical.graph,
            canonical.gfds,
            use_simulation_pruning=config.use_simulation_pruning,
            use_bitsets=config.use_bitsets,
        )
        # Coordinator-side precomputation: one compiled match plan per GFD
        # (shared by every pivoted work unit the backend executes) —
        # process workers inherit these instead of recomputing per replica.
        context.precompile_plans(sigma)
        if config.use_ruleset_plan:
            context.ruleset_plan()
        return cls(sigma=list(sigma), config=config, canonical=canonical, context=context)

    def make_units(self) -> "list[WorkUnit]":
        """Generate this run's work units (consumed by the scheduler)."""
        # Coordinator-side pruning: per-component dual simulation discards
        # zero-match pivot candidates before queueing (the paper's
        # simulation-based multi-query optimization, Section V-B).
        if self.config.use_ruleset_plan:
            # Rule-set compilation: one grouped unit per (pivot-signature
            # group, pivot), executed as a single shared-prefix trie walk.
            units = generate_grouped_work_units(
                self.sigma,
                self.canonical.graph,
                use_simulation=self.config.use_simulation_pruning,
                use_bitsets=self.config.use_bitsets,
            )
        else:
            index = ComponentIndex(self.canonical.graph)
            units = generate_pruned_work_units(
                self.sigma,
                self.canonical.graph,
                index=index,
                use_simulation=self.config.use_simulation_pruning,
                use_bitsets=self.config.use_bitsets,
            )
        if self.config.use_dependency_order:
            units = order_units(units, self.canonical.gfds, self.canonical.graph)
        return units

    def run(self, backend) -> ParSatResult:
        """Execute one satisfiability check on *backend* (a Backend
        instance, owned by the caller — not closed here)."""
        units = self.make_units()
        # Warm dQ-neighborhood hop maps for hot pivots (cached on the
        # context, so repeat runs start warm).
        self.context.precompute_neighborhoods(units)
        if self.config.fragments is not None:
            # Fragmented execution: edge-cut the canonical graph, pin
            # units to their pivot's owning fragment, and fix the
            # whole-graph pivot and variable-order choices so fragment
            # replicas match identically.
            attach_fragmentation(self.context, self.sigma, self.config.fragments)
        engine = EnforcementEngine(
            EqRelation(),
            self.canonical.gfds,
            capture_provenance=self.config.capture_provenance,
        )
        outcome = backend.run(units, self.context, engine)
        return ParSatResult(
            satisfiable=outcome.conflict is None,
            conflict=outcome.conflict,
            outcome=outcome,
            canonical=self.canonical,
            eq=engine.eq,
            engine=engine,
        )


def par_sat(
    sigma: Sequence[GFD],
    config: Optional[RuntimeConfig] = None,
    backend: Optional[str] = None,
    runtime: Optional[str] = None,
) -> ParSatResult:
    """Decide satisfiability of *sigma* with ``p = config.workers`` workers.

    *backend* selects the execution runtime: the virtual-clock simulator
    (``'simulated'``, default; deterministic, used for the scalability
    figures), real threads (``'threaded'``), or multiprocessing on real
    cores (``'process'``). *runtime* is the legacy alias for the same
    selector. One-shot: builds a fresh :class:`PreparedSat` and a fresh
    backend per call — long-lived callers that want standing pools reuse a
    ``PreparedSat`` and their own backend instance instead.
    """
    config = config or RuntimeConfig()
    backend_name = resolve_backend_name(backend, runtime)
    prepared = PreparedSat.build(sigma, config)
    return prepared.run(get_backend(backend_name, config))


def par_sat_np(
    sigma: Sequence[GFD],
    config: Optional[RuntimeConfig] = None,
    backend: Optional[str] = None,
    runtime: Optional[str] = None,
) -> ParSatResult:
    """``ParSatnp``: ParSat without pipelined parallelism (ablation)."""
    config = (config or RuntimeConfig()).without_pipelining()
    return par_sat(sigma, config, backend, runtime)


def par_sat_nb(
    sigma: Sequence[GFD],
    config: Optional[RuntimeConfig] = None,
    backend: Optional[str] = None,
    runtime: Optional[str] = None,
) -> ParSatResult:
    """``ParSatnb``: ParSat without work-unit splitting (ablation)."""
    config = (config or RuntimeConfig()).without_splitting()
    return par_sat(sigma, config, backend, runtime)
