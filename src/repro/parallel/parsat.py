"""``ParSat`` — parallel satisfiability checking (paper, Section V).

ParSat parallelizes SeqSat over work units ``(Q[z], φ)``: the canonical
graph ``GΣ`` is replicated (shared, here), the coordinator orders all units
topologically by the unit dependency graph (empty-antecedent units first)
and assigns them dynamically to ``p`` workers; workers match locally in the
``dQ``-neighborhood of their pivot, enforce GFDs through the shared
monotone ``Eq``, split stragglers after TTL, and the run stops at the first
conflict. ParSat is parallel scalable relative to SeqSat — the benchmark
suite measures ``T(|Σ|, p)`` against ``t(|Σ|)/p``.

The ``np``/``nb`` ablation variants of the paper's evaluation are exposed
as :func:`par_sat_np` (no pipelining) and :func:`par_sat_nb` (no work-unit
splitting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..eq.eqrelation import Conflict, EqRelation
from ..gfd.canonical import CanonicalGraph, build_canonical_graph
from ..gfd.gfd import GFD
from ..matching.component_index import ComponentIndex
from ..reasoning.enforce import EnforcementEngine
from ..reasoning.workunits import (
    WorkUnit,
    generate_grouped_work_units,
    generate_pruned_work_units,
    generate_work_units,
    order_units,
)
from .backends import get_backend, resolve_backend_name
from .config import RuntimeConfig
from .coordinator import ParallelOutcome
from .units import UnitContext, attach_fragmentation


@dataclass
class ParSatResult:
    """Outcome of a parallel satisfiability check."""

    satisfiable: bool
    conflict: Optional[Conflict]
    outcome: ParallelOutcome
    canonical: CanonicalGraph
    eq: EqRelation
    engine: Optional[EnforcementEngine] = None

    def __bool__(self) -> bool:
        return self.satisfiable

    @property
    def virtual_seconds(self) -> float:
        return self.outcome.virtual_seconds

    @property
    def wall_seconds(self) -> float:
        return self.outcome.wall_seconds

    @property
    def results(self) -> "ResultStore":
        """The layered result store merged by the coordinator — same
        evidence/derivation refs as the sequential run (stable ids)."""
        from ..results.store import ResultStore

        if self.engine is None:
            return ResultStore(derivation=list(self.eq.delta_since(0)), eq=self.eq)
        return ResultStore.from_engine(self.engine)


def par_sat(
    sigma: Sequence[GFD],
    config: Optional[RuntimeConfig] = None,
    backend: Optional[str] = None,
    runtime: Optional[str] = None,
) -> ParSatResult:
    """Decide satisfiability of *sigma* with ``p = config.workers`` workers.

    *backend* selects the execution runtime: the virtual-clock simulator
    (``'simulated'``, default; deterministic, used for the scalability
    figures), real threads (``'threaded'``), or multiprocessing on real
    cores (``'process'``). *runtime* is the legacy alias for the same
    selector.
    """
    config = config or RuntimeConfig()
    backend_name = resolve_backend_name(backend, runtime)
    canonical = build_canonical_graph(sigma)
    # Coordinator-side pruning: per-component dual simulation discards
    # zero-match pivot candidates before queueing (the paper's
    # simulation-based multi-query optimization, Section V-B).
    if config.use_ruleset_plan:
        # Rule-set compilation: one grouped unit per (pivot-signature
        # group, pivot), executed as a single shared-prefix trie walk.
        units = generate_grouped_work_units(
            sigma,
            canonical.graph,
            use_simulation=config.use_simulation_pruning,
            use_bitsets=config.use_bitsets,
        )
    else:
        index = ComponentIndex(canonical.graph)
        units = generate_pruned_work_units(
            sigma,
            canonical.graph,
            index=index,
            use_simulation=config.use_simulation_pruning,
            use_bitsets=config.use_bitsets,
        )
    if config.use_dependency_order:
        units = order_units(units, canonical.gfds, canonical.graph)
    context = UnitContext(
        canonical.graph,
        canonical.gfds,
        use_simulation_pruning=config.use_simulation_pruning,
        use_bitsets=config.use_bitsets,
    )
    # Coordinator-side precomputation: one compiled match plan per GFD
    # (shared by every pivoted work unit the backend executes) and warm
    # dQ-neighborhood hop maps for hot pivots — process workers inherit
    # both instead of recomputing them per replica.
    context.precompile_plans(sigma)
    if config.use_ruleset_plan:
        context.ruleset_plan()
    context.precompute_neighborhoods(units)
    if config.fragments is not None:
        # Fragmented execution: edge-cut the canonical graph, pin units to
        # their pivot's owning fragment, and fix the whole-graph pivot and
        # variable-order choices so fragment replicas match identically.
        attach_fragmentation(context, sigma, config.fragments)
    engine = EnforcementEngine(
        EqRelation(), canonical.gfds, capture_provenance=config.capture_provenance
    )
    outcome = get_backend(backend_name, config).run(units, context, engine)
    return ParSatResult(
        satisfiable=outcome.conflict is None,
        conflict=outcome.conflict,
        outcome=outcome,
        canonical=canonical,
        eq=engine.eq,
        engine=engine,
    )


def par_sat_np(
    sigma: Sequence[GFD],
    config: Optional[RuntimeConfig] = None,
    backend: Optional[str] = None,
    runtime: Optional[str] = None,
) -> ParSatResult:
    """``ParSatnp``: ParSat without pipelined parallelism (ablation)."""
    config = (config or RuntimeConfig()).without_pipelining()
    return par_sat(sigma, config, backend, runtime)


def par_sat_nb(
    sigma: Sequence[GFD],
    config: Optional[RuntimeConfig] = None,
    backend: Optional[str] = None,
    runtime: Optional[str] = None,
) -> ParSatResult:
    """``ParSatnb``: ParSat without work-unit splitting (ablation)."""
    config = (config or RuntimeConfig()).without_splitting()
    return par_sat(sigma, config, backend, runtime)
