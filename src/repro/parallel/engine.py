"""Parallel runtimes: a simulated discrete-event cluster and real threads.

**SimulatedCluster** reproduces the coordinator/worker protocol of Fig. 3
under a virtual clock. Work units are really executed (so all verdicts are
exact); the clock charges each unit the operations it actually performed,
priced by the :class:`~repro.parallel.config.CostModel`:

* pipelined units cost ``max(t_match, t_check)`` plus a small sync residue,
  non-pipelined units cost ``t_match + t_check`` (the ``np`` variants);
* every unit pays dispatch overhead, every split sub-unit pays a message
  cost, and every ``ΔEq`` op pays a broadcast cost.

Units are assigned dynamically: whenever a worker frees up it receives the
head of the priority queue; split sub-units go to the *front* of the queue
(paper, lines 9–10 of ParSat). Early termination ends the run at the
completion time of the conflicting unit.

The simulation executes units in dispatch order against a shared ``Eq``
(instantaneous broadcast). Because ``Eq`` grows monotonically and the
algorithms are Church-Rosser, the *verdict* is identical to any real
interleaving; only second-order timing effects are approximated. This is
the documented substitution for the paper's 20-machine Java cluster.

**ThreadedCluster** runs the same protocol on real ``threading`` workers
with a lock-protected engine — demonstrating functional correctness under
true concurrency (Python's GIL limits its speedups, hence the simulator for
the scalability figures).
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Sequence

from ..eq.eqrelation import Conflict, EqRelation
from ..reasoning.enforce import EnforcementEngine
from ..reasoning.workunits import WorkUnit
from .config import RuntimeConfig
from .units import UnitContext, UnitResult, execute_unit


@dataclass
class ParallelOutcome:
    """Everything a parallel run reports."""

    conflict: Optional[Conflict] = None
    goal_reached: bool = False
    virtual_seconds: float = 0.0
    wall_seconds: float = 0.0
    units_total: int = 0
    units_executed: int = 0
    splits: int = 0
    matches: int = 0
    match_ticks: int = 0
    enforce_ops: int = 0
    broadcast_ops: int = 0
    worker_busy: List[float] = field(default_factory=list)
    eq: Optional[EqRelation] = None

    @property
    def terminated_early(self) -> bool:
        return self.conflict is not None or self.goal_reached

    @property
    def load_imbalance(self) -> float:
        """max/mean worker busy time (1.0 = perfectly balanced)."""
        busy = [b for b in self.worker_busy if b > 0]
        if not busy:
            return 1.0
        mean = sum(busy) / len(self.worker_busy)
        return max(self.worker_busy) / mean if mean else 1.0


def _unit_duration(result: UnitResult, config: RuntimeConfig) -> float:
    """Virtual cost units charged for one executed unit (batch overhead is
    charged separately, once per coordinator round-trip)."""
    costs = config.costs
    t_match = result.match_ticks * costs.match_tick
    t_check = result.enforce_ops * costs.enforce_op
    if config.pipelined:
        core = max(t_match, t_check) + costs.pipeline_sync
    else:
        core = t_match + t_check
    return (
        core
        + costs.unit_overhead
        + len(result.splits) * costs.split_message
        + result.delta_ops * costs.broadcast_per_op
    )


class SimulatedCluster:
    """Coordinator + ``p`` simulated workers under a virtual clock."""

    def __init__(self, config: RuntimeConfig) -> None:
        self.config = config

    def run(
        self,
        units: Sequence[WorkUnit],
        context: UnitContext,
        engine: EnforcementEngine,
        goal_check: Optional[Callable[[EqRelation], bool]] = None,
        trace=None,
    ) -> ParallelOutcome:
        config = self.config
        started = time.perf_counter()
        outcome = ParallelOutcome(units_total=len(units), eq=engine.eq)
        outcome.worker_busy = [0.0] * config.workers
        pending: Deque[WorkUnit] = deque(units)
        # (next-free virtual time, worker id); heap gives dynamic assignment
        # to the earliest available worker.
        free = [(0.0, worker_id) for worker_id in range(config.workers)]
        heapq.heapify(free)
        makespan = 0.0
        ttl_ticks = config.ttl_ticks
        terminated = False
        while pending and not terminated:
            now, worker_id = heapq.heappop(free)
            # One coordinator round-trip hands the worker a small batch
            # (paper, Section V-B); the batch pays one dispatch overhead.
            batch = [pending.popleft() for _ in range(min(config.batch_size, len(pending)))]
            elapsed = config.costs.batch_overhead * config.costs.tick_seconds
            for unit in batch:
                unit_start = now + elapsed
                result = execute_unit(
                    unit,
                    context,
                    engine,
                    ttl_ticks=ttl_ticks,
                    max_split_units=config.max_split_units,
                    goal_check=goal_check,
                )
                elapsed += _unit_duration(result, config) * config.costs.tick_seconds
                if trace is not None:
                    from .tracing import TraceEvent

                    trace.record(
                        TraceEvent(
                            worker=worker_id,
                            unit=unit,
                            start=unit_start,
                            finish=now + elapsed,
                            matches=result.matches,
                            match_ticks=result.match_ticks,
                            splits=len(result.splits),
                            conflict=result.conflict,
                            goal_reached=result.goal_reached,
                        )
                    )
                outcome.units_executed += 1
                outcome.matches += result.matches
                outcome.match_ticks += result.match_ticks
                outcome.enforce_ops += result.enforce_ops
                outcome.broadcast_ops += result.delta_ops
                if result.conflict:
                    outcome.conflict = engine.eq.conflict
                    terminated = True
                elif result.goal_reached:
                    outcome.goal_reached = True
                    terminated = True
                elif result.splits:
                    outcome.splits += len(result.splits)
                    outcome.units_total += len(result.splits)
                    # Splits jump the queue (highest priority).
                    pending.extendleft(reversed(result.splits))
                if terminated:
                    break
            finish = now + elapsed
            outcome.worker_busy[worker_id] += elapsed
            if terminated:
                makespan = finish
                break
            makespan = max(makespan, finish)
            heapq.heappush(free, (finish, worker_id))
        outcome.virtual_seconds = makespan
        outcome.wall_seconds = time.perf_counter() - started
        return outcome


class _LockedEngine(EnforcementEngine):
    """An :class:`EnforcementEngine` whose mutations are serialized.

    Matching runs lock-free (the canonical graph is immutable during a
    run); only ``Eq``/index mutations and reads that may path-compress the
    union-find take the lock.
    """

    def __init__(self, inner: EnforcementEngine, lock: threading.RLock) -> None:
        super().__init__(inner.eq, inner.gfds, inner.index)
        self._lock = lock
        self.stats = inner.stats

    def enforce(self, gfd, assignment) -> bool:  # type: ignore[override]
        with self._lock:
            return super().enforce(gfd, assignment)


class ThreadedCluster:
    """The same protocol on real threads (functional-parity runtime)."""

    def __init__(self, config: RuntimeConfig) -> None:
        self.config = config

    def run(
        self,
        units: Sequence[WorkUnit],
        context: UnitContext,
        engine: EnforcementEngine,
        goal_check: Optional[Callable[[EqRelation], bool]] = None,
    ) -> ParallelOutcome:
        config = self.config
        started = time.perf_counter()
        outcome = ParallelOutcome(units_total=len(units), eq=engine.eq)
        outcome.worker_busy = [0.0] * config.workers
        lock = threading.RLock()
        locked_engine = _LockedEngine(engine, lock)
        pending: Deque[WorkUnit] = deque(units)
        queue_lock = threading.Lock()
        stop = threading.Event()
        results: List[UnitResult] = []
        results_lock = threading.Lock()
        ttl_ticks = config.ttl_ticks

        locked_goal = None
        if goal_check is not None:
            def locked_goal(eq: EqRelation) -> bool:
                with lock:
                    return goal_check(eq)

        def worker(worker_id: int) -> None:
            while not stop.is_set():
                with queue_lock:
                    if not pending:
                        return
                    unit = pending.popleft()
                unit_started = time.perf_counter()
                result = execute_unit(
                    unit,
                    context,
                    locked_engine,
                    ttl_ticks=ttl_ticks,
                    max_split_units=config.max_split_units,
                    goal_check=locked_goal,
                )
                outcome.worker_busy[worker_id] += time.perf_counter() - unit_started
                with results_lock:
                    results.append(result)
                if result.conflict or result.goal_reached:
                    stop.set()
                    return
                if result.splits:
                    with queue_lock:
                        pending.extendleft(reversed(result.splits))

        threads = [
            threading.Thread(target=worker, args=(worker_id,), daemon=True)
            for worker_id in range(config.workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for result in results:
            outcome.units_executed += 1
            outcome.matches += result.matches
            outcome.match_ticks += result.match_ticks
            outcome.enforce_ops += result.enforce_ops
            outcome.broadcast_ops += result.delta_ops
            outcome.splits += len(result.splits)
            if result.goal_reached:
                outcome.goal_reached = True
        outcome.units_total += outcome.splits
        if engine.eq.has_conflict():
            outcome.conflict = engine.eq.conflict
        outcome.wall_seconds = time.perf_counter() - started
        outcome.virtual_seconds = outcome.wall_seconds
        return outcome


def make_cluster(config: RuntimeConfig, runtime: str):
    """Factory: ``'simulated'`` or ``'threaded'``."""
    if runtime == "simulated":
        return SimulatedCluster(config)
    if runtime == "threaded":
        return ThreadedCluster(config)
    raise ValueError(f"unknown runtime {runtime!r} (use 'simulated' or 'threaded')")
