"""Parallel runtimes — compatibility façade over the backend subsystem.

The coordinator/worker machinery that used to live in this module is now
an execution-backend subsystem:

* :mod:`repro.parallel.coordinator` — the runtime-agnostic core:
  :class:`ParallelOutcome`, virtual cost pricing, result/split
  bookkeeping;
* :mod:`repro.parallel.backends` — the :class:`~repro.parallel.backends.
  base.Backend` protocol (dispatch, split-requeue, ΔEq broadcast, early
  termination) and its three implementations:

  - ``simulated`` — :class:`SimulatedBackend`: discrete events under a
    virtual clock priced by the :class:`~repro.parallel.config.CostModel`
    (pipelined units cost ``max(t_match, t_check)`` plus a sync residue,
    ``np`` variants pay ``t_match + t_check``; dispatch, split-message and
    ``ΔEq``-broadcast overheads are charged per the model). Deterministic;
    the documented substitution for the paper's 20-machine Java cluster;
  - ``threaded`` — :class:`ThreadedBackend`: real ``threading`` workers
    over one lock-protected engine (functional parity under true
    concurrency; GIL-bound);
  - ``process`` — :class:`~repro.parallel.backends.process.
    ProcessBackend`: ``multiprocessing`` workers forked against the
    prebuilt :class:`~repro.graph.index.GraphIndex`, exchanging pickled
    work units and ``ΔEq`` deltas — ParSat/ParImp on real cores. With
    ``RuntimeConfig.persistent_workers`` the pool survives between runs
    and is refreshed with graph topology *delta ops* (replayed into each
    replica's index via ``GraphIndex.apply_delta``) instead of fresh
    snapshots — the mutation-heavy serving configuration.

All backends share the protocol of Fig. 3: units are assigned dynamically
in small batches, split sub-units go to the *front* of the queue (paper,
lines 9–10 of ParSat), and the run stops at the first conflict or when
the implication goal is reached. Because ``Eq`` grows monotonically and
the algorithms are Church-Rosser, every backend returns the same verdict.

This module keeps the PR-1-era names importable: ``SimulatedCluster`` and
``ThreadedCluster`` are thin wrappers over the corresponding backends,
and :func:`make_cluster` delegates to the backend registry (accepting the
new ``'process'`` key as well).
"""

from __future__ import annotations

from .backends import (
    Backend,
    ProcessBackend,
    SimulatedBackend,
    ThreadedBackend,
    available_backends,
    get_backend,
)
from .config import RuntimeConfig
from .coordinator import ParallelOutcome, unit_duration

# Backward-compatible alias for the cost function's historical name.
_unit_duration = unit_duration


class SimulatedCluster(SimulatedBackend):
    """Thin compatibility wrapper — use :class:`SimulatedBackend`."""


class ThreadedCluster(ThreadedBackend):
    """Thin compatibility wrapper — use :class:`ThreadedBackend`."""


def make_cluster(config: RuntimeConfig, runtime: str) -> Backend:
    """Factory: ``'simulated'``, ``'threaded'``, or ``'process'``.

    Kept for compatibility; new code should call
    :func:`repro.parallel.backends.get_backend`. The legacy runtime names
    return the legacy wrapper classes so existing isinstance/name checks
    keep working.
    """
    if runtime == "simulated":
        return SimulatedCluster(config)
    if runtime == "threaded":
        return ThreadedCluster(config)
    return get_backend(runtime, config)


__all__ = [
    "Backend",
    "ParallelOutcome",
    "ProcessBackend",
    "SimulatedBackend",
    "SimulatedCluster",
    "ThreadedBackend",
    "ThreadedCluster",
    "available_backends",
    "get_backend",
    "make_cluster",
    "unit_duration",
]
