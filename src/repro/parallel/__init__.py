"""Parallel reasoning: ParSat / ParImp on simulated or threaded clusters."""

from .config import DEFAULT_TTL_SECONDS, CostModel, RuntimeConfig
from .engine import ParallelOutcome, SimulatedCluster, ThreadedCluster, make_cluster
from .parimp import ParImpResult, par_imp, par_imp_nb, par_imp_np
from .parsat import ParSatResult, par_sat, par_sat_nb, par_sat_np
from .tracing import Trace, TraceEvent, render_gantt, summarize
from .units import UnitContext, UnitResult, execute_unit

__all__ = [
    "DEFAULT_TTL_SECONDS",
    "CostModel",
    "RuntimeConfig",
    "ParallelOutcome",
    "SimulatedCluster",
    "ThreadedCluster",
    "make_cluster",
    "ParImpResult",
    "par_imp",
    "par_imp_nb",
    "par_imp_np",
    "ParSatResult",
    "par_sat",
    "par_sat_nb",
    "par_sat_np",
    "UnitContext",
    "UnitResult",
    "execute_unit",
    "Trace",
    "TraceEvent",
    "render_gantt",
    "summarize",
]
