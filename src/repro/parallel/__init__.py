"""Parallel reasoning: ParSat / ParImp on pluggable execution backends.

Backends (``backend=`` on :func:`par_sat` / :func:`par_imp`, or
:func:`get_backend`): ``'simulated'`` virtual clock, ``'threaded'`` real
threads, ``'process'`` multiprocessing on real cores.
"""

from .backends import (
    BACKENDS,
    Backend,
    ProcessBackend,
    SimulatedBackend,
    ThreadedBackend,
    available_backends,
    get_backend,
)
from .config import DEFAULT_TTL_SECONDS, CostModel, RuntimeConfig
from .coordinator import ParallelOutcome, QuarantinedUnit, drain_in_process
from .engine import SimulatedCluster, ThreadedCluster, make_cluster
from .faults import FaultEvent, FaultPlan, InjectedFault, RetryTracker
from .goals import EntailmentGoal
from .parimp import ParImpResult, par_imp, par_imp_nb, par_imp_np
from .parsat import ParSatResult, par_sat, par_sat_nb, par_sat_np
from .scheduler import Scheduler
from .tracing import Trace, TraceEvent, render_gantt, summarize
from .units import UnitContext, UnitResult, execute_unit

__all__ = [
    "BACKENDS",
    "Backend",
    "DEFAULT_TTL_SECONDS",
    "CostModel",
    "EntailmentGoal",
    "FaultEvent",
    "FaultPlan",
    "InjectedFault",
    "QuarantinedUnit",
    "RetryTracker",
    "RuntimeConfig",
    "ParallelOutcome",
    "drain_in_process",
    "ProcessBackend",
    "SimulatedBackend",
    "SimulatedCluster",
    "ThreadedBackend",
    "ThreadedCluster",
    "available_backends",
    "get_backend",
    "make_cluster",
    "ParImpResult",
    "par_imp",
    "par_imp_nb",
    "par_imp_np",
    "ParSatResult",
    "par_sat",
    "par_sat_nb",
    "par_sat_np",
    "Scheduler",
    "UnitContext",
    "UnitResult",
    "execute_unit",
    "Trace",
    "TraceEvent",
    "render_gantt",
    "summarize",
]
