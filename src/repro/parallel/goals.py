"""Picklable early-termination goals for the parallel runtimes.

The implication variant terminates early when ``Y ⊆ Eq_H`` (paper,
Section VI-C). The simulated and threaded backends can evaluate any
callable against the shared ``Eq``; the process backend must *ship* the
goal to worker replicas, so it needs a picklable value object rather than
a closure. :class:`EntailmentGoal` is that object — it is itself callable
with the usual ``goal_check(eq) -> bool`` signature, so every backend
accepts it uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from ..eq.eqrelation import EqRelation
from ..gfd.gfd import GFD
from ..graph.elements import NodeId
from ..reasoning.enforce import consequent_entailed


@dataclass(frozen=True)
class EntailmentGoal:
    """``Y ⊆ Eq`` under a fixed match — the ParImp goal, as a value.

    *assignment* is stored as a sorted tuple of ``(variable, node)`` pairs
    (the same normal form :class:`~repro.reasoning.workunits.WorkUnit`
    uses) so equal goals compare and pickle identically.
    """

    gfd: GFD
    assignment: Tuple[Tuple[str, NodeId], ...]

    @staticmethod
    def make(gfd: GFD, assignment: Mapping[str, NodeId]) -> "EntailmentGoal":
        pairs = tuple(sorted(assignment.items(), key=lambda kv: kv[0]))
        return EntailmentGoal(gfd, pairs)

    def __call__(self, eq: EqRelation) -> bool:
        return consequent_entailed(eq, self.gfd, dict(self.assignment))
