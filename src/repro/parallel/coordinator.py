"""Coordinator core shared by every execution backend.

The paper's Fig. 3 protocol has one coordinator and ``p`` workers; what
varies between our runtimes is only *where* the workers live (virtual
clock, threads, processes). This module holds the runtime-agnostic half:

* :class:`ParallelOutcome` — the uniform result record every backend
  returns (verdict, cost counters, per-worker busy time);
* :func:`unit_duration` — the virtual-clock price of one executed unit
  under a :class:`~repro.parallel.config.CostModel`;
* :func:`absorb_result` / :func:`register_splits` — the bookkeeping every
  backend performs per :class:`~repro.parallel.units.UnitResult`: tally
  operation counts, decide early termination, and hand split sub-units to
  the :class:`~repro.parallel.scheduler.Scheduler`'s priority lane
  (paper, lines 9–10 of ParSat: splits jump the queue).

Backends import from here; entry points import the names re-exported by
:mod:`repro.parallel.engine` (the historical home) or the package root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..eq.eqrelation import Conflict, EqRelation
from ..reasoning.workunits import WorkUnit
from .config import RuntimeConfig
from .units import UnitResult


@dataclass
class ParallelOutcome:
    """Everything a parallel run reports."""

    conflict: Optional[Conflict] = None
    goal_reached: bool = False
    virtual_seconds: float = 0.0
    wall_seconds: float = 0.0
    units_total: int = 0
    units_executed: int = 0
    splits: int = 0
    matches: int = 0
    match_ticks: int = 0
    enforce_ops: int = 0
    broadcast_ops: int = 0
    #: ΔEq ops that actually crossed the coordinator/worker boundary, both
    #: directions (the process backend's wire traffic; modeled per-sync on
    #: the simulated backend; 0 on the shared-memory threaded backend).
    broadcast_volume: int = 0
    #: Coordinator round trips: batch dispatches plus settlement syncs.
    sync_rounds: int = 0
    #: Units served from their pinned worker's own queue vs executed
    #: elsewhere (work stealing). Both 0 when ``affinity`` is off.
    affinity_hits: int = 0
    affinity_misses: int = 0
    #: Batch-size changes the adaptive scheduler made, and the final
    #: per-worker batch sizes it converged to.
    batch_adaptations: int = 0
    batch_sizes: List[int] = field(default_factory=list)
    worker_busy: List[float] = field(default_factory=list)
    eq: Optional[EqRelation] = None
    #: Which backend produced this outcome (``'simulated'`` etc.).
    backend: str = ""

    @property
    def terminated_early(self) -> bool:
        return self.conflict is not None or self.goal_reached

    @property
    def load_imbalance(self) -> float:
        """max/mean worker busy time (1.0 = perfectly balanced)."""
        busy = [b for b in self.worker_busy if b > 0]
        if not busy:
            return 1.0
        mean = sum(busy) / len(self.worker_busy)
        return max(self.worker_busy) / mean if mean else 1.0


def unit_duration(result: UnitResult, config: RuntimeConfig) -> float:
    """Virtual cost units charged for one executed unit (batch overhead is
    charged separately, once per coordinator round-trip)."""
    costs = config.costs
    t_match = result.match_ticks * costs.match_tick
    t_check = result.enforce_ops * costs.enforce_op
    if config.pipelined:
        core = max(t_match, t_check) + costs.pipeline_sync
    else:
        core = t_match + t_check
    return (
        core
        + costs.unit_overhead
        + len(result.splits) * costs.split_message
        + result.delta_ops * costs.broadcast_per_op
    )


def absorb_result(outcome: ParallelOutcome, result: UnitResult) -> None:
    """Tally one executed unit's operation counts into *outcome*."""
    outcome.units_executed += 1
    outcome.matches += result.matches
    outcome.match_ticks += result.match_ticks
    outcome.enforce_ops += result.enforce_ops
    outcome.broadcast_ops += result.delta_ops


def register_splits(
    outcome: ParallelOutcome,
    result: UnitResult,
    requeue: Optional[Callable[[List[WorkUnit]], None]] = None,
) -> None:
    """Account for *result*'s split sub-units and hand them to *requeue*.

    Split units jump the queue (highest priority): the canonical *requeue*
    pushes them to the queue's front, preserving their in-unit order.
    """
    if not result.splits:
        return
    outcome.splits += len(result.splits)
    outcome.units_total += len(result.splits)
    if requeue is not None:
        requeue(result.splits)


