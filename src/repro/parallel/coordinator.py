"""Coordinator core shared by every execution backend.

The paper's Fig. 3 protocol has one coordinator and ``p`` workers; what
varies between our runtimes is only *where* the workers live (virtual
clock, threads, processes). This module holds the runtime-agnostic half:

* :class:`ParallelOutcome` — the uniform result record every backend
  returns (verdict, cost counters, per-worker busy time);
* :func:`unit_duration` — the virtual-clock price of one executed unit
  under a :class:`~repro.parallel.config.CostModel`;
* :func:`absorb_result` / :func:`register_splits` — the bookkeeping every
  backend performs per :class:`~repro.parallel.units.UnitResult`: tally
  operation counts, decide early termination, and hand split sub-units to
  the :class:`~repro.parallel.scheduler.Scheduler`'s priority lane
  (paper, lines 9–10 of ParSat: splits jump the queue).

Backends import from here; entry points import the names re-exported by
:mod:`repro.parallel.engine` (the historical home) or the package root.
"""

from __future__ import annotations

import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import WorkerFault
from ..eq.eqrelation import Conflict, EqRelation
from ..reasoning.workunits import WorkUnit
from .config import RuntimeConfig
from .units import UnitResult


@dataclass
class QuarantinedUnit:
    """A work unit that failed everywhere and was dropped from the run.

    The supervision layer retries a failing unit up to
    ``RuntimeConfig.max_unit_retries`` times; a unit that keeps failing is
    quarantined — recorded here with the last worker-side traceback — and
    the run completes on the rest. Callers inspect
    ``ParallelOutcome.quarantined`` to decide whether the verdict stands
    for their purposes (a quarantined unit's matches were never enforced,
    so conflicts it alone would have found may be missed).
    """

    unit: WorkUnit
    error: str
    attempts: int
    worker_id: Optional[int] = None

    @property
    def unit_uid(self) -> str:
        return self.unit.uid


@dataclass
class ParallelOutcome:
    """Everything a parallel run reports."""

    conflict: Optional[Conflict] = None
    goal_reached: bool = False
    virtual_seconds: float = 0.0
    wall_seconds: float = 0.0
    units_total: int = 0
    units_executed: int = 0
    splits: int = 0
    matches: int = 0
    match_ticks: int = 0
    enforce_ops: int = 0
    broadcast_ops: int = 0
    #: ΔEq ops that actually crossed the coordinator/worker boundary, both
    #: directions (the process backend's wire traffic; modeled per-sync on
    #: the simulated backend; 0 on the shared-memory threaded backend).
    broadcast_volume: int = 0
    #: Coordinator round trips: batch dispatches plus settlement syncs.
    sync_rounds: int = 0
    #: Units served from their pinned worker's own queue vs executed
    #: elsewhere (work stealing). Both 0 when ``affinity`` is off.
    affinity_hits: int = 0
    affinity_misses: int = 0
    #: Units rerouted to the global queue at enqueue time because their
    #: locality key's owner was already cost-saturated (the scheduler's
    #: cost-feedback split of oversized groups). 0 when ``affinity`` off.
    affinity_overflows: int = 0
    #: Batch-size changes the adaptive scheduler made, and the final
    #: per-worker batch sizes it converged to.
    batch_adaptations: int = 0
    batch_sizes: List[int] = field(default_factory=list)
    worker_busy: List[float] = field(default_factory=list)
    #: Supervision: unit executions retried after a worker-side failure.
    retries: int = 0
    #: Worker replicas restarted after a crash or hang (process backend).
    respawns: int = 0
    #: Workers declared dead during the run (crash, hang, or error-exit).
    worker_deaths: int = 0
    #: Units that failed everywhere and were dropped from the run, with
    #: their worker tracebacks. Empty on a clean run.
    quarantined: List[QuarantinedUnit] = field(default_factory=list)
    #: Fragmented execution (process backend): full fragment replicas
    #: shipped to workers (initial placement, re-ships after a holder
    #: died) and per-unit dQ-balls shipped for cross-fragment pivots.
    #: Both 0 when ``RuntimeConfig.fragments`` is off.
    fragments_shipped: int = 0
    balls_shipped: int = 0
    #: Units the coordinator executed in-process because no fragment can
    #: serve them (radius-less units search the whole graph).
    coordinator_units: int = 0
    #: True when the pool collapsed below ``min_live_workers`` and the
    #: coordinator finished the remaining queue in-process.
    degraded: bool = False
    eq: Optional[EqRelation] = None
    #: Which backend produced this outcome (``'simulated'`` etc.).
    backend: str = ""

    @property
    def terminated_early(self) -> bool:
        return self.conflict is not None or self.goal_reached

    @property
    def load_imbalance(self) -> float:
        """max/mean worker busy time (1.0 = perfectly balanced)."""
        busy = [b for b in self.worker_busy if b > 0]
        if not busy:
            return 1.0
        mean = sum(busy) / len(self.worker_busy)
        return max(self.worker_busy) / mean if mean else 1.0


def unit_duration(result: UnitResult, config: RuntimeConfig) -> float:
    """Virtual cost units charged for one executed unit (batch overhead is
    charged separately, once per coordinator round-trip)."""
    costs = config.costs
    t_match = result.match_ticks * costs.match_tick
    t_check = result.enforce_ops * costs.enforce_op
    if config.pipelined:
        core = max(t_match, t_check) + costs.pipeline_sync
    else:
        core = t_match + t_check
    return (
        core
        + costs.unit_overhead
        + len(result.splits) * costs.split_message
        + result.delta_ops * costs.broadcast_per_op
    )


def absorb_result(outcome: ParallelOutcome, result: UnitResult) -> None:
    """Tally one executed unit's operation counts into *outcome*."""
    outcome.units_executed += 1
    outcome.matches += result.matches
    outcome.match_ticks += result.match_ticks
    outcome.enforce_ops += result.enforce_ops
    outcome.broadcast_ops += result.delta_ops


def register_splits(
    outcome: ParallelOutcome,
    result: UnitResult,
    requeue: Optional[Callable[[List[WorkUnit]], None]] = None,
) -> None:
    """Account for *result*'s split sub-units and hand them to *requeue*.

    Split units jump the queue (highest priority): the canonical *requeue*
    pushes them to the queue's front, preserving their in-unit order.
    """
    if not result.splits:
        return
    outcome.splits += len(result.splits)
    outcome.units_total += len(result.splits)
    if requeue is not None:
        requeue(result.splits)


def drain_in_process(
    outcome: ParallelOutcome,
    scheduler,
    context,
    engine,
    config: RuntimeConfig,
    goal_check=None,
    tracker=None,
    extra_units: Optional[List[WorkUnit]] = None,
) -> None:
    """Graceful degradation: finish the remaining queue coordinator-side.

    When a backend's worker pool collapses below
    ``config.min_live_workers``, the remaining units (plus any
    *extra_units* recovered from dead workers) are executed in-process
    through the same :func:`~repro.parallel.units.execute_unit` path the
    simulated backend uses — directly against the master engine, so no
    broadcast or settlement is needed. Poisoned-unit injection and the
    retry/quarantine machinery (*tracker*, a
    :class:`~repro.parallel.faults.RetryTracker`) still apply; worker
    events do not (there are no workers left to fail).
    """
    from .faults import RetryTracker
    from .units import execute_unit

    outcome.degraded = True
    if tracker is None:
        tracker = RetryTracker(config.max_unit_retries)
    plan = config.fault_plan
    eq = engine.eq
    pending = deque(extra_units or ())
    requeue = pending.extendleft  # splits jump this local queue's front

    def next_unit() -> Optional[WorkUnit]:
        if pending:
            return pending.popleft()
        batch = scheduler.next_batch(0) if len(scheduler) else []
        if not batch:
            return None
        pending.extend(batch[1:])
        return batch[0]

    while not outcome.terminated_early:
        unit = next_unit()
        if unit is None:
            break
        try:
            if plan is not None:
                plan.check_unit(unit)
            result = execute_unit(
                unit,
                context,
                engine,
                ttl_ticks=config.ttl_ticks,
                max_split_units=config.max_split_units,
                goal_check=goal_check,
            )
        except Exception as exc:
            detail = traceback.format_exc()
            if config.strict_faults:
                raise WorkerFault(
                    f"unit {unit.uid} failed during degraded execution: {exc}",
                    unit_uid=unit.uid,
                    worker_traceback=detail,
                ) from exc
            if tracker.record_failure(unit):
                outcome.retries += 1
                pending.append(unit)
            else:
                outcome.quarantined.append(
                    QuarantinedUnit(unit, detail, tracker.attempts(unit))
                )
            continue
        absorb_result(outcome, result)
        if result.conflict or eq.has_conflict():
            outcome.conflict = eq.conflict
        elif result.goal_reached or (goal_check is not None and goal_check(eq)):
            outcome.goal_reached = True
        else:
            register_splits(outcome, result, lambda splits: requeue(reversed(splits)))


