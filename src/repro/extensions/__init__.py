"""GED-style extensions: GFDs with built-in predicates (Section IX).

The paper's concluding future work — reasoning about dependencies "with
built-in predicates (≤, <, ≥, >, ≠)" — implemented as a self-contained
layer over the core engine. See :mod:`repro.extensions.predicates` for the
literal types and the constraint-aware equivalence relation, and
:mod:`repro.extensions.reasoning` for ``ext_seq_sat`` / ``ext_seq_imp``.
"""

from .keys import GedResult, GedStats, IdLiteral, ged_satisfiable, key_gfd
from .predicates import Bounds, CompareLiteral, ExtendedEq, VarNeqLiteral
from .reasoning import (
    ExtImpResult,
    ExtSatResult,
    ExtendedEngine,
    ext_seq_imp,
    ext_seq_sat,
    extended_antecedent_status,
    extended_consequent_entailed,
    extended_enforce_consequent,
    extended_literal_status,
)

__all__ = [
    "GedResult",
    "GedStats",
    "IdLiteral",
    "ged_satisfiable",
    "key_gfd",
    "Bounds",
    "CompareLiteral",
    "ExtendedEq",
    "VarNeqLiteral",
    "ExtImpResult",
    "ExtSatResult",
    "ExtendedEngine",
    "ext_seq_imp",
    "ext_seq_sat",
    "extended_antecedent_status",
    "extended_consequent_entailed",
    "extended_enforce_consequent",
    "extended_literal_status",
]
