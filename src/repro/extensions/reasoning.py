"""Satisfiability and implication for GFDs with built-in predicates.

Mirrors the core ``SeqSat`` / ``SeqImp`` architecture — canonical graphs,
match enumeration, three-valued antecedent checking, inverted-index
cascades, early termination — but over :class:`~repro.extensions.
predicates.ExtendedEq`, whose classes carry interval bounds and
disequalities besides equalities. Plain literals (=, constants, false) are
handled exactly as in the core; the new literal kinds add:

===============  ===========================  ==============================
literal           as antecedent                as consequent (enforcement)
===============  ===========================  ==============================
``x.A < c`` etc.  SAT iff bounds/constant      tighten the class interval
                  already guarantee it;        (an empty interval is a
                  VIOLATED iff they            conflict; a point interval
                  guarantee the negation       promotes to a constant)
``x.A != c``      decided by constant or       add a forbidden constant
                  forbidden-constant set
``x.A != y.B``    SAT on distinct constants    add a class disequality
                  or recorded disequality;     (conflict if already equal)
                  VIOLATED on same class /
                  equal constants
===============  ===========================  ==============================

The small-model completion argument extends: ordered predicates range over
a dense unbounded numeric domain, so an unconflicted relation always
completes to a model (``ExtendedEq.completed_assignment``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..eq.eqrelation import Term
from ..eq.inverted_index import InvertedIndex, PendingMatch
from ..errors import GFDError
from ..gfd.canonical import build_canonical_graph, build_implication_canonical
from ..gfd.gfd import GFD
from ..gfd.literals import ConstantLiteral, FalseLiteral, VariableLiteral
from ..graph.elements import NodeId
from ..matching.component_index import ComponentIndex
from ..matching.homomorphism import MatcherRun
from ..matching.plan import get_plan
from ..reasoning.enforce import AntecedentStatus
from .predicates import CompareLiteral, ExtendedEq, VarNeqLiteral

Assignment = Mapping[str, NodeId]


def _compare_status(
    eq: ExtendedEq, literal: CompareLiteral, assignment: Assignment
) -> Tuple[AntecedentStatus, List[Term]]:
    term: Term = (assignment[literal.var], literal.attr)
    constant = eq.constant_of(term)
    op, value = literal.op, literal.value
    if op == "!=":
        if constant is not None:
            if constant != value:
                return AntecedentStatus.SATISFIED, []
            return AntecedentStatus.VIOLATED, []
        if value in eq.forbidden_constants(term):
            return AntecedentStatus.SATISFIED, []
        return AntecedentStatus.UNDECIDED, [term]
    if constant is not None:
        if not isinstance(constant, (int, float)) or isinstance(constant, bool):
            return AntecedentStatus.VIOLATED, []
        holds = {
            "<": constant < value,
            "<=": constant <= value,
            ">": constant > value,
            ">=": constant >= value,
        }[op]
        return (AntecedentStatus.SATISFIED if holds else AntecedentStatus.VIOLATED), []
    bounds = eq.bounds_of(term)
    if op in ("<", "<="):
        if bounds.implies_leq(value, strict=(op == "<")):
            return AntecedentStatus.SATISFIED, []
        if bounds.implies_geq(value, strict=(op == "<=")):
            # lower bound already at/above the threshold: can never hold.
            return AntecedentStatus.VIOLATED, []
    else:
        if bounds.implies_geq(value, strict=(op == ">")):
            return AntecedentStatus.SATISFIED, []
        if bounds.implies_leq(value, strict=(op == ">=")):
            return AntecedentStatus.VIOLATED, []
    return AntecedentStatus.UNDECIDED, [term]


def _var_neq_status(
    eq: ExtendedEq, literal: VarNeqLiteral, assignment: Assignment
) -> Tuple[AntecedentStatus, List[Term]]:
    term_a: Term = (assignment[literal.var], literal.attr)
    term_b: Term = (assignment[literal.other_var], literal.other_attr)
    if eq.same_class(term_a, term_b):
        return AntecedentStatus.VIOLATED, []
    const_a, const_b = eq.constant_of(term_a), eq.constant_of(term_b)
    if const_a is not None and const_b is not None:
        if const_a != const_b:
            return AntecedentStatus.SATISFIED, []
        return AntecedentStatus.VIOLATED, []
    if eq.has_neq(term_a, term_b):
        return AntecedentStatus.SATISFIED, []
    return AntecedentStatus.UNDECIDED, [term_a, term_b]


def extended_literal_status(
    eq: ExtendedEq, literal, assignment: Assignment
) -> Tuple[AntecedentStatus, List[Term]]:
    """Three-valued status of any (core or extended) literal."""
    if isinstance(literal, CompareLiteral):
        return _compare_status(eq, literal, assignment)
    if isinstance(literal, VarNeqLiteral):
        return _var_neq_status(eq, literal, assignment)
    if isinstance(literal, FalseLiteral):
        return AntecedentStatus.VIOLATED, []
    if isinstance(literal, ConstantLiteral):
        term: Term = (assignment[literal.var], literal.attr)
        constant = eq.constant_of(term)
        if constant is None:
            return AntecedentStatus.UNDECIDED, [term]
        if constant == literal.value:
            return AntecedentStatus.SATISFIED, []
        return AntecedentStatus.VIOLATED, []
    if isinstance(literal, VariableLiteral):
        term_a = (assignment[literal.var], literal.attr)
        term_b = (assignment[literal.other_var], literal.other_attr)
        if eq.same_class(term_a, term_b):
            return AntecedentStatus.SATISFIED, []
        const_a, const_b = eq.constant_of(term_a), eq.constant_of(term_b)
        if const_a is not None and const_b is not None:
            if const_a == const_b:
                return AntecedentStatus.SATISFIED, []
            return AntecedentStatus.VIOLATED, []
        return AntecedentStatus.UNDECIDED, [term_a, term_b]
    raise GFDError(f"unknown literal type {type(literal).__name__}")


def extended_antecedent_status(
    eq: ExtendedEq, gfd: GFD, assignment: Assignment
) -> Tuple[AntecedentStatus, List[Term]]:
    blocking: List[Term] = []
    undecided = False
    for literal in gfd.antecedent:
        status, terms = extended_literal_status(eq, literal, assignment)
        if status is AntecedentStatus.VIOLATED:
            return AntecedentStatus.VIOLATED, []
        if status is AntecedentStatus.UNDECIDED:
            undecided = True
            blocking.extend(terms)
    if undecided:
        return AntecedentStatus.UNDECIDED, blocking
    return AntecedentStatus.SATISFIED, []


def extended_consequent_entailed(eq: ExtendedEq, gfd: GFD, assignment: Assignment) -> bool:
    for literal in gfd.consequent:
        if isinstance(literal, FalseLiteral):
            return False
        status, _ = extended_literal_status(eq, literal, assignment)
        if status is not AntecedentStatus.SATISFIED:
            return False
    return True


def extended_enforce_consequent(eq: ExtendedEq, gfd: GFD, assignment: Assignment) -> bool:
    """Apply every consequent literal; True if the relation changed."""
    changed = False
    source = gfd.name
    for literal in gfd.consequent:
        if isinstance(literal, FalseLiteral):
            eq.eq.fail((assignment[gfd.pattern.variables[0]], "<false>"), source)
            return changed
        if isinstance(literal, ConstantLiteral):
            changed |= eq.assign_constant(
                (assignment[literal.var], literal.attr), literal.value, source
            )
        elif isinstance(literal, VariableLiteral):
            changed |= eq.merge_terms(
                (assignment[literal.var], literal.attr),
                (assignment[literal.other_var], literal.other_attr),
                source,
            )
        elif isinstance(literal, CompareLiteral):
            term = (assignment[literal.var], literal.attr)
            if literal.op == "!=":
                changed |= eq.add_neq_constant(term, literal.value, source)
            else:
                changed |= eq.add_bound(term, literal.op, literal.value, source)
        elif isinstance(literal, VarNeqLiteral):
            changed |= eq.add_neq_terms(
                (assignment[literal.var], literal.attr),
                (assignment[literal.other_var], literal.other_attr),
                source,
            )
        else:
            raise GFDError(f"unknown literal type {type(literal).__name__}")
        if eq.has_conflict():
            return True
    return changed


class ExtendedEngine:
    """Cascade driver over an :class:`ExtendedEq` (mirrors the core one)."""

    def __init__(self, eq: ExtendedEq, gfds_by_name: Mapping[str, GFD]) -> None:
        self.eq = eq
        self.gfds = dict(gfds_by_name)
        self.index = InvertedIndex()
        self.ops = 0

    def enforce(self, gfd: GFD, assignment: Assignment) -> bool:
        changed = self._process(gfd, dict(assignment))
        if self.eq.has_conflict():
            return changed
        changed |= self._cascade()
        return changed

    def _process(self, gfd: GFD, assignment: Dict[str, NodeId]) -> bool:
        self.ops += 1
        status, blocking = extended_antecedent_status(self.eq, gfd, assignment)
        if status is AntecedentStatus.VIOLATED:
            return False
        if status is AntecedentStatus.UNDECIDED:
            self.index.register(PendingMatch.from_dict(gfd.name, assignment), blocking)
            return False
        return extended_enforce_consequent(self.eq, gfd, assignment)

    def _cascade(self) -> bool:
        changed = False
        while not self.eq.has_conflict():
            touched = self.eq.take_changed_terms()
            if not touched:
                break
            for pending in self.index.pop_affected(touched):
                gfd = self.gfds.get(pending.gfd_name)
                if gfd is None:
                    continue
                changed |= self._process(gfd, pending.as_dict())
                if self.eq.has_conflict():
                    return True
        return changed


@dataclass
class ExtSatResult:
    satisfiable: bool
    conflict_reason: Optional[str]
    eq: ExtendedEq
    matches: int = 0
    wall_seconds: float = 0.0

    def __bool__(self) -> bool:
        return self.satisfiable


def ext_seq_sat(sigma: Sequence[GFD]) -> ExtSatResult:
    """Satisfiability for GFDs with built-in predicates (exact).

    Caveat inherited from the dense-domain assumption: a ``!=`` between two
    never-instantiated classes is recorded but those classes can always be
    separated during completion, so it never causes unsatisfiability by
    itself — matching the semantics over infinite value domains.
    """
    started = time.perf_counter()
    canonical = build_canonical_graph(sigma)
    index = ComponentIndex(canonical.graph)
    eq = ExtendedEq()
    engine = ExtendedEngine(eq, canonical.gfds)
    matches = 0
    for gfd in sigma:
        if gfd.is_trivial():
            continue
        if gfd.pattern.is_connected():
            component_ids = [
                comp_id
                for comp_id in range(index.num_components())
                if index.pattern_compatible(gfd.pattern, comp_id)
            ]
            scopes = [index.nodes_of(comp_id) for comp_id in component_ids]
        else:
            scopes = [None]
        plan = get_plan(gfd.pattern, canonical.graph)
        for scope in scopes:
            run = MatcherRun(gfd.pattern, canonical.graph, allowed_nodes=scope, plan=plan)
            for assignment in run.matches():
                matches += 1
                engine.enforce(gfd, assignment)
                if eq.has_conflict():
                    return ExtSatResult(
                        False, eq.conflict_reason, eq, matches,
                        time.perf_counter() - started,
                    )
    return ExtSatResult(True, None, eq, matches, time.perf_counter() - started)


@dataclass
class ExtImpResult:
    implied: bool
    reason: str
    eq: ExtendedEq
    wall_seconds: float = 0.0

    def __bool__(self) -> bool:
        return self.implied


def _extended_eq_from_antecedent(phi: GFD) -> ExtendedEq:
    eq = ExtendedEq()
    identity = {var: var for var in phi.pattern.variables}
    # Reuse the enforcement path: X literals are "applied" to seed Eq_X.
    seeding = GFD(phi.pattern, (), tuple(phi.antecedent), name=f"{phi.name}:X")
    extended_enforce_consequent(eq, seeding, identity)
    return eq


def ext_seq_imp(sigma: Sequence[GFD], phi: GFD) -> ExtImpResult:
    """Implication ``Σ |= φ`` for GFDs with built-in predicates (exact)."""
    started = time.perf_counter()
    canonical = build_implication_canonical(
        GFD(phi.pattern, (), (), name=f"{phi.name}@shell")
    )
    eq = _extended_eq_from_antecedent(phi)
    identity = {var: var for var in phi.pattern.variables}
    if eq.has_conflict():
        return ExtImpResult(True, "trivial-X", eq, time.perf_counter() - started)
    if phi.is_trivial():
        return ExtImpResult(True, "trivial-Y", eq, time.perf_counter() - started)
    if extended_consequent_entailed(eq, phi, identity):
        return ExtImpResult(True, "derived", eq, time.perf_counter() - started)
    engine = ExtendedEngine(eq, {gfd.name: gfd for gfd in sigma})
    for gfd in sigma:
        if gfd.is_trivial():
            continue
        run = MatcherRun(
            gfd.pattern, canonical.graph, plan=get_plan(gfd.pattern, canonical.graph)
        )
        for assignment in run.matches():
            changed = engine.enforce(gfd, assignment)
            if eq.has_conflict():
                return ExtImpResult(True, "conflict", eq, time.perf_counter() - started)
            if changed and extended_consequent_entailed(eq, phi, identity):
                return ExtImpResult(True, "derived", eq, time.perf_counter() - started)
    return ExtImpResult(False, "not-implied", eq, time.perf_counter() - started)
