"""Built-in predicate literals — the paper's announced GED extension.

The paper closes with: "We are currently extending the algorithms to reason
about GEDs [2] ... and their extensions with built-in predicates
(≤, <, ≥, >, ≠)" (Section IX). This module implements that extension:

* :class:`CompareLiteral` — ``x.A op c`` for ``op ∈ {<, <=, >, >=, !=}``
  against a constant;
* :class:`VarNeqLiteral` — ``x.A != y.B`` between two attribute terms
  (order predicates between *terms* would require full difference-
  constraint reasoning and are out of scope, as in the paper's sketch);
* :class:`ExtendedEq` — the equivalence relation of the core algorithms
  enriched with per-class interval bounds and disequality constraints.

Reasoning assumptions (documented, and the same ones that make the
small-model completion argument go through): ordered comparisons apply to
numeric values over a dense unbounded domain, so any class whose interval
is non-empty and not pinned to a point can always be completed with a
fresh value avoiding finitely many disequalities. A point interval
``[c, c]`` is promoted to the constant ``c``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple

from ..errors import LiteralError
from ..eq.eqrelation import EqRelation, Term
from ..graph.elements import AttrValue

#: Comparison operators supported against constants.
OPS = ("<", "<=", ">", ">=", "!=")


@dataclass(frozen=True)
class CompareLiteral:
    """``var.attr op value`` with ``op`` one of :data:`OPS`."""

    var: str
    attr: str
    op: str
    value: AttrValue

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise LiteralError(f"unsupported comparison operator {self.op!r}")
        if self.op != "!=" and not isinstance(self.value, (int, float)):
            raise LiteralError(
                f"ordered comparison {self.op!r} requires a numeric constant, "
                f"got {self.value!r}"
            )

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.var})

    def attribute_names(self) -> FrozenSet[str]:
        return frozenset({self.attr})

    def terms(self) -> Tuple[Tuple[str, str], ...]:
        return ((self.var, self.attr),)

    def __str__(self) -> str:
        return f"{self.var}.{self.attr} {self.op} {self.value!r}"


@dataclass(frozen=True)
class VarNeqLiteral:
    """``var.attr != other_var.other_attr`` (canonically oriented)."""

    var: str
    attr: str
    other_var: str
    other_attr: str

    def __post_init__(self) -> None:
        left = (str(self.var), str(self.attr))
        right = (str(self.other_var), str(self.other_attr))
        if right < left:
            swapped = (self.other_var, self.other_attr, self.var, self.attr)
            object.__setattr__(self, "var", swapped[0])
            object.__setattr__(self, "attr", swapped[1])
            object.__setattr__(self, "other_var", swapped[2])
            object.__setattr__(self, "other_attr", swapped[3])

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.var, self.other_var})

    def attribute_names(self) -> FrozenSet[str]:
        return frozenset({self.attr, self.other_attr})

    def terms(self) -> Tuple[Tuple[str, str], ...]:
        return ((self.var, self.attr), (self.other_var, self.other_attr))

    def __str__(self) -> str:
        return f"{self.var}.{self.attr} != {self.other_var}.{self.other_attr}"


@dataclass
class Bounds:
    """An interval constraint on a class's (numeric) value."""

    lower: float = -math.inf
    lower_strict: bool = False
    upper: float = math.inf
    upper_strict: bool = False

    def copy(self) -> "Bounds":
        return Bounds(self.lower, self.lower_strict, self.upper, self.upper_strict)

    def tighten_lower(self, value: float, strict: bool) -> bool:
        """Raise the lower bound; True if changed."""
        if value > self.lower or (value == self.lower and strict and not self.lower_strict):
            self.lower, self.lower_strict = value, strict
            return True
        return False

    def tighten_upper(self, value: float, strict: bool) -> bool:
        if value < self.upper or (value == self.upper and strict and not self.upper_strict):
            self.upper, self.upper_strict = value, strict
            return True
        return False

    def merge(self, other: "Bounds") -> bool:
        changed = self.tighten_lower(other.lower, other.lower_strict)
        changed |= self.tighten_upper(other.upper, other.upper_strict)
        return changed

    def is_empty(self) -> bool:
        if self.lower > self.upper:
            return True
        if self.lower == self.upper and (self.lower_strict or self.upper_strict):
            return True
        return False

    def pins_to_point(self) -> Optional[float]:
        """The single admissible value, if the interval is a point."""
        if self.lower == self.upper and not self.lower_strict and not self.upper_strict:
            if not math.isinf(self.lower):
                return self.lower
        return None

    def admits(self, value) -> bool:
        """Whether a concrete value satisfies the interval (non-numeric
        values satisfy only unconstrained bounds)."""
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return math.isinf(self.lower) and math.isinf(self.upper)
        if value < self.lower or (value == self.lower and self.lower_strict):
            return False
        if value > self.upper or (value == self.upper and self.upper_strict):
            return False
        return True

    def implies_leq(self, value: float, strict: bool) -> bool:
        """Bounds guarantee ``x < value`` (strict) / ``x <= value``."""
        if strict:
            return self.upper < value or (self.upper == value and self.upper_strict)
        return self.upper < value or (self.upper == value)

    def implies_geq(self, value: float, strict: bool) -> bool:
        if strict:
            return self.lower > value or (self.lower == value and self.lower_strict)
        return self.lower > value or (self.lower == value)

    def __str__(self) -> str:
        left = "(" if self.lower_strict else "["
        right = ")" if self.upper_strict else "]"
        return f"{left}{self.lower}, {self.upper}{right}"


class ExtendedEq:
    """An :class:`EqRelation` enriched with bounds and disequalities.

    Wraps (and owns) a plain ``EqRelation`` for the equality part; keeps
    per-root :class:`Bounds`, per-root forbidden-constant sets, and a set
    of class-level disequality pairs. All invariants are restored after
    every mutation:

    * a class's constant must satisfy its bounds and avoid its forbidden
      constants;
    * a point interval promotes to a constant (which may conflict);
    * a disequality between two classes that are (or become) the same
      class is a conflict.
    """

    def __init__(self) -> None:
        self.eq = EqRelation()
        self._bounds: Dict[Term, Bounds] = {}          # root -> bounds
        self._neq_constants: Dict[Term, Set[AttrValue]] = {}  # root -> values
        self._neq_pairs: Set[FrozenSet[Term]] = set()  # {rootA, rootB}
        self._extra_conflict: Optional[str] = None

    # ------------------------------------------------------------------
    # Conflict handling
    # ------------------------------------------------------------------
    def has_conflict(self) -> bool:
        return self.eq.has_conflict() or self._extra_conflict is not None

    @property
    def conflict_reason(self) -> Optional[str]:
        if self.eq.has_conflict():
            return str(self.eq.conflict)
        return self._extra_conflict

    def _fail(self, reason: str) -> None:
        if self._extra_conflict is None:
            self._extra_conflict = reason

    # ------------------------------------------------------------------
    # Root-keyed state with rebasing after merges
    # ------------------------------------------------------------------
    def _root(self, term: Term) -> Term:
        self.eq.add_term(term)
        return self.eq._uf.find(term)  # noqa: SLF001 - intentional fast path

    def _bounds_of(self, root: Term) -> Bounds:
        if root not in self._bounds:
            self._bounds[root] = Bounds()
        return self._bounds[root]

    def bounds_of(self, term: Term) -> Bounds:
        """A copy of the bounds constraining *term*'s class."""
        return self._bounds_of(self._root(term)).copy()

    def forbidden_constants(self, term: Term) -> Set[AttrValue]:
        return set(self._neq_constants.get(self._root(term), set()))

    def has_neq(self, a: Term, b: Term) -> bool:
        return frozenset({self._root(a), self._root(b)}) in self._neq_pairs

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def assign_constant(self, term: Term, value: AttrValue, source: str = "") -> bool:
        root = self._root(term)
        bounds = self._bounds_of(root)
        if not bounds.admits(value):
            self._fail(f"{term} = {value!r} violates bounds {bounds} ({source})")
            return False
        if value in self._neq_constants.get(root, set()):
            self._fail(f"{term} = {value!r} violates a != constraint ({source})")
            return False
        changed = self.eq.assign_constant(term, value, source)
        if changed:
            self._check_neq_pairs_around(self._root(term))
        return changed

    def merge_terms(self, a: Term, b: Term, source: str = "") -> bool:
        root_a, root_b = self._root(a), self._root(b)
        if root_a == root_b:
            return False
        if frozenset({root_a, root_b}) in self._neq_pairs:
            self._fail(f"merging {a} and {b} contradicts a != constraint ({source})")
            return False
        bounds_a = self._bounds.pop(root_a, Bounds())
        bounds_b = self._bounds.pop(root_b, Bounds())
        neq_a = self._neq_constants.pop(root_a, set())
        neq_b = self._neq_constants.pop(root_b, set())
        pairs_a = [pair for pair in self._neq_pairs if root_a in pair]
        pairs_b = [pair for pair in self._neq_pairs if root_b in pair]
        changed = self.eq.merge_terms(a, b, source)
        new_root = self._root(a)
        merged_bounds = bounds_a
        merged_bounds.merge(bounds_b)
        self._bounds[new_root] = merged_bounds
        self._neq_constants[new_root] = neq_a | neq_b
        for pair in pairs_a + pairs_b:
            self._neq_pairs.discard(pair)
            others = pair - {root_a, root_b}
            if not others:
                # Both endpoints merged into one class: x != x.
                self._fail(f"merge of {a}, {b} collapses a != pair ({source})")
                continue
            (other,) = others
            other_root = self._root(other)
            if other_root == new_root:
                self._fail(f"merge of {a}, {b} collapses a != pair ({source})")
            else:
                self._neq_pairs.add(frozenset({new_root, other_root}))
        self._normalize_class(new_root, source)
        self._check_neq_pairs_around(new_root)
        return changed

    def add_bound(self, term: Term, op: str, value: float, source: str = "") -> bool:
        """Apply ``term op value`` for an ordered *op*; True if changed."""
        root = self._root(term)
        bounds = self._bounds_of(root)
        if op == "<":
            changed = bounds.tighten_upper(value, strict=True)
        elif op == "<=":
            changed = bounds.tighten_upper(value, strict=False)
        elif op == ">":
            changed = bounds.tighten_lower(value, strict=True)
        elif op == ">=":
            changed = bounds.tighten_lower(value, strict=False)
        else:
            raise LiteralError(f"add_bound does not handle operator {op!r}")
        if changed:
            self._normalize_class(root, source)
        return changed

    def add_neq_constant(self, term: Term, value: AttrValue, source: str = "") -> bool:
        root = self._root(term)
        constant = self.eq.constant_of(term)
        if constant is not None:
            if constant == value:
                self._fail(f"{term} != {value!r} but it equals {constant!r} ({source})")
            return False
        forbidden = self._neq_constants.setdefault(root, set())
        if value in forbidden:
            return False
        forbidden.add(value)
        return True

    def add_neq_terms(self, a: Term, b: Term, source: str = "") -> bool:
        root_a, root_b = self._root(a), self._root(b)
        if root_a == root_b:
            self._fail(f"{a} != {b} but they are already equal ({source})")
            return False
        const_a, const_b = self.eq.constant_of(a), self.eq.constant_of(b)
        if const_a is not None and const_b is not None:
            if const_a == const_b:
                self._fail(f"{a} != {b} but both equal {const_a!r} ({source})")
            return False
        pair = frozenset({root_a, root_b})
        if pair in self._neq_pairs:
            return False
        self._neq_pairs.add(pair)
        return True

    def _normalize_class(self, root: Term, source: str) -> None:
        """Restore invariants after a bounds change or merge."""
        bounds = self._bounds_of(root)
        if bounds.is_empty():
            self._fail(f"empty interval {bounds} for class of {root} ({source})")
            return
        constant = self.eq.constant_of(root)
        if constant is not None:
            if not bounds.admits(constant):
                self._fail(
                    f"constant {constant!r} of {root} violates bounds {bounds} ({source})"
                )
                return
            if constant in self._neq_constants.get(root, set()):
                self._fail(f"constant {constant!r} of {root} violates != ({source})")
            return
        point = bounds.pins_to_point()
        if point is not None:
            # Interval collapsed to one value: promote to a constant.
            self.assign_constant(root, point, source=f"{source}:pinned")

    def _check_neq_pairs_around(self, root: Term) -> None:
        """A class just received a constant; disequal classes with the same
        constant now conflict."""
        constant = self.eq.constant_of(root)
        if constant is None:
            return
        for pair in list(self._neq_pairs):
            if root not in pair:
                continue
            others = pair - {root}
            if not others:
                self._fail(f"class of {root} became disequal to itself")
                return
            (other,) = others
            other_root = self._root(other)
            if other_root == root:
                self._fail(f"class of {root} became disequal to itself")
                return
            other_constant = self.eq.constant_of(other_root)
            if other_constant is not None and other_constant == constant:
                self._fail(
                    f"disequal classes of {root} and {other} both equal {constant!r}"
                )
                return

    # ------------------------------------------------------------------
    # Delegation helpers used by the extended engine
    # ------------------------------------------------------------------
    def constant_of(self, term: Term) -> Optional[AttrValue]:
        return self.eq.constant_of(term)

    def same_class(self, a: Term, b: Term) -> bool:
        return self.eq.same_class(a, b)

    def take_changed_terms(self) -> Set[Term]:
        return self.eq.take_changed_terms()

    def copy(self) -> "ExtendedEq":
        clone = ExtendedEq()
        clone.eq = self.eq.copy()
        clone._bounds = {root: bounds.copy() for root, bounds in self._bounds.items()}
        clone._neq_constants = {root: set(vals) for root, vals in self._neq_constants.items()}
        clone._neq_pairs = set(self._neq_pairs)
        clone._extra_conflict = self._extra_conflict
        return clone

    def completed_assignment(self, fresh_start: float = 10_000.0) -> Dict[Term, AttrValue]:
        """A total assignment respecting equality, bounds and disequality.

        Constants stay; unconstrained classes get fresh distinct numeric
        values; bounded classes get a value inside their interval avoiding
        forbidden constants and already-placed disequal neighbors. Raises
        ``ValueError`` on a conflicted relation.
        """
        if self.has_conflict():
            raise ValueError(f"cannot complete a conflicted relation: {self.conflict_reason}")
        assignment: Dict[Term, AttrValue] = {}
        chosen: Dict[Term, AttrValue] = {}  # root -> value
        counter = itertools.count()
        for members, constant in self.eq.classes():
            root = self._root(next(iter(members)))
            if constant is None:
                avoid = set(self._neq_constants.get(root, set()))
                for pair in self._neq_pairs:
                    if root in pair:
                        for other in pair - {root}:
                            if other in chosen:
                                avoid.add(chosen[other])
                            other_constant = self.eq.constant_of(other)
                            if other_constant is not None:
                                avoid.add(other_constant)
                constant = self._pick_value(self._bounds_of(root), avoid, fresh_start, counter)
            chosen[root] = constant
            for term in members:
                assignment[term] = constant
        return assignment

    @staticmethod
    def _pick_value(bounds: Bounds, avoid: Set[AttrValue], fresh_start: float, counter) -> float:
        if math.isinf(bounds.lower) and math.isinf(bounds.upper):
            value = fresh_start + next(counter)
            while value in avoid:
                value = fresh_start + next(counter)
            return value
        # Dense domain: walk midpoints until clear of the finite avoid set.
        lower = bounds.lower if not math.isinf(bounds.lower) else bounds.upper - 2.0
        upper = bounds.upper if not math.isinf(bounds.upper) else bounds.lower + 2.0
        candidate = (lower + upper) / 2.0
        step = (upper - lower) / 4.0 or 0.25
        while candidate in avoid or not bounds.admits(candidate):
            candidate += step
            step /= 2.0
            if step < 1e-12:  # pragma: no cover - defensive
                raise ValueError("could not find an admissible value")
        return candidate
